#!/usr/bin/env python3
"""A deployment-fraction × ROA-policy grid on the repro.exper engine.

One declarative :class:`~repro.exper.ExperimentSpec` replaces what used
to take a hand-rolled double loop: sweep the fraction of validating
ASes against three ROA policies for the forged-origin subprefix attack
(§4/§5 of the paper), with bootstrap confidence intervals per cell —
plus one cell the old loops could not express at all (per-AS partial
ROA adoption).

The paper's argument reads straight off the grid:

* against a *minimal* ROA the attack dies as validation deploys;
* against a *maxLength-loose* ROA the announcement is valid, so the
  column is pinned at 100% no matter how many ASes validate;
* at 50% ROA adoption the victim gets half the protection.

Run:  python examples/experiment_grid.py [--ases 300] [--trials 12]
      [--executor process]
"""

import argparse
import random

from repro.data import TopologyProfile, generate_topology
from repro.exper import (
    ExperimentRunner,
    ExperimentSpec,
    MaxLengthLooseRoa,
    MinimalRoa,
    PartialCoverageRoa,
    ScenarioCell,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ases", type=int, default=300)
    parser.add_argument("--trials", type=int, default=12)
    parser.add_argument("--seed", type=int, default=2017)
    parser.add_argument("--executor", choices=("serial", "process"),
                        default="serial")
    args = parser.parse_args()

    print(f"generating a {args.ases}-AS topology...")
    topology = generate_topology(
        TopologyProfile(ases=args.ases), random.Random(args.seed)
    )
    print(f"  {topology.edge_count()} inter-AS links, "
          f"{len(topology.stub_ases())} stubs")

    spec = ExperimentSpec(
        cells=(
            ScenarioCell("forged-origin-subprefix", MinimalRoa()),
            ScenarioCell("forged-origin-subprefix", MaxLengthLooseRoa()),
            ScenarioCell(
                "forged-origin-subprefix",
                PartialCoverageRoa(MinimalRoa(), 0.5),
            ),
        ),
        trials=args.trials,
        seed=args.seed,
        fractions=(0.0, 0.5, 1.0),
    )
    print(f"\nexperiment: {len(spec.cells)} cells x "
          f"{len(spec.fractions)} fractions x {spec.trials} trials "
          f"({args.executor} executor)\n")

    result = ExperimentRunner(
        topology, spec, executor=args.executor
    ).run()
    print(result.render())

    minimal_full = result.cell("forged-origin-subprefix/minimal", 1.0)
    loose_full = result.cell(
        "forged-origin-subprefix/maxlength-loose", 1.0
    )
    partial_full = result.cell(
        "forged-origin-subprefix/minimal@0.5", 1.0
    )
    print()
    print(f"minimal ROA, full validation:   "
          f"{100 * minimal_full.mean:5.1f}% captured "
          f"(filtered in {100 * minimal_full.filtered_fraction:.0f}% "
          f"of trials)")
    print(f"loose ROA, full validation:     "
          f"{100 * loose_full.mean:5.1f}% captured — "
          f"validation never helps against a non-minimal ROA")
    print(f"50% ROA adoption, full valid.:  "
          f"{100 * partial_full.mean:5.1f}% captured — "
          f"half the victims still fully exposed")


if __name__ == "__main__":
    main()
