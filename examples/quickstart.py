#!/usr/bin/env python3
"""Quickstart: the paper's running example, §2–§5 and Figure 2.

Walks Boston University's 168.122.0.0/16 through the whole argument:

1. a ROA protects against subprefix hijacks (§2);
2. maxLength makes de-aggregation convenient (§3);
3. ...and opens the forged-origin subprefix hijack (§4);
4. a minimal ROA closes it (§5);
5. compress_roas keeps the PDU count down without reopening it (§7).

Run:  python examples/quickstart.py
"""

from repro.bgp import Announcement, ValidationState, VrpIndex, validate_announcement
from repro.core import compress_vrps, hijackable_prefixes, build_origin_index
from repro.netbase import Prefix
from repro.rpki import Roa, RoaPrefix, Vrp


def show(title: str) -> None:
    print(f"\n=== {title} ===")


def verdict(index: VrpIndex, announcement: Announcement) -> str:
    state = validate_announcement(announcement, index)
    return f"{announcement}  ->  {state.value}"


def main() -> None:
    bu_prefix = Prefix.parse("168.122.0.0/16")
    subprefix = Prefix.parse("168.122.0.0/24")
    deagg = Prefix.parse("168.122.225.0/24")

    show("§2: a plain ROA stops the subprefix hijack")
    plain_roa = Roa(111, [RoaPrefix(bu_prefix)])
    print(f"RPKI contains {plain_roa}")
    index = VrpIndex(plain_roa.vrps())
    print(verdict(index, Announcement(bu_prefix, (111,))))
    print(verdict(index, Announcement(subprefix, (666,))), "(hijack dropped)")

    show("§3: but de-aggregation by AS 111 is dropped too")
    print(verdict(index, Announcement(deagg, (111,))))

    show("§3: maxLength 24 to the rescue...")
    loose_roa = Roa(111, [RoaPrefix(bu_prefix, 24)])
    print(f"RPKI now contains {loose_roa}")
    loose = VrpIndex(loose_roa.vrps())
    print(verdict(loose, Announcement(deagg, (111,))))

    show("§4: ...which hands the attacker a valid announcement")
    attack = Announcement(subprefix, (666, 111))
    print(verdict(loose, attack), "(forged-origin subprefix hijack!)")
    announced = build_origin_index([(bu_prefix, 111), (deagg, 111)])
    targets = list(hijackable_prefixes(loose_roa.vrps()[0], announced, limit=5))
    print("first few hijackable prefixes:",
          ", ".join(str(t) for t in targets))

    show("§5: the minimal ROA closes the hole")
    minimal_roa = Roa(111, [RoaPrefix(bu_prefix), RoaPrefix(deagg)])
    print(f"RPKI instead contains {minimal_roa}")
    minimal = VrpIndex(minimal_roa.vrps())
    print(verdict(minimal, Announcement(deagg, (111,))), "(de-agg still works)")
    print(verdict(minimal, attack), "(attack dropped)")
    print(verdict(minimal, Announcement(bu_prefix, (666, 111))),
          "(attacker is forced to the whole /16, where traffic splits)")

    show("§7 / Figure 2: compress_roas on AS 31283's minimal ROA")
    tuples = [
        Vrp(Prefix.parse("87.254.32.0/19"), 19, 31283),
        Vrp(Prefix.parse("87.254.32.0/20"), 20, 31283),
        Vrp(Prefix.parse("87.254.48.0/20"), 20, 31283),
        Vrp(Prefix.parse("87.254.32.0/21"), 21, 31283),
    ]
    print("input PDUs: ", "; ".join(str(v) for v in tuples))
    compressed = compress_vrps(tuples)
    print("compressed: ", "; ".join(str(v) for v in compressed))
    print(f"{len(tuples)} PDUs -> {len(compressed)} PDUs, authorizing exactly "
          "the same routes (still minimal, still safe)")


if __name__ == "__main__":
    main()
