#!/usr/bin/env python3
"""Attack-effectiveness study on a synthetic Internet (paper §4/§5).

Builds a 1000-AS Gao–Rexford topology, samples victim/attacker pairs
among the stubs, and measures the attacker's traffic capture under
each attack variant and ROA configuration — the quantified version of
the paper's argument that a forged-origin subprefix hijack against a
non-minimal ROA "is as bad as a subprefix hijack", while a minimal ROA
forces the far weaker same-prefix attack.

Run:  python examples/hijack_study.py [--ases 1000] [--samples 30]
"""

import argparse
import random

from repro.analysis import run_hijack_study
from repro.bgp import AttackKind, AttackScenario, VrpIndex, evaluate_attack
from repro.data import TopologyProfile, generate_topology
from repro.netbase import Prefix
from repro.rpki import Vrp


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ases", type=int, default=1000)
    parser.add_argument("--samples", type=int, default=30)
    parser.add_argument("--seed", type=int, default=2017)
    args = parser.parse_args()

    print(f"generating a {args.ases}-AS topology...")
    topology = generate_topology(
        TopologyProfile(ases=args.ases), random.Random(args.seed)
    )
    print(f"  {topology.edge_count()} inter-AS links, "
          f"{len(topology.stub_ases())} stubs, "
          f"{len(topology.tier1_ases())} tier-1s")

    # One narrated attack first.
    victim_prefix = Prefix.parse("168.122.0.0/16")
    attack_prefix = Prefix.parse("168.122.0.0/24")
    rng = random.Random(args.seed)
    victim, attacker = rng.sample(sorted(topology.stub_ases()), 2)
    print(f"\nvictim AS{victim} announces {victim_prefix} under "
          f"ROA ({victim_prefix}-24, AS {victim}) — NOT minimal")
    loose = VrpIndex([Vrp(victim_prefix, 24, victim)])
    scenario = AttackScenario(
        AttackKind.FORGED_ORIGIN_SUBPREFIX, victim, attacker,
        victim_prefix, attack_prefix,
    )
    outcome = evaluate_attack(topology, scenario, vrp_index=loose)
    print(f"attacker AS{attacker} announces "
          f"“{attack_prefix}: AS {attacker}, AS {victim}” ...")
    print(f"  -> captures {100 * outcome.attacker_fraction:.1f}% of the "
          f"traffic for {attack_prefix}")

    minimal = VrpIndex([Vrp(victim_prefix, victim_prefix.length, victim)])
    outcome_minimal = evaluate_attack(topology, scenario, vrp_index=minimal)
    print(f"with a minimal ROA the same announcement is invalid -> "
          f"captures {100 * outcome_minimal.attacker_fraction:.1f}%")

    print(f"\naveraging over {args.samples} random (victim, attacker) pairs:")
    study = run_hijack_study(
        topology, samples=args.samples, seed=args.seed
    )
    for line in study.summary_lines():
        print(" ", line)

    print("\nconclusion: the non-minimal ROA turns total compromise back "
          "on; a minimal ROA limits the attacker to the (much weaker) "
          "same-prefix forged-origin attack.")


if __name__ == "__main__":
    main()
