#!/usr/bin/env python3
"""The serving tier in one sitting: async RTR fan-out + validity queries.

Figure 1's local cache has two faces.  Routers pull the validated VRP
table over RPKI-to-Router; operators and tooling ask the cache directly
whether a (prefix, origin AS) pair is valid.  This example runs both
against one VRP set — the paper's §4 example ROA for AS 31283 — and
shows the fan-out economics: many routers, one table encode.

Run:  python examples/serve_quickstart.py
"""

import asyncio
import json

from repro.netbase import Prefix
from repro.rpki import Vrp
from repro.serve import (
    AsyncRtrClient,
    AsyncRtrServer,
    QueryHttpServer,
    QueryService,
    ServeMetrics,
)


def p(text: str) -> Prefix:
    return Prefix.parse(text)


#: §4's running example: a loose /19-20 ROA plus a minimal sibling.
VRPS = [
    Vrp(p("87.254.32.0/19"), 20, 31283),
    Vrp(p("87.254.32.0/21"), 21, 31283),
    Vrp(p("168.122.0.0/16"), 24, 111),
    Vrp(p("2001:db8::/32"), 48, 7),
]

ROUTERS = 8


async def main() -> None:
    metrics = ServeMetrics()

    print(f"1. starting the async RTR server with {len(VRPS)} VRPs...")
    async with AsyncRtrServer(VRPS, metrics=metrics) as rtr:
        print(f"   listening on {rtr.host}:{rtr.port}, "
              f"serial {rtr.state.serial}")

        print(f"2. syncing {ROUTERS} concurrent router sessions...")
        routers = [AsyncRtrClient() for _ in range(ROUTERS)]
        for router in routers:
            await router.connect(rtr.host, rtr.port)
        await asyncio.gather(*(router.sync() for router in routers))
        assert all(router.vrps == frozenset(VRPS) for router in routers)
        print(f"   every router holds {len(VRPS)} VRPs; the table was "
              f"encoded {metrics['frame_encodes']} time(s) and served "
              f"from cache {metrics['frame_hits']} time(s)")

        print("3. pushing an update; routers catch up incrementally...")
        await rtr.update(VRPS + [Vrp(p("203.0.113.0/24"), 24, 64500)])
        await asyncio.gather(*(router.wait_for_notify() for router in routers))
        await asyncio.gather(*(router.sync() for router in routers))
        print(f"   all notified, now at serial {rtr.state.serial} with "
              f"{len(routers[0].vrps)} VRPs each")

        print("4. origin-validation queries against the same VRP set...")
        service = QueryService(rtr.state.vrps, metrics=metrics)
        service.serial = rtr.state.serial
        for asn, prefix, note in [
            (31283, "87.254.32.0/20", "inside maxLength"),
            (31283, "87.254.40.0/22", "beyond maxLength: the §4 hole"),
            (666, "87.254.32.0/20", "forged origin"),
            (31283, "198.51.100.0/24", "no covering ROA"),
        ]:
            result = service.validity(asn, p(prefix))
            print(f"   AS{asn:<6} {prefix:<18} -> {result.state.value:<8} "
                  f"({result.reason}; {note})")

        print("5. the same service over HTTP/JSON...")
        async with QueryHttpServer(service, metrics=metrics) as http:
            reader, writer = await asyncio.open_connection(http.host, http.port)
            writer.write(
                b"GET /validity?asn=31283&prefix=87.254.40.0%2F22 HTTP/1.1\r\n"
                b"Connection: close\r\n\r\n")
            raw = await reader.read()
            writer.close()
            body = json.loads(raw.split(b"\r\n\r\n", 1)[1])
            print(f"   GET /validity -> state={body['state']} "
                  f"reason={body['reason']}")

        for router in routers:
            await router.close()

    snapshot = metrics.snapshot()
    print("6. metrics snapshot:")
    print(f"   connections={snapshot['connections_opened']} "
          f"pdus_sent={snapshot['pdus_sent']} "
          f"bytes_sent={snapshot['bytes_sent']} "
          f"frame_encodes={snapshot['frame_encodes']} "
          f"frame_hits={snapshot['frame_hits']} "
          f"queries={snapshot['queries']}")
    print("done: one encode per serial, however many routers connect.")


if __name__ == "__main__":
    asyncio.run(main())
