#!/usr/bin/env python3
"""The Figure 1 pipeline, end to end with real crypto and real sockets.

Builds an RPKI from scratch — trust anchor, an RIR, two member
organizations, RSA-signed DER objects — then runs a relying party over
it, compresses the resulting PDUs with compress_roas, serves them over
the RPKI-to-Router protocol on localhost, and has a "router" client
validate BGP announcements against what it learned.

Run:  python examples/local_cache_pipeline.py
"""

import random

from repro.bgp import Announcement, ValidationState, VrpIndex, validate_announcement
from repro.core import LocalCache
from repro.netbase import Prefix
from repro.rpki import AsRange, CertificateAuthority, Repository, Roa, RoaPrefix
from repro.rtr import RtrClient


def p(text: str) -> Prefix:
    return Prefix.parse(text)


def main() -> None:
    rng = random.Random(20170601)
    repository = Repository()

    print("1. building the RPKI hierarchy (RSA keys, DER objects)...")
    ta = CertificateAuthority.create_trust_anchor(
        "TA", repository,
        ip_resources=(p("0.0.0.0/0"), p("::/0")),
        rng=rng, now=1_000,
    )
    rir = ta.issue_child(
        "ARIN", ip_resources=(p("168.0.0.0/6"),),
        as_resources=(AsRange(0, 2**32 - 1),),
    )
    bu = rir.issue_child("BU", ip_resources=(p("168.122.0.0/16"),))
    other = rir.issue_child("ISP", ip_resources=(p("169.10.0.0/16"),))

    print("2. issuing ROAs (one loose, one minimal-with-siblings)...")
    bu.issue_roa(Roa(111, [RoaPrefix(p("168.122.0.0/16"), 24)]))
    other.issue_roa(
        Roa(
            31283,
            [
                RoaPrefix(p("169.10.32.0/19")),
                RoaPrefix(p("169.10.32.0/20")),
                RoaPrefix(p("169.10.48.0/20")),
                RoaPrefix(p("169.10.32.0/21")),
            ],
        )
    )
    ta.publish_tree()
    print(f"   repository now holds {repository.total_objects()} objects")

    print("3. relying party validates the repository...")
    with LocalCache(compress=True) as cache:
        run = cache.refresh_from_repository(repository, [ta.certificate], now=1_000)
        print(f"   {run.cas_seen} CAs walked, {run.roas_seen} ROAs verified, "
              f"{len(run.issues)} issues")
        stats = cache.compression_stats()
        print(f"4. compress_roas: {stats}")

        print("5. serving over RPKI-to-Router...")
        server = cache.serve()
        print(f"   cache listening on {server.host}:{server.port}")

        with RtrClient(server.host, server.port) as router:
            pdus = router.sync()
            print(f"6. router synced: {pdus} PDUs processed, "
                  f"{len(router.vrps)} VRPs installed")

            index = VrpIndex(router.vrps)
            print("7. origin validation at the router:")
            for text, path in [
                ("168.122.0.0/16", (3356, 111)),
                ("168.122.225.0/24", (111,)),          # de-agg: valid (maxLength)
                ("168.122.0.0/24", (666, 111)),        # forged-origin subprefix!
                ("169.10.32.0/20", (31283,)),
                ("169.10.40.0/21", (666, 31283)),      # not covered by minimal set
                ("8.8.8.0/24", (15169,)),
            ]:
                announcement = Announcement(p(text), path)
                state = validate_announcement(announcement, index)
                flag = ""
                if state is ValidationState.VALID and path[0] == 666:
                    flag = "   <- the §4 attack: valid because of maxLength"
                if state is ValidationState.INVALID and path[0] == 666:
                    flag = "   <- blocked: the ROA is minimal"
                print(f"   {announcement}  ->  {state.value}{flag}")

    print("\ndone: same architecture as Figure 1, no router changes needed.")


if __name__ == "__main__":
    main()
