#!/usr/bin/env python3
"""The §6–§7 measurement study on a synthetic Internet snapshot.

Generates a scaled 2017-06-01 dataset (BGP tables + RPKI contents),
runs every §6 measurement, prints Table 1, and optionally writes the
dataset to archive files for the ``repro-roa`` CLI to chew on.

Run:  python examples/measurement_study.py [--scale 0.05] [--out-dir DIR]
"""

import argparse
from pathlib import Path

from repro.analysis import compute_table1, measure_section6
from repro.data import (
    GeneratorConfig,
    generate_snapshot,
    write_origin_pairs,
    write_vrp_csv,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05,
                        help="fraction of the 2017 Internet (default 0.05)")
    parser.add_argument("--seed", type=int, default=20170601)
    parser.add_argument("--out-dir", type=Path, default=None,
                        help="also write vrps.csv and rib.txt here")
    args = parser.parse_args()

    print(f"generating the 2017-06-01 snapshot at scale {args.scale}...")
    snapshot = generate_snapshot(
        GeneratorConfig(scale=args.scale, seed=args.seed)
    )
    print(f"  {len(snapshot.announced):,} BGP (prefix, AS) pairs, "
          f"{len(snapshot.roas):,} ROAs, {len(snapshot.vrps):,} VRP tuples")

    print("\n§6 measurements:")
    measurements = measure_section6(snapshot.vrps, snapshot.announced)
    for line in measurements.summary_lines():
        print(f"  {line}")

    print("\nTable 1:")
    table = compute_table1(snapshot.vrps, snapshot.announced)
    for line in table.render().splitlines():
        print(f"  {line}")

    print("\npaper (2017-06-01, scale 1.0): 39,949 / 33,615 / 52,745 / "
          "49,308 / 776,945 / 730,008 / 729,371")

    if args.out_dir is not None:
        args.out_dir.mkdir(parents=True, exist_ok=True)
        vrp_path = args.out_dir / "vrps.csv"
        rib_path = args.out_dir / "rib.txt"
        write_vrp_csv(snapshot.vrps, vrp_path)
        write_origin_pairs(snapshot.announced, rib_path)
        print(f"\nwrote {vrp_path} and {rib_path}")
        print(f"try:  repro-roa analyze {vrp_path} {rib_path}")
        print(f"      repro-roa compress {vrp_path} -o compressed.csv")


if __name__ == "__main__":
    main()
