#!/usr/bin/env python3
"""ROA lint: the paper's §8 recommendations as a review tool.

The paper recommends that RIR user interfaces steer operators toward
minimal, maxLength-free ROAs.  This example plays the role of such an
interface's backend: it reviews ROAs against the BGP table, explains
each problem in operator terms, and proposes the safe replacement
(minimal + Algorithm-1-compressed, so there is no PDU penalty).

Run:  python examples/roa_lint.py            # curated examples
      python examples/roa_lint.py --scale 0.005   # lint a synthetic RPKI
"""

import argparse
from collections import Counter

from repro.core import Severity, lint_roa, lint_roas
from repro.data import GeneratorConfig, generate_snapshot
from repro.netbase import Prefix
from repro.rpki import Roa, RoaPrefix


def p(text: str) -> Prefix:
    return Prefix.parse(text)


def curated_examples() -> None:
    announced = [
        (p("168.122.0.0/16"), 111),
        (p("168.122.225.0/24"), 111),
        (p("87.254.32.0/19"), 31283),
        (p("87.254.32.0/20"), 31283),
        (p("87.254.48.0/20"), 31283),
        (p("87.254.32.0/21"), 31283),
    ]
    cases = [
        ("the paper's §4 misconfiguration",
         Roa(111, [RoaPrefix(p("168.122.0.0/16"), 24)])),
        ("§3 gone wrong: exact ROA, de-aggregated announcements",
         Roa(111, [RoaPrefix(p("168.122.0.0/16"))])),
        ("the recommended minimal ROA",
         Roa(111, [p("168.122.0.0/16"), p("168.122.225.0/24")])),
        ("Figure 2's AS with an unused extra entry",
         Roa(31283, [p("87.254.32.0/19"), p("87.254.32.0/20"),
                     p("87.254.48.0/20"), p("87.254.32.0/21"),
                     p("87.254.0.0/19")])),
    ]
    for title, roa in cases:
        print(f"\n--- {title} ---")
        print(lint_roa(roa, announced).render())


def lint_synthetic(scale: float, seed: int) -> None:
    print(f"generating a synthetic RPKI at scale {scale}...")
    snapshot = generate_snapshot(GeneratorConfig(scale=scale, seed=seed))
    reviews = lint_roas(snapshot.roas, snapshot.announced)

    by_severity = Counter(review.severity for review in reviews)
    print(f"\nreviewed {len(reviews)} ROAs:")
    for severity in (Severity.ERROR, Severity.WARNING, Severity.INFO):
        label = {Severity.ERROR: "vulnerable / broken",
                 Severity.WARNING: "questionable",
                 Severity.INFO: "clean"}[severity]
        print(f"  {by_severity.get(severity, 0):5d}  {label}")

    print("\nworst offenders:")
    errors = [r for r in reviews if r.severity is Severity.ERROR]
    for review in errors[:3]:
        print()
        print(review.render())

    fixable = sum(1 for r in reviews if r.suggested is not None)
    print(f"\n{fixable} ROAs have an automatic minimal replacement "
          "(no new ROAs, no PDU penalty after compression).")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=None,
                        help="lint a synthetic RPKI at this scale instead "
                             "of the curated examples")
    parser.add_argument("--seed", type=int, default=20170601)
    args = parser.parse_args()
    if args.scale is None:
        curated_examples()
    else:
        lint_synthetic(args.scale, args.seed)


if __name__ == "__main__":
    main()
