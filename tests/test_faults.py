"""repro.faults: deterministic fault injection, and chaos equivalence.

The contracts pinned here:

* a :class:`FaultPlan` is pure data — JSON round trips, and
  :meth:`FaultPlan.generate` derives the same schedule from the same
  seed (different seeds diverge);
* :func:`fire` is inert with no plan installed, and with one installed
  honours ``at`` ordinals, ``match`` context filters, and errno
  selection exactly, logging every injection and counting it in the
  ``faults.injected`` metric;
* :class:`RetryPolicy` backoff is deterministic (token-keyed jitter),
  capped, and validates its inputs;
* **chaos equivalence** (invariant 7, docs/architecture.md): a
  sharded run under an aggressive seeded fault plan — worker crashes
  and injected IO errors mid-stream — produces a result and a sink
  file byte-identical to a fault-free serial run;
* a :class:`JsonlSink` hit by an injected ``ENOSPC`` mid-write
  degrades fail-safe: typed :class:`SinkWriteError`, ``dirty`` flag,
  intact prefix, and a fresh sink resumes to byte-identical output.
"""

from __future__ import annotations

import asyncio
import errno
import random

import pytest

from repro.data import TopologyProfile, generate_topology
from repro.exper import (
    ExperimentRunner,
    ExperimentSpec,
    MaxLengthLooseRoa,
    MinimalRoa,
    ScenarioCell,
)
from repro.faults import (
    PLAN_ENV,
    SITES,
    FaultPlan,
    FaultRule,
    RetryPolicy,
    active_plan,
    fire,
    fire_async,
    install,
    install_from_env,
    uninstall,
)
from repro.netbase.errors import ReproError
from repro.obs import MetricsRegistry, use_registry
from repro.results import JsonlSink, RunHeader, SinkWriteError, read_run


@pytest.fixture(autouse=True)
def no_leftover_plan():
    """Every test starts and ends with no plan installed."""
    uninstall()
    yield
    uninstall()


@pytest.fixture(scope="module")
def topology():
    return generate_topology(TopologyProfile(ases=150), random.Random(9))


def small_spec(**kwargs) -> ExperimentSpec:
    defaults = dict(
        cells=(
            ScenarioCell("forged-origin-subprefix", MinimalRoa()),
            ScenarioCell("forged-origin-subprefix", MaxLengthLooseRoa()),
        ),
        trials=6,
        seed=4,
        fractions=(None, 0.5),
    )
    defaults.update(kwargs)
    return ExperimentSpec(**defaults)


def run_recorded(topology, spec, path, **runner_kwargs):
    """A recorded run; returns (result, file bytes)."""
    sink = JsonlSink(path)
    try:
        result = ExperimentRunner(
            topology, spec, sink=sink, **runner_kwargs
        ).run(bootstrap_resamples=200)
    finally:
        sink.close()
    return result, path.read_bytes()


# ----------------------------------------------------------------------
# Rules and plans as data
# ----------------------------------------------------------------------


class TestFaultRule:
    def test_validates_action(self):
        with pytest.raises(ReproError, match="action"):
            FaultRule(site="results.sink.write", action="explode")

    def test_validates_error_kind(self):
        with pytest.raises(ReproError, match="error kind"):
            FaultRule(site="results.sink.write", action="error",
                      error="eperm")

    def test_validates_ordinals(self):
        with pytest.raises(ReproError, match="1-based"):
            FaultRule(site="results.sink.write", action="error", at=(0,))
        with pytest.raises(ReproError, match="1-based"):
            FaultRule(site="results.sink.write", action="error", at=())

    def test_validates_delay(self):
        with pytest.raises(ReproError, match="delay"):
            FaultRule(site="serve.http.request", action="stall",
                      delay=-0.1)

    def test_match_accepts_mapping(self):
        rule = FaultRule(site="exper.shard.record", action="crash",
                         match={"shard": 1, "attempt": 0})
        assert rule.match == (("attempt", "0"), ("shard", "1"))
        assert rule.matches(
            "exper.shard.record", {"shard": 1, "attempt": 0}
        )
        assert not rule.matches(
            "exper.shard.record", {"shard": 2, "attempt": 0}
        )
        assert not rule.matches("results.sink.write", {"shard": 1})


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            rules=(
                FaultRule(site="results.sink.write", action="error",
                          at=(2, 5), error="enospc",
                          match=(("path", "/tmp/x"),)),
                FaultRule(site="serve.http.request", action="stall",
                          delay=0.01),
            ),
            seed=13,
        )
        parsed = FaultPlan.from_json(plan.to_json())
        assert parsed.rules == plan.rules
        assert parsed.seed == plan.seed
        assert parsed.to_json() == plan.to_json()

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ReproError, match="JSON"):
            FaultPlan.from_json("{nope")
        with pytest.raises(ReproError, match="repro.faults/plan"):
            FaultPlan.from_json('{"kind": "other"}')
        with pytest.raises(ReproError, match="schema"):
            FaultPlan.from_json(
                '{"kind": "repro.faults/plan", "schema": 99}'
            )

    def test_generate_is_deterministic(self):
        first = FaultPlan.generate(7, shards=3)
        again = FaultPlan.generate(7, shards=3)
        assert first.to_json() == again.to_json()
        # Not a constant: some nearby seed must produce a different
        # schedule (all-equal would mean the seed is ignored).
        assert any(
            FaultPlan.generate(seed, shards=3).to_json()
            != first.to_json()
            for seed in range(8, 16)
        )

    def test_generate_profiles(self):
        sharded = FaultPlan.generate(3, shards=2, rules=4)
        assert all(
            rule.site == "exper.shard.record" for rule in sharded.rules
        )
        assert all(
            ("attempt", "0") in rule.match for rule in sharded.rules
        )
        serve = FaultPlan.generate(3, rules=4, profile="serve")
        assert all(
            rule.site == "serve.http.request" for rule in serve.rules
        )
        with pytest.raises(ReproError, match="profile"):
            FaultPlan.generate(3, profile="nope")

    def test_sites_cover_generated_plans(self):
        for profile in ("sharded", "serve"):
            for rule in FaultPlan.generate(1, profile=profile).rules:
                assert rule.site in SITES


# ----------------------------------------------------------------------
# Firing semantics
# ----------------------------------------------------------------------


class TestFire:
    def test_inert_without_plan(self):
        assert active_plan() is None
        fire("results.sink.write", path="x")  # must not raise

    def test_install_uninstall(self):
        plan = install(FaultPlan())
        assert active_plan() is plan
        uninstall()
        assert active_plan() is None

    def test_at_ordinal_and_errno(self):
        install(FaultPlan(rules=(
            FaultRule(site="results.sink.write", action="error",
                      at=(3,), error="enospc"),
        )))
        fire("results.sink.write")
        fire("results.sink.write")
        with pytest.raises(OSError) as caught:
            fire("results.sink.write")
        assert caught.value.errno == errno.ENOSPC
        fire("results.sink.write")  # ordinal passed; inert again

    def test_match_filters_context(self):
        plan = install(FaultPlan(rules=(
            FaultRule(site="exper.shard.record", action="error",
                      at=(1,), match=(("shard", "1"),)),
        )))
        fire("exper.shard.record", shard=0)  # no match, no hit
        fire("other.site", shard=1)
        with pytest.raises(OSError) as caught:
            fire("exper.shard.record", shard=1)
        assert caught.value.errno == errno.EIO
        assert len(plan.fired) == 1
        event = plan.fired[0]
        assert event["site"] == "exper.shard.record"
        assert event["action"] == "error"
        assert event["hit"] == 1
        assert event["context"] == {"shard": "1"}

    def test_injections_counted_in_registry(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            install(FaultPlan(rules=(
                FaultRule(site="results.sink.write", action="error"),
            )))
            with pytest.raises(OSError):
                fire("results.sink.write")
        assert registry.snapshot()["faults.injected"] == 1

    def test_fire_async_reset(self):
        install(FaultPlan(rules=(
            FaultRule(site="serve.http.request", action="reset"),
        )))

        async def drive():
            await fire_async("serve.http.request", path="/validity")

        with pytest.raises(ConnectionResetError):
            asyncio.run(drive())

    def test_stall_returns_after_delay(self):
        install(FaultPlan(rules=(
            FaultRule(site="serve.http.request", action="stall",
                      delay=0.001),
        )))
        fire("serve.http.request")  # sleeps, then continues

    def test_install_from_env(self, monkeypatch):
        plan = FaultPlan.generate(5, shards=2)
        monkeypatch.setenv(PLAN_ENV, plan.to_json())
        installed = install_from_env()
        assert installed is not None
        assert installed.to_json() == plan.to_json()
        assert active_plan() is installed
        monkeypatch.delenv(PLAN_ENV)
        # Without the variable the active plan is left untouched.
        assert install_from_env() is None
        assert active_plan() is installed


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------


class TestRetryPolicy:
    def test_allows_counts_attempts(self):
        policy = RetryPolicy(retries=2)
        assert policy.allows(1)
        assert policy.allows(2)
        assert not policy.allows(3)
        assert not RetryPolicy(retries=0).allows(1)

    def test_default_has_zero_delay(self):
        assert RetryPolicy().backoff(1) == 0.0
        assert RetryPolicy().backoff(5) == 0.0

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(retries=8, base_delay=1.0, multiplier=2.0,
                             max_delay=5.0)
        assert policy.backoff(1) == 1.0
        assert policy.backoff(2) == 2.0
        assert policy.backoff(3) == 4.0
        assert policy.backoff(4) == 5.0  # capped
        assert policy.backoff(8) == 5.0

    def test_jitter_is_deterministic_and_token_keyed(self):
        policy = RetryPolicy(retries=4, base_delay=1.0, jitter=0.5)
        one = policy.backoff(2, token="run:0")
        assert one == policy.backoff(2, token="run:0")
        assert one != policy.backoff(2, token="run:1")
        # Jitter only adds, bounded by the fraction and the cap.
        base = RetryPolicy(retries=4, base_delay=1.0).backoff(2)
        assert base <= one <= base * 1.5

    def test_validation(self):
        with pytest.raises(ReproError):
            RetryPolicy(retries=-1)
        with pytest.raises(ReproError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ReproError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ReproError):
            RetryPolicy(jitter=1.5)


# ----------------------------------------------------------------------
# Chaos equivalence: faulted sharded run == fault-free serial run
# ----------------------------------------------------------------------


class TestChaosEquivalence:
    def test_hand_built_plan_preserves_bytes(
        self, topology, tmp_path, monkeypatch
    ):
        """Crash + IO-error faults on first attempts change nothing."""
        spec = small_spec()
        serial, serial_bytes = run_recorded(
            topology, spec, tmp_path / "serial.jsonl", executor="serial"
        )
        plan = FaultPlan(rules=(
            FaultRule(site="exper.shard.record", action="error",
                      at=(3,), error="enospc",
                      match=(("shard", "1"), ("attempt", "0"))),
            FaultRule(site="exper.shard.record", action="crash",
                      at=(2,),
                      match=(("shard", "0"), ("attempt", "0"))),
        ))
        monkeypatch.setenv(PLAN_ENV, plan.to_json())
        chaotic, chaotic_bytes = run_recorded(
            topology, spec, tmp_path / "chaos.jsonl",
            executor="sharded", shards=3,
        )
        assert chaotic_bytes == serial_bytes
        assert chaotic.trial_counts == serial.trial_counts
        assert [
            [stats.mean for stats in row] for row in chaotic.stats
        ] == [[stats.mean for stats in row] for row in serial.stats]

    def test_generated_plan_preserves_bytes(
        self, topology, tmp_path, monkeypatch
    ):
        """The CLI's seeded plan path: generate, ship via env, run."""
        spec = small_spec(trials=4)
        _, serial_bytes = run_recorded(
            topology, spec, tmp_path / "serial.jsonl", executor="serial"
        )
        plan = FaultPlan.generate(7, shards=3, max_hit=3)
        monkeypatch.setenv(PLAN_ENV, plan.to_json())
        _, chaotic_bytes = run_recorded(
            topology, spec, tmp_path / "chaos.jsonl",
            executor="sharded", shards=3,
        )
        assert chaotic_bytes == serial_bytes


# ----------------------------------------------------------------------
# Sink fail-safe degradation
# ----------------------------------------------------------------------


class TestSinkFaults:
    def test_enospc_mid_write_degrades_then_resumes(
        self, topology, tmp_path
    ):
        spec = small_spec(trials=3, fractions=(None,))
        # The reference: an undisturbed recording of the same run.
        _, clean_bytes = run_recorded(
            topology, spec, tmp_path / "clean.jsonl", executor="serial"
        )
        install(FaultPlan(rules=(
            FaultRule(site="results.sink.write", action="error",
                      at=(3,), error="enospc"),
        )))
        sink = JsonlSink(tmp_path / "faulted.jsonl")
        runner = ExperimentRunner(
            topology, spec, sink=sink, executor="serial"
        )
        with pytest.raises(SinkWriteError) as caught:
            runner.run(bootstrap_resamples=200)
        sink.close()
        assert caught.value.errno == errno.ENOSPC
        assert caught.value.path == tmp_path / "faulted.jsonl"
        assert sink.dirty
        # A dirty sink refuses further use...
        with pytest.raises(ReproError, match="dirty"):
            sink.write(None)
        with pytest.raises(ReproError, match="dirty"):
            sink.begin(RunHeader.for_spec(spec, topology))
        # ...but never corrupted the prefix: the two records written
        # before the fault read back cleanly.
        header, records = read_run(tmp_path / "faulted.jsonl")
        assert header.spec_hash == spec.spec_hash()
        assert len(records) == 2
        # And the run stays resumable to byte-identical output.
        uninstall()
        fresh = JsonlSink(tmp_path / "faulted.jsonl")
        try:
            ExperimentRunner(
                topology, spec, sink=fresh, resume_from=fresh,
                executor="serial",
            ).run(bootstrap_resamples=200)
        finally:
            fresh.close()
        assert (tmp_path / "faulted.jsonl").read_bytes() == clean_bytes

    def test_write_failure_prefix_never_corrupted(self, tmp_path):
        """Every record so far survives whichever write the fault hits."""
        from repro.exper import TrialRecord

        def sample_record(trial_index: int) -> TrialRecord:
            return TrialRecord(
                fraction_index=0, trial_index=trial_index, cell_index=0,
                fraction=None,
                cell="forged-origin-subprefix/minimal", victim=111,
                attackers=(666,), attacker_fraction=0.25,
                victim_fraction=0.5, disconnected_fraction=0.25,
                attack_route_filtered=False,
            )

        spec = small_spec(trials=3, fractions=(None,))
        header = RunHeader(
            spec_hash=spec.spec_hash(), seed=spec.seed,
            engine=spec.engine, spec=spec.to_json_dict(),
        )
        for fail_at in (1, 2, 4):
            install(FaultPlan(rules=(
                FaultRule(site="results.sink.write", action="error",
                          at=(fail_at,)),
            )))
            path = tmp_path / f"fail{fail_at}.jsonl"
            sink = JsonlSink(path)
            sink.begin(header)
            written = 0
            try:
                for trial in range(6):
                    sink.write(sample_record(trial))
                    written += 1
            except SinkWriteError:
                pass
            sink.close()
            uninstall()
            assert written == fail_at - 1
            got_header, records = read_run(path)
            assert got_header.spec_hash == header.spec_hash
            assert len(records) == written


# ----------------------------------------------------------------------
# The delay action: deterministic latency jitter
# ----------------------------------------------------------------------


class TestDelayFaults:
    def test_delay_rule_requires_positive_base(self):
        with pytest.raises(ReproError, match="positive"):
            FaultRule(site="serve.http.request", action="delay")
        FaultRule(site="serve.http.request", action="delay",
                  delay=0.01)  # fine

    def test_delay_for_is_deterministic_jitter(self):
        rule = FaultRule(site="serve.http.request", action="delay",
                         delay=0.01)
        plan = FaultPlan(rules=(rule,), seed=5)
        delays = [
            plan.delay_for(rule, "serve.http.request", hit)
            for hit in range(8)
        ]
        again = [
            plan.delay_for(rule, "serve.http.request", hit)
            for hit in range(8)
        ]
        assert delays == again
        # Jitter scales the base into [0.5, 1.5) and varies per hit
        # (a constant would be stall, not jitter).
        assert all(0.005 <= value < 0.015 for value in delays)
        assert len(set(delays)) > 1
        other = FaultPlan(rules=(rule,), seed=6)
        assert delays != [
            other.delay_for(rule, "serve.http.request", hit)
            for hit in range(8)
        ]

    def test_stall_stays_verbatim(self):
        rule = FaultRule(site="serve.http.request", action="stall",
                         delay=0.02)
        plan = FaultPlan(rules=(rule,), seed=5)
        assert plan.delay_for(rule, "serve.http.request", 3) == 0.02

    def test_fire_sleeps_the_jittered_delay_then_continues(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            install(FaultPlan(rules=(
                FaultRule(site="results.sink.write", action="delay",
                          delay=0.001, at=(1, 2, 3)),
            ), seed=1))
            for _ in range(3):
                fire("results.sink.write")  # delayed, never raises
        assert registry.snapshot()["faults.injected"] == 3

    def test_generated_serve_plans_include_delay(self):
        actions = {
            rule.action
            for seed in range(12)
            for rule in FaultPlan.generate(
                seed, rules=6, profile="serve"
            ).rules
        }
        assert "delay" in actions

    def test_chaos_emit_plan_surfaces_delay_rules(self, capsys):
        from repro.cli import main

        for seed in range(12):
            assert main([
                "chaos", "--drill", "serve", "--seed", str(seed),
                "--emit-plan",
            ]) == 0
        emitted = capsys.readouterr().out
        assert '"action": "delay"' in emitted or '"delay"' in emitted
        plans = [
            FaultPlan.from_json(line)
            for line in emitted.splitlines() if line.strip()
        ]
        assert any(
            rule.action == "delay"
            for plan in plans for rule in plan.rules
        )


# ----------------------------------------------------------------------
# Client and transport fault sites (RTR client, HTTP shard transport)
# ----------------------------------------------------------------------


class TestClientAndTransportSites:
    def test_rtr_client_sites_registered(self):
        assert "rtr.client.send" in SITES
        assert "rtr.client.recv" in SITES
        assert "jobs.enqueue" in SITES
        assert "jobs.execute" in SITES

    def test_rtr_client_send_fault_injected(self):
        from repro.rtr import RtrCacheServer, RtrClient

        with RtrCacheServer([]) as server:
            install(FaultPlan(rules=(
                FaultRule(site="rtr.client.send", action="reset",
                          at=(1,)),
            )))
            with pytest.raises(ConnectionResetError, match="injected"):
                with RtrClient(server.host, server.port) as client:
                    client.sync()
            uninstall()
            with RtrClient(server.host, server.port) as client:
                client.sync()  # healthy again without the plan

    def test_rtr_client_recv_fault_injected(self):
        from repro.rtr import RtrCacheServer, RtrClient

        with RtrCacheServer([]) as server:
            install(FaultPlan(rules=(
                FaultRule(site="rtr.client.recv", action="error",
                          error="io", at=(1,)),
            )))
            with pytest.raises(OSError, match="injected"):
                with RtrClient(server.host, server.port) as client:
                    client.sync()

    def test_transport_retries_transient_request_faults(
        self, topology, tmp_path
    ):
        """A fault on the first HTTP round trip is absorbed by the
        transport's RetryPolicy pacing: the run completes and stays
        byte-identical to a fault-free serial recording."""
        from repro.serve import (
            HttpShardTransport,
            ThreadedShardWorkerServer,
        )

        spec = small_spec(trials=4, fractions=(None,), seed=6)
        _, serial_bytes = run_recorded(
            topology, spec, tmp_path / "serial.jsonl",
            executor="serial")
        with ThreadedShardWorkerServer(topology) as worker:
            transport = HttpShardTransport(
                [f"127.0.0.1:{worker.port}"],
                retry=RetryPolicy(retries=2, base_delay=0.01,
                                  jitter=0.5),
            )
            install(FaultPlan(rules=(
                FaultRule(site="serve.shards.request", action="error",
                          error="io", at=(1, 4)),
                FaultRule(site="serve.shards.request", action="reset",
                          at=(2,)),
            )))
            _, faulted_bytes = run_recorded(
                topology, spec, tmp_path / "faulted.jsonl",
                executor="sharded", shards=2,
                shard_transport=transport)
        assert faulted_bytes == serial_bytes

    def test_transport_gives_up_when_policy_exhausted(self, topology):
        from repro.serve import HttpShardTransport

        transport = HttpShardTransport(
            ["127.0.0.1:9"],
            retry=RetryPolicy(retries=1, base_delay=0.0),
            request_timeout=0.5,
        )
        install(FaultPlan(rules=(
            FaultRule(site="serve.shards.request", action="error",
                      error="io"),
        )))
        with pytest.raises(ReproError, match="injected|worker"):
            transport._request_raw("GET", "http://127.0.0.1:9/status")
