"""Shared fixtures: a small synthetic Internet, a topology, an RPKI tree.

Session scope keeps the expensive generation (snapshot, key material)
to one run per test session; tests must treat these as read-only.
"""

from __future__ import annotations

import random

import pytest

from repro.bgp.topology import AsTopology
from repro.data.asgraph import TopologyProfile, generate_topology
from repro.data.internet import GeneratorConfig, InternetSnapshot, generate_snapshot
from repro.netbase import Prefix


@pytest.fixture(scope="session")
def small_snapshot() -> InternetSnapshot:
    """A 2%-scale Internet: ~15k BGP pairs, ~900 VRPs."""
    return generate_snapshot(GeneratorConfig(scale=0.02, seed=20170601))


@pytest.fixture(scope="session")
def tiny_snapshot() -> InternetSnapshot:
    """A 0.5%-scale Internet for the heavier per-test analyses."""
    return generate_snapshot(GeneratorConfig(scale=0.005, seed=7))


@pytest.fixture(scope="session")
def small_topology() -> AsTopology:
    """A 400-AS synthetic topology."""
    return generate_topology(
        TopologyProfile(ases=400, tier1=4, transit_fraction=0.15),
        random.Random(11),
    )


@pytest.fixture()
def example_prefix() -> Prefix:
    """The paper's running example prefix (BU's /16)."""
    return Prefix.parse("168.122.0.0/16")


@pytest.fixture(scope="session")
def chain_topology() -> AsTopology:
    """The small hand-built topology used in deterministic attack tests.

    ::

             1 ===== 2          (tier-1 peers)
            / \\       \\
          10   20      30       (transit)
          |     |      |
         111   666     40       (stubs; 111 victim, 666 attacker)
    """
    topology = AsTopology()
    topology.add_peering(1, 2)
    for customer, provider in [
        (10, 1), (20, 1), (30, 2), (111, 10), (666, 20), (40, 30),
    ]:
        topology.add_customer_provider(customer, provider)
    return topology
