"""Tests for the analysis layer: Table 1, Figure 3, §6, overhead."""

from __future__ import annotations

import pytest

from repro.analysis import (
    PAPER_TABLE1,
    compute_figure3a,
    compute_figure3b,
    compute_table1,
    measure_compression_overhead,
    measure_section6,
    render_panel,
)
from repro.analysis.table1 import (
    FULL_LOWER_BOUND,
    FULL_MINIMAL,
    FULL_MINIMAL_COMPRESSED,
    TODAY,
    TODAY_COMPRESSED,
    TODAY_MINIMAL,
    TODAY_MINIMAL_COMPRESSED,
)
from repro.data import GeneratorConfig, SeriesConfig, generate_weekly_series
from repro.netbase import Prefix
from repro.rpki import Vrp


def p(text: str) -> Prefix:
    return Prefix.parse(text)


@pytest.fixture(scope="module")
def table1(tiny_snapshot_module):
    snapshot = tiny_snapshot_module
    return compute_table1(snapshot.vrps, snapshot.announced)


@pytest.fixture(scope="module")
def tiny_snapshot_module():
    from repro.data import generate_snapshot

    return generate_snapshot(GeneratorConfig(scale=0.005, seed=7))


class TestTable1:
    def test_has_seven_rows_in_paper_order(self, table1):
        assert len(table1.rows) == 7
        assert [row.scenario for row in table1.rows] == list(PAPER_TABLE1)

    def test_security_flags_match_paper(self, table1):
        expected = {
            TODAY: False,
            TODAY_COMPRESSED: False,
            TODAY_MINIMAL: True,
            TODAY_MINIMAL_COMPRESSED: True,
            FULL_MINIMAL: True,
            FULL_MINIMAL_COMPRESSED: True,
            FULL_LOWER_BOUND: False,
        }
        for row in table1.rows:
            assert row.secure == expected[row.scenario], row.scenario

    def test_row_orderings_match_paper(self, table1):
        """The qualitative content of Table 1: who is smaller than whom."""
        n = {row.scenario: row.pdus for row in table1.rows}
        assert n[TODAY_COMPRESSED] < n[TODAY]
        assert n[TODAY] < n[TODAY_MINIMAL]
        assert n[TODAY_MINIMAL_COMPRESSED] < n[TODAY_MINIMAL]
        assert n[TODAY_COMPRESSED] < n[TODAY_MINIMAL_COMPRESSED]
        assert n[FULL_MINIMAL_COMPRESSED] < n[FULL_MINIMAL]
        assert n[FULL_LOWER_BOUND] <= n[FULL_MINIMAL_COMPRESSED]
        assert n[TODAY_MINIMAL] < n[FULL_MINIMAL]

    def test_render_contains_all_rows(self, table1):
        text = table1.render()
        for scenario in PAPER_TABLE1:
            assert scenario in text

    def test_by_scenario_lookup(self, table1):
        assert table1.by_scenario(TODAY).scenario == TODAY
        with pytest.raises(KeyError):
            table1.by_scenario("nonsense")


class TestSection6:
    def test_measurements_consistent_with_table1(self, tiny_snapshot_module, table1):
        snapshot = tiny_snapshot_module
        m = measure_section6(snapshot.vrps, snapshot.announced)
        assert m.status_quo_pdus == table1.by_scenario(TODAY).pdus
        assert m.minimal_pdus == table1.by_scenario(TODAY_MINIMAL).pdus
        assert m.full_deployment_pdus == table1.by_scenario(FULL_MINIMAL).pdus
        assert m.full_deployment_bound == table1.by_scenario(FULL_LOWER_BOUND).pdus

    def test_additional_prefixes_arithmetic(self, tiny_snapshot_module):
        snapshot = tiny_snapshot_module
        m = measure_section6(snapshot.vrps, snapshot.announced)
        # minimal = (status-quo pairs that remain) + additional; since
        # some VRP prefixes are unannounced, this is an inequality:
        assert m.minimal_pdus <= m.status_quo_pdus + m.additional_prefixes
        assert m.additional_prefixes > 0

    def test_compression_bound_ordering(self, tiny_snapshot_module):
        snapshot = tiny_snapshot_module
        m = measure_section6(snapshot.vrps, snapshot.announced)
        assert m.achieved_compression_fraction <= m.max_compression_fraction
        assert m.full_deployment_bound <= m.full_deployment_compressed

    def test_summary_lines_cover_all_numbers(self, tiny_snapshot_module):
        snapshot = tiny_snapshot_module
        m = measure_section6(snapshot.vrps, snapshot.announced)
        text = "\n".join(m.summary_lines())
        assert "maxLength" in text and "vulnerable" in text
        assert str(m.full_deployment_bound) in text


@pytest.fixture(scope="module")
def weekly_series():
    return generate_weekly_series(
        SeriesConfig(base=GeneratorConfig(scale=0.004, seed=3))
    )


class TestFigure3:
    def test_series_has_eight_weeks(self, weekly_series):
        assert len(weekly_series) == 8
        assert weekly_series[0].label == "2017-04-13"
        assert weekly_series[-1].label == "2017-06-01"

    def test_panel_a_series_names_and_safety(self, weekly_series):
        panel = compute_figure3a(weekly_series)
        names = {s.name: s.secure for s in panel.series}
        assert names == {
            "Status quo": False,
            "Status quo (compressed)": False,
            "Minimal ROAs, no maxLength": True,
            "Minimal ROAs, with maxLength": True,
        }

    def test_panel_a_orderings_hold_every_week(self, weekly_series):
        panel = compute_figure3a(weekly_series)
        by_name = {s.name: s.values for s in panel.series}
        for week in range(8):
            assert by_name["Status quo (compressed)"][week] < by_name["Status quo"][week]
            assert by_name["Minimal ROAs, with maxLength"][week] < by_name[
                "Minimal ROAs, no maxLength"
            ][week]
            assert by_name["Status quo"][week] < by_name["Minimal ROAs, no maxLength"][week]

    def test_panel_b_orderings_hold_every_week(self, weekly_series):
        panel = compute_figure3b(weekly_series)
        by_name = {s.name: s.values for s in panel.series}
        for week in range(8):
            assert (
                by_name["Lower bound on # PDUs"][week]
                <= by_name["Minimal ROAs, with maxLength"][week]
                < by_name["Minimal ROAs, no maxLength"][week]
            )

    def test_table_grows_over_time(self, weekly_series):
        panel = compute_figure3b(weekly_series)
        plain = dict((s.name, s.values) for s in panel.series)[
            "Minimal ROAs, no maxLength"
        ]
        assert plain[-1] > plain[0] * 0.98  # trend up (noise tolerated)

    def test_render_panel_ascii(self, weekly_series):
        panel = compute_figure3a(weekly_series)
        text = render_panel(panel)
        assert "Status quo" in text
        assert "2017-04-13" in text and "2017-06-01" in text
        # vulnerable series plot lowercase, secure uppercase
        assert " a = Status quo [vulnerable]" in text
        assert " C = Minimal ROAs, no maxLength [secure]" in text


class TestOverhead:
    def test_measures_time_and_memory(self):
        vrps = [Vrp(p(f"10.{i}.0.0/16"), 16, i + 1) for i in range(200)]
        measurement = measure_compression_overhead("test", vrps)
        assert measurement.input_tuples == 200
        assert measurement.output_tuples == 200
        assert measurement.wall_seconds > 0
        assert measurement.peak_memory_bytes > 0
        assert "test:" in str(measurement)

    def test_memory_tracing_optional(self):
        vrps = [Vrp(p("10.0.0.0/16"), 16, 1)]
        measurement = measure_compression_overhead("t", vrps, trace_memory=False)
        assert measurement.peak_memory_bytes == 0


class TestTimeline:
    def test_timeline_covers_every_week(self, weekly_series):
        from repro.analysis import compute_timeline

        timeline = compute_timeline(weekly_series)
        assert len(timeline.points) == 8
        assert timeline.points[0].label == "2017-04-13"
        assert timeline.points[-1].label == "2017-06-01"

    def test_fractions_stay_in_calibrated_bands(self, weekly_series):
        """Per-week samples are tiny at test scale, so the §6 bands are
        checked on the aggregate across the whole series."""
        from repro.analysis import compute_timeline

        timeline = compute_timeline(weekly_series)
        total = sum(point.total_vrps for point in timeline.points)
        maxlength = sum(point.maxlength_vrps for point in timeline.points)
        vulnerable = sum(point.vulnerable_vrps for point in timeline.points)
        assert 0.06 <= maxlength / total <= 0.22
        assert vulnerable / maxlength >= 0.6

    def test_render_has_one_row_per_week(self, weekly_series):
        from repro.analysis import compute_timeline

        text = compute_timeline(weekly_series).render()
        assert text.count("2017-") == 8
