"""Tests for Algorithm 1 (compress_roas) and the optimal extension.

The two load-bearing invariants, proven here property-style:

* **Losslessness**: the authorized set of (prefix, origin) pairs is
  identical before and after compression (§7: the compressed ROA "is
  still minimal, because it covers exactly the same set of prefixes").
* **No inflation**: output never has more tuples than input.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CompressionStats,
    build_tries,
    compress_trie,
    compress_vrps,
    compress_vrps_optimal,
)
from repro.netbase import AF_INET, Prefix, PrefixTrie
from repro.netbase.errors import PrefixLengthError
from repro.rpki import Vrp


def p(text: str) -> Prefix:
    return Prefix.parse(text)


def authorized_pairs(vrps) -> set[tuple[Prefix, int]]:
    """Brute-force expansion of everything a VRP set authorizes."""
    pairs = set()
    for vrp in vrps:
        for length in range(vrp.prefix.length, vrp.max_length + 1):
            for sub in vrp.prefix.subprefixes(length):
                pairs.add((sub, vrp.asn))
    return pairs


class TestFigure2:
    """The paper's worked example, byte for byte."""

    INPUT = [
        Vrp(p("87.254.32.0/19"), 19, 31283),
        Vrp(p("87.254.32.0/20"), 20, 31283),
        Vrp(p("87.254.48.0/20"), 20, 31283),
        Vrp(p("87.254.32.0/21"), 21, 31283),
    ]

    def test_compresses_four_pdus_to_two(self):
        output = compress_vrps(self.INPUT)
        assert output == [
            Vrp(p("87.254.32.0/19"), 20, 31283),
            Vrp(p("87.254.32.0/21"), 21, 31283),
        ]

    def test_does_not_overcompress_to_19_21(self):
        """§7: (87.254.32.0/19-21) would authorize 87.254.40.0/21 —
        vulnerable — and must NOT be produced."""
        output = compress_vrps(self.INPUT)
        bad = Vrp(p("87.254.32.0/19"), 21, 31283)
        assert bad not in output
        assert (p("87.254.40.0/21"), 31283) not in authorized_pairs(output)

    def test_lossless_on_example(self):
        assert authorized_pairs(compress_vrps(self.INPUT)) == authorized_pairs(
            self.INPUT
        )


class TestAlgorithmBehaviour:
    def test_empty_input(self):
        assert compress_vrps([]) == []

    def test_single_tuple_unchanged(self):
        vrps = [Vrp(p("10.0.0.0/16"), 24, 1)]
        assert compress_vrps(vrps) == vrps

    def test_siblings_without_parent_do_not_merge(self):
        """Merging orphan siblings would authorize the unannounced
        parent — the forged-origin surface the paper avoids."""
        vrps = [Vrp(p("10.0.0.0/24"), 24, 1), Vrp(p("10.0.1.0/24"), 24, 1)]
        assert compress_vrps(vrps) == vrps

    def test_full_pyramid_cascades_to_one_tuple(self):
        base = p("10.0.0.0/16")
        vrps = [Vrp(base, 16, 7)]
        vrps += [Vrp(c, 17, 7) for c in base.subprefixes(17)]
        vrps += [Vrp(c, 18, 7) for c in base.subprefixes(18)]
        assert compress_vrps(vrps) == [Vrp(base, 18, 7)]

    def test_different_asns_never_merge(self):
        vrps = [
            Vrp(p("10.0.0.0/16"), 16, 1),
            Vrp(p("10.0.0.0/17"), 17, 2),
            Vrp(p("10.0.128.0/17"), 17, 2),
        ]
        assert compress_vrps(vrps) == sorted(vrps)

    def test_families_kept_apart(self):
        vrps = [
            Vrp(p("10.0.0.0/16"), 16, 1),
            Vrp(p("2a00::/16"), 16, 1),
        ]
        assert compress_vrps(vrps) == sorted(vrps)

    def test_duplicate_tuples_collapse_to_max(self):
        vrps = [Vrp(p("10.0.0.0/16"), 16, 1), Vrp(p("10.0.0.0/16"), 24, 1)]
        assert compress_vrps(vrps) == [Vrp(p("10.0.0.0/16"), 24, 1)]

    def test_idempotent(self):
        vrps = TestFigure2.INPUT + [Vrp(p("10.0.0.0/16"), 18, 5)]
        once = compress_vrps(vrps)
        assert compress_vrps(once) == once

    def test_uneven_children_keep_deeper_one(self):
        # parent /16, children /17-17 and /17-20: merge to /16-17 but
        # the right child still authorizes /18../20 -> must survive.
        vrps = [
            Vrp(p("10.0.0.0/16"), 16, 1),
            Vrp(p("10.0.0.0/17"), 17, 1),
            Vrp(p("10.0.128.0/17"), 20, 1),
        ]
        output = compress_vrps(vrps)
        assert output == [
            Vrp(p("10.0.0.0/16"), 17, 1),
            Vrp(p("10.0.128.0/17"), 20, 1),
        ]
        assert authorized_pairs(output) == authorized_pairs(vrps)

    def test_build_tries_groups_by_asn_and_family(self):
        vrps = [
            Vrp(p("10.0.0.0/16"), 16, 1),
            Vrp(p("10.1.0.0/16"), 16, 1),
            Vrp(p("10.0.0.0/16"), 16, 2),
            Vrp(p("2a00::/16"), 16, 1),
        ]
        tries = build_tries(vrps)
        assert set(tries) == {(1, 4), (2, 4), (1, 6)}
        assert len(tries[(1, 4)]) == 2

    def test_compress_trie_in_place(self):
        trie = PrefixTrie[int](AF_INET)
        trie.insert(p("10.0.0.0/16"), 16)
        trie.insert(p("10.0.0.0/17"), 17)
        trie.insert(p("10.0.128.0/17"), 17)
        compress_trie(trie)
        assert dict(trie.items()) == {p("10.0.0.0/16"): 17}


class TestCompressionStats:
    def test_ratio(self):
        stats = CompressionStats(39949, 33615)
        assert stats.saved == 6334
        assert stats.ratio == pytest.approx(6334 / 39949)
        assert "15.86" in str(stats)  # the paper rounds this to 15.90%

    def test_zero_input(self):
        assert CompressionStats(0, 0).ratio == 0.0


# Strategy: a bag of VRPs confined to one /24 (so brute-force
# expansion stays tiny) with maxLength spreads up to 4, two ASNs.
def _small_vrps():
    def build(entries):
        vrps = []
        base = p("10.20.30.0/24")
        for offset, length, spread, asn in entries:
            length = 24 + length % 9
            sub_offset = offset % (1 << (length - 24))
            prefix = Prefix(
                AF_INET, base.value + (sub_offset << (32 - length)), length
            )
            vrps.append(Vrp(prefix, min(32, length + spread), asn))
        return vrps

    return st.builds(
        build,
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=255),
                st.integers(min_value=0, max_value=8),
                st.integers(min_value=0, max_value=4),
                st.sampled_from([1, 2]),
            ),
            min_size=1,
            max_size=14,
        ),
    )


class TestProperties:
    @settings(max_examples=120, deadline=None)
    @given(_small_vrps())
    def test_compression_is_lossless(self, vrps):
        output = compress_vrps(vrps)
        assert authorized_pairs(output) == authorized_pairs(vrps)

    @settings(max_examples=120, deadline=None)
    @given(_small_vrps())
    def test_compression_never_inflates(self, vrps):
        assert len(compress_vrps(vrps)) <= len(set(vrps))

    @settings(max_examples=120, deadline=None)
    @given(_small_vrps())
    def test_compression_idempotent(self, vrps):
        once = compress_vrps(vrps)
        assert compress_vrps(once) == once

    @settings(max_examples=80, deadline=None)
    @given(_small_vrps())
    def test_optimal_is_lossless_and_at_most_algorithm1(self, vrps):
        algorithm1 = compress_vrps(vrps)
        optimal = compress_vrps_optimal(vrps)
        assert authorized_pairs(optimal) == authorized_pairs(vrps)
        assert len(optimal) <= len(algorithm1)

    @settings(max_examples=80, deadline=None)
    @given(_small_vrps())
    def test_optimal_idempotent_fixpoint(self, vrps):
        optimal = compress_vrps_optimal(vrps)
        assert compress_vrps_optimal(optimal) == optimal


class TestOptimalGuards:
    def test_spread_limit_enforced(self):
        with pytest.raises(PrefixLengthError):
            compress_vrps_optimal([Vrp(p("10.0.0.0/8"), 32, 1)])

    def test_spread_limit_configurable(self):
        vrps = [Vrp(p("10.0.0.0/24"), 32, 1)]
        with pytest.raises(PrefixLengthError):
            compress_vrps_optimal(vrps, max_spread=4)
        assert compress_vrps_optimal(vrps, max_spread=8) == vrps

    def test_optimal_strictly_better_on_known_case(self):
        # /24-26 next to a /25-28: Algorithm 1 cannot see that
        # re-emitting the /25 pyramid saves the four /27 pyramids.
        vrps = [
            Vrp(p("10.0.0.0/24"), 26, 1),
            Vrp(p("10.0.0.0/25"), 28, 1),
        ]
        algorithm1 = compress_vrps(vrps)
        optimal = compress_vrps_optimal(vrps)
        assert len(optimal) <= len(algorithm1) <= len(vrps)
        assert authorized_pairs(optimal) == authorized_pairs(vrps)
