"""Tests for the repro-roa command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.data import read_vrp_csv, write_origin_pairs, write_vrp_csv
from repro.netbase import Prefix
from repro.rpki import Vrp


def p(text: str) -> Prefix:
    return Prefix.parse(text)


@pytest.fixture()
def dataset(tmp_path):
    vrps = [
        Vrp(p("10.0.0.0/16"), 24, 1),
        Vrp(p("10.1.0.0/16"), 16, 1),
        Vrp(p("10.1.0.0/17"), 17, 1),
        Vrp(p("10.1.128.0/17"), 17, 1),
    ]
    announced = [
        (p("10.0.0.0/16"), 1),
        (p("10.0.5.0/24"), 1),
        (p("10.1.0.0/16"), 1),
    ]
    vrp_path = tmp_path / "vrps.csv"
    rib_path = tmp_path / "rib.txt"
    write_vrp_csv(vrps, vrp_path)
    write_origin_pairs(announced, rib_path)
    return vrp_path, rib_path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for command in ["compress", "minimal", "analyze", "generate",
                        "table1", "figure3", "rtr-serve", "serve"]:
            assert parser.parse_args(
                [command] + {
                    "compress": ["x.csv"],
                    "minimal": ["x.csv", "y.txt"],
                    "analyze": ["x.csv", "y.txt"],
                    "generate": ["--out-dir", "/tmp/x"],
                    "table1": [],
                    "figure3": [],
                    "rtr-serve": ["x.csv"],
                    "serve": ["x.csv"],
                }[command]
            ).command == command

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "x.csv"])
        assert args.rtr_port == 8282
        assert args.http_port == 8080
        assert not args.compress

    def test_experiment_defaults(self):
        args = build_parser().parse_args(["experiment"])
        assert args.command == "experiment"
        # None means "the spec decides" (serial unless a --spec file
        # names another executor).
        assert args.executor is None
        assert args.fractions == "all"
        assert args.trials == 20
        assert args.shards is None
        assert args.shard_hosts is None
        assert args.shard_retries == 2

    def test_shard_worker_parses(self):
        args = build_parser().parse_args([
            "shard-worker", "--spec", "spec.json", "--shard", "1",
            "--shards", "4", "--out", "shard1.jsonl",
        ])
        assert args.command == "shard-worker"
        assert (args.shard, args.shards) == (1, 4)
        assert not args.listen
        listen = build_parser().parse_args(["shard-worker", "--listen"])
        assert listen.listen and listen.port == 0


class TestCompressCommand:
    def test_compress_to_file(self, dataset, tmp_path, capsys):
        vrp_path, _ = dataset
        out = tmp_path / "out.csv"
        assert main(["compress", str(vrp_path), "-o", str(out)]) == 0
        compressed = list(read_vrp_csv(out))
        # the /16 + two /17 pyramid merges; the loose /16-24 is untouched
        assert Vrp(p("10.1.0.0/16"), 17, 1) in compressed
        assert len(compressed) == 2
        assert "compress_roas" in capsys.readouterr().err

    def test_compress_to_stdout(self, dataset, capsys):
        vrp_path, _ = dataset
        assert main(["compress", str(vrp_path)]) == 0
        assert "IP Prefix" in capsys.readouterr().out


class TestMinimalCommand:
    def test_minimal_conversion(self, dataset, tmp_path):
        vrp_path, rib_path = dataset
        out = tmp_path / "minimal.csv"
        assert main(["minimal", str(vrp_path), str(rib_path), "-o", str(out)]) == 0
        minimal = list(read_vrp_csv(out))
        assert all(not v.uses_max_length for v in minimal)
        assert Vrp(p("10.0.5.0/24"), 24, 1) in minimal


class TestAnalyzeCommand:
    def test_prints_section6_numbers(self, dataset, capsys):
        vrp_path, rib_path = dataset
        assert main(["analyze", str(vrp_path), str(rib_path)]) == 0
        out = capsys.readouterr().out
        assert "maxLength" in out
        assert "vulnerable" in out


class TestGenerateAndTable1:
    def test_generate_writes_both_files(self, tmp_path, capsys):
        out_dir = tmp_path / "snap"
        assert main(["generate", "--scale", "0.002", "--out-dir", str(out_dir)]) == 0
        assert (out_dir / "vrps.csv").exists()
        assert (out_dir / "rib.txt").exists()

    def test_table1_from_files(self, tmp_path, capsys):
        out_dir = tmp_path / "snap"
        main(["generate", "--scale", "0.002", "--out-dir", str(out_dir)])
        capsys.readouterr()
        assert main([
            "table1",
            "--vrps", str(out_dir / "vrps.csv"),
            "--rib", str(out_dir / "rib.txt"),
        ]) == 0
        out = capsys.readouterr().out
        assert "Today (compressed)" in out
        assert "lower bound" in out

    def test_table1_requires_rib_with_vrps(self, dataset, capsys):
        vrp_path, _ = dataset
        assert main(["table1", "--vrps", str(vrp_path)]) == 2

    def test_table1_synthetic(self, capsys):
        assert main(["table1", "--scale", "0.002"]) == 0
        assert "Full deployment" in capsys.readouterr().out


class TestExperimentCommand:
    SMALL = ["experiment", "--ases", "80", "--trials", "2",
             "--topology-seed", "4"]

    def test_grid_from_flags(self, capsys):
        assert main(self.SMALL + [
            "--kinds", "forged-origin-subprefix",
            "--policies", "minimal,maxlength-loose",
            "--fractions", "0,1",
        ]) == 0
        captured = capsys.readouterr()
        assert "forged-origin-subprefix/minimal" in captured.out
        assert "bootstrap CI" in captured.out
        assert "2 cells" in captured.err

    def test_json_output(self, capsys):
        import json

        assert main(self.SMALL + [
            "--kinds", "subprefix-hijack", "--policies", "none", "--json",
        ]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["trials_per_cell"] == 2
        assert data["cells"][0]["cell"] == "subprefix-hijack/none"
        assert data["cells"][0]["mean"] == 1.0

    def test_emit_spec_round_trips(self, tmp_path, capsys):
        assert main(self.SMALL + ["--emit-spec"]) == 0
        spec_text = capsys.readouterr().out
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(spec_text, encoding="utf-8")
        assert main(self.SMALL + ["--spec", str(spec_path)]) == 0
        assert "forged-origin/minimal" in capsys.readouterr().out

    def test_stop_flags_imply_ci_stopping(self, capsys):
        import json

        assert main(self.SMALL + [
            "--stop-ci-width", "0.1", "--emit-spec",
        ]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["stopping"] == "ci"
        assert data["stop_ci_width"] == 0.1
        # An explicit --stopping none wins over the implication.
        assert main(self.SMALL + [
            "--stop-ci-width", "0.1", "--stopping", "none", "--emit-spec",
        ]) == 0
        assert json.loads(capsys.readouterr().out)["stopping"] == "none"

    def test_bad_policy_rejected(self, capsys):
        assert main(self.SMALL + ["--policies", "maximal"]) == 2
        assert "bad experiment spec" in capsys.readouterr().err

    def test_bad_kind_rejected(self, capsys):
        assert main(self.SMALL + ["--kinds", "route-leak"]) == 2
        assert "bad experiment spec" in capsys.readouterr().err

    def test_bad_fraction_rejected(self, capsys):
        assert main(self.SMALL + ["--fractions", "0,abc"]) == 2
        assert "bad experiment spec" in capsys.readouterr().err

    def test_missing_spec_file_rejected(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["experiment", "--spec", str(missing)]) == 2
        assert "bad experiment spec" in capsys.readouterr().err
