"""Tests for the pure-Python RSA implementation."""

from __future__ import annotations

import hashlib
import random

import pytest

from repro.crypto import RsaPrivateKey, RsaPublicKey, SignatureError, generate_keypair
from repro.crypto.rsa import _emsa_pkcs1_v15, _is_probable_prime


@pytest.fixture(scope="module")
def key() -> RsaPrivateKey:
    return generate_keypair(1024, random.Random(1234))


class TestKeyGeneration:
    def test_deterministic_with_seed(self):
        a = generate_keypair(512, random.Random(99))
        b = generate_keypair(512, random.Random(99))
        assert a.modulus == b.modulus and a.private_exponent == b.private_exponent

    def test_different_seeds_differ(self):
        a = generate_keypair(512, random.Random(1))
        b = generate_keypair(512, random.Random(2))
        assert a.modulus != b.modulus

    def test_modulus_has_requested_bits(self, key):
        assert key.modulus.bit_length() == 1024

    def test_public_exponent_is_f4(self, key):
        assert key.public_exponent == 65537

    def test_rejects_tiny_keys(self):
        with pytest.raises(SignatureError):
            generate_keypair(256)

    def test_ed_inverse_mod_phi_sanity(self, key):
        # signing then verifying a raw block exercises e*d = 1 (mod phi)
        message = 0x1234567890ABCDEF
        cycled = pow(pow(message, key.private_exponent, key.modulus),
                     key.public_exponent, key.modulus)
        assert cycled == message


class TestSignVerify:
    def test_round_trip(self, key):
        signature = key.sign(b"hello world")
        assert key.public.verify(b"hello world", signature)

    def test_signature_length_is_modulus_length(self, key):
        assert len(key.sign(b"x")) == key.byte_length == 128

    def test_rejects_tampered_message(self, key):
        signature = key.sign(b"hello world")
        assert not key.public.verify(b"hello worle", signature)

    def test_rejects_tampered_signature(self, key):
        signature = bytearray(key.sign(b"hello"))
        signature[-1] ^= 1
        assert not key.public.verify(b"hello", bytes(signature))

    def test_rejects_wrong_key(self, key):
        other = generate_keypair(1024, random.Random(5))
        signature = key.sign(b"hello")
        assert not other.public.verify(b"hello", signature)

    def test_rejects_wrong_length_signature(self, key):
        assert not key.public.verify(b"hello", b"\x00" * 64)

    def test_rejects_signature_ge_modulus(self, key):
        too_big = (key.modulus + 1).to_bytes(key.byte_length, "big", signed=False) \
            if key.modulus + 1 < (1 << (8 * key.byte_length)) else b"\xff" * key.byte_length
        assert not key.public.verify(b"hello", too_big)

    def test_empty_message(self, key):
        signature = key.sign(b"")
        assert key.public.verify(b"", signature)

    def test_deterministic_signatures(self, key):
        assert key.sign(b"abc") == key.sign(b"abc")


class TestEncoding:
    def test_emsa_structure(self):
        encoded = _emsa_pkcs1_v15(b"abc", 128)
        assert encoded[:2] == b"\x00\x01"
        assert b"\x00" in encoded[2:]
        digest = hashlib.sha256(b"abc").digest()
        assert encoded.endswith(digest)
        assert len(encoded) == 128

    def test_emsa_rejects_short_target(self):
        with pytest.raises(SignatureError):
            _emsa_pkcs1_v15(b"abc", 32)

    def test_fingerprint_stable_and_distinct(self, key):
        assert key.public.fingerprint() == key.public.fingerprint()
        other = generate_keypair(512, random.Random(77))
        assert key.public.fingerprint() != other.public.fingerprint()


class TestMillerRabin:
    def test_small_primes(self):
        rng = random.Random(0)
        for prime in [2, 3, 5, 7, 11, 101, 7919]:
            assert _is_probable_prime(prime, rng)

    def test_small_composites(self):
        rng = random.Random(0)
        for composite in [1, 4, 9, 561, 1105, 7917, 2**16]:
            assert not _is_probable_prime(composite, rng)

    def test_carmichael_numbers_rejected(self):
        rng = random.Random(0)
        for carmichael in [561, 41041, 825265]:
            assert not _is_probable_prime(carmichael, rng)

    def test_known_large_prime(self):
        rng = random.Random(0)
        assert _is_probable_prime(2**127 - 1, rng)  # Mersenne prime
        assert not _is_probable_prime(2**128 - 1, rng)
