"""Tests for the trial-throughput overhaul.

Three pillars:

* the buffer-backed :class:`CompiledTopology` — flat-blob pickling,
  zero-copy attach, object-topology reconstruction;
* the :class:`PropagationWorkspace` path — batched/workspace-reusing
  evaluation is byte-identical (records *and* RNG consumption) to
  per-trial allocation, including on the PR 2/PR 3 golden specs;
* the executor overhaul — shared-memory segments are unlinked on pool
  shutdown and on worker exceptions, trials stream lazily, and
  CI-width early stopping is deterministic across executors while
  ``stopping="none"`` stays byte-identical to the pre-stopping engine.
"""

from __future__ import annotations

import dataclasses
import pickle
import random
import types

import pytest

from repro.bgp import (
    AsTopology,
    AttackCase,
    CompiledTopology,
    PropagationWorkspace,
    Seed,
    VrpIndex,
    evaluate_attack_seeds_array,
    evaluate_attack_seeds_array_batch,
)
from repro.data.asgraph import TopologyProfile, generate_topology
from repro.exper import (
    ExperimentRunner,
    ExperimentSpec,
    FixedPairSampler,
    MaxLengthLooseRoa,
    MinimalRoa,
    ScenarioCell,
    evaluate_trial,
    evaluate_trials,
    iter_trials,
    materialize_trials,
)
from repro.netbase import Prefix
from repro.netbase.errors import ReproError
from repro.rpki import Vrp

PFX = Prefix.parse("168.122.0.0/16")
SUB = Prefix.parse("168.122.0.0/24")


@pytest.fixture(scope="module")
def topology():
    return generate_topology(TopologyProfile(ases=200), random.Random(8))


def stopping_spec(**kwargs) -> ExperimentSpec:
    defaults = dict(
        cells=(
            ScenarioCell("forged-origin-subprefix", MinimalRoa()),
            ScenarioCell("forged-origin-subprefix", MaxLengthLooseRoa()),
        ),
        trials=40,
        seed=5,
        engine="array",
        stopping="ci",
        stop_ci_width=0.4,
        stop_min_trials=6,
        stop_check_every=3,
    )
    defaults.update(kwargs)
    return ExperimentSpec(**defaults)


class TestCompiledBuffers:
    def test_blob_round_trip(self, topology):
        compiled = topology.compiled()
        attached = CompiledTopology.from_blob(compiled.to_blob())
        assert list(attached.asns) == list(compiled.asns)
        assert attached.provider_rows == compiled.provider_rows
        assert attached.customer_rows == compiled.customer_rows
        assert attached.peer_rows == compiled.peer_rows
        assert attached.index_of == compiled.index_of

    def test_blob_attach_is_zero_copy(self, topology):
        import sys

        if sys.byteorder != "little":
            pytest.skip("big-endian hosts attach via byteswapped copy")
        blob = topology.compiled().to_blob()
        attached = CompiledTopology.from_blob(blob)
        # The buffers are views into the blob, not copies.
        assert isinstance(attached.asns, memoryview)
        assert attached.asns.obj is blob

    def test_pickle_is_one_flat_blob(self, topology):
        compiled = topology.compiled()
        payload = pickle.dumps(compiled)
        clone = pickle.loads(payload)
        assert clone.peer_rows == compiled.peer_rows
        # The pickle is blob-sized — a header's worth above the raw
        # buffers, not an object graph.
        assert len(payload) < len(compiled.to_blob()) + 256

    def test_blob_rejects_garbage(self):
        with pytest.raises(ReproError):
            CompiledTopology.from_blob(b"short")
        with pytest.raises(ReproError):
            CompiledTopology.from_blob(b"NOTMAGIC" + b"\x00" * 80)

    def test_to_topology_reconstructs_relationships(self, topology):
        rebuilt = topology.compiled().to_topology()
        assert rebuilt.ases == topology.ases
        for asn in topology.ases:
            assert rebuilt.providers_of(asn) == topology.providers_of(asn)
            assert rebuilt.customers_of(asn) == topology.customers_of(asn)
            assert rebuilt.peers_of(asn) == topology.peers_of(asn)


class TestWorkspaceEquivalence:
    """Workspace reuse is byte-identical to per-trial allocation."""

    def _scenario_grid(self, topology):
        stubs = sorted(topology.stub_ases())
        victim, attacker, attacker2 = stubs[1], stubs[-2], stubs[5]
        half = frozenset(
            random.Random(3).sample(sorted(topology.ases), 100)
        )
        return victim, [
            (SUB, (Seed.forged_origin(attacker, victim),),
             VrpIndex([Vrp(PFX, 16, victim)]), None),
            (SUB, (Seed.forged_origin(attacker, victim),),
             VrpIndex([Vrp(PFX, 24, victim)]), None),
            (SUB, (Seed.origin(attacker),), None, None),
            (SUB, (Seed.origin(attacker),),
             VrpIndex([Vrp(PFX, 20, victim)]), half),
            (PFX, (Seed.forged_origin(attacker, victim),),
             VrpIndex([Vrp(PFX, 16, victim)]), half),
            (SUB, (Seed.origin(attacker),
                   Seed.forged_origin(attacker2, victim)),
             VrpIndex([Vrp(PFX, 16, victim)]), None),
        ]

    def test_results_and_rng_identical(self, topology):
        victim, cases = self._scenario_grid(topology)
        workspace = PropagationWorkspace(topology)
        # Two passes through the same workspace: the second replays
        # cached profiles, and must still match the fresh path.
        for round_seed in (11, 12):
            rng_ws = random.Random(round_seed)
            rng_fresh = random.Random(round_seed)
            for attack_prefix, seeds, vrps, validators in cases:
                with_ws = evaluate_attack_seeds_array(
                    topology, victim, PFX, attack_prefix, seeds,
                    vrp_index=vrps, validating_ases=validators,
                    rng=rng_ws, workspace=workspace,
                )
                fresh = evaluate_attack_seeds_array(
                    topology, victim, PFX, attack_prefix, seeds,
                    vrp_index=vrps, validating_ases=validators,
                    rng=rng_fresh,
                )
                assert with_ws == fresh
                assert rng_ws.getstate() == rng_fresh.getstate()

    def test_batch_entry_point_matches_per_call(self, topology):
        victim, grid = self._scenario_grid(topology)
        cases = [
            AttackCase(victim, PFX, attack_prefix, seeds,
                       vrp_index=vrps, validating_ases=validators)
            for attack_prefix, seeds, vrps, validators in grid
        ]
        batched = evaluate_attack_seeds_array_batch(
            topology, cases, rng=random.Random(7),
        )
        rng = random.Random(7)
        per_call = [
            evaluate_attack_seeds_array(
                topology, case.victim, case.victim_prefix,
                case.attack_prefix, case.attacker_seeds,
                vrp_index=case.vrp_index,
                validating_ases=case.validating_ases, rng=rng,
            )
            for case in cases
        ]
        assert batched == per_call

    @pytest.mark.parametrize("golden", ["hijack", "deployment"])
    def test_golden_specs_byte_identical(self, topology, golden):
        """The PR 2/PR 3 golden specs through the workspace path."""
        from repro.analysis.deployment import deployment_sweep_spec
        from repro.analysis.hijack_eval import hijack_study_spec

        if golden == "hijack":
            spec = hijack_study_spec(samples=5, seed=42, engine="array")
        else:
            spec = dataclasses.replace(
                deployment_sweep_spec(fractions=(0.5,), samples=3, seed=9),
                engine="array",
            )
        trials = materialize_trials(spec, topology)
        per_trial = [
            record
            for trial in trials
            for record in evaluate_trial(topology, spec, trial)
        ]
        workspace_records = list(
            evaluate_trials(topology, spec, trials)
        )
        assert workspace_records == per_trial

    def test_workspace_survives_seed_errors(self, topology):
        workspace = PropagationWorkspace(topology)
        victim = min(topology.stub_ases())
        with pytest.raises(Exception):
            evaluate_attack_seeds_array(
                topology, victim, PFX, SUB, [Seed.origin(10 ** 9)],
                workspace=workspace,
            )
        # The lane was hard-reset: later evaluations still match.
        attacker = max(topology.stub_ases())
        assert evaluate_attack_seeds_array(
            topology, victim, PFX, SUB, [Seed.origin(attacker)],
            workspace=workspace,
        ) == evaluate_attack_seeds_array(
            topology, victim, PFX, SUB, [Seed.origin(attacker)],
        )


class TestLazyTrials:
    def test_iter_trials_is_lazy(self, topology):
        spec = stopping_spec(stopping="none")
        trials = iter_trials(spec, topology)
        assert isinstance(trials, types.GeneratorType)
        head = [next(trials) for _ in range(3)]
        assert head == materialize_trials(spec, topology)[:3]

    def test_runner_streams_on_demand(self, topology, monkeypatch):
        """The serial runner pulls trials as it evaluates them; it
        never materializes the grid up front."""
        import repro.exper.runner as runner_module

        produced: list = []
        real = runner_module.iter_trials

        def spy(spec, topo, **kwargs):
            for trial in real(spec, topo, **kwargs):
                produced.append(trial)
                yield trial

        monkeypatch.setattr(runner_module, "iter_trials", spy)
        spec = stopping_spec(stopping="none", trials=50)
        records = ExperimentRunner(topology, spec).iter_records()
        next(records)
        assert len(produced) <= 2
        records.close()


class TestSharedMemoryLifecycle:
    def _segment_gone(self, name: str) -> bool:
        from multiprocessing import shared_memory

        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            return True
        segment.close()
        return False

    def test_unlinked_on_shutdown(self, topology):
        spec = stopping_spec(stopping="none", trials=4)
        runner = ExperimentRunner(
            topology, spec, executor="process", workers=2, batch_size=2
        )
        result = runner.run(bootstrap_resamples=50)
        serial = ExperimentRunner(topology, spec).run(
            bootstrap_resamples=50
        )
        assert result == serial
        if runner.last_shared_segment is None:
            pytest.skip("shared memory unavailable; blob fallback used")
        assert self._segment_gone(runner.last_shared_segment)

    def test_unlinked_on_worker_exception(self):
        tiny = AsTopology.from_edges([(1, 2, "c2p")])
        spec = ExperimentSpec(
            cells=(ScenarioCell("forged-origin-subprefix", MinimalRoa()),),
            trials=2,
            engine="array",
            sampler=FixedPairSampler(1, (2,)),
        )
        runner = ExperimentRunner(
            tiny, spec, executor="process", workers=2, batch_size=1
        )
        with pytest.raises(ReproError, match="too small"):
            list(runner.iter_records())
        if runner.last_shared_segment is None:
            pytest.skip("shared memory unavailable; blob fallback used")
        assert self._segment_gone(runner.last_shared_segment)

    def test_object_engine_workers_rebuild_topology(self, topology):
        """The object engine runs off the blob too: no AsTopology in
        the worker payload, byte-identical results regardless."""
        spec = stopping_spec(stopping="none", trials=4, engine="object")
        serial = ExperimentRunner(topology, spec).run(
            bootstrap_resamples=50
        )
        parallel = ExperimentRunner(
            topology, spec, executor="process", workers=2
        ).run(bootstrap_resamples=50)
        assert serial == parallel


class TestEarlyStopping:
    def test_stops_below_cap_and_matches_across_executors(self, topology):
        spec = stopping_spec()
        serial = ExperimentRunner(topology, spec).run(
            bootstrap_resamples=100
        )
        parallel = ExperimentRunner(
            topology, spec, executor="process", workers=2, batch_size=3
        ).run(bootstrap_resamples=100)
        assert serial == parallel
        assert serial.trial_counts[0] < spec.trials
        assert serial.trial_counts[0] >= spec.stop_min_trials
        assert all(
            stats.trials == serial.trial_counts[0]
            for stats in serial.stats[0]
        )

    def test_tight_threshold_never_stops(self, topology):
        spec = stopping_spec(
            stop_ci_width=1e-12, trials=10,
            cells=(ScenarioCell("forged-origin", MinimalRoa()),),
        )
        result = ExperimentRunner(topology, spec).run(
            bootstrap_resamples=100
        )
        assert result.trial_counts == (10,)

    def test_stopping_none_matches_pre_stopping_records(self, topology):
        """stopping="none" is byte-identical to evaluating every trial
        directly — the pre-overhaul contract."""
        spec = stopping_spec(stopping="none", trials=6)
        direct = [
            record
            for trial in materialize_trials(spec, topology)
            for record in evaluate_trial(topology, spec, trial)
        ]
        streamed = list(
            ExperimentRunner(topology, spec).iter_records()
        )
        assert streamed == direct

    def test_stream_seeding_unaffected_downstream(self, topology):
        """Under stream seeding, stopping a fraction early must not
        change later fractions' trials (their RNG draws depend on the
        whole prefix of materializations)."""
        spec = stopping_spec(
            seeding="stream", fractions=(0.0, 1.0), trials=20,
            stop_min_trials=4, stop_check_every=2,
        )
        stopped = ExperimentRunner(topology, spec).run(
            bootstrap_resamples=100
        )
        full = ExperimentRunner(
            topology, dataclasses.replace(spec, stopping="none")
        ).run(bootstrap_resamples=100)
        assert stopped.trial_counts[0] < 20
        count = stopped.trial_counts[1]
        for cell_index in range(len(spec.cells)):
            assert (
                stopped.stats[1][cell_index].values
                == full.stats[1][cell_index].values[:count]
            )

    def test_stopped_result_matches_truncated_full_run(self, topology):
        """Early-stopped values are exactly the full run's prefix."""
        spec = stopping_spec()
        stopped = ExperimentRunner(topology, spec).run(
            bootstrap_resamples=100
        )
        full = ExperimentRunner(
            topology, dataclasses.replace(spec, stopping="none")
        ).run(bootstrap_resamples=100)
        count = stopped.trial_counts[0]
        for cell_index in range(len(spec.cells)):
            assert (
                stopped.stats[0][cell_index].values
                == full.stats[0][cell_index].values[:count]
            )

    def test_streaming_aggregation_recovers_counts(self, topology):
        """The documented streaming pattern works under stopping:
        aggregate_records derives per-fraction counts from the record
        stream itself."""
        from repro.exper import aggregate_records

        spec = stopping_spec()
        runner = ExperimentRunner(topology, spec)
        streamed = aggregate_records(
            spec, runner.iter_records(), bootstrap_resamples=100
        )
        direct = ExperimentRunner(topology, spec).run(
            bootstrap_resamples=100
        )
        assert streamed == direct
        assert streamed.trial_counts[0] < spec.trials

    def test_streaming_aggregation_rejects_gaps(self, topology):
        from repro.exper import aggregate_records

        spec = stopping_spec()
        records = list(
            ExperimentRunner(topology, spec).iter_records()
        )
        # Drop one mid-stream trial: the stray later records must trip
        # the gap check rather than silently shortening the prefix.
        broken = [r for r in records if r.trial_index != 2]
        with pytest.raises(ReproError, match="missing"):
            aggregate_records(spec, broken, bootstrap_resamples=50)

    def test_render_mentions_early_stop(self, topology):
        result = ExperimentRunner(topology, stopping_spec()).run(
            bootstrap_resamples=50
        )
        assert "early-stopped" in result.render()

    def test_spec_validation(self):
        with pytest.raises(ReproError, match="unknown stopping"):
            stopping_spec(stopping="when-bored")
        with pytest.raises(ReproError, match="stop_ci_width"):
            stopping_spec(stop_ci_width=0.0)
        with pytest.raises(ReproError, match="stop_min_trials"):
            stopping_spec(stop_min_trials=1)
        with pytest.raises(ReproError, match="stop_check_every"):
            stopping_spec(stop_check_every=0)

    def test_spec_json_round_trip(self):
        spec = stopping_spec(stop_ci_width=1 / 3)
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone == spec
        assert '"stopping": "ci"' in spec.to_json()
        # Pre-stopping spec files parse with stopping off.
        legacy = ExperimentSpec.from_json(
            '{"cells": [{"kind": "forged-origin"}], "trials": 1}'
        )
        assert legacy.stopping == "none"
