"""Tests for ROA payloads and their RFC 6482 DER encoding."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netbase import AF_INET, AF_INET6, Prefix
from repro.netbase.errors import PrefixLengthError, ValidationError
from repro.rpki import Roa, RoaPrefix, Vrp, scan_roa_payloads


def p(text: str) -> Prefix:
    return Prefix.parse(text)


class TestRoaPrefix:
    def test_effective_max_length_defaults_to_length(self):
        entry = RoaPrefix(p("10.0.0.0/16"))
        assert entry.effective_max_length == 16
        assert not entry.uses_max_length

    def test_explicit_maxlength(self):
        entry = RoaPrefix(p("10.0.0.0/16"), 24)
        assert entry.effective_max_length == 24
        assert entry.uses_max_length

    def test_equal_maxlength_is_not_use(self):
        # RFC 6482 allows maxLength == length; semantically a no-op
        assert not RoaPrefix(p("10.0.0.0/16"), 16).uses_max_length

    def test_rejects_bad_maxlength(self):
        with pytest.raises(PrefixLengthError):
            RoaPrefix(p("10.0.0.0/16"), 8)
        with pytest.raises(PrefixLengthError):
            RoaPrefix(p("10.0.0.0/16"), 40)

    def test_str_notation_matches_paper(self):
        assert str(RoaPrefix(p("168.122.0.0/16"), 24)) == "168.122.0.0/16-24"
        assert str(RoaPrefix(p("168.122.0.0/16"))) == "168.122.0.0/16"


class TestRoa:
    def test_paper_example_str(self):
        roa = Roa(111, [RoaPrefix(p("168.122.0.0/16"), 24)])
        assert str(roa) == "ROA:({168.122.0.0/16-24}, AS111)"

    def test_prefix_set_roa(self):
        roa = Roa(111, [p("168.122.0.0/16"), p("168.122.225.0/24")])
        assert len(roa.prefixes) == 2
        assert not roa.uses_max_length

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            Roa(111, [])

    def test_prefixes_sorted_deterministically(self):
        roa = Roa(1, [p("10.1.0.0/16"), p("10.0.0.0/16")])
        assert [str(e) for e in roa.prefixes] == ["10.0.0.0/16", "10.1.0.0/16"]

    def test_authorizes_respects_maxlength(self):
        roa = Roa(111, [RoaPrefix(p("168.122.0.0/16"), 24)])
        assert roa.authorizes(p("168.122.1.0/24"), 111)
        assert not roa.authorizes(p("168.122.1.0/25"), 111)
        assert not roa.authorizes(p("168.122.1.0/24"), 666)

    def test_vrps_extraction(self):
        roa = Roa(
            111,
            [RoaPrefix(p("168.122.0.0/16"), 24), RoaPrefix(p("10.0.0.0/8"))],
        )
        assert roa.vrps() == [
            Vrp(p("10.0.0.0/8"), 8, 111),
            Vrp(p("168.122.0.0/16"), 24, 111),
        ]

    def test_covered_families(self):
        roa = Roa(1, [p("10.0.0.0/8"), p("2001:db8::/32")])
        assert roa.covered_families() == {AF_INET, AF_INET6}


class TestEcontentCodec:
    def test_round_trip_simple(self):
        roa = Roa(111, [RoaPrefix(p("168.122.0.0/16"), 24)])
        assert Roa.from_econtent(roa.to_econtent()) == roa

    def test_round_trip_mixed_families(self):
        roa = Roa(
            64512,
            [
                RoaPrefix(p("87.254.32.0/19"), 21),
                RoaPrefix(p("87.254.32.0/20")),
                RoaPrefix(p("2a00::/12"), 32),
            ],
        )
        assert Roa.from_econtent(roa.to_econtent()) == roa

    def test_maxlength_absent_is_preserved(self):
        # (p, None) and (p, len(p)) are semantically equal but encode
        # differently; the codec must not conflate them.
        with_explicit = Roa(1, [RoaPrefix(p("10.0.0.0/16"), 16)])
        without = Roa(1, [RoaPrefix(p("10.0.0.0/16"))])
        assert with_explicit.to_econtent() != without.to_econtent()
        assert Roa.from_econtent(with_explicit.to_econtent()) == with_explicit
        assert Roa.from_econtent(without.to_econtent()) == without

    def test_v4_block_encodes_before_v6(self):
        roa = Roa(1, [p("2a00::/12"), p("10.0.0.0/8")])
        encoded = roa.to_econtent()
        assert encoded.index(bytes([0x00, 0x01])) < encoded.index(bytes([0x00, 0x02]))

    def test_garbage_rejected(self):
        with pytest.raises(ValidationError):
            Roa.from_econtent(b"\x30\x03\x02\x01\x05")
        with pytest.raises(ValidationError):
            Roa.from_econtent(b"not der at all")

    def test_version_zero_must_be_omitted(self):
        # Manually build an encoding with an explicit version 0 tag.
        from repro.asn1 import ContextTag, Integer, Sequence_, encode

        bogus = encode(Sequence_([ContextTag(0, Integer(0)), Integer(1), Sequence_([])]))
        with pytest.raises(ValidationError):
            Roa.from_econtent(bogus)

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**32 - 1),
                st.integers(min_value=8, max_value=32),
                st.integers(min_value=0, max_value=8),
                st.booleans(),
            ),
            min_size=1,
            max_size=8,
        ),
    )
    def test_econtent_round_trip_random(self, asn, raw_entries):
        entries = []
        for value, length, extra, explicit in raw_entries:
            prefix = Prefix(AF_INET, value, length)
            if explicit:
                entries.append(RoaPrefix(prefix, min(32, length + extra)))
            else:
                entries.append(RoaPrefix(prefix))
        roa = Roa(asn, entries)
        assert Roa.from_econtent(roa.to_econtent()) == roa


class TestScanRoaPayloads:
    def test_deduplicates_identical_tuples(self):
        a = Roa(1, [RoaPrefix(p("10.0.0.0/16"), 24)])
        b = Roa(1, [RoaPrefix(p("10.0.0.0/16"), 24), RoaPrefix(p("10.1.0.0/16"))])
        vrps = scan_roa_payloads([a, b])
        assert vrps == [
            Vrp(p("10.0.0.0/16"), 24, 1),
            Vrp(p("10.1.0.0/16"), 16, 1),
        ]

    def test_same_prefix_different_asn_kept(self):
        a = Roa(1, [p("10.0.0.0/16")])
        b = Roa(2, [p("10.0.0.0/16")])
        assert len(scan_roa_payloads([a, b])) == 2

    def test_sorted_output(self, small_snapshot):
        vrps = scan_roa_payloads(small_snapshot.roas)
        assert vrps == sorted(vrps)
