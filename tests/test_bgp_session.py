"""Live BGP speaker tests over localhost TCP."""

from __future__ import annotations

import pytest

from repro.bgp import Announcement, VrpIndex
from repro.bgp.session import BgpSessionError, BgpSpeaker
from repro.netbase import Prefix
from repro.rpki import Vrp


def p(text: str) -> Prefix:
    return Prefix.parse(text)


@pytest.fixture()
def pair():
    """Two connected speakers: AS 111 (origin) and AS 3356 (transit)."""
    with BgpSpeaker(111) as origin, BgpSpeaker(3356) as transit:
        transit.connect_to("127.0.0.1", origin.port, expected_asn=111)
        origin.wait_for_peer(3356)
        yield origin, transit


class TestSessionSetup:
    def test_open_exchange(self, pair):
        origin, transit = pair
        assert origin.peers() == [3356]
        assert transit.peers() == [111]

    def test_wrong_expected_asn_rejected(self):
        with BgpSpeaker(111) as origin, BgpSpeaker(3356) as transit:
            with pytest.raises(BgpSessionError):
                transit.connect_to("127.0.0.1", origin.port, expected_asn=999)

    def test_wait_for_missing_peer_times_out(self):
        with BgpSpeaker(111) as speaker:
            with pytest.raises(BgpSessionError):
                speaker.wait_for_peer(42, timeout=0.2)


class TestRouteExchange:
    def test_announce_and_learn(self, pair):
        origin, transit = pair
        origin.announce(Announcement(p("168.122.0.0/16"), (111,)))
        route = transit.wait_for_route(p("168.122.0.0/16"))
        assert route.as_path == (111,)
        assert transit.loc_rib.forward(p("168.122.1.1/32")) == route

    def test_withdraw(self, pair):
        origin, transit = pair
        origin.announce(Announcement(p("168.122.0.0/16"), (111,)))
        transit.wait_for_route(p("168.122.0.0/16"))
        origin.withdraw(p("168.122.0.0/16"))
        transit.wait_for_withdrawal(p("168.122.0.0/16"))
        assert transit.loc_rib.forward(p("168.122.1.1/32")) is None

    def test_routes_advertised_to_late_peer(self):
        with BgpSpeaker(111) as origin:
            origin.announce(Announcement(p("168.122.0.0/16"), (111,)))
            with BgpSpeaker(20) as late:
                late.connect_to("127.0.0.1", origin.port)
                late.wait_for_route(p("168.122.0.0/16"))

    def test_loop_prevention(self, pair):
        origin, transit = pair
        # transit replays a route already carrying origin's ASN
        transit.announce(Announcement(p("9.9.0.0/16"), (3356, 111)))
        with pytest.raises(BgpSessionError):
            origin.wait_for_route(p("9.9.0.0/16"), timeout=0.5)

    def test_ipv6_route(self, pair):
        origin, transit = pair
        origin.announce(Announcement(p("2001:db8::/32"), (111,)))
        route = transit.wait_for_route(p("2001:db8::/32"))
        assert route.prefix.family == 6


class TestOriginValidationAtIngress:
    def test_invalid_route_rejected(self):
        """A speaker configured with VRPs drops RPKI-invalid routes —
        the paper's §2 'routers ignore invalid BGP announcements'."""
        index = VrpIndex([Vrp(p("168.122.0.0/16"), 16, 111)])
        with BgpSpeaker(20, vrp_index=index) as validator, BgpSpeaker(666) as attacker:
            attacker.connect_to("127.0.0.1", validator.port)
            validator.wait_for_peer(666)
            attacker.announce(Announcement(p("168.122.0.0/24"), (666,)))
            rejected = validator.wait_for_rejection(p("168.122.0.0/24"))
            assert rejected.origin == 666
            assert validator.loc_rib.route_for_prefix(p("168.122.0.0/24")) is None

    def test_forged_origin_subprefix_passes_nonminimal_roa(self):
        """...but the §4 attack sails through, because it is valid."""
        index = VrpIndex([Vrp(p("168.122.0.0/16"), 24, 111)])
        with BgpSpeaker(20, vrp_index=index) as validator, BgpSpeaker(666) as attacker:
            attacker.connect_to("127.0.0.1", validator.port)
            validator.wait_for_peer(666)
            attacker.announce(Announcement(p("168.122.0.0/24"), (666, 111)))
            route = validator.wait_for_route(p("168.122.0.0/24"))
            assert route.as_path == (666, 111)
            assert not validator.rejected_routes

    def test_notfound_routes_accepted(self):
        index = VrpIndex([Vrp(p("168.122.0.0/16"), 16, 111)])
        with BgpSpeaker(20, vrp_index=index) as validator, BgpSpeaker(5) as peer:
            peer.connect_to("127.0.0.1", validator.port)
            validator.wait_for_peer(5)
            peer.announce(Announcement(p("8.8.8.0/24"), (5,)))
            validator.wait_for_route(p("8.8.8.0/24"))


class TestFullStack:
    def test_rtr_fed_speaker_blocks_hijack(self):
        """RPKI -> RTR -> BGP speaker, no shortcuts: the router learns
        VRPs over the wire and applies them to live UPDATEs."""
        from repro.core import LocalCache
        from repro.rtr import RtrClient

        with LocalCache() as cache:
            cache.refresh_from_vrps([Vrp(p("168.122.0.0/16"), 16, 111)])
            server = cache.serve()
            with RtrClient(server.host, server.port) as rtr:
                rtr.sync()
                index = VrpIndex(rtr.vrps)

        with BgpSpeaker(20, vrp_index=index) as router, BgpSpeaker(666) as attacker:
            attacker.connect_to("127.0.0.1", router.port)
            router.wait_for_peer(666)
            attacker.announce(Announcement(p("168.122.0.0/24"), (666,)))
            router.wait_for_rejection(p("168.122.0.0/24"))
            assert router.loc_rib.route_for_prefix(p("168.122.0.0/24")) is None
