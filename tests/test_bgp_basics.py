"""Tests for announcements, RIBs, and RFC 6811 origin validation."""

from __future__ import annotations

import pytest

from repro.bgp import (
    AdjRibIn,
    Announcement,
    AnnouncementError,
    Rib,
    ValidationState,
    VrpIndex,
    validate_announcement,
)
from repro.netbase import Prefix
from repro.rpki import Vrp


def p(text: str) -> Prefix:
    return Prefix.parse(text)


class TestAnnouncement:
    def test_origin_is_rightmost(self):
        ann = Announcement(p("168.122.0.0/16"), (3356, 111))
        assert ann.origin == 111
        assert ann.path_length == 2

    def test_prepend(self):
        ann = Announcement(p("168.122.0.0/16"), (111,))
        assert ann.prepended_by(3356).as_path == (3356, 111)

    def test_empty_path_rejected(self):
        with pytest.raises(AnnouncementError):
            Announcement(p("10.0.0.0/8"), ())

    def test_loop_detection(self):
        assert Announcement(p("10.0.0.0/8"), (1, 2, 1)).has_loop()
        assert not Announcement(p("10.0.0.0/8"), (1, 1, 2)).has_loop()  # prepending
        assert not Announcement(p("10.0.0.0/8"), (3, 2, 1)).has_loop()

    def test_str_matches_paper_notation(self):
        ann = Announcement(p("168.122.0.0/16"), (3356, 111))
        assert str(ann) == "“168.122.0.0/16: AS 3356, AS 111”"

    def test_origin_pair(self):
        ann = Announcement(p("10.0.0.0/8"), (5, 4))
        assert ann.origin_pair() == (p("10.0.0.0/8"), 4)


class TestRib:
    def test_install_and_exact_lookup(self):
        rib = Rib()
        ann = Announcement(p("10.0.0.0/8"), (1,))
        rib.install(ann)
        assert rib.route_for_prefix(p("10.0.0.0/8")) == ann
        assert p("10.0.0.0/8") in rib
        assert len(rib) == 1

    def test_longest_prefix_match_forwarding(self):
        """§2: the /24 route wins over the /16 for covered addresses."""
        rib = Rib()
        covering = Announcement(p("168.122.0.0/16"), (111,))
        specific = Announcement(p("168.122.0.0/24"), (666,))
        rib.install(covering)
        rib.install(specific)
        assert rib.forward(p("168.122.0.1/32")) == specific
        assert rib.forward(p("168.122.225.1/32")) == covering
        assert rib.forward(p("9.9.9.9/32")) is None

    def test_withdraw(self):
        rib = Rib()
        rib.install(Announcement(p("10.0.0.0/8"), (1,)))
        assert rib.withdraw(p("10.0.0.0/8"))
        assert not rib.withdraw(p("10.0.0.0/8"))
        assert len(rib) == 0

    def test_replace_route(self):
        rib = Rib()
        rib.install(Announcement(p("10.0.0.0/8"), (1,)))
        rib.install(Announcement(p("10.0.0.0/8"), (2, 1)))
        assert rib.route_for_prefix(p("10.0.0.0/8")).as_path == (2, 1)
        assert len(rib) == 1

    def test_origin_pairs_view(self):
        rib = Rib()
        rib.install(Announcement(p("10.0.0.0/8"), (5, 1)))
        rib.install(Announcement(p("2001:db8::/32"), (2,)))
        assert set(rib.origin_pairs()) == {
            (p("10.0.0.0/8"), 1),
            (p("2001:db8::/32"), 2),
        }


class TestAdjRibIn:
    def test_learn_and_candidates(self):
        adj = AdjRibIn()
        a = Announcement(p("10.0.0.0/8"), (5, 1))
        b = Announcement(p("10.0.0.0/8"), (6, 1))
        adj.learn(5, a)
        adj.learn(6, b)
        assert adj.candidates(p("10.0.0.0/8")) == [(5, a), (6, b)]
        assert len(adj) == 2

    def test_forget(self):
        adj = AdjRibIn()
        adj.learn(5, Announcement(p("10.0.0.0/8"), (5, 1)))
        assert adj.forget(5, p("10.0.0.0/8"))
        assert not adj.forget(5, p("10.0.0.0/8"))
        assert adj.candidates(p("10.0.0.0/8")) == []


class TestOriginValidation:
    """The exact RFC 6811 scenarios from §2 and §4 of the paper."""

    index = VrpIndex([Vrp(p("168.122.0.0/16"), 16, 111)])
    loose = VrpIndex([Vrp(p("168.122.0.0/16"), 24, 111)])

    def test_exact_announcement_valid(self):
        assert self.index.validate(p("168.122.0.0/16"), 111) is ValidationState.VALID

    def test_subprefix_invalid_without_maxlength(self):
        """§2: dropping invalids stops the subprefix hijack."""
        assert self.index.validate(p("168.122.0.0/24"), 666) is ValidationState.INVALID
        # ... and even the legitimate AS cannot announce the subprefix.
        assert self.index.validate(p("168.122.1.0/24"), 111) is ValidationState.INVALID

    def test_maxlength_authorizes_subprefixes(self):
        """§3: with maxLength 24 the de-aggregated route is valid."""
        assert self.loose.validate(p("168.122.225.0/24"), 111) is ValidationState.VALID
        assert self.loose.validate(p("168.122.0.0/25"), 111) is ValidationState.INVALID

    def test_forged_origin_subprefix_is_valid(self):
        """§4: the attack announcement is RPKI-valid — the whole problem."""
        attack = Announcement(p("168.122.0.0/24"), (666, 111))
        assert validate_announcement(attack, self.loose) is ValidationState.VALID

    def test_uncovered_is_notfound(self):
        assert self.index.validate(p("9.0.0.0/8"), 1) is ValidationState.NOTFOUND

    def test_moas_any_matching_vrp_wins(self):
        index = VrpIndex(
            [Vrp(p("10.0.0.0/8"), 8, 1), Vrp(p("10.0.0.0/8"), 8, 2)]
        )
        assert index.validate(p("10.0.0.0/8"), 1) is ValidationState.VALID
        assert index.validate(p("10.0.0.0/8"), 2) is ValidationState.VALID
        assert index.validate(p("10.0.0.0/8"), 3) is ValidationState.INVALID

    def test_covering_enumeration(self):
        index = VrpIndex(
            [Vrp(p("10.0.0.0/8"), 8, 1), Vrp(p("10.0.0.0/16"), 24, 2)]
        )
        covering = list(index.covering(p("10.0.0.0/24")))
        assert len(covering) == 2

    def test_add_remove(self):
        index = VrpIndex()
        vrp = Vrp(p("10.0.0.0/8"), 8, 1)
        index.add(vrp)
        index.add(vrp)  # idempotent
        assert len(index) == 1
        assert index.remove(vrp)
        assert not index.remove(vrp)
        assert index.validate(p("10.0.0.0/8"), 1) is ValidationState.NOTFOUND

    def test_empty_index_everything_notfound(self):
        index = VrpIndex()
        assert index.validate(p("10.0.0.0/8"), 1) is ValidationState.NOTFOUND
