"""Smoke tests: every example script must run clean end to end."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "forged-origin subprefix hijack" in result.stdout
        assert "87.254.32.0/19-20 => AS31283" in result.stdout

    def test_hijack_study(self):
        result = run_example("hijack_study.py", "--ases", "200", "--samples", "3")
        assert result.returncode == 0, result.stderr
        assert "captures 100.0%" in result.stdout
        assert "captures 0.0%" in result.stdout

    def test_local_cache_pipeline(self):
        result = run_example("local_cache_pipeline.py")
        assert result.returncode == 0, result.stderr
        assert "router synced" in result.stdout
        assert "valid because of maxLength" in result.stdout
        assert "blocked: the ROA is minimal" in result.stdout

    def test_measurement_study(self, tmp_path):
        result = run_example(
            "measurement_study.py", "--scale", "0.002",
            "--out-dir", str(tmp_path),
        )
        assert result.returncode == 0, result.stderr
        assert "Table 1" in result.stdout
        assert (tmp_path / "vrps.csv").exists()
        assert (tmp_path / "rib.txt").exists()

    def test_serve_quickstart(self):
        result = run_example("serve_quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "encoded 1 time(s)" in result.stdout
        assert "invalid-length; beyond maxLength" in result.stdout
        assert "state=invalid reason=invalid-length" in result.stdout
        assert "one encode per serial" in result.stdout

    def test_experiment_grid(self):
        result = run_example(
            "experiment_grid.py", "--ases", "150", "--trials", "4",
        )
        assert result.returncode == 0, result.stderr
        assert "forged-origin-subprefix/minimal" in result.stdout
        assert "bootstrap CI" in result.stdout
        assert "validation never helps against a non-minimal ROA" \
            in result.stdout
        assert "filtered in 100% of trials" in result.stdout

    def test_roa_lint_curated(self):
        result = run_example("roa_lint.py")
        assert result.returncode == 0, result.stderr
        assert "suggested replacement" in result.stdout
        assert "clean: minimal and fully announced" in result.stdout

    def test_roa_lint_synthetic(self):
        result = run_example("roa_lint.py", "--scale", "0.002")
        assert result.returncode == 0, result.stderr
        assert "ROAs" in result.stdout
        assert "vulnerable / broken" in result.stdout


class TestCliRoaLint:
    def test_roa_lint_reports_and_exit_code(self, tmp_path, capsys):
        from repro.cli import main
        from repro.data import write_origin_pairs, write_vrp_csv
        from repro.netbase import Prefix
        from repro.rpki import Vrp

        vrp_path = tmp_path / "vrps.csv"
        rib_path = tmp_path / "rib.txt"
        write_vrp_csv([Vrp(Prefix.parse("10.0.0.0/16"), 24, 1)], vrp_path)
        write_origin_pairs([(Prefix.parse("10.0.0.0/16"), 1)], rib_path)
        code = main(["roa-lint", str(vrp_path), str(rib_path)])
        captured = capsys.readouterr()
        assert code == 1  # vulnerabilities found
        assert "forged-origin" in captured.out
        assert "1 with vulnerabilities" in captured.err

    def test_roa_lint_clean_exits_zero(self, tmp_path, capsys):
        from repro.cli import main
        from repro.data import write_origin_pairs, write_vrp_csv
        from repro.netbase import Prefix
        from repro.rpki import Vrp

        vrp_path = tmp_path / "vrps.csv"
        rib_path = tmp_path / "rib.txt"
        write_vrp_csv([Vrp(Prefix.parse("10.0.0.0/16"), 16, 1)], vrp_path)
        write_origin_pairs([(Prefix.parse("10.0.0.0/16"), 1)], rib_path)
        assert main(["roa-lint", str(vrp_path), str(rib_path)]) == 0
