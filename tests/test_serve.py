"""Tests for the repro.serve subsystem: async RTR fan-out, frame
caching, the RFC 6811 query service, metrics, and the HTTP front end.

Async paths run under ``asyncio.run`` from synchronous tests (the
environment has no pytest-asyncio); the threaded facade and LocalCache
wiring are exercised with the ordinary synchronous RTR client.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.bgp import ValidationState
from repro.core import LocalCache
from repro.netbase import Prefix
from repro.netbase.errors import ReproError
from repro.rpki import Vrp
from repro.rtr import RtrClient
from repro.rtr.pdu import ResetQueryPdu, encode_pdu
from repro.rtr.session import CacheState
from repro.serve import (
    AsyncRtrClient,
    AsyncRtrServer,
    FrameCache,
    LatencyHistogram,
    QueryHttpServer,
    QueryService,
    ServeMetrics,
    ThreadedRtrServer,
)


def p(text: str) -> Prefix:
    return Prefix.parse(text)


V1 = Vrp(p("168.122.0.0/16"), 24, 111)
V2 = Vrp(p("10.0.0.0/8"), 8, 65000)
V3 = Vrp(p("2001:db8::/32"), 48, 7)

#: The paper's §4 running example: AS 31283's prefix with a loose
#: maxLength (87.254.32.0/19-20) plus a sibling minimal ROA.
PAPER_ROAS = [
    Vrp(p("87.254.32.0/19"), 20, 31283),
    Vrp(p("87.254.32.0/21"), 21, 31283),
]


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------


class TestMetrics:
    def test_histogram_quantiles(self):
        histogram = LatencyHistogram()
        for _ in range(90):
            histogram.observe(2e-6)    # 2 us
        for _ in range(10):
            histogram.observe(500e-6)  # 500 us
        snap = histogram.snapshot()
        assert snap["count"] == 100
        assert snap["p50_us"] <= 8
        assert snap["p99_us"] >= 256

    def test_observe_many_matches_repeated_observe(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        for _ in range(1000):
            a.observe(3e-6)
        b.observe_many(3e-6, 1000)
        snap_a, snap_b = a.snapshot(), b.snapshot()
        assert snap_a["count"] == snap_b["count"] == 1000
        assert snap_a["p50_us"] == snap_b["p50_us"]
        assert snap_a["p99_us"] == snap_b["p99_us"]
        assert snap_a["mean_us"] == pytest.approx(snap_b["mean_us"])

    def test_counters_and_snapshot(self):
        metrics = ServeMetrics()
        metrics.increment("pdus_sent", 5)
        metrics.increment("connections_opened")
        assert metrics["pdus_sent"] == 5
        assert metrics.connections_active == 1
        snap = metrics.snapshot()
        assert snap["pdus_sent"] == 5
        assert snap["query_latency"]["count"] == 0


# ----------------------------------------------------------------------
# Frame cache
# ----------------------------------------------------------------------


class TestFrameCache:
    def test_full_table_encoded_once(self):
        metrics = ServeMetrics()
        state = CacheState()
        state.update([V1, V2, V3])
        frames = FrameCache(state, metrics=metrics)
        first, count = frames.full_table()
        for _ in range(99):
            again, _ = frames.full_table()
            assert again is first  # same object, not just equal bytes
        assert count == 3 + 2  # cache response + VRPs + end of data
        assert metrics["frame_encodes"] == 1
        assert metrics["frame_hits"] == 99

    def test_new_serial_new_frame(self):
        state = CacheState()
        state.update([V1])
        frames = FrameCache(state)
        old, _ = frames.full_table()
        state.update([V1, V2])
        new, _ = frames.full_table()
        assert new != old

    def test_diff_frame_cached_and_none_past_history(self):
        metrics = ServeMetrics()
        state = CacheState(history_limit=2)
        for vrps in ([V1], [V1, V2], [V2], [V2, V3]):
            state.update(vrps)
        frames = FrameCache(state, metrics=metrics)
        assert frames.diff(1) is None  # beyond history: cache reset
        frame, count = frames.diff(2)
        assert frames.diff(2)[0] is frame
        assert metrics["frame_encodes"] == 1
        # serial 2 held {V1, V2}; now {V2, V3}: announce V3, withdraw V1.
        assert count == 2 + 2

    def test_eviction_keeps_only_current_serial(self):
        state = CacheState(history_limit=2)
        frames = FrameCache(state)
        for index in range(12):
            state.update([V1, Vrp(p("10.0.0.0/8"), 8 + index, 65000)])
            frames.full_table()
            frames.notify()
            frames.diff(state.serial - 1)
        # Lookups only ever hit the current serial, so exactly one
        # full-table frame (the expensive one) may survive.
        assert set(frames._full) == {state.serial}
        assert set(frames._notify) == {state.serial}
        assert all(key[1] == state.serial for key in frames._diff)


# ----------------------------------------------------------------------
# Query service: RFC 6811 validity states (satellite: §4 example ROAs)
# ----------------------------------------------------------------------


class TestQueryServiceRfc6811:
    @pytest.fixture()
    def service(self):
        return QueryService(PAPER_ROAS)

    def test_valid_at_roa_prefix(self, service):
        result = service.validity(31283, p("87.254.32.0/19"))
        assert result.state is ValidationState.VALID
        assert result.reason == "matched"
        assert result.matched == PAPER_ROAS[0]

    def test_valid_within_max_length(self, service):
        # The loose maxLength 20 authorizes both /20 halves.
        for text in ("87.254.32.0/20", "87.254.48.0/20"):
            assert service.validity(31283, p(text)).state is ValidationState.VALID

    def test_invalid_length_beyond_max_length(self, service):
        # /22 is covered by the /19-20 ROA but longer than every
        # matching maxLength: the §4 subprefix-hijack boundary.
        result = service.validity(31283, p("87.254.40.0/22"))
        assert result.state is ValidationState.INVALID
        assert result.reason == "invalid-length"
        assert result.matched is None
        assert PAPER_ROAS[0] in result.covering

    def test_invalid_origin_forged(self, service):
        result = service.validity(666, p("87.254.32.0/20"))
        assert result.state is ValidationState.INVALID
        assert result.reason == "invalid-origin"

    def test_not_found_uncovered(self, service):
        result = service.validity(31283, p("203.0.113.0/24"))
        assert result.state is ValidationState.NOTFOUND
        assert result.reason == "not-found"
        assert result.covering == ()

    def test_sibling_minimal_roa_still_valid(self, service):
        # 87.254.32.0/21 has its own minimal ROA: valid despite being
        # longer than the /19 ROA's maxLength.
        result = service.validity(31283, p("87.254.32.0/21"))
        assert result.state is ValidationState.VALID
        assert result.matched == PAPER_ROAS[1]

    def test_agrees_with_router_side_index(self, service):
        from repro.bgp import VrpIndex

        index = VrpIndex(PAPER_ROAS)
        cases = [
            (31283, "87.254.32.0/19"), (31283, "87.254.32.0/20"),
            (31283, "87.254.40.0/22"), (666, "87.254.32.0/20"),
            (31283, "87.254.32.0/21"), (1, "1.2.3.0/24"),
        ]
        for asn, text in cases:
            assert (service.validity(asn, p(text)).state
                    is index.validate(p(text), asn))

    def test_batch_matches_singles(self, service):
        queries = [(31283, p("87.254.32.0/20")), (666, p("87.254.32.0/20")),
                   (31283, p("203.0.113.0/24"))]
        batch = service.validity_batch(queries)
        singles = [service.validity(asn, prefix) for asn, prefix in queries]
        assert [r.state for r in batch] == [r.state for r in singles]
        assert service.metrics["queries"] == len(queries) * 2
        assert service.metrics["batch_queries"] == 1

    def test_reload_swaps_snapshot(self, service):
        assert service.validity(65000, p("10.1.0.0/16")).state \
            is ValidationState.NOTFOUND
        service.reload([V2], serial=9)
        assert service.serial == 9
        assert len(service) == 1
        assert service.validity(65000, p("10.0.0.0/8")).state \
            is ValidationState.VALID

    def test_to_json_shape(self, service):
        document = service.validity(31283, p("87.254.40.0/22")).to_json()
        assert document["state"] == "invalid"
        assert document["reason"] == "invalid-length"
        assert document["prefix"] == "87.254.40.0/22"
        assert "87.254.32.0/19-20 => AS31283" in document["covering"]

    def test_duplicate_vrps_deduplicated(self):
        service = QueryService(PAPER_ROAS + PAPER_ROAS)
        assert len(service) == len(PAPER_ROAS)
        result = service.validity(31283, p("87.254.40.0/22"))
        assert list(result.covering).count(PAPER_ROAS[0]) == 1

    def test_ipv6_queries(self):
        service = QueryService([V3])
        assert service.validity(7, p("2001:db8:1::/48")).state \
            is ValidationState.VALID
        assert service.validity(7, p("2001:db8::/64")).state \
            is ValidationState.INVALID


# ----------------------------------------------------------------------
# Async RTR server
# ----------------------------------------------------------------------


def run(coroutine):
    return asyncio.run(coroutine)


class TestAsyncRtrServer:
    def test_fanout_encodes_once(self):
        async def scenario():
            metrics = ServeMetrics()
            async with AsyncRtrServer([V1, V2, V3], metrics=metrics) as server:
                clients = [AsyncRtrClient() for _ in range(32)]
                for client in clients:
                    await client.connect(server.host, server.port)
                await asyncio.gather(*(c.sync() for c in clients))
                try:
                    assert all(c.vrps == {V1, V2, V3} for c in clients)
                    assert metrics["frame_encodes"] == 1
                    assert metrics["frame_hits"] == 31
                    assert metrics["reset_queries"] == 32
                finally:
                    for client in clients:
                        await client.close()

        run(scenario())

    def test_update_broadcasts_notify_and_incremental_sync(self):
        async def scenario():
            async with AsyncRtrServer([V1, V2]) as server:
                a, b = AsyncRtrClient(), AsyncRtrClient()
                await a.connect(server.host, server.port)
                await b.connect(server.host, server.port)
                await a.sync()
                await b.sync()
                diff = await server.update([V1, V3])
                assert set(diff.announced) == {V3}
                await a.wait_for_notify()
                await b.wait_for_notify()
                await a.sync()
                await b.sync()
                assert a.vrps == b.vrps == {V1, V3}
                await a.close()
                await b.close()

        run(scenario())

    def test_noop_update_is_silent(self):
        async def scenario():
            metrics = ServeMetrics()
            async with AsyncRtrServer([V1], metrics=metrics) as server:
                client = AsyncRtrClient()
                await client.connect(server.host, server.port)
                await client.sync()
                before = server.state.serial
                diff = await server.update([V1])
                assert diff.empty
                assert server.state.serial == before
                assert metrics["notifies_sent"] == 0
                with pytest.raises(asyncio.TimeoutError):
                    await client.wait_for_notify(timeout=0.2)
                await client.close()

        run(scenario())

    def test_stale_serial_and_session_mismatch_reset(self):
        async def scenario():
            async with AsyncRtrServer([V1], history_limit=2) as server:
                client = AsyncRtrClient()
                await client.connect(server.host, server.port)
                await client.sync()
                for index in range(5):
                    await server.update(
                        [V1, Vrp(p("10.0.0.0/8"), 9 + index, 65000)])
                await client.sync()  # serial query -> cache reset -> reset
                assert client.vrps == server.state.vrps
                client.session_id = 999
                await client.sync()
                assert client.vrps == server.state.vrps
                await client.close()

        run(scenario())

    def test_unsupported_pdu_gets_error_report(self):
        from repro.rtr import ErrorReportPdu, SerialNotifyPdu, encode_pdu

        async def scenario():
            async with AsyncRtrServer([V1]) as server:
                client = AsyncRtrClient()
                await client.connect(server.host, server.port)
                client._writer.write(encode_pdu(SerialNotifyPdu(1, 1)))
                pdu = await client._recv_pdu()
                assert isinstance(pdu, ErrorReportPdu)
                assert pdu.error_code == ErrorReportPdu.UNSUPPORTED_PDU
                await client.close()

        run(scenario())

    def test_corrupt_bytes_get_error_report(self):
        async def scenario():
            async with AsyncRtrServer([V1]) as server:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port)
                writer.write(b"\x09" + b"\x00" * 7)  # bad version
                data = await reader.read(4096)
                assert data[1] == 10  # Error Report PDU type
                writer.close()

        run(scenario())

    def test_close_with_connected_client_does_not_hang(self):
        # Regression: since Python 3.12.1 Server.wait_closed() waits
        # for connection handlers; close() must kick idle clients first.
        async def scenario():
            server = AsyncRtrServer([V1])
            await server.start()
            client = AsyncRtrClient()
            await client.connect(server.host, server.port)
            await client.sync()  # leave the connection open and idle
            await asyncio.wait_for(server.close(), timeout=5)
            await client.close()

        run(scenario())


class TestThreadedFacadeAndPipeline:
    def test_sync_client_against_threaded_server(self):
        with ThreadedRtrServer([V1, V2]) as server:
            with RtrClient(server.host, server.port) as client:
                client.sync()
                assert client.vrps == {V1, V2}
                server.update([V2, V3])
                client.wait_for_notify()
                client.sync()
                assert client.vrps == {V2, V3}

    def test_local_cache_async_backend(self):
        with LocalCache() as cache:
            cache.refresh_from_vrps([V1, V2])
            server = cache.serve()  # default async backend
            assert isinstance(server, ThreadedRtrServer)
            with RtrClient(server.host, server.port) as client:
                client.sync()
                assert client.vrps == {V1, V2}
                cache.refresh_from_vrps([V3])
                client.wait_for_notify()
                client.sync()
                assert client.vrps == {V3}

    def test_local_cache_legacy_backend(self):
        from repro.rtr.cache import RtrCacheServer

        with LocalCache() as cache:
            cache.refresh_from_vrps([V1])
            server = cache.serve(backend="thread")
            assert isinstance(server, RtrCacheServer)
            with RtrClient(server.host, server.port) as client:
                client.sync()
                assert client.vrps == {V1}

    def test_unknown_backend_rejected(self):
        with LocalCache() as cache:
            with pytest.raises(ValueError):
                cache.serve(backend="carrier-pigeon")

    def test_failed_start_does_not_poison_later_serves(self):
        import socket

        blocker = socket.create_server(("127.0.0.1", 0))
        _, taken_port = blocker.getsockname()[:2]
        try:
            with LocalCache() as cache:
                cache.refresh_from_vrps([V1])
                with pytest.raises(OSError):
                    cache.serve(port=taken_port)
                server = cache.serve()  # retry on an ephemeral port
                with RtrClient(server.host, server.port) as client:
                    client.sync()
                    assert client.vrps == {V1}
        finally:
            blocker.close()

    def test_backend_mismatch_on_running_server_rejected(self):
        with LocalCache() as cache:
            cache.serve()  # async backend
            with pytest.raises(ValueError, match="already running"):
                cache.serve(backend="thread")
            with pytest.raises(ValueError):
                cache.serve(backend="carrier-pigeon")
            cache.serve()  # same backend: fine, returns the server

    def test_fanout_encode_count_via_threaded_server(self):
        table = [Vrp(Prefix(4, (10 << 24) + (i << 8), 24), 24, 65000 + i % 100)
                 for i in range(500)]
        with ThreadedRtrServer(table) as server:
            clients = [RtrClient(server.host, server.port) for _ in range(8)]
            try:
                for client in clients:
                    client.sync()
                    assert len(client.vrps) == 500
            finally:
                for client in clients:
                    client.close()
            assert server.metrics["frame_encodes"] == 1
            assert server.metrics["frame_hits"] == 7


# ----------------------------------------------------------------------
# HTTP front end
# ----------------------------------------------------------------------


async def http_request(host, port, request: bytes) -> tuple[int, dict]:
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(request)
    status, document = await read_response(reader)
    writer.close()
    return status, document


async def read_response(reader) -> tuple[int, dict]:
    status, _, body = await read_raw_response(reader)
    return status, json.loads(body)


async def read_raw_response(reader) -> tuple[int, bytes, bytes]:
    head = await reader.readuntil(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    length = 0
    content_type = b""
    for line in head.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":")[1])
        elif line.lower().startswith(b"content-type:"):
            content_type = line.split(b":", 1)[1].strip()
    body = await reader.readexactly(length)
    return status, content_type, body


class TestHttpServer:
    def run_with_server(self, scenario):
        async def wrapper():
            service = QueryService(PAPER_ROAS + [V1, V2])
            async with QueryHttpServer(service) as http:
                await scenario(http)

        run(wrapper())

    def test_get_validity_each_state(self):
        cases = [
            ("asn=31283&prefix=87.254.32.0%2F20", "valid", "matched"),
            ("asn=31283&prefix=87.254.40.0%2F22", "invalid", "invalid-length"),
            ("asn=666&prefix=87.254.32.0%2F20", "invalid", "invalid-origin"),
            ("asn=1&prefix=203.0.113.0%2F24", "notfound", "not-found"),
        ]

        async def scenario(http):
            for query, state, reason in cases:
                status, document = await http_request(
                    http.host, http.port,
                    f"GET /validity?{query} HTTP/1.1\r\n"
                    f"Connection: close\r\n\r\n".encode())
                assert status == 200
                assert document["state"] == state
                assert document["reason"] == reason

        self.run_with_server(scenario)

    def test_post_batch(self):
        async def scenario(http):
            body = json.dumps({"queries": [
                {"asn": 31283, "prefix": "87.254.32.0/20"},
                {"asn": "AS666", "prefix": "87.254.32.0/20"},
            ]}).encode()
            request = (
                b"POST /validity HTTP/1.1\r\n"
                + f"Content-Length: {len(body)}\r\n".encode()
                + b"Connection: close\r\n\r\n" + body)
            status, document = await http_request(http.host, http.port, request)
            assert status == 200
            states = [r["state"] for r in document["results"]]
            assert states == ["valid", "invalid"]

        self.run_with_server(scenario)

    def test_keep_alive_pipeline_and_metrics(self):
        async def scenario(http):
            reader, writer = await asyncio.open_connection(http.host, http.port)
            writer.write(b"GET /validity?asn=111&prefix=168.122.0.0%2F16 "
                         b"HTTP/1.1\r\n\r\n")
            status, document = await read_response(reader)
            assert status == 200 and document["state"] == "valid"
            writer.write(b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n")
            status, metrics = await read_response(reader)
            assert status == 200
            assert metrics["http_requests"] == 2
            assert metrics["queries"] == 1
            writer.close()

        self.run_with_server(scenario)

    def test_metrics_prometheus_format(self):
        async def scenario(http):
            reader, writer = await asyncio.open_connection(http.host, http.port)
            writer.write(b"GET /validity?asn=111&prefix=168.122.0.0%2F16 "
                         b"HTTP/1.1\r\n\r\n")
            await read_response(reader)
            writer.write(b"GET /metrics?format=prometheus HTTP/1.1\r\n"
                         b"Connection: close\r\n\r\n")
            status, content_type, body = await read_raw_response(reader)
            writer.close()
            assert status == 200
            assert content_type.startswith(b"text/plain")
            assert b"version=0.0.4" in content_type
            text = body.decode("utf-8")
            values = {}
            for line in text.splitlines():
                if line.startswith("# TYPE "):
                    continue
                series, value = line.rsplit(" ", 1)
                values[series] = float(value)
            assert values["serve_queries"] == 1
            assert values["serve_http_requests"] == 2
            # The derived gauge is always exposed (HTTP connections are
            # not counted in connections_opened — only RTR sessions are).
            assert "serve_connections_active" in values
            assert "# TYPE serve_query_latency histogram" in text
            assert values["serve_query_latency_count"] == 1

        self.run_with_server(scenario)

    def test_metrics_unknown_format_is_400(self):
        async def scenario(http):
            status, document = await http_request(
                http.host, http.port,
                b"GET /metrics?format=xml HTTP/1.1\r\n"
                b"Connection: close\r\n\r\n")
            assert status == 400
            assert "error" in document

        self.run_with_server(scenario)

    def test_status_endpoint(self):
        async def scenario(http):
            status, document = await http_request(
                http.host, http.port,
                b"GET /status HTTP/1.1\r\nConnection: close\r\n\r\n")
            assert status == 200
            assert document["vrps"] == len(PAPER_ROAS) + 2

        self.run_with_server(scenario)

    def test_bad_requests(self):
        async def scenario(http):
            for request, expected in [
                (b"GET /validity?asn=xyz&prefix=10.0.0.0%2F8 HTTP/1.1"
                 b"\r\nConnection: close\r\n\r\n", 400),
                (b"GET /validity?asn=1 HTTP/1.1\r\nConnection: close\r\n\r\n",
                 400),
                (b"GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n", 404),
                (b"DELETE /validity HTTP/1.1\r\nConnection: close\r\n\r\n",
                 405),
            ]:
                status, document = await http_request(
                    http.host, http.port, request)
                assert status == expected
                assert "error" in document

        self.run_with_server(scenario)

    def test_malformed_request_line_gets_400(self):
        async def scenario(http):
            status, document = await http_request(
                http.host, http.port, b"garbage\r\n\r\n")
            assert status == 400
            assert "malformed request line" in document["error"]

        self.run_with_server(scenario)

    def test_bad_content_length_gets_400(self):
        async def scenario(http):
            for value in (b"abc", b"-5"):
                status, document = await http_request(
                    http.host, http.port,
                    b"POST /validity HTTP/1.1\r\nContent-Length: " + value
                    + b"\r\n\r\n")
                assert status == 400
                assert "Content-Length" in document["error"]

        self.run_with_server(scenario)

    def test_large_batch_offloaded_to_executor(self):
        # Above the executor threshold the loop stays free; results
        # must be identical either way.
        async def scenario(http):
            queries = [{"asn": 31283, "prefix": "87.254.32.0/20"}] * 600
            body = json.dumps({"queries": queries}).encode()
            request = (
                b"POST /validity HTTP/1.1\r\n"
                + f"Content-Length: {len(body)}\r\n".encode()
                + b"Connection: close\r\n\r\n" + body)
            status, document = await http_request(http.host, http.port, request)
            assert status == 200
            assert len(document["results"]) == 600
            assert all(r["state"] == "valid" for r in document["results"])

        self.run_with_server(scenario)

    def test_oversized_batch_rejected(self):
        from repro.serve import http as http_module

        async def scenario(http):
            queries = [{"asn": 1, "prefix": "10.0.0.0/8"}] * (
                http_module._MAX_BATCH_QUERIES + 1)
            body = json.dumps({"queries": queries}).encode()
            request = (
                b"POST /validity HTTP/1.1\r\n"
                + f"Content-Length: {len(body)}\r\n".encode()
                + b"Connection: close\r\n\r\n" + body)
            status, document = await http_request(http.host, http.port, request)
            # Either the body-size cap or the batch cap may fire first
            # depending on JSON size; both must be a clean 400.
            assert status == 400
            assert "error" in document

        self.run_with_server(scenario)

    def test_oversized_head_gets_400(self):
        async def scenario(http):
            request = (b"GET /status HTTP/1.1\r\nX-Pad: "
                       + b"a" * 80000 + b"\r\n\r\n")
            status, document = await http_request(http.host, http.port, request)
            assert status == 400
            assert "too large" in document["error"]

        self.run_with_server(scenario)

    def test_connection_close_is_case_insensitive(self):
        async def scenario(http):
            reader, writer = await asyncio.open_connection(http.host, http.port)
            writer.write(b"GET /status HTTP/1.1\r\nConnection: Close\r\n\r\n")
            raw = await asyncio.wait_for(reader.read(), timeout=5)  # to EOF
            assert raw.startswith(b"HTTP/1.1 200")
            assert b"Connection: close" in raw
            writer.close()

        self.run_with_server(scenario)

    def test_http_10_defaults_to_close(self):
        async def scenario(http):
            reader, writer = await asyncio.open_connection(http.host, http.port)
            writer.write(b"GET /status HTTP/1.0\r\n\r\n")
            raw = await asyncio.wait_for(reader.read(), timeout=5)  # to EOF
            assert raw.startswith(b"HTTP/1.1 200")
            assert b"Connection: close" in raw
            writer.close()

        self.run_with_server(scenario)

    def test_close_with_idle_keep_alive_client_does_not_hang(self):
        # Regression twin of the RTR close fix: an idle keep-alive
        # connection must not stall wait_closed() on Python 3.12.1+.
        async def scenario():
            service = QueryService(PAPER_ROAS)
            http = QueryHttpServer(service)
            await http.start()
            reader, writer = await asyncio.open_connection(http.host, http.port)
            writer.write(b"GET /status HTTP/1.1\r\n\r\n")
            await read_response(reader)  # handler now idles in readuntil
            await asyncio.wait_for(http.close(), timeout=5)
            writer.close()

        run(scenario())


# ----------------------------------------------------------------------
# Production hardening: load shedding, health, drain, eviction
# ----------------------------------------------------------------------


class TestHttpHardening:
    def test_bad_hardening_knobs_rejected(self):
        service = QueryService(PAPER_ROAS)
        for kwargs in ({"max_clients": 0}, {"idle_timeout": 0.0},
                       {"drain_timeout": -1.0}):
            with pytest.raises(ReproError):
                QueryHttpServer(service, **kwargs)

    def test_healthz_and_readyz(self):
        async def scenario():
            service = QueryService(PAPER_ROAS)
            async with QueryHttpServer(service) as http:
                status, document = await http_request(
                    http.host, http.port,
                    b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
                assert status == 200 and document["status"] == "ok"
                status, document = await http_request(
                    http.host, http.port,
                    b"GET /readyz HTTP/1.1\r\nConnection: close\r\n\r\n")
                assert status == 200 and document["status"] == "ready"
                status, document = await http_request(
                    http.host, http.port,
                    b"POST /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
                assert status == 405

        run(scenario())

    def test_max_clients_sheds_extra_connection_with_503(self):
        async def scenario():
            service = QueryService(PAPER_ROAS)
            async with QueryHttpServer(service, max_clients=1) as http:
                # Client 1 occupies the only slot with a keep-alive
                # request, so its handler idles with the writer live.
                reader, writer = await asyncio.open_connection(
                    http.host, http.port)
                writer.write(b"GET /status HTTP/1.1\r\n\r\n")
                status, _ = await read_response(reader)
                assert status == 200
                # Client 2 must get an immediate 503, not a hang.
                status, document = await http_request(
                    http.host, http.port,
                    b"GET /status HTTP/1.1\r\nConnection: close\r\n\r\n")
                assert status == 503
                assert "capacity" in document["error"]
                assert http.metrics["requests_shed"] == 1
                writer.close()

        run(scenario())

    def test_readyz_saturated_at_connection_cap(self):
        async def scenario():
            service = QueryService(PAPER_ROAS)
            async with QueryHttpServer(service, max_clients=1) as http:
                # The probing connection itself fills the cap, so ask
                # over the same keep-alive stream: liveness stays 200
                # while readiness reports saturation.
                reader, writer = await asyncio.open_connection(
                    http.host, http.port)
                writer.write(b"GET /healthz HTTP/1.1\r\n\r\n")
                status, document = await read_response(reader)
                assert status == 200 and document["status"] == "ok"
                writer.write(b"GET /readyz HTTP/1.1\r\n"
                             b"Connection: close\r\n\r\n")
                status, document = await read_response(reader)
                assert status == 503 and document["status"] == "saturated"
                writer.close()

        run(scenario())

    def test_drain_flips_health_and_sheds_requests(self):
        async def scenario():
            service = QueryService(PAPER_ROAS)
            async with QueryHttpServer(service, drain_timeout=5.0) as http:
                status, document = await http_request(
                    http.host, http.port,
                    b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
                assert status == 200
                elapsed = await http.drain()
                assert http.draining
                assert elapsed >= 0.0
                # Listener stays open so probes observe the flip.
                status, document = await http_request(
                    http.host, http.port,
                    b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
                assert status == 503 and document["status"] == "draining"
                status, document = await http_request(
                    http.host, http.port,
                    b"GET /validity?asn=31283&prefix=87.254.32.0%2F20 "
                    b"HTTP/1.1\r\nConnection: close\r\n\r\n")
                assert status == 503
                assert "draining" in document["error"]
                snapshot = http.metrics.snapshot()
                assert snapshot["requests_shed"] >= 1
                assert snapshot["drain_seconds"] == pytest.approx(
                    elapsed, abs=1e-6)

        run(scenario())

    def test_idle_timeout_reaps_keep_alive_connection(self):
        async def scenario():
            service = QueryService(PAPER_ROAS)
            async with QueryHttpServer(service, idle_timeout=0.05) as http:
                reader, writer = await asyncio.open_connection(
                    http.host, http.port)
                writer.write(b"GET /status HTTP/1.1\r\n\r\n")
                status, _ = await read_response(reader)
                assert status == 200
                # Send nothing more: the server must hang up on us.
                tail = await asyncio.wait_for(reader.read(), timeout=5)
                assert tail == b""
                writer.close()

        run(scenario())

    def test_prometheus_exposition_includes_hardening_series(self):
        metrics = ServeMetrics()
        metrics.increment("requests_shed", 3)
        metrics.increment("clients_evicted", 2)
        metrics.drain_seconds.set(0.25)
        text = metrics.render_prometheus()
        values = {}
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            series, value = line.rsplit(" ", 1)
            values[series] = float(value)
        assert values["serve_requests_shed"] == 3
        assert values["serve_clients_evicted"] == 2
        assert values["serve_drain_seconds"] == 0.25


class TestRtrHardening:
    def test_bad_hardening_knobs_rejected(self):
        for kwargs in ({"max_clients": 0}, {"client_deadline": 0.0}):
            with pytest.raises(ReproError):
                AsyncRtrServer([V1], **kwargs)

    def test_max_clients_closes_extra_router(self):
        async def scenario():
            metrics = ServeMetrics()
            async with AsyncRtrServer(
                [V1, V2], metrics=metrics, max_clients=1
            ) as server:
                first = AsyncRtrClient()
                await first.connect(server.host, server.port)
                await first.sync()
                assert len(first.vrps) == 2
                # RTR has no status line to send; the surplus router
                # is simply closed before it costs any server state.
                reader, writer = await asyncio.open_connection(
                    server.host, server.port)
                tail = await asyncio.wait_for(reader.read(), timeout=5)
                assert tail == b""
                writer.close()
                assert metrics["requests_shed"] == 1
                # The first session keeps working after the shed.
                await first.sync()
                await first.close()

        run(scenario())

    def test_slow_client_evicted_on_write_deadline(self):
        # A consumer that floods Reset Queries and never reads makes
        # the server's drain() block on a full socket; the deadline
        # must evict it instead of letting buffers grow unboundedly.
        table = [Vrp(p(f"10.{i >> 8 & 255}.{i & 255}.0/24"), 24, 64512 + i)
                 for i in range(3000)]

        async def scenario():
            metrics = ServeMetrics()
            async with AsyncRtrServer(
                table, metrics=metrics, client_deadline=0.1
            ) as server:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port)
                writer.write(encode_pdu(ResetQueryPdu()) * 128)
                await writer.drain()
                deadline = asyncio.get_running_loop().time() + 10
                while metrics["clients_evicted"] < 1:
                    assert asyncio.get_running_loop().time() < deadline, (
                        "slow client was never evicted")
                    await asyncio.sleep(0.02)
                assert metrics["clients_evicted"] >= 1
                writer.close()
                # The server still answers a well-behaved router.
                probe = AsyncRtrClient()
                await probe.connect(server.host, server.port)
                await probe.sync()
                assert len(probe.vrps) == 3000
                await probe.close()

        run(scenario())
