"""Tests for PrefixSet and route aggregation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netbase import AF_INET, Prefix, PrefixSet, aggregate


def p(text: str) -> Prefix:
    return Prefix.parse(text)


class TestPrefixSet:
    def test_membership(self):
        ps = PrefixSet([p("10.0.0.0/8")])
        assert p("10.0.0.0/8") in ps
        assert p("10.0.0.0/16") not in ps
        assert len(ps) == 1

    def test_mixed_families(self):
        ps = PrefixSet([p("10.0.0.0/8"), p("2001:db8::/32")])
        assert len(ps) == 2
        assert set(ps.ipv4()) == {p("10.0.0.0/8")}
        assert set(ps.ipv6()) == {p("2001:db8::/32")}

    def test_add_idempotent(self):
        ps = PrefixSet()
        ps.add(p("10.0.0.0/8"))
        ps.add(p("10.0.0.0/8"))
        assert len(ps) == 1

    def test_discard(self):
        ps = PrefixSet([p("10.0.0.0/8")])
        ps.discard(p("10.0.0.0/8"))
        ps.discard(p("10.0.0.0/8"))  # second discard is a no-op
        assert len(ps) == 0

    def test_covers_and_most_specific(self):
        ps = PrefixSet([p("10.0.0.0/8"), p("10.1.0.0/16")])
        assert ps.covers(p("10.1.2.0/24"))
        assert ps.most_specific_cover(p("10.1.2.0/24")) == p("10.1.0.0/16")
        assert ps.most_specific_cover(p("10.2.0.0/24")) == p("10.0.0.0/8")
        assert ps.most_specific_cover(p("11.0.0.0/24")) is None

    def test_covers_properly(self):
        ps = PrefixSet([p("10.0.0.0/16")])
        assert not ps.covers_properly(p("10.0.0.0/16"))
        assert ps.covers_properly(p("10.0.0.0/24"))

    def test_covering_iteration(self):
        ps = PrefixSet([p("10.0.0.0/8"), p("10.0.0.0/16")])
        assert [str(c) for c in ps.covering(p("10.0.0.0/24"))] == [
            "10.0.0.0/8",
            "10.0.0.0/16",
        ]

    def test_covered_by(self):
        ps = PrefixSet([p("10.0.0.0/16"), p("10.0.1.0/24"), p("11.0.0.0/8")])
        assert set(ps.covered_by(p("10.0.0.0/8"))) == {
            p("10.0.0.0/16"),
            p("10.0.1.0/24"),
        }

    def test_equality(self):
        a = PrefixSet([p("10.0.0.0/8"), p("2001:db8::/32")])
        b = PrefixSet([p("2001:db8::/32"), p("10.0.0.0/8")])
        assert a == b
        b.add(p("11.0.0.0/8"))
        assert a != b

    def test_iteration_sorted_within_family(self):
        ps = PrefixSet([p("11.0.0.0/8"), p("10.0.0.0/8"), p("10.0.0.0/16")])
        listed = list(ps)
        assert listed == sorted(listed)


class TestAggregate:
    def test_sibling_merge(self):
        assert aggregate([p("10.0.0.0/24"), p("10.0.1.0/24")]) == [p("10.0.0.0/23")]

    def test_non_siblings_not_merged(self):
        # 10.0.1.0/24 and 10.0.2.0/24 are adjacent but not siblings
        result = aggregate([p("10.0.1.0/24"), p("10.0.2.0/24")])
        assert result == [p("10.0.1.0/24"), p("10.0.2.0/24")]

    def test_covered_dropped(self):
        assert aggregate([p("10.0.0.0/8"), p("10.1.0.0/16")]) == [p("10.0.0.0/8")]

    def test_cascading_merge(self):
        quarters = list(p("10.0.0.0/16").subprefixes(18))
        assert aggregate(quarters) == [p("10.0.0.0/16")]

    def test_duplicates_collapse(self):
        assert aggregate([p("10.0.0.0/8"), p("10.0.0.0/8")]) == [p("10.0.0.0/8")]

    def test_empty(self):
        assert aggregate([]) == []

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=255),
                st.integers(min_value=24, max_value=32),
            ),
            min_size=1,
            max_size=24,
        )
    )
    def test_aggregation_preserves_address_coverage(self, entries):
        base = p("192.0.2.0/24")
        prefixes = []
        for offset, length in entries:
            step = 1 << (32 - length)
            prefixes.append(
                Prefix(
                    AF_INET,
                    base.value + (offset % (1 << (length - 24))) * step,
                    length,
                )
            )
        result = aggregate(prefixes)

        def covered_addresses(collection):
            covered = set()
            for prefix in collection:
                covered.update(
                    range(prefix.first_address(), prefix.last_address() + 1)
                )
            return covered

        assert covered_addresses(result) == covered_addresses(prefixes)
        # result must be irredundant: no member covers another
        for a in result:
            for b in result:
                if a is not b:
                    assert not a.covers(b)
