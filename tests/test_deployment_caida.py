"""Tests for the partial-deployment sweep and CAIDA topology I/O."""

from __future__ import annotations

import io

import pytest

from repro.analysis import run_deployment_sweep
from repro.bgp import AsTopology, Relationship
from repro.data import CaidaFormatError, read_caida, write_caida


class TestDeploymentSweep:
    @pytest.fixture(scope="class")
    def sweep(self, small_topology):
        return run_deployment_sweep(
            small_topology,
            fractions=(0.0, 0.5, 1.0),
            samples=6,
            seed=3,
        )

    def test_no_validation_no_protection(self, sweep):
        zero = sweep.points[0]
        assert zero.validating_fraction == 0.0
        assert zero.subprefix_hijack > 0.95
        assert zero.forged_subprefix_vs_minimal > 0.95

    def test_full_validation_full_protection_for_stoppable_attacks(self, sweep):
        full = sweep.points[-1]
        assert full.subprefix_hijack == 0.0
        assert full.forged_subprefix_vs_minimal == 0.0

    def test_nonminimal_roa_never_helped_by_validation(self, sweep):
        """The paper's core point as a flat line: against a non-minimal
        ROA the forged-origin subprefix announcement is *valid*, so no
        amount of validation deployment blocks it."""
        for point in sweep.points:
            assert point.forged_subprefix_vs_nonminimal > 0.95

    def test_protection_monotone_in_deployment(self, sweep):
        captures = [point.subprefix_hijack for point in sweep.points]
        assert captures[0] >= captures[1] >= captures[2]

    def test_render(self, sweep):
        text = sweep.render()
        assert "validating" in text
        assert text.count("%") >= 9


class TestCaidaFormat:
    def test_round_trip(self, chain_topology):
        buffer = io.StringIO()
        count = write_caida(chain_topology, buffer)
        assert count == chain_topology.edge_count()
        buffer.seek(0)
        recovered = read_caida(buffer)
        assert sorted(recovered.edges()) == sorted(chain_topology.edges())

    def test_round_trip_file(self, small_topology, tmp_path):
        path = tmp_path / "rel.txt"
        write_caida(small_topology, path)
        recovered = read_caida(path)
        assert recovered.ases == small_topology.ases
        assert sorted(recovered.edges()) == sorted(small_topology.edges())

    def test_read_real_format_sample(self):
        text = (
            "# inferred from BGP tables\n"
            "3356|111|-1\n"
            "3356|1299|0\n"
        )
        topology = read_caida(io.StringIO(text))
        assert topology.relationship(3356, 111) is Relationship.CUSTOMER
        assert topology.relationship(3356, 1299) is Relationship.PEER

    def test_bad_relationship_code(self):
        with pytest.raises(CaidaFormatError, match="line 1"):
            read_caida(io.StringIO("1|2|7\n"))

    def test_bad_fields(self):
        with pytest.raises(CaidaFormatError):
            read_caida(io.StringIO("1|2\n"))
        with pytest.raises(CaidaFormatError):
            read_caida(io.StringIO("a|b|-1\n"))

    def test_simulation_runs_on_loaded_topology(self, small_topology, tmp_path):
        """End to end: serialize, reload, and propagate routes."""
        from repro.bgp import Seed, propagate_prefix
        from repro.netbase import Prefix

        path = tmp_path / "rel.txt"
        write_caida(small_topology, path)
        loaded = read_caida(path)
        origin = max(loaded.stub_ases())
        routes = propagate_prefix(
            loaded, Prefix.parse("10.0.0.0/16"), [Seed.origin(origin)]
        )
        assert len(routes) == len(loaded)
