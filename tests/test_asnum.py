"""Tests for repro.netbase.asnum."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netbase import (
    AS_TRANS,
    MAX_ASN,
    format_asn,
    is_private_asn,
    is_reserved_asn,
    parse_asn,
    validate_asn,
)
from repro.netbase.errors import AsnError


class TestValidate:
    def test_accepts_range_ends(self):
        assert validate_asn(0) == 0
        assert validate_asn(MAX_ASN) == MAX_ASN

    def test_rejects_negative(self):
        with pytest.raises(AsnError):
            validate_asn(-1)

    def test_rejects_too_large(self):
        with pytest.raises(AsnError):
            validate_asn(2**32)

    def test_rejects_non_int(self):
        with pytest.raises(AsnError):
            validate_asn("65000")  # type: ignore[arg-type]

    def test_rejects_bool(self):
        with pytest.raises(AsnError):
            validate_asn(True)  # type: ignore[arg-type]


class TestParse:
    def test_plain_number(self):
        assert parse_asn("65000") == 65000

    def test_as_prefix(self):
        assert parse_asn("AS65000") == 65000
        assert parse_asn("as65000") == 65000

    def test_asdot(self):
        assert parse_asn("1.10") == (1 << 16) + 10
        assert parse_asn("AS1.0") == 65536

    def test_asdot_rejects_overflow(self):
        with pytest.raises(AsnError):
            parse_asn("65536.0")

    @pytest.mark.parametrize("bad", ["", "AS", "1.2.3", "-5", "4294967296"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(AsnError):
            parse_asn(bad)


class TestFormat:
    def test_plain(self):
        assert format_asn(111) == "AS111"

    def test_asdot_only_for_large(self):
        assert format_asn(65000, asdot=True) == "AS65000"
        assert format_asn(65536, asdot=True) == "AS1.0"

    @given(st.integers(min_value=0, max_value=MAX_ASN))
    def test_round_trip(self, asn):
        assert parse_asn(format_asn(asn)) == asn
        assert parse_asn(format_asn(asn, asdot=True)) == asn


class TestClassification:
    def test_private_16bit(self):
        assert is_private_asn(64512) and is_private_asn(65534)
        assert not is_private_asn(64511)

    def test_private_32bit(self):
        assert is_private_asn(4200000000)
        assert not is_private_asn(4199999999)

    def test_reserved(self):
        assert is_reserved_asn(0)
        assert is_reserved_asn(65535)
        assert is_reserved_asn(MAX_ASN)
        assert not is_reserved_asn(AS_TRANS)
