"""Tests for the archive I/O formats (RouteViews RIB, VRP CSV)."""

from __future__ import annotations

import io

import pytest

from repro.bgp import Announcement
from repro.data import (
    ArchiveFormatError,
    RibFormatError,
    read_origin_pairs,
    read_rib,
    read_vrp_csv,
    write_origin_pairs,
    write_rib,
    write_vrp_csv,
)
from repro.data.allocation import AddressAllocator, AllocationError
from repro.data.routeviews import dumps_rib
from repro.netbase import AF_INET, AF_INET6, Prefix
from repro.rpki import Vrp


def p(text: str) -> Prefix:
    return Prefix.parse(text)


ANNOUNCEMENTS = [
    Announcement(p("168.122.0.0/16"), (3356, 111)),
    Announcement(p("2001:db8::/32"), (6939, 64512)),
]

VRPS = [
    Vrp(p("168.122.0.0/16"), 24, 111),
    Vrp(p("2001:db8::/32"), 32, 64512),
]


class TestRibFormat:
    def test_round_trip_memory(self):
        buffer = io.StringIO()
        assert write_rib(ANNOUNCEMENTS, buffer) == 2
        buffer.seek(0)
        assert list(read_rib(buffer)) == ANNOUNCEMENTS

    def test_round_trip_file(self, tmp_path):
        path = tmp_path / "rib.txt"
        write_rib(ANNOUNCEMENTS, path)
        assert list(read_rib(path)) == ANNOUNCEMENTS

    def test_line_shape_matches_bgpdump(self):
        text = dumps_rib(ANNOUNCEMENTS[:1])
        fields = text.strip().split("|")
        assert fields[0] == "TABLE_DUMP2"
        assert fields[5] == "168.122.0.0/16"
        assert fields[6] == "3356 111"

    def test_comments_and_blanks_skipped(self):
        text = "# header\n\n" + dumps_rib(ANNOUNCEMENTS[:1])
        assert len(list(read_rib(io.StringIO(text)))) == 1

    def test_bad_prefix_raises_with_line_number(self):
        text = "TABLE_DUMP2|0|B|1.1.1.1|5|999.1.1.0/24|5 4|IGP\n"
        with pytest.raises(RibFormatError, match="line 1"):
            list(read_rib(io.StringIO(text)))

    def test_too_few_fields(self):
        with pytest.raises(RibFormatError):
            list(read_rib(io.StringIO("TABLE_DUMP2|0|B\n")))


class TestOriginPairsFormat:
    def test_round_trip(self, tmp_path):
        pairs = [(p("10.0.0.0/16"), 1), (p("2a00::/12"), 65000)]
        path = tmp_path / "pairs.txt"
        assert write_origin_pairs(pairs, path) == 2
        assert list(read_origin_pairs(path)) == pairs

    def test_bad_line(self):
        with pytest.raises(RibFormatError):
            list(read_origin_pairs(io.StringIO("10.0.0.0/16|x\n")))


class TestVrpCsv:
    def test_round_trip_memory(self):
        buffer = io.StringIO()
        assert write_vrp_csv(VRPS, buffer) == 2
        buffer.seek(0)
        assert list(read_vrp_csv(buffer)) == VRPS

    def test_round_trip_file(self, tmp_path):
        path = tmp_path / "vrps.csv"
        write_vrp_csv(VRPS, path)
        assert list(read_vrp_csv(path)) == VRPS

    def test_header_is_validator_compatible(self):
        buffer = io.StringIO()
        write_vrp_csv(VRPS, buffer)
        header = buffer.getvalue().splitlines()[0]
        assert header == "URI,ASN,IP Prefix,Max Length,Not Before,Not After"

    def test_asn_prefix_tolerated(self):
        text = "URI,ASN,IP Prefix,Max Length\nx,111,10.0.0.0/16,24\n"
        assert list(read_vrp_csv(io.StringIO(text))) == [
            Vrp(p("10.0.0.0/16"), 24, 111)
        ]

    def test_bad_row_raises_with_row_number(self):
        text = "x,AS111,10.0.0.0/16,8\n"  # maxLength below prefix length
        with pytest.raises(ArchiveFormatError, match="row 1"):
            list(read_vrp_csv(io.StringIO(text)))

    def test_short_row_rejected(self):
        with pytest.raises(ArchiveFormatError):
            list(read_vrp_csv(io.StringIO("a,b\n")))

    def test_snapshot_round_trip(self, tiny_snapshot, tmp_path):
        path = tmp_path / "snapshot.csv"
        write_vrp_csv(tiny_snapshot.vrps, path)
        assert list(read_vrp_csv(path)) == tiny_snapshot.vrps


class TestAllocator:
    def test_blocks_are_disjoint_and_aligned(self):
        import random

        allocator = AddressAllocator()
        rng = random.Random(1)
        blocks = [
            allocator.allocate_random_size(AF_INET, rng) for _ in range(500)
        ]
        blocks.sort()
        for left, right in zip(blocks, blocks[1:]):
            assert not left.overlaps(right)
        for block in blocks:
            assert block.value % (1 << (32 - block.length)) == 0

    def test_ipv6_pool(self):
        import random

        allocator = AddressAllocator()
        block = allocator.allocate_random_size(AF_INET6, random.Random(1))
        assert block.family == AF_INET6
        assert p("2a00::/12").covers(block) or p("2c00::/12").covers(block)

    def test_request_larger_than_pool_rejected(self):
        allocator = AddressAllocator()
        with pytest.raises(AllocationError):
            allocator.allocate(AF_INET, 4)

    def test_exhaustion_raises(self):
        allocator = AddressAllocator()
        with pytest.raises(AllocationError):
            for _ in range(200):  # 126 /8 pools of /8 requests
                allocator.allocate(AF_INET, 8)
