"""Tests for minimal-ROA conversion (repro.core.minimal)."""

from __future__ import annotations

from repro.core import (
    additional_prefix_count,
    build_origin_index,
    minimal_roa_for,
    to_minimal_vrps,
)
from repro.netbase import Prefix
from repro.rpki import Roa, RoaPrefix, Vrp


def p(text: str) -> Prefix:
    return Prefix.parse(text)


class TestToMinimalVrps:
    def test_paper_running_example(self):
        """§3: AS 111 announces the /16 and one /24 under a /16-24 ROA."""
        vrps = [Vrp(p("168.122.0.0/16"), 24, 111)]
        announced = [
            (p("168.122.0.0/16"), 111),
            (p("168.122.225.0/24"), 111),
        ]
        minimal = to_minimal_vrps(vrps, announced)
        assert minimal == [
            Vrp(p("168.122.0.0/16"), 16, 111),
            Vrp(p("168.122.225.0/24"), 24, 111),
        ]

    def test_unannounced_authorizations_dropped(self):
        vrps = [Vrp(p("10.0.0.0/16"), 24, 1)]
        assert to_minimal_vrps(vrps, []) == []

    def test_invalid_announcements_excluded(self):
        """Routes beyond maxLength or from the wrong AS stay out."""
        vrps = [Vrp(p("10.0.0.0/16"), 20, 1)]
        announced = [
            (p("10.0.0.0/24"), 1),   # length 24 > maxLength 20: invalid
            (p("10.0.0.0/18"), 2),   # wrong origin: invalid
            (p("10.0.0.0/18"), 1),   # valid
        ]
        assert to_minimal_vrps(vrps, announced) == [Vrp(p("10.0.0.0/18"), 18, 1)]

    def test_unrelated_announcements_ignored(self):
        vrps = [Vrp(p("10.0.0.0/16"), 24, 1)]
        announced = [(p("192.168.0.0/24"), 1), (p("2a00::/32"), 1)]
        assert to_minimal_vrps(vrps, announced) == []

    def test_moas_pairs_both_kept(self):
        vrps = [Vrp(p("10.0.0.0/16"), 16, 1), Vrp(p("10.0.0.0/16"), 16, 2)]
        announced = [(p("10.0.0.0/16"), 1), (p("10.0.0.0/16"), 2)]
        assert len(to_minimal_vrps(vrps, announced)) == 2

    def test_output_never_uses_maxlength(self, tiny_snapshot):
        minimal = to_minimal_vrps(tiny_snapshot.vrps, tiny_snapshot.announced)
        assert all(not vrp.uses_max_length for vrp in minimal)

    def test_valid_announced_routes_stay_valid(self, tiny_snapshot):
        """Soundness: the conversion never breaks a working route."""
        from repro.bgp import ValidationState, VrpIndex

        before = VrpIndex(tiny_snapshot.vrps)
        after = VrpIndex(to_minimal_vrps(tiny_snapshot.vrps, tiny_snapshot.announced))
        for prefix, origin in tiny_snapshot.announced:
            if before.validate(prefix, origin) is ValidationState.VALID:
                assert after.validate(prefix, origin) is ValidationState.VALID

    def test_no_unannounced_authorization_survives(self, tiny_snapshot):
        """Completeness: zero forged-origin subprefix surface remains."""
        from repro.core import analyze_vrps

        minimal = to_minimal_vrps(tiny_snapshot.vrps, tiny_snapshot.announced)
        report = analyze_vrps(minimal, tiny_snapshot.announced)
        assert report.vulnerable_vrps == 0
        assert report.non_minimal_vrps == 0

    def test_duplicate_announcements_collapse(self):
        vrps = [Vrp(p("10.0.0.0/16"), 16, 1)]
        announced = [(p("10.0.0.0/16"), 1)] * 3
        assert len(to_minimal_vrps(vrps, announced)) == 1


class TestMinimalRoaFor:
    def test_paper_conversion(self):
        """§6: "(1) identify the IP prefixes that are made valid by that
        ROA and are announced ... (2) modify the ROA"."""
        roa = Roa(111, [RoaPrefix(p("168.122.0.0/16"), 24)])
        announced = [
            (p("168.122.0.0/16"), 111),
            (p("168.122.225.0/24"), 111),
            (p("168.122.0.0/25"), 111),  # beyond maxLength: not valid
        ]
        minimal = minimal_roa_for(roa, announced)
        assert minimal == Roa(
            111, [p("168.122.0.0/16"), p("168.122.225.0/24")]
        )
        assert not minimal.uses_max_length

    def test_useless_roa_returns_none(self):
        roa = Roa(1, [RoaPrefix(p("10.0.0.0/16"), 24)])
        assert minimal_roa_for(roa, [(p("10.0.0.0/16"), 2)]) is None

    def test_accepts_prebuilt_index(self):
        roa = Roa(1, [RoaPrefix(p("10.0.0.0/16"), 24)])
        index = build_origin_index([(p("10.0.0.0/16"), 1)])
        assert minimal_roa_for(roa, index) == Roa(1, [p("10.0.0.0/16")])


class TestAdditionalPrefixCount:
    def test_counts_only_new_prefixes(self):
        vrps = [Vrp(p("10.0.0.0/16"), 24, 1)]
        announced = [
            (p("10.0.0.0/16"), 1),   # already a VRP prefix: not additional
            (p("10.0.1.0/24"), 1),   # newly needed
            (p("10.0.2.0/24"), 1),   # newly needed
        ]
        assert additional_prefix_count(vrps, announced) == 2

    def test_zero_when_already_minimal(self):
        vrps = [Vrp(p("10.0.0.0/16"), 16, 1)]
        announced = [(p("10.0.0.0/16"), 1)]
        assert additional_prefix_count(vrps, announced) == 0

    def test_matches_snapshot_arithmetic(self, tiny_snapshot):
        vrps = tiny_snapshot.vrps
        announced = tiny_snapshot.announced
        minimal = to_minimal_vrps(vrps, announced)
        existing = {(v.prefix, v.asn) for v in vrps}
        expected = sum(1 for v in minimal if (v.prefix, v.asn) not in existing)
        assert additional_prefix_count(vrps, announced) == expected


class TestBuildOriginIndex:
    def test_moas_prefix_keeps_all_origins(self):
        index = build_origin_index([(p("10.0.0.0/16"), 1), (p("10.0.0.0/16"), 2)])
        assert index[4].get(p("10.0.0.0/16")) == {1, 2}

    def test_families_separated(self):
        index = build_origin_index([(p("10.0.0.0/16"), 1), (p("2a00::/16"), 1)])
        assert set(index) == {4, 6}
