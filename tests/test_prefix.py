"""Unit and property tests for repro.netbase.prefix."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netbase import AF_INET, AF_INET6, Prefix
from repro.netbase.errors import PrefixLengthError, PrefixParseError

# ----------------------------------------------------------------------
# Parsing and formatting
# ----------------------------------------------------------------------


class TestParsing:
    def test_parse_ipv4(self):
        p = Prefix.parse("168.122.0.0/16")
        assert p.family == AF_INET
        assert p.length == 16
        assert p.value == (168 << 24) | (122 << 16)

    def test_parse_ipv4_host_default_length(self):
        assert Prefix.parse("10.1.2.3").length == 32

    def test_parse_normalizes_host_bits(self):
        assert Prefix.parse("10.1.2.3/8") == Prefix.parse("10.0.0.0/8")

    def test_parse_ipv6(self):
        p = Prefix.parse("2001:db8::/32")
        assert p.family == AF_INET6
        assert p.length == 32
        assert p.value == 0x20010DB8 << 96

    def test_parse_ipv6_full_form(self):
        p = Prefix.parse("2001:0db8:0000:0000:0000:0000:0000:0001/128")
        assert str(p) == "2001:db8::1/128"

    def test_parse_ipv6_embedded_ipv4(self):
        p = Prefix.parse("::ffff:192.0.2.0/120")
        assert p.family == AF_INET6

    def test_parse_zero_length(self):
        assert Prefix.parse("0.0.0.0/0").length == 0

    @pytest.mark.parametrize(
        "bad",
        [
            "256.1.1.1/8",
            "1.2.3/8",
            "1.2.3.4.5/8",
            "01.2.3.4/8",
            "10.0.0.0/33",
            "10.0.0.0/-1",
            "10.0.0.0/x",
            "2001:db8::/129",
            ":::/16",
            "1:2:3:4:5:6:7/64",
            "2001:db8::1::2/64",
            "zzzz::/16",
        ],
    )
    def test_parse_rejects_garbage(self, bad):
        with pytest.raises((PrefixParseError, PrefixLengthError)):
            Prefix.parse(bad)

    def test_str_round_trip_ipv4(self):
        text = "87.254.32.0/19"
        assert str(Prefix.parse(text)) == text

    def test_ipv6_rfc5952_compression(self):
        assert str(Prefix.parse("2001:0:0:1::/64")) == "2001:0:0:1::/64"
        assert str(Prefix.parse("::1/128")) == "::1/128"
        assert str(Prefix.parse("1:0:0:2:0:0:0:3/128")) == "1:0:0:2::3/128"


class TestBits:
    def test_bits_of_known_prefix(self):
        assert Prefix.parse("160.0.0.0/4").bits() == "1010"

    def test_bits_empty_for_default_route(self):
        assert Prefix.parse("0.0.0.0/0").bits() == ""

    def test_from_bits_round_trip(self):
        p = Prefix.parse("87.254.32.0/19")
        assert Prefix.from_bits(AF_INET, p.bits()) == p

    def test_from_bits_rejects_too_long(self):
        with pytest.raises(PrefixLengthError):
            Prefix.from_bits(AF_INET, "0" * 33)


# ----------------------------------------------------------------------
# Containment and tree arithmetic
# ----------------------------------------------------------------------


class TestCovering:
    def test_covers_subprefix(self, example_prefix):
        assert example_prefix.covers(Prefix.parse("168.122.225.0/24"))

    def test_covers_self(self, example_prefix):
        assert example_prefix.covers(example_prefix)

    def test_does_not_cover_sibling_space(self, example_prefix):
        assert not example_prefix.covers(Prefix.parse("168.123.0.0/24"))

    def test_does_not_cover_shorter(self, example_prefix):
        assert not example_prefix.covers(Prefix.parse("168.0.0.0/8"))

    def test_covers_requires_same_family(self):
        assert not Prefix.parse("0.0.0.0/0").covers(Prefix.parse("::/0"))

    def test_covers_properly_excludes_self(self, example_prefix):
        assert not example_prefix.covers_properly(example_prefix)
        assert example_prefix.covers_properly(Prefix.parse("168.122.0.0/17"))

    def test_overlaps_is_symmetric(self, example_prefix):
        sub = Prefix.parse("168.122.4.0/24")
        assert example_prefix.overlaps(sub) and sub.overlaps(example_prefix)

    def test_children_of_example(self, example_prefix):
        assert str(example_prefix.left_child()) == "168.122.0.0/17"
        assert str(example_prefix.right_child()) == "168.122.128.0/17"

    def test_parent_inverts_children(self, example_prefix):
        assert example_prefix.left_child().parent() == example_prefix
        assert example_prefix.right_child().parent() == example_prefix

    def test_sibling_flips_last_bit(self, example_prefix):
        left = example_prefix.left_child()
        assert left.sibling() == example_prefix.right_child()
        assert left.sibling().sibling() == left

    def test_is_left_child(self, example_prefix):
        assert example_prefix.left_child().is_left_child()
        assert not example_prefix.right_child().is_left_child()

    def test_default_route_has_no_parent_or_sibling(self):
        root = Prefix.parse("0.0.0.0/0")
        with pytest.raises(PrefixLengthError):
            root.parent()
        with pytest.raises(PrefixLengthError):
            root.sibling()

    def test_host_prefix_has_no_children(self):
        host = Prefix.parse("10.0.0.1/32")
        with pytest.raises(PrefixLengthError):
            host.left_child()

    def test_subprefixes_enumeration(self, example_prefix):
        subs = list(example_prefix.subprefixes(18))
        assert len(subs) == 4
        assert subs[0] == Prefix.parse("168.122.0.0/18")
        assert subs[-1] == Prefix.parse("168.122.192.0/18")
        assert all(example_prefix.covers(s) for s in subs)

    def test_subprefixes_same_length_is_identity(self, example_prefix):
        assert list(example_prefix.subprefixes(16)) == [example_prefix]

    def test_subprefixes_rejects_shorter(self, example_prefix):
        with pytest.raises(PrefixLengthError):
            list(example_prefix.subprefixes(8))

    def test_count_subprefixes(self, example_prefix):
        assert example_prefix.count_subprefixes(24) == 256
        assert example_prefix.count_subprefixes(8) == 0

    def test_truncate(self):
        assert Prefix.parse("10.1.2.0/24").truncate(8) == Prefix.parse("10.0.0.0/8")
        with pytest.raises(PrefixLengthError):
            Prefix.parse("10.0.0.0/8").truncate(16)

    def test_address_range(self, example_prefix):
        assert example_prefix.first_address() == (168 << 24) | (122 << 16)
        assert example_prefix.last_address() == (168 << 24) | (122 << 16) | 0xFFFF


class TestOrderingAndHashing:
    def test_sort_groups_ancestors_first(self):
        prefixes = [
            Prefix.parse("10.0.0.0/16"),
            Prefix.parse("10.0.0.0/8"),
            Prefix.parse("10.0.1.0/24"),
            Prefix.parse("9.0.0.0/8"),
        ]
        ordered = sorted(prefixes)
        assert [str(p) for p in ordered] == [
            "9.0.0.0/8",
            "10.0.0.0/8",
            "10.0.0.0/16",
            "10.0.1.0/24",
        ]

    def test_families_sort_v4_before_v6(self):
        assert Prefix.parse("255.0.0.0/8") < Prefix.parse("::/0")

    def test_hashable_and_equal(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.255.255.255/8")
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_repr_is_informative(self, example_prefix):
        assert "168.122.0.0/16" in repr(example_prefix)


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------

v4_prefixes = st.builds(
    Prefix,
    st.just(AF_INET),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=0, max_value=32),
)
v6_prefixes = st.builds(
    Prefix,
    st.just(AF_INET6),
    st.integers(min_value=0, max_value=2**128 - 1),
    st.integers(min_value=0, max_value=128),
)
any_prefix = st.one_of(v4_prefixes, v6_prefixes)


class TestProperties:
    @given(any_prefix)
    def test_parse_str_round_trip(self, prefix):
        assert Prefix.parse(str(prefix)) == prefix

    @given(any_prefix)
    def test_bits_round_trip(self, prefix):
        assert Prefix.from_bits(prefix.family, prefix.bits()) == prefix

    @given(any_prefix)
    def test_children_are_covered_and_disjoint(self, prefix):
        if prefix.length >= prefix.max_family_length:
            return
        left, right = prefix.left_child(), prefix.right_child()
        assert prefix.covers(left) and prefix.covers(right)
        assert not left.covers(right) and not right.covers(left)
        assert left != right

    @given(any_prefix)
    def test_covering_matches_address_range(self, prefix):
        if prefix.length >= prefix.max_family_length:
            return
        sub = prefix.right_child()
        assert prefix.first_address() <= sub.first_address()
        assert sub.last_address() <= prefix.last_address()

    @given(v4_prefixes, v4_prefixes)
    def test_covers_iff_range_contained(self, a, b):
        range_contained = (
            a.first_address() <= b.first_address()
            and b.last_address() <= a.last_address()
        )
        assert a.covers(b) == (range_contained and a.length <= b.length)

    @given(any_prefix)
    def test_sibling_is_involution(self, prefix):
        if prefix.length == 0:
            return
        assert prefix.sibling().sibling() == prefix
        assert prefix.sibling().parent() == prefix.parent()
