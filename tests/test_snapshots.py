"""Tests for the weekly snapshot series (Figure 3's x axis)."""

from __future__ import annotations

import pytest

from repro.data import (
    GeneratorConfig,
    SeriesConfig,
    WEEKLY_LABELS,
    generate_weekly_series,
)


@pytest.fixture(scope="module")
def series():
    return generate_weekly_series(
        SeriesConfig(base=GeneratorConfig(scale=0.003, seed=11))
    )


class TestWeeklySeries:
    def test_eight_weeks_with_paper_dates(self, series):
        assert len(series) == 8
        assert tuple(s.label for s in series) == WEEKLY_LABELS
        assert WEEKLY_LABELS[0] == "2017-04-13"
        assert WEEKLY_LABELS[-1] == "2017-06-01"

    def test_distinct_seeds_per_week(self, series):
        seeds = {snapshot.config.seed for snapshot in series}
        assert len(seeds) == 8

    def test_final_week_matches_base_config(self, series):
        final = series[-1]
        assert final.config.scale == pytest.approx(0.003)

    def test_table_grows_on_average(self):
        """With growth rates amplified, the trend must be visible."""
        grown = generate_weekly_series(
            SeriesConfig(
                base=GeneratorConfig(scale=0.003, seed=11),
                table_growth_per_week=0.2,
                rpki_growth_per_week=0.2,
            )
        )
        first_half = sum(len(s.announced) for s in grown[:4])
        second_half = sum(len(s.announced) for s in grown[4:])
        assert second_half > first_half

    def test_rpki_grows_on_average(self):
        grown = generate_weekly_series(
            SeriesConfig(
                base=GeneratorConfig(scale=0.003, seed=11),
                table_growth_per_week=0.0,
                rpki_growth_per_week=0.2,
            )
        )
        assert len(grown[-1].roas) > len(grown[0].roas)

    def test_every_week_carries_vrps_and_pairs(self, series):
        for snapshot in series:
            assert snapshot.vrps
            assert snapshot.announced

    def test_deterministic(self):
        config = SeriesConfig(base=GeneratorConfig(scale=0.002, seed=4))
        a = generate_weekly_series(config)
        b = generate_weekly_series(config)
        assert all(
            x.announced == y.announced and x.roas == y.roas
            for x, y in zip(a, b)
        )
