"""Tests for certificates, signed objects, manifests, and CRLs."""

from __future__ import annotations

import random

import pytest

from repro.crypto import generate_keypair
from repro.netbase import Prefix
from repro.netbase.errors import ValidationError
from repro.rpki import (
    AsRange,
    Crl,
    INHERIT,
    Manifest,
    ResourceCertificate,
    Roa,
    RoaPrefix,
    SignedObject,
    sha256_hex,
)
from repro.rpki.oids import OID_ROA_ECONTENT


def p(text: str) -> Prefix:
    return Prefix.parse(text)


@pytest.fixture(scope="module")
def issuer_key():
    return generate_keypair(1024, random.Random(1))


@pytest.fixture(scope="module")
def subject_key():
    return generate_keypair(1024, random.Random(2))


@pytest.fixture(scope="module")
def ca_cert(issuer_key):
    return ResourceCertificate.build_and_sign(
        serial=1,
        issuer="TA",
        subject="TA",
        public_key=issuer_key.public,
        not_before=0,
        not_after=10_000,
        is_ca=True,
        ip_resources=(p("10.0.0.0/8"), p("2001:db8::/32")),
        as_resources=(AsRange(0, 2**32 - 1),),
        issuer_key=issuer_key,
    )


class TestAsRange:
    def test_contains(self):
        r = AsRange(10, 20)
        assert r.contains(10) and r.contains(20) and not r.contains(21)

    def test_contains_range(self):
        assert AsRange(0, 100).contains_range(AsRange(5, 10))
        assert not AsRange(5, 10).contains_range(AsRange(0, 100))

    def test_inverted_rejected(self):
        with pytest.raises(ValidationError):
            AsRange(5, 1)

    def test_str(self):
        assert str(AsRange(7, 7)) == "AS7"
        assert str(AsRange(1, 5)) == "AS1-AS5"


class TestCertificate:
    def test_self_signed_verifies(self, ca_cert, issuer_key):
        assert ca_cert.verify_signature(issuer_key.public)

    def test_der_round_trip(self, ca_cert):
        assert ResourceCertificate.from_der(ca_cert.to_der()) == ca_cert

    def test_der_round_trip_inherit(self, issuer_key, subject_key):
        cert = ResourceCertificate.build_and_sign(
            serial=7,
            issuer="TA",
            subject="child",
            public_key=subject_key.public,
            not_before=0,
            not_after=100,
            is_ca=True,
            ip_resources=INHERIT,
            as_resources=INHERIT,
            issuer_key=issuer_key,
        )
        decoded = ResourceCertificate.from_der(cert.to_der())
        assert decoded.ip_resources == INHERIT
        assert decoded.as_resources == INHERIT

    def test_tampered_der_fails_signature(self, ca_cert, issuer_key):
        der = bytearray(ca_cert.to_der())
        # flip a bit inside the TBS (early in the blob)
        der[10] ^= 0x01
        try:
            mangled = ResourceCertificate.from_der(bytes(der))
        except ValidationError:
            return  # structurally destroyed: also acceptable
        assert not mangled.verify_signature(issuer_key.public)

    def test_validity_window(self, ca_cert):
        assert ca_cert.valid_at(0) and ca_cert.valid_at(10_000)
        assert not ca_cert.valid_at(10_001)

    def test_inverted_window_rejected(self, issuer_key):
        with pytest.raises(ValidationError):
            ResourceCertificate(
                serial=1, issuer="x", subject="y",
                public_key=issuer_key.public,
                not_before=10, not_after=5, is_ca=True,
                ip_resources=(), as_resources=(),
            )

    def test_covers_prefixes(self, ca_cert):
        assert ca_cert.covers_prefixes([p("10.1.0.0/16")])
        assert ca_cert.covers_prefixes([p("10.1.0.0/16"), p("2001:db8:1::/48")])
        assert not ca_cert.covers_prefixes([p("11.0.0.0/16")])

    def test_covers_asn(self, ca_cert):
        assert ca_cert.covers_asn(65000)

    def test_resources_within(self, ca_cert, subject_key, issuer_key):
        child = ResourceCertificate.build_and_sign(
            serial=2, issuer="TA", subject="child",
            public_key=subject_key.public,
            not_before=0, not_after=100, is_ca=True,
            ip_resources=(p("10.1.0.0/16"),),
            as_resources=(AsRange(100, 200),),
            issuer_key=issuer_key,
        )
        assert child.resources_within(ca_cert)
        overclaiming = ResourceCertificate.build_and_sign(
            serial=3, issuer="TA", subject="greedy",
            public_key=subject_key.public,
            not_before=0, not_after=100, is_ca=True,
            ip_resources=(p("11.0.0.0/16"),),
            as_resources=(AsRange(100, 200),),
            issuer_key=issuer_key,
        )
        assert not overclaiming.resources_within(ca_cert)

    def test_inherit_is_always_within(self, ca_cert, subject_key, issuer_key):
        child = ResourceCertificate.build_and_sign(
            serial=4, issuer="TA", subject="inheritor",
            public_key=subject_key.public,
            not_before=0, not_after=100, is_ca=True,
            ip_resources=INHERIT, as_resources=INHERIT,
            issuer_key=issuer_key,
        )
        assert child.resources_within(ca_cert)

    def test_inherit_covers_nothing_directly(self, subject_key, issuer_key):
        cert = ResourceCertificate.build_and_sign(
            serial=5, issuer="TA", subject="inheritor",
            public_key=subject_key.public,
            not_before=0, not_after=100, is_ca=False,
            ip_resources=INHERIT, as_resources=INHERIT,
            issuer_key=issuer_key,
        )
        assert not cert.covers_prefixes([p("10.0.0.0/16")])


class TestSignedObject:
    def _make(self, issuer_key, subject_key):
        roa = Roa(111, [RoaPrefix(p("10.1.0.0/16"), 24)])
        ee = ResourceCertificate.build_and_sign(
            serial=9, issuer="TA", subject="ee",
            public_key=subject_key.public,
            not_before=0, not_after=100, is_ca=False,
            ip_resources=(p("10.1.0.0/16"),), as_resources=(),
            issuer_key=issuer_key,
        )
        econtent = roa.to_econtent()
        return SignedObject(
            econtent_type=OID_ROA_ECONTENT,
            econtent=econtent,
            ee_cert=ee,
            signature=subject_key.sign(econtent),
        )

    def test_verify_and_round_trip(self, issuer_key, subject_key):
        signed = self._make(issuer_key, subject_key)
        assert signed.verify()
        recovered = SignedObject.from_der(signed.to_der())
        assert recovered.verify()
        assert recovered == signed

    def test_tampered_econtent_fails(self, issuer_key, subject_key):
        signed = self._make(issuer_key, subject_key)
        tampered = SignedObject(
            econtent_type=signed.econtent_type,
            econtent=signed.econtent + b"\x00",
            ee_cert=signed.ee_cert,
            signature=signed.signature,
        )
        assert not tampered.verify()

    def test_bad_der_rejected(self):
        with pytest.raises(ValidationError):
            SignedObject.from_der(b"\x30\x00")


class TestManifest:
    def test_sign_verify_round_trip(self, issuer_key):
        manifest = Manifest(
            issuer="TA", manifest_number=1, this_update=0, next_update=100,
            entries=(("a.roa", sha256_hex(b"a")), ("b.cer", sha256_hex(b"b"))),
        ).sign_with(issuer_key)
        assert manifest.verify_signature(issuer_key.public)
        recovered = Manifest.from_der(manifest.to_der())
        assert recovered == manifest

    def test_lists_checks_hash(self, issuer_key):
        manifest = Manifest(
            issuer="TA", manifest_number=1, this_update=0, next_update=100,
            entries=(("a.roa", sha256_hex(b"content")),),
        )
        assert manifest.lists("a.roa", b"content")
        assert not manifest.lists("a.roa", b"other")
        assert not manifest.lists("b.roa", b"content")

    def test_validity(self):
        manifest = Manifest("TA", 1, this_update=10, next_update=20, entries=())
        assert manifest.valid_at(10) and manifest.valid_at(20)
        assert not manifest.valid_at(9) and not manifest.valid_at(21)

    def test_entries_sorted_in_der(self, issuer_key):
        manifest = Manifest(
            issuer="TA", manifest_number=1, this_update=0, next_update=1,
            entries=(("z.roa", "00"), ("a.roa", "11")),
        ).sign_with(issuer_key)
        recovered = Manifest.from_der(manifest.to_der())
        assert recovered.entries == (("a.roa", "11"), ("z.roa", "00"))


class TestCrl:
    def test_sign_verify_round_trip(self, issuer_key):
        crl = Crl(
            issuer="TA", crl_number=3, this_update=0, next_update=50,
            revoked_serials=(9, 4),
        ).sign_with(issuer_key)
        assert crl.verify_signature(issuer_key.public)
        recovered = Crl.from_der(crl.to_der())
        assert recovered.revoked_serials == (4, 9)

    def test_revokes(self):
        crl = Crl("TA", 1, 0, 10, revoked_serials=(5,))
        assert crl.revokes(5) and not crl.revokes(6)

    def test_wrong_key_fails(self, issuer_key, subject_key):
        crl = Crl("TA", 1, 0, 10, revoked_serials=()).sign_with(issuer_key)
        assert not crl.verify_signature(subject_key.public)
