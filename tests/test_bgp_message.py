"""Tests for BGP-4 wire messages (repro.bgp.message)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp import (
    Announcement,
    AsPathSegment,
    BgpHeader,
    BgpMessageError,
    KeepaliveMessage,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
    announcement_to_update,
    decode_message,
    encode_message,
    update_to_announcements,
)
from repro.bgp.message import (
    HEADER_LENGTH,
    MARKER,
    ORIGIN_IGP,
    SEGMENT_AS_SEQUENCE,
    SEGMENT_AS_SET,
)
from repro.netbase import AF_INET, AF_INET6, Prefix


def p(text: str) -> Prefix:
    return Prefix.parse(text)


class TestHeader:
    def test_encode_shape(self):
        header = BgpHeader(23, 2)
        data = header.encode()
        assert len(data) == HEADER_LENGTH
        assert data[:16] == MARKER
        assert BgpHeader.decode(data) == header

    def test_bad_marker(self):
        data = b"\x00" * 16 + bytes([0, 19, 4])
        with pytest.raises(BgpMessageError):
            BgpHeader.decode(data)

    def test_implausible_length(self):
        data = MARKER + bytes([0xFF, 0xFF, 4])
        with pytest.raises(BgpMessageError):
            BgpHeader.decode(data)

    def test_truncated(self):
        with pytest.raises(BgpMessageError):
            BgpHeader.decode(MARKER)


class TestKeepaliveAndNotification:
    def test_keepalive_is_19_bytes(self):
        data = encode_message(KeepaliveMessage())
        assert len(data) == 19
        message, consumed = decode_message(data)
        assert message == KeepaliveMessage()
        assert consumed == 19

    def test_keepalive_body_must_be_empty(self):
        data = MARKER + bytes([0, 20, 4]) + b"\x00"
        with pytest.raises(BgpMessageError):
            decode_message(data)

    def test_notification_round_trip(self):
        message = NotificationMessage(6, 2, b"cease")
        decoded, _ = decode_message(encode_message(message))
        assert decoded == message


class TestOpen:
    def test_round_trip(self):
        message = OpenMessage(
            asn=65000, hold_time=90, bgp_identifier=0xC0A80001,
            capabilities=b"\x41\x04\x00\x00\xfd\xe8",
        )
        decoded, _ = decode_message(encode_message(message))
        assert decoded.hold_time == 90
        assert decoded.bgp_identifier == 0xC0A80001
        assert decoded.capabilities == message.capabilities

    def test_four_byte_asn_uses_as_trans(self):
        message = OpenMessage(asn=4200000000, hold_time=90, bgp_identifier=1)
        decoded, _ = decode_message(encode_message(message))
        assert decoded.asn == 23456  # AS_TRANS in the 2-byte field


class TestUpdate:
    def test_announcement_round_trip_v4(self):
        announcement = Announcement(p("168.122.0.0/16"), (3356, 111))
        update = announcement_to_update(announcement)
        decoded, _ = decode_message(encode_message(update))
        assert update_to_announcements(decoded) == [announcement]
        assert decoded.origin == ORIGIN_IGP
        assert decoded.next_hop == update.next_hop

    def test_announcement_round_trip_v6(self):
        announcement = Announcement(p("2001:db8::/32"), (6939, 65000))
        update = announcement_to_update(announcement, next_hop=0xFE80 << 112)
        decoded, _ = decode_message(encode_message(update))
        assert update_to_announcements(decoded) == [announcement]
        assert decoded.nlri_v6 == (p("2001:db8::/32"),)
        assert decoded.next_hop_v6 == 0xFE80 << 112

    def test_withdrawal_only(self):
        update = UpdateMessage(withdrawn=(p("10.0.0.0/8"), p("10.1.0.0/16")))
        decoded, _ = decode_message(encode_message(update))
        assert decoded.withdrawn == update.withdrawn
        assert update_to_announcements(decoded) == []

    def test_as_set_flattened_sorted(self):
        update = UpdateMessage(
            origin=ORIGIN_IGP,
            as_path=(
                AsPathSegment(SEGMENT_AS_SEQUENCE, (3356,)),
                AsPathSegment(SEGMENT_AS_SET, (300, 100, 200)),
            ),
            next_hop=1,
            nlri=(p("10.0.0.0/8"),),
        )
        decoded, _ = decode_message(encode_message(update))
        assert decoded.flat_as_path() == (3356, 100, 200, 300)

    def test_multiple_nlri_share_one_path(self):
        update = UpdateMessage(
            origin=ORIGIN_IGP,
            as_path=(AsPathSegment(SEGMENT_AS_SEQUENCE, (1, 2)),),
            next_hop=7,
            nlri=(p("10.0.0.0/8"), p("11.0.0.0/16"), p("12.0.0.0/24")),
        )
        announcements = update_to_announcements(update)
        assert len(announcements) == 3
        assert all(a.as_path == (1, 2) for a in announcements)

    def test_extended_length_attribute(self):
        # 80 ASNs * 4 bytes = 320 > 255 forces the extended-length flag
        long_path = AsPathSegment(SEGMENT_AS_SEQUENCE, tuple(range(1, 81)))
        update = UpdateMessage(
            origin=ORIGIN_IGP, as_path=(long_path,), next_hop=1,
            nlri=(p("10.0.0.0/8"),),
        )
        decoded, _ = decode_message(encode_message(update))
        assert decoded.flat_as_path() == tuple(range(1, 81))

    def test_zero_length_prefix_nlri(self):
        update = UpdateMessage(
            origin=ORIGIN_IGP,
            as_path=(AsPathSegment(SEGMENT_AS_SEQUENCE, (1,)),),
            next_hop=1,
            nlri=(p("0.0.0.0/0"),),
        )
        decoded, _ = decode_message(encode_message(update))
        assert decoded.nlri == (p("0.0.0.0/0"),)

    def test_bad_segment_rejected(self):
        with pytest.raises(BgpMessageError):
            AsPathSegment(9, (1,))
        with pytest.raises(BgpMessageError):
            AsPathSegment(SEGMENT_AS_SET, ())

    def test_truncated_update_body(self):
        update = announcement_to_update(Announcement(p("10.0.0.0/8"), (1,)))
        data = encode_message(update)
        with pytest.raises(BgpMessageError):
            decode_message(data[:-1] )

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**32 - 1),
                st.integers(min_value=0, max_value=32),
            ),
            min_size=1,
            max_size=12,
        ),
        st.lists(
            st.integers(min_value=1, max_value=2**32 - 1),
            min_size=1,
            max_size=12,
        ),
    )
    def test_update_round_trip_random(self, raw_prefixes, path):
        nlri = tuple(Prefix(AF_INET, v, l) for v, l in raw_prefixes)
        update = UpdateMessage(
            origin=ORIGIN_IGP,
            as_path=(AsPathSegment(SEGMENT_AS_SEQUENCE, tuple(path)),),
            next_hop=0xC0000201,
            nlri=tuple(sorted(set(nlri))),
        )
        decoded, consumed = decode_message(encode_message(update))
        assert consumed == len(encode_message(update))
        assert decoded.nlri == update.nlri
        assert decoded.flat_as_path() == tuple(path)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**128 - 1),
                st.integers(min_value=0, max_value=64),
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_mp_reach_round_trip_random(self, raw_prefixes):
        nlri = tuple(sorted({Prefix(AF_INET6, v, l) for v, l in raw_prefixes}))
        update = UpdateMessage(
            origin=ORIGIN_IGP,
            as_path=(AsPathSegment(SEGMENT_AS_SEQUENCE, (65000,)),),
            nlri_v6=nlri,
            next_hop_v6=1,
        )
        decoded, _ = decode_message(encode_message(update))
        assert decoded.nlri_v6 == nlri


class TestRouteViewsIntegration:
    def test_rib_announcements_survive_wire_form(self, tiny_snapshot):
        """Every synthetic announcement must round-trip through real
        UPDATE bytes — the collector's view of our Internet."""
        sample = [
            Announcement(prefix, (65000, origin))
            for prefix, origin in list(tiny_snapshot.announced)[:200]
        ]
        for announcement in sample:
            update = announcement_to_update(announcement)
            decoded, _ = decode_message(encode_message(update))
            assert update_to_announcements(decoded) == [announcement]
