"""Tests for attack scenarios: the §4/§5 comparisons, deterministic."""

from __future__ import annotations

import random

import pytest

from repro.bgp import (
    AttackKind,
    AttackScenario,
    VrpIndex,
    evaluate_attack,
)
from repro.netbase import Prefix
from repro.netbase.errors import ReproError
from repro.rpki import Vrp


def p(text: str) -> Prefix:
    return Prefix.parse(text)


P16 = p("168.122.0.0/16")
P24 = p("168.122.0.0/24")

#: the non-minimal ROA of §4: (168.122.0.0/16-24, AS 111)
LOOSE = VrpIndex([Vrp(P16, 24, 111)])
#: the minimal ROA of §5: (168.122.0.0/16, AS 111)
MINIMAL = VrpIndex([Vrp(P16, 16, 111)])


class TestScenarioConstruction:
    def test_forged_origin_seed_includes_victim(self):
        scenario = AttackScenario(
            AttackKind.FORGED_ORIGIN_SUBPREFIX, 111, 666, P16, P24
        )
        assert scenario.attacker_seed().path == (666, 111)
        assert scenario.is_subprefix_attack

    def test_plain_hijack_seed_is_attacker_only(self):
        scenario = AttackScenario(AttackKind.SUBPREFIX_HIJACK, 111, 666, P16, P24)
        assert scenario.attacker_seed().path == (666,)

    def test_attack_prefix_must_be_covered(self):
        with pytest.raises(ReproError):
            AttackScenario(
                AttackKind.SUBPREFIX_HIJACK, 111, 666, P16, p("9.9.9.0/24")
            )

    def test_unknown_kind_rejected(self):
        """Regression: an unknown kind used to silently degrade to a
        plain-origin hijack; it must now fail loudly."""
        with pytest.raises(ReproError, match="unknown attack kind"):
            AttackScenario("fat-finger-hijack", 111, 666, P16, P24)

    def test_string_kind_coerced_to_enum(self):
        scenario = AttackScenario("forged-origin", 111, 666, P16, P16)
        assert scenario.kind is AttackKind.FORGED_ORIGIN
        assert scenario.attacker_seed().path == (666, 111)

    def test_kind_enum_semantics(self):
        assert AttackKind("subprefix-hijack") is AttackKind.SUBPREFIX_HIJACK
        assert str(AttackKind.FORGED_ORIGIN_SUBPREFIX) == (
            "forged-origin-subprefix"
        )
        assert AttackKind.FORGED_ORIGIN.forges_origin
        assert not AttackKind.FORGED_ORIGIN.is_subprefix
        assert AttackKind.SUBPREFIX_HIJACK.is_subprefix
        assert not AttackKind.PREFIX_HIJACK.forges_origin


class TestPaperClaims:
    """§4/§5 of the paper, quantified on the fixture topology."""

    def test_subprefix_hijack_without_rpki_captures_everything(
        self, chain_topology
    ):
        scenario = AttackScenario(AttackKind.SUBPREFIX_HIJACK, 111, 666, P16, P24)
        outcome = evaluate_attack(chain_topology, scenario)
        assert outcome.attacker_fraction == 1.0

    def test_rpki_stops_plain_subprefix_hijack(self, chain_topology):
        """§2: with any covering ROA, the hijack announcement is invalid."""
        scenario = AttackScenario(AttackKind.SUBPREFIX_HIJACK, 111, 666, P16, P24)
        outcome = evaluate_attack(chain_topology, scenario, vrp_index=MINIMAL)
        assert outcome.attacker_fraction == 0.0
        assert outcome.victim_fraction == 1.0
        assert outcome.attack_route_filtered

    def test_forged_origin_subprefix_beats_nonminimal_roa(self, chain_topology):
        """§4: the attack is as bad as an unprotected subprefix hijack."""
        scenario = AttackScenario(
            AttackKind.FORGED_ORIGIN_SUBPREFIX, 111, 666, P16, P24
        )
        outcome = evaluate_attack(chain_topology, scenario, vrp_index=LOOSE)
        assert outcome.attacker_fraction == 1.0
        assert not outcome.attack_route_filtered

    def test_minimal_roa_stops_forged_origin_subprefix(self, chain_topology):
        """§5: with a minimal ROA the hijacker's /24 is invalid."""
        scenario = AttackScenario(
            AttackKind.FORGED_ORIGIN_SUBPREFIX, 111, 666, P16, P24
        )
        outcome = evaluate_attack(chain_topology, scenario, vrp_index=MINIMAL)
        assert outcome.attacker_fraction == 0.0
        assert outcome.attack_route_filtered

    def test_fallback_same_prefix_attack_splits_traffic(self, chain_topology):
        """§5: "they must attack the whole /16" — and then traffic splits."""
        scenario = AttackScenario(AttackKind.FORGED_ORIGIN, 111, 666, P16, P16)
        outcome = evaluate_attack(chain_topology, scenario, vrp_index=MINIMAL)
        assert 0.0 < outcome.attacker_fraction < 1.0
        assert outcome.victim_fraction > outcome.attacker_fraction

    def test_attack_ordering_on_random_topology(self, small_topology):
        """The §4/§5 ordering must hold on a larger random graph too."""
        rng = random.Random(4)
        stubs = sorted(small_topology.stub_ases())
        victim, attacker = rng.sample(stubs, 2)
        loose = VrpIndex([Vrp(P16, 24, victim)])
        minimal = VrpIndex([Vrp(P16, 16, victim)])

        forged_sub = AttackScenario(
            AttackKind.FORGED_ORIGIN_SUBPREFIX, victim, attacker, P16, P24
        )
        forged_same = AttackScenario(
            AttackKind.FORGED_ORIGIN, victim, attacker, P16, P16
        )
        sub_loose = evaluate_attack(small_topology, forged_sub, vrp_index=loose)
        sub_minimal = evaluate_attack(small_topology, forged_sub, vrp_index=minimal)
        same_minimal = evaluate_attack(
            small_topology, forged_same, vrp_index=minimal
        )
        assert sub_loose.attacker_fraction == 1.0
        assert sub_minimal.attacker_fraction == 0.0
        assert same_minimal.attacker_fraction < sub_loose.attacker_fraction

    def test_outcome_fractions_sum_to_one(self, chain_topology):
        scenario = AttackScenario(AttackKind.FORGED_ORIGIN, 111, 666, P16, P16)
        outcome = evaluate_attack(chain_topology, scenario, vrp_index=MINIMAL)
        total = (
            outcome.attacker_fraction
            + outcome.victim_fraction
            + outcome.disconnected_fraction
        )
        assert total == pytest.approx(1.0)

    def test_partial_deployment_not_reported_filtered(self, chain_topology):
        """Regression: a same-prefix INVALID announcement used to be
        reported as filtered-everywhere even when only a handful of
        ASes validate."""
        scenario = AttackScenario(
            AttackKind.PREFIX_HIJACK, 111, 666, P16, P16
        )
        partial = evaluate_attack(
            chain_topology, scenario, vrp_index=MINIMAL,
            validating_ases=frozenset({10}),
        )
        assert not partial.attack_route_filtered
        assert partial.attacker_fraction > 0.0

        universal = evaluate_attack(
            chain_topology, scenario, vrp_index=MINIMAL,
        )
        assert universal.attack_route_filtered
        assert universal.attacker_fraction == 0.0

        explicit_all = evaluate_attack(
            chain_topology, scenario, vrp_index=MINIMAL,
            validating_ases=frozenset(chain_topology.ases),
        )
        assert explicit_all.attack_route_filtered

    def test_str_is_readable(self, chain_topology):
        scenario = AttackScenario(AttackKind.FORGED_ORIGIN, 111, 666, P16, P16)
        outcome = evaluate_attack(chain_topology, scenario, vrp_index=MINIMAL)
        assert "forged-origin" in str(outcome)
