"""Tests for repro.obs — the unified telemetry layer.

Covers the metrics registry (instruments, namespaced views, the null
off-switch, Prometheus exposition), the span tracer (no-op fast path,
Chrome trace export), the progress reporter, and — the layer's two
hard invariants — that instrumenting a run changes no result byte
under either executor, and that every subsystem's instruments actually
record on a real run.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.bgp.fastprop import PropagationWorkspace
from repro.data import TopologyProfile, generate_topology
from repro.exper import (
    ExperimentRunner,
    ExperimentSpec,
    MaxLengthLooseRoa,
    MinimalRoa,
    ScenarioCell,
)
from repro.obs import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    NullRegistry,
    ProgressReporter,
    Tracer,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs import trace as trace_mod
from repro.results import JsonlSink, MemorySink
import random


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.inc(3)
        gauge.dec(6)
        assert gauge.value == 2

    def test_high_water_mark(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.set(2)
        gauge.inc(1)
        assert gauge.value == 3
        assert gauge.max_value == 5


class TestLatencyHistogram:
    def test_zero_duration_lands_in_bucket_zero(self):
        histogram = LatencyHistogram("h")
        histogram.observe(0.0)
        counts = histogram.bucket_counts()
        assert counts[0] == 1
        assert sum(counts) == histogram.count == 1
        # Quantiles of an all-sub-us distribution report the smallest
        # bucket's upper bound.
        assert histogram.quantile(0.5) == LatencyHistogram.bucket_upper_seconds(0)

    def test_huge_duration_lands_in_overflow_bucket(self):
        histogram = LatencyHistogram("h")
        histogram.observe(3600.0)  # one hour >> the 2^22 us top bucket
        counts = histogram.bucket_counts()
        assert counts[-1] == 1
        assert histogram.quantile(0.99) == LatencyHistogram.bucket_upper_seconds(
            LatencyHistogram.BUCKETS - 1
        )

    def test_observe_many_matches_repeated_observe(self):
        many = LatencyHistogram("many")
        loop = LatencyHistogram("loop")
        many.observe_many(0.000128, 1000)
        for _ in range(1000):
            loop.observe(0.000128)
        assert many.count == loop.count == 1000
        assert many.bucket_counts() == loop.bucket_counts()
        assert many.snapshot() == pytest.approx(loop.snapshot())

    def test_snapshot_mean_consistent_with_totals(self):
        histogram = LatencyHistogram("h")
        histogram.observe_many(0.002, 10)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 10
        assert snapshot["mean_us"] == pytest.approx(2000.0)
        assert histogram.total_seconds == pytest.approx(0.02)

    def test_empty_quantile_is_zero(self):
        assert LatencyHistogram("h").quantile(0.99) == 0.0


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="Counter"):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_view_prefixes_names(self):
        registry = MetricsRegistry()
        view = registry.view("serve")
        assert view.counter("queries").name == "serve.queries"
        nested = view.view("rtr")
        assert nested.counter("pdus").name == "serve.rtr.pdus"
        # The same dotted name through the registry is the same object.
        assert view.counter("queries") is registry.counter("serve.queries")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("exper.trials").inc(7)
        registry.gauge("exper.inflight").set(2)
        registry.histogram("exper.latency").observe(0.001)
        snapshot = registry.snapshot()
        assert snapshot["exper.trials"] == 7
        assert snapshot["exper.inflight"] == 2
        assert snapshot["exper.latency"]["count"] == 1
        json.dumps(snapshot)  # JSON-ready, by contract

    def test_enabled_flag(self):
        assert MetricsRegistry().enabled
        assert not NullRegistry().enabled
        assert MetricsRegistry().view("x").enabled
        assert not NullRegistry().view("x").enabled


class TestNullRegistry:
    def test_instruments_do_nothing(self):
        registry = NullRegistry()
        counter = registry.counter("a")
        counter.inc(100)
        assert counter.value == 0
        histogram = registry.histogram("h")
        histogram.observe(1.0)
        assert histogram.count == 0
        assert registry.snapshot() == {}
        assert registry.render_prometheus() == ""

    def test_use_registry_swaps_and_restores(self):
        before = get_registry()
        with use_registry(NULL_REGISTRY) as registry:
            assert registry is NULL_REGISTRY
            assert get_registry() is NULL_REGISTRY
        assert get_registry() is before

    def test_set_registry_returns_previous(self):
        before = get_registry()
        fresh = MetricsRegistry()
        assert set_registry(fresh) is before
        try:
            assert get_registry() is fresh
        finally:
            set_registry(before)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------


def parse_prometheus(text: str) -> tuple[dict, dict]:
    """Parse an exposition into ({name_or_series: value}, {name: type}).

    Strict line-by-line: every line must be either a ``# TYPE``
    comment or ``<series> <number>``.
    """
    values: dict[str, float] = {}
    types: dict[str, str] = {}
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            types[name] = kind
            continue
        assert not line.startswith("#"), f"unexpected comment: {line!r}"
        series, value = line.rsplit(" ", 1)
        values[series] = float(value)
    return values, types


class TestPrometheusExposition:
    def test_every_line_parses(self):
        registry = MetricsRegistry()
        registry.counter("serve.queries").inc(3)
        registry.gauge("exper.inflight").set(1.5)
        registry.histogram("serve.query_latency").observe(0.000100)
        values, types = parse_prometheus(registry.render_prometheus())
        assert types == {
            "exper_inflight": "gauge",
            "serve_queries": "counter",
            "serve_query_latency": "histogram",
        }
        assert values["serve_queries"] == 3
        assert values["exper_inflight"] == 1.5

    def test_counter_monotonic_across_snapshots(self):
        registry = MetricsRegistry()
        counter = registry.counter("serve.queries")
        last = 0.0
        for _ in range(5):
            counter.inc(2)
            values, _ = parse_prometheus(registry.render_prometheus())
            assert values["serve_queries"] >= last
            last = values["serve_queries"]
        assert last == 10

    def test_histogram_buckets_cumulative_and_sum_to_count(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("exper.trial_latency")
        for seconds in (0.0, 0.000002, 0.000002, 0.040, 100.0):
            histogram.observe(seconds)
        values, _ = parse_prometheus(registry.render_prometheus())
        buckets = {
            series: value
            for series, value in values.items()
            if series.startswith("exper_trial_latency_bucket")
        }
        # Bucket series are cumulative in le order and end at +Inf
        # with the total count.
        bounds = []
        for series in buckets:
            le = series.split('le="')[1].rstrip('"}')
            bounds.append(float("inf") if le == "+Inf" else float(le))
        ordered = [
            buckets[series]
            for _, series in sorted(zip(bounds, buckets), key=lambda p: p[0])
        ]
        assert ordered == sorted(ordered)
        assert ordered[-1] == 5
        assert values["exper_trial_latency_count"] == 5
        assert values["exper_trial_latency_sum"] == pytest.approx(
            100.040004, rel=1e-6
        )

    def test_names_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("results.bytes-written").inc()
        values, types = parse_prometheus(registry.render_prometheus())
        assert "results_bytes_written" in values
        assert types["results_bytes_written"] == "counter"


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------


class TestTracer:
    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer()
        assert tracer.span("x") is tracer.span("y")
        with tracer.span("x"):
            pass
        assert len(tracer) == 0

    def test_enabled_span_records_complete_event(self):
        tracer = Tracer()
        tracer.enabled = True
        with tracer.span("propagate", cell="minimal"):
            pass
        (event,) = tracer.events()
        assert event["name"] == "propagate"
        assert event["ph"] == "X"
        assert event["dur"] >= 0
        assert event["args"] == {"cell": "minimal"}

    def test_instant_event(self):
        tracer = Tracer()
        tracer.enabled = True
        tracer.instant("stopped", fraction_index=1)
        (event,) = tracer.events()
        assert event["ph"] == "i"
        assert event["args"] == {"fraction_index": 1}

    def test_event_cap_counts_drops(self):
        tracer = Tracer(max_events=2)
        tracer.enabled = True
        for index in range(5):
            tracer.instant("e", index=index)
        assert len(tracer) == 2
        assert tracer.dropped == 3
        assert tracer.chrome_trace()["metadata"] == {"dropped_events": 3}

    def test_export_writes_loadable_chrome_trace(self, tmp_path):
        tracer = Tracer()
        tracer.enabled = True
        with tracer.span("run", trials=4):
            tracer.instant("tick")
        path = tmp_path / "trace.json"
        assert tracer.export(path) == 2
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["displayTimeUnit"] == "ms"
        names = [event["name"] for event in document["traceEvents"]]
        assert names == ["tick", "run"]  # spans record on exit
        for event in document["traceEvents"]:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(event)

    def test_clear_resets_events_and_drops(self):
        tracer = Tracer(max_events=1)
        tracer.enabled = True
        tracer.instant("a")
        tracer.instant("b")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0

    def test_module_span_fast_path_off(self):
        assert not trace_mod.get_tracer().enabled
        assert trace_mod.span("anything") is trace_mod.span("else")

    def test_enable_disable_roundtrip(self, tmp_path):
        tracer = trace_mod.enable_tracing()
        try:
            with trace_mod.span("covered"):
                pass
            assert any(
                event["name"] == "covered" for event in tracer.events()
            )
            path = tmp_path / "out.json"
            count = trace_mod.write_chrome_trace(path)
            assert count == len(tracer)
            json.loads(path.read_text(encoding="utf-8"))
        finally:
            trace_mod.disable_tracing()
            tracer.clear()


# ----------------------------------------------------------------------
# Progress reporting
# ----------------------------------------------------------------------


def small_spec(trials: int = 4) -> ExperimentSpec:
    return ExperimentSpec(
        cells=(
            ScenarioCell("forged-origin-subprefix", MinimalRoa()),
            ScenarioCell("forged-origin-subprefix", MaxLengthLooseRoa()),
        ),
        trials=trials,
        seed=7,
    )


class TestProgressReporter:
    def run_records(self, spec):
        topology = generate_topology(
            TopologyProfile(ases=60), random.Random(3)
        )
        return list(ExperimentRunner(topology, spec).iter_records())

    def test_heartbeats_follow_the_injected_clock(self):
        spec = small_spec()
        records = self.run_records(spec)
        now = [0.0]
        stream = io.StringIO()
        reporter = ProgressReporter(
            spec, stream=stream, interval=10.0, clock=lambda: now[0]
        )
        for index, record in enumerate(records):
            now[0] = float(index)  # 1 "second" per record
            reporter.record(record)
        reporter.finish()
        lines = stream.getvalue().splitlines()
        # 8 records at 1s apart with a 10s interval: no mid-run line
        # until t>=10 never happens, so only the final line is real —
        # unless the stream got one at t>=10.
        assert reporter.lines_emitted == len(lines)
        assert lines[-1].startswith("progress: 4/4 trials (100.0%)")
        assert "cells 2/2 done" in lines[-1]
        assert "done" in lines[-1]

    def test_interval_zero_emits_every_record(self):
        spec = small_spec(trials=2)
        records = self.run_records(spec)
        now = [0.0]
        stream = io.StringIO()
        reporter = ProgressReporter(
            spec, stream=stream, interval=0.0, clock=lambda: now[0]
        )
        for record in records:
            now[0] += 1.0
            reporter.record(record)
        assert reporter.lines_emitted == len(records)

    def test_render_midway(self):
        spec = small_spec()
        records = self.run_records(spec)
        now = [0.0]
        reporter = ProgressReporter(
            spec, stream=io.StringIO(), interval=1e9, clock=lambda: now[0]
        )
        for record in records[: len(records) // 2]:
            reporter.record(record)
        now[0] = 2.0
        line = reporter.render()
        assert line.startswith("progress: 2/4 trials (50.0%)")
        assert "ETA" in line


# ----------------------------------------------------------------------
# The invariants: instrumented runs change nothing, and instruments
# actually record.
# ----------------------------------------------------------------------


class TestTelemetryInvariants:
    def grid(self):
        topology = generate_topology(
            TopologyProfile(ases=80), random.Random(5)
        )
        spec = small_spec(trials=3)
        return topology, spec

    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_results_byte_identical_with_telemetry_on_off(self, executor):
        topology, spec = self.grid()
        outcomes = {}
        for arm, registry in (
            ("off", NULL_REGISTRY),
            ("on", MetricsRegistry()),
        ):
            with use_registry(registry):
                runner = ExperimentRunner(
                    topology, spec, executor=executor,
                    workers=2 if executor == "process" else None,
                )
                result = runner.run(bootstrap_resamples=50)
            outcomes[arm] = json.dumps(
                {
                    "fractions": [
                        None if f is None else f for f in result.fractions
                    ],
                    "counts": list(result.trial_counts),
                    "stats": [
                        [
                            (s.cell, s.mean, s.stdev, s.ci_low, s.ci_high)
                            for s in row
                        ]
                        for row in result.stats
                    ],
                },
                sort_keys=True,
            )
        assert outcomes["on"] == outcomes["off"]

    def test_results_byte_identical_with_tracing_on(self):
        topology, spec = self.grid()
        baseline = ExperimentRunner(topology, spec).run(
            bootstrap_resamples=50
        )
        tracer = trace_mod.enable_tracing()
        try:
            traced = ExperimentRunner(topology, spec).run(
                bootstrap_resamples=50
            )
            assert len(tracer) > 0
        finally:
            trace_mod.disable_tracing()
            tracer.clear()
        assert traced == baseline

    def test_runner_and_fastprop_instruments_record(self):
        topology, spec = self.grid()
        with use_registry(MetricsRegistry()) as registry:
            result = ExperimentRunner(topology, spec).run(
                bootstrap_resamples=50
            )
        snapshot = registry.snapshot()
        total = spec.total_trials
        assert snapshot["exper.runs"] == 1
        assert snapshot["exper.trials_completed"] == total
        assert snapshot["exper.records_released"] == total * len(spec.cells)
        assert snapshot["exper.trial_latency"]["count"] == total
        # The array engine is spec'd per-cell... the default spec here
        # is the object engine; fastprop counters appear only when a
        # workspace ran.
        if spec.engine == "array":
            assert snapshot["fastprop.sweeps"] > 0
        assert result is not None

    def test_fastprop_workspace_counters(self):
        topology = generate_topology(
            TopologyProfile(ases=80), random.Random(5)
        )
        registry = MetricsRegistry()
        workspace = PropagationWorkspace(topology, registry=registry)
        spec = ExperimentSpec(
            cells=(
                ScenarioCell("forged-origin-subprefix", MinimalRoa()),
                ScenarioCell("forged-origin-subprefix", MaxLengthLooseRoa()),
            ),
            trials=2,
            seed=9,
            engine="array",
        )
        from repro.exper import evaluate_trials, materialize_trials

        trials = materialize_trials(spec, topology)
        records = list(
            evaluate_trials(topology, spec, trials, workspace=workspace)
        )
        assert records
        snapshot = registry.snapshot()
        assert snapshot["fastprop.sweeps"] > 0
        assert snapshot["fastprop.lane_resets"] == snapshot["fastprop.sweeps"]
        assert snapshot["fastprop.touched_ases"] > 0
        assert snapshot["fastprop.epochs"] >= 1
        # Identical cells in one trial: the second cell's single-seed
        # propagations replay from the profile cache.
        assert snapshot["fastprop.profile_hits"] > 0
        assert snapshot["fastprop.profile_misses"] > 0

    def test_jsonl_sink_metrics(self, tmp_path):
        topology, spec = self.grid()
        registry = MetricsRegistry()
        path = tmp_path / "run.jsonl"
        sink = JsonlSink(path, registry=registry)
        runner = ExperimentRunner(topology, spec, sink=sink)
        runner.run(bootstrap_resamples=50)
        sink.close()
        snapshot = registry.snapshot()
        records = spec.total_trials * len(spec.cells)
        assert snapshot["results.records_written"] == records
        assert snapshot["results.flush_latency"]["count"] == records
        # Every record line plus newline reached the file.
        assert snapshot["results.bytes_written"] == (
            path.stat().st_size
            - len(path.read_bytes().split(b"\n", 1)[0]) - 1
        )

    def test_sink_with_null_registry_still_writes(self, tmp_path):
        topology, spec = self.grid()
        path = tmp_path / "run.jsonl"
        with use_registry(NULL_REGISTRY):
            sink = JsonlSink(path)
            runner = ExperimentRunner(topology, spec, sink=sink)
            result = runner.run(bootstrap_resamples=50)
            sink.close()
        from repro.results import read_run

        _, records = read_run(path)
        assert len(records) == spec.total_trials * len(spec.cells)
        assert result is not None

    def test_memory_sink_unaffected(self):
        # MemorySink predates the telemetry layer; a registry swap must
        # not change its behavior.
        topology, spec = self.grid()
        sink = MemorySink()
        with use_registry(MetricsRegistry()):
            ExperimentRunner(topology, spec, sink=sink).run(
                bootstrap_resamples=50
            )
        assert len(sink.records) == spec.total_trials * len(spec.cells)


# ----------------------------------------------------------------------
# ServeMetrics rebased onto the registry
# ----------------------------------------------------------------------


class TestServeMetricsRebase:
    def test_latency_histogram_reexported(self):
        from repro.serve.metrics import LatencyHistogram as Reexported

        assert Reexported is LatencyHistogram

    def test_serve_metrics_share_registry(self):
        from repro.serve.metrics import ServeMetrics

        registry = MetricsRegistry()
        metrics = ServeMetrics(registry=registry)
        metrics.increment("queries", 3)
        metrics.observe_query(0.0001)
        assert registry.snapshot()["serve.queries"] == 4
        assert metrics["queries"] == 4
        assert metrics.snapshot()["query_latency"]["count"] == 1

    def test_serve_metrics_private_by_default(self):
        from repro.serve.metrics import ServeMetrics

        a, b = ServeMetrics(), ServeMetrics()
        a.increment("queries")
        assert b["queries"] == 0

    def test_render_prometheus_includes_derived_gauge(self):
        from repro.serve.metrics import ServeMetrics

        metrics = ServeMetrics()
        metrics.increment("connections_opened", 3)
        metrics.increment("connections_closed", 1)
        values, types = parse_prometheus(metrics.render_prometheus())
        assert values["serve_connections_active"] == 2
        assert types["serve_connections_active"] == "gauge"
        assert values["serve_connections_opened"] == 3
