"""Executable documentation: the docs cannot rot.

Three enforcement layers:

* every fenced ``json`` block in ``docs/experiments.md`` must parse as
  an :class:`~repro.exper.ExperimentSpec` and survive a JSON round
  trip;
* every ``repro-roa`` command in ``docs/experiments.md`` must exit 0
  (run via ``python -m repro.cli`` on a tiny topology; a command that
  mentions ``spec.json`` receives the nearest preceding ``json`` block
  as that file);
* every relative link in ``README.md`` and ``docs/*.md`` must resolve,
  and the tree-wide docstring policy (the DOC001 rule of
  :mod:`repro.lint`) must hold (the CI docs job runs this file).
"""

from __future__ import annotations

import json
import os
import re
import shlex
import subprocess
import sys
from pathlib import Path

import pytest

from repro.exper import ExperimentSpec

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"
EXPERIMENTS_DOC = DOCS / "experiments.md"
RESULTS_DOC = DOCS / "results.md"
OBSERVABILITY_DOC = DOCS / "observability.md"
LINTING_DOC = DOCS / "linting.md"
ROBUSTNESS_DOC = DOCS / "robustness.md"
PLATFORM_DOC = DOCS / "platform.md"

_FENCE = re.compile(r"```(\w*)\n(.*?)```", re.DOTALL)
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _fenced_blocks(text: str) -> list[tuple[str, str]]:
    return [(m.group(1), m.group(2)) for m in _FENCE.finditer(text)]


def _doc_commands(
    doc: Path = EXPERIMENTS_DOC,
) -> list[tuple[str, str | None]]:
    """(command, nearest preceding json block) pairs, in document order."""
    latest_json: str | None = None
    commands: list[tuple[str, str | None]] = []
    for language, body in _fenced_blocks(
        doc.read_text(encoding="utf-8")
    ):
        if language == "json":
            latest_json = body
            continue
        if language not in ("bash", "sh", "console", ""):
            continue
        logical: list[str] = []
        for line in body.splitlines():
            line = line.strip()
            if not line:
                continue
            if logical and logical[-1].endswith("\\"):
                logical[-1] = logical[-1][:-1] + " " + line
            else:
                logical.append(line)
        commands.extend(
            (line, latest_json)
            for line in logical
            if line.startswith("repro-roa ")
        )
    return commands


def _spec_blocks() -> list[str]:
    return [
        body
        for language, body in _fenced_blocks(
            EXPERIMENTS_DOC.read_text(encoding="utf-8")
        )
        if language == "json"
    ]


def _markdown_files() -> list[Path]:
    return [REPO / "README.md", *sorted(DOCS.glob("*.md"))]


class TestExperimentDocExamples:
    @pytest.mark.parametrize(
        "body", _spec_blocks(), ids=lambda b: f"{len(b)}B"
    )
    def test_spec_blocks_round_trip(self, body):
        spec = ExperimentSpec.from_json(body)
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_doc_has_examples_at_all(self):
        assert _spec_blocks(), "experiments.md lost its json spec blocks"
        assert _doc_commands(), "experiments.md lost its repro-roa commands"

    @pytest.mark.parametrize(
        "command,spec_json",
        _doc_commands(),
        ids=[f"cmd{i}" for i in range(len(_doc_commands()))],
    )
    def test_doc_commands_exit_zero(self, command, spec_json, tmp_path):
        argv = shlex.split(command)
        assert argv[0] == "repro-roa"
        if any("spec.json" in argument for argument in argv):
            assert spec_json is not None, (
                f"{command!r} references spec.json but no json block "
                f"precedes it"
            )
            (tmp_path / "spec.json").write_text(
                spec_json, encoding="utf-8"
            )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            part
            for part in (str(REPO / "src"), env.get("PYTHONPATH"))
            if part
        )
        completed = subprocess.run(
            [sys.executable, "-m", "repro.cli", *argv[1:]],
            cwd=tmp_path,
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert completed.returncode == 0, (
            f"{command!r} exited {completed.returncode}:\n"
            f"{completed.stderr}"
        )


class TestResultsDocExamples:
    """docs/results.md commands form one record/resume/merge session:
    they run in order, sharing a working directory, so later commands
    (resume, show, merge) see the run files earlier ones recorded."""

    def test_doc_has_commands_at_all(self):
        assert _doc_commands(RESULTS_DOC), (
            "results.md lost its repro-roa commands"
        )

    def test_commands_run_in_sequence(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            part
            for part in (str(REPO / "src"), env.get("PYTHONPATH"))
            if part
        )
        for command, _ in _doc_commands(RESULTS_DOC):
            argv = shlex.split(command)
            assert argv[0] == "repro-roa"
            completed = subprocess.run(
                [sys.executable, "-m", "repro.cli", *argv[1:]],
                cwd=tmp_path,
                env=env,
                capture_output=True,
                text=True,
                timeout=300,
            )
            assert completed.returncode == 0, (
                f"{command!r} exited {completed.returncode}:\n"
                f"{completed.stderr}"
            )


class TestObservabilityDocExamples:
    """docs/observability.md commands run in order in one working
    directory (like results.md); afterwards the ``--trace`` example
    must have left a loadable Chrome-trace JSON behind."""

    def test_doc_has_commands_at_all(self):
        assert _doc_commands(OBSERVABILITY_DOC), (
            "observability.md lost its repro-roa commands"
        )

    def test_commands_run_in_sequence(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            part
            for part in (str(REPO / "src"), env.get("PYTHONPATH"))
            if part
        )
        for command, _ in _doc_commands(OBSERVABILITY_DOC):
            argv = shlex.split(command)
            assert argv[0] == "repro-roa"
            completed = subprocess.run(
                [sys.executable, "-m", "repro.cli", *argv[1:]],
                cwd=tmp_path,
                env=env,
                capture_output=True,
                text=True,
                timeout=300,
            )
            assert completed.returncode == 0, (
                f"{command!r} exited {completed.returncode}:\n"
                f"{completed.stderr}"
            )
            if "--progress" in argv:
                assert "progress:" in completed.stderr
        trace = tmp_path / "trace.json"
        assert trace.is_file(), "the --trace example wrote no trace file"
        document = json.loads(trace.read_text(encoding="utf-8"))
        assert isinstance(document["traceEvents"], list)
        assert document["traceEvents"], "trace file has no events"


class TestLintingDocExamples:
    """docs/linting.md commands run from the repo root (the linter
    examples point at ``src/repro``, which must stay clean)."""

    def test_doc_has_commands_at_all(self):
        assert _doc_commands(LINTING_DOC), (
            "linting.md lost its repro-roa commands"
        )

    def test_commands_exit_zero_from_repo_root(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            part
            for part in (str(REPO / "src"), env.get("PYTHONPATH"))
            if part
        )
        for command, _ in _doc_commands(LINTING_DOC):
            argv = shlex.split(command)
            assert argv[0] == "repro-roa"
            completed = subprocess.run(
                [sys.executable, "-m", "repro.cli", *argv[1:]],
                cwd=REPO,
                env=env,
                capture_output=True,
                text=True,
                timeout=300,
            )
            assert completed.returncode == 0, (
                f"{command!r} exited {completed.returncode}:\n"
                f"{completed.stdout}\n{completed.stderr}"
            )


class TestRobustnessDocExamples:
    """docs/robustness.md commands run in order in one working
    directory: the chaos drills must exit 0 (the byte-equivalence
    they demonstrate is pinned by tests/test_faults.py and CI)."""

    def test_doc_has_commands_at_all(self):
        assert _doc_commands(ROBUSTNESS_DOC), (
            "robustness.md lost its repro-roa commands"
        )

    def test_commands_run_in_sequence(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            part
            for part in (str(REPO / "src"), env.get("PYTHONPATH"))
            if part
        )
        for command, _ in _doc_commands(ROBUSTNESS_DOC):
            argv = shlex.split(command)
            assert argv[0] == "repro-roa"
            completed = subprocess.run(
                [sys.executable, "-m", "repro.cli", *argv[1:]],
                cwd=tmp_path,
                env=env,
                capture_output=True,
                text=True,
                timeout=300,
            )
            assert completed.returncode == 0, (
                f"{command!r} exited {completed.returncode}:\n"
                f"{completed.stderr}"
            )
            if "--emit-plan" in argv:
                plan = json.loads(completed.stdout)
                assert plan["rules"], "emitted fault plan has no rules"


class TestPlatformDocExamples:
    """docs/platform.md commands form one job-queue session (submit,
    list, run, show, cancel, diff) sharing a working directory; the
    final diff must print the canonical comparison document."""

    def test_doc_has_commands_at_all(self):
        assert _doc_commands(PLATFORM_DOC), (
            "platform.md lost its repro-roa commands"
        )

    def test_commands_run_in_sequence(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            part
            for part in (str(REPO / "src"), env.get("PYTHONPATH"))
            if part
        )
        diff_output = None
        for command, _ in _doc_commands(PLATFORM_DOC):
            argv = shlex.split(command)
            assert argv[0] == "repro-roa"
            completed = subprocess.run(
                [sys.executable, "-m", "repro.cli", *argv[1:]],
                cwd=tmp_path,
                env=env,
                capture_output=True,
                text=True,
                timeout=300,
            )
            assert completed.returncode == 0, (
                f"{command!r} exited {completed.returncode}:\n"
                f"{completed.stderr}"
            )
            if argv[1:3] == ["jobs", "diff"]:
                diff_output = completed.stdout
        assert diff_output, "platform.md lost its jobs diff example"
        document = json.loads(diff_output)
        assert document["a"]["run"] == "job-000001"
        assert document["b"]["run"] == "job-000002"
        assert document["cells"], "diff document has no cells"


class TestDocsTree:
    def test_pages_exist(self):
        for name in (
            "architecture.md", "experiments.md", "serving.md",
            "results.md", "observability.md", "linting.md",
            "robustness.md", "platform.md",
        ):
            assert (DOCS / name).is_file(), f"docs/{name} missing"
        assert (REPO / "README.md").is_file()

    @pytest.mark.parametrize(
        "markdown", _markdown_files(), ids=lambda p: p.name
    )
    def test_relative_links_resolve(self, markdown):
        broken = []
        for target in _LINK.findall(markdown.read_text(encoding="utf-8")):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not (markdown.parent / path).exists():
                broken.append(target)
        assert not broken, f"{markdown.name}: broken links {broken}"


class TestDocstringPolicy:
    """The docstring policy is enforced tree-wide by the DOC001 lint
    rule (docs/linting.md); this pins the delegation — it covers every
    package, not just the four this file historically spot-checked."""

    def test_doc001_holds_tree_wide(self):
        from repro.lint import lint_paths, render_text

        findings = lint_paths([REPO / "src" / "repro"], rules=["DOC001"])
        assert findings == [], "\n" + render_text(findings)
