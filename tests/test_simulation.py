"""Tests for Gao–Rexford route propagation."""

from __future__ import annotations

import random

import pytest

from repro.bgp import (
    AsTopology,
    Route,
    RouteClass,
    Seed,
    SimulationError,
    ValidationState,
    VrpIndex,
    propagate_prefix,
)
from repro.netbase import Prefix
from repro.rpki import Vrp


def p(text: str) -> Prefix:
    return Prefix.parse(text)


PFX = p("168.122.0.0/16")


class TestSinglePrefix:
    def test_origin_adopts_own_route(self, chain_topology):
        routes = propagate_prefix(chain_topology, PFX, [Seed.origin(111)])
        assert routes[111].route_class is RouteClass.ORIGIN
        assert routes[111].path == (111,)

    def test_everyone_reachable(self, chain_topology):
        routes = propagate_prefix(chain_topology, PFX, [Seed.origin(111)])
        assert set(routes) == chain_topology.ases

    def test_path_classes(self, chain_topology):
        routes = propagate_prefix(chain_topology, PFX, [Seed.origin(111)])
        assert routes[10].route_class is RouteClass.CUSTOMER
        assert routes[1].route_class is RouteClass.CUSTOMER
        assert routes[2].route_class is RouteClass.PEER
        assert routes[30].route_class is RouteClass.PROVIDER
        assert routes[40].route_class is RouteClass.PROVIDER

    def test_paths_are_consistent(self, chain_topology):
        routes = propagate_prefix(chain_topology, PFX, [Seed.origin(111)])
        assert routes[1].path == (10, 111)
        assert routes[2].path == (1, 10, 111)
        assert routes[40].path == (30, 2, 1, 10, 111)

    def test_unknown_seed_rejected(self, chain_topology):
        with pytest.raises(SimulationError):
            propagate_prefix(chain_topology, PFX, [Seed.origin(31337)])

    def test_duplicate_seed_rejected(self, chain_topology):
        with pytest.raises(SimulationError):
            propagate_prefix(
                chain_topology, PFX, [Seed.origin(111), Seed.origin(111)]
            )


class TestValleyFree:
    """No produced path may violate export rules (no valleys)."""

    def _check_valley_free(self, topology, routes):
        for asn, route in routes.items():
            if route.route_class is RouteClass.ORIGIN:
                continue
            full_path = (asn,) + route.path
            # walk from the origin up: once the path direction turns
            # "down" (provider->customer) or crosses a peer edge, it
            # must never go "up" (customer->provider) or cross another
            # peering again.
            descending = False
            peer_crossings = 0
            for later, earlier in zip(full_path, full_path[1:]):
                # traffic flows later <- earlier; the announcement went
                # earlier -> later.
                if earlier in topology.customers_of(later):
                    descending = True  # announcement climbed c->p: fine early
                elif earlier in topology.peers_of(later):
                    peer_crossings += 1
                    descending = True
                else:
                    # earlier is a provider of later: announcement
                    # descended p->c; all subsequent hops (toward this
                    # AS) must also descend.
                    assert descending or earlier in topology.providers_of(later)
            assert peer_crossings <= 1

    def test_chain_topology_valley_free(self, chain_topology):
        routes = propagate_prefix(chain_topology, PFX, [Seed.origin(111)])
        self._check_valley_free(chain_topology, routes)

    def test_random_topology_valley_free(self, small_topology):
        rng = random.Random(0)
        stubs = sorted(small_topology.stub_ases())
        for _ in range(5):
            origin = rng.choice(stubs)
            routes = propagate_prefix(
                small_topology, PFX, [Seed.origin(origin)], rng=rng
            )
            self._check_valley_free(small_topology, routes)

    def test_no_loops_in_paths(self, small_topology):
        routes = propagate_prefix(
            small_topology, PFX, [Seed.origin(max(small_topology.ases))]
        )
        for asn, route in routes.items():
            if route.route_class is RouteClass.ORIGIN:
                full_path = route.path
            else:
                full_path = (asn,) + route.path
            assert len(set(full_path)) == len(full_path)


class TestPreferences:
    def test_customer_beats_shorter_peer_and_provider(self):
        """An AS with any customer route ignores peer/provider routes."""
        topo = AsTopology()
        # Origin 9 is multi-homed: a long customer chain reaches 1
        # (9 -> 3 -> 2 -> 1), while 1 also peers with 9's other
        # provider 4, offering a much shorter peer route.
        topo.add_customer_provider(9, 3)
        topo.add_customer_provider(3, 2)
        topo.add_customer_provider(2, 1)
        topo.add_customer_provider(9, 4)
        topo.add_peering(1, 4)
        routes = propagate_prefix(topo, PFX, [Seed.origin(9)])
        assert routes[1].route_class is RouteClass.CUSTOMER
        assert routes[1].path == (2, 3, 9)

    def test_shorter_path_wins_within_class(self, chain_topology):
        routes = propagate_prefix(
            chain_topology, PFX, [Seed.origin(111), Seed.origin(40)]
        )
        # AS 30 hears 40 as a direct customer: prefers it over any
        # longer customer path.
        assert routes[30].seed == 40
        assert routes[30].path == (40,)

    def test_deterministic_tie_break_lowest_neighbor(self):
        topo = AsTopology()
        topo.add_customer_provider(5, 9)
        topo.add_customer_provider(6, 9)
        topo.add_customer_provider(1, 5)
        topo.add_customer_provider(1, 6)
        # 1 announces; 9 hears two equal-length customer routes via 5, 6.
        routes = propagate_prefix(topo, PFX, [Seed.origin(1)])
        assert routes[9].path == (5, 1)

    def test_seeded_tie_break_independent_of_edge_order(self):
        """Regression: the seeded tie-break once depended on neighbor-set
        iteration order, i.e. on the order edges were inserted.  Building
        the same topology from shuffled edge lists must give identical
        seeded outcomes."""
        from repro.data.asgraph import TopologyProfile, generate_topology

        base = generate_topology(TopologyProfile(ases=80), random.Random(3))
        edges = [(a, b, kind.value == "customer" and "c2p" or "p2p")
                 for a, b, kind in base.edges()]
        origin = min(base.stub_ases())
        reference = propagate_prefix(
            base, PFX, [Seed.origin(origin)], rng=random.Random(7)
        )
        for shuffle_seed in range(5):
            shuffled = list(edges)
            random.Random(shuffle_seed).shuffle(shuffled)
            rebuilt = AsTopology.from_edges(shuffled)
            routes = propagate_prefix(
                rebuilt, PFX, [Seed.origin(origin)], rng=random.Random(7)
            )
            assert routes == reference

    def test_seeded_tie_break_draws_from_sorted_candidates(self):
        """Regression: candidate offers once accumulated in adoption
        order, so the seeded draw depended on *when* each neighbor's
        route arrived, not just on which neighbors tied.  AS 7 hears two
        equal-length phase-3 offers — one placed up front by AS 9 (an
        early customer-route adopter), one chained in later by AS 2 —
        and the draw must behave as if the list were sorted by ASN."""
        topo = AsTopology()
        topo.add_customer_provider(1, 8)   # origin 1 below X=8
        topo.add_customer_provider(8, 9)   # X below 9: 9 adopts early
        topo.add_customer_provider(2, 8)   # 2 adopts from X in phase 3
        topo.add_customer_provider(7, 9)   # 7 buys from both 9 and 2
        topo.add_customer_provider(7, 2)
        for seed in range(12):
            routes = propagate_prefix(
                topo, PFX, [Seed.origin(1)], rng=random.Random(seed)
            )
            # Replay the propagation's four draws: three single-option
            # adoptions (8, 9, 2), then the tie at AS 7 over sorted {2, 9}.
            rng = random.Random(seed)
            for _ in range(3):
                rng.choice([0])
            assert routes[7].path[0] == rng.choice([2, 9])

    def test_random_tie_break_uses_rng(self):
        topo = AsTopology()
        topo.add_customer_provider(5, 9)
        topo.add_customer_provider(6, 9)
        topo.add_customer_provider(1, 5)
        topo.add_customer_provider(1, 6)
        seen = set()
        for seed in range(20):
            routes = propagate_prefix(
                topo, PFX, [Seed.origin(1)], rng=random.Random(seed)
            )
            seen.add(routes[9].path[0])
        assert seen == {5, 6}


class TestForgedOriginSeeds:
    def test_forged_path_one_hop_longer(self, chain_topology):
        routes = propagate_prefix(
            chain_topology, PFX, [Seed.forged_origin(666, 111)]
        )
        assert routes[666].path == (666, 111)
        assert routes[20].path == (666, 111)
        assert routes[20].seed == 666

    def test_seed_attribute_tracks_attacker_not_claimed_origin(
        self, chain_topology
    ):
        routes = propagate_prefix(
            chain_topology, PFX, [Seed.forged_origin(666, 111)]
        )
        for route in routes.values():
            assert route.seed == 666
            assert route.claimed_origin == 111


class TestValidationFiltering:
    def test_invalid_announcement_dropped_everywhere(self, chain_topology):
        index = VrpIndex([Vrp(PFX, 16, 111)])
        hijack_prefix = p("168.122.0.0/24")
        assert index.validate(hijack_prefix, 666) is ValidationState.INVALID
        routes = propagate_prefix(
            chain_topology, hijack_prefix, [Seed.origin(666)], vrp_index=index
        )
        assert routes == {}

    def test_partial_validation_only_filters_validators(self, chain_topology):
        index = VrpIndex([Vrp(PFX, 16, 111)])
        hijack_prefix = p("168.122.0.0/24")
        validators = frozenset({1, 10})  # only these drop invalids
        routes = propagate_prefix(
            chain_topology, hijack_prefix, [Seed.origin(666)],
            vrp_index=index, validating_ases=validators,
        )
        assert 1 not in routes and 10 not in routes
        assert 666 in routes and 20 in routes
        # 2 still hears it via 1? no - 1 dropped it, so 2 must hear
        # nothing (1 was its only path to 666's announcement) ... but 2
        # peers with 1 only; 666 -> 20 -> 1 (dropped). So 2 is clean.
        assert 2 not in routes

    def test_valid_announcement_passes_validators(self, chain_topology):
        index = VrpIndex([Vrp(PFX, 24, 111)])
        routes = propagate_prefix(
            chain_topology, p("168.122.0.0/24"),
            [Seed.forged_origin(666, 111)], vrp_index=index,
        )
        # Everyone hears the (RPKI-valid) forged route except the
        # victim itself, which drops the path naming its own ASN.
        assert set(routes) == chain_topology.ases - {111}
