"""Tests for the repro.exper experiment engine.

Covers the scenario grammar, deterministic seed derivation, serial /
multiprocessing executor equivalence, the aggregation layer, and the
scenario diversity the legacy loops could not express (multi-attacker,
path prepending, per-AS partial ROA coverage).
"""

from __future__ import annotations

import random

import pytest

from repro.data.asgraph import TopologyProfile, generate_topology
from repro.exper import (
    AnyAsPairSampler,
    AttackConfig,
    CustomRoa,
    ExperimentRunner,
    ExperimentSpec,
    FixedPairSampler,
    MaxLengthLooseRoa,
    MinimalRoa,
    NoRoa,
    PartialCoverageRoa,
    ScenarioCell,
    StubPairSampler,
    TrialSpec,
    aggregate_records,
    derive_trial_seed,
    evaluate_trial,
    materialize_trials,
    policy_from_name,
)
from repro.netbase import Prefix
from repro.netbase.errors import ReproError
from repro.rpki import Vrp


@pytest.fixture(scope="module")
def engine_topology():
    """A 120-AS topology: big enough to be interesting, fast to sweep."""
    return generate_topology(TopologyProfile(ases=120), random.Random(8))


def two_cell_spec(**kwargs) -> ExperimentSpec:
    defaults = dict(
        cells=(
            ScenarioCell("forged-origin-subprefix", MinimalRoa()),
            ScenarioCell("forged-origin-subprefix", MaxLengthLooseRoa()),
        ),
        trials=4,
        seed=5,
    )
    defaults.update(kwargs)
    return ExperimentSpec(**defaults)


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_trial_seed(7, 0, 3) == derive_trial_seed(7, 0, 3)

    def test_distinct_across_coordinates(self):
        seeds = {
            derive_trial_seed(seed, fraction, trial)
            for seed in range(3)
            for fraction in range(3)
            for trial in range(10)
        }
        assert len(seeds) == 3 * 3 * 10

    def test_trials_are_self_contained(self, engine_topology):
        """Derived seeding: trial t does not depend on how many trials
        surround it — the property sharded runs rely on."""
        short = materialize_trials(two_cell_spec(trials=3), engine_topology)
        long = materialize_trials(two_cell_spec(trials=6), engine_topology)
        assert long[:3] == short

    def test_stream_trials_are_sequential(self, engine_topology):
        """Stream seeding deliberately couples trials (legacy replay):
        a draw consumed by trial 0 shifts everything after it."""
        spec = two_cell_spec(seeding="stream")
        trials = materialize_trials(spec, engine_topology)
        rng = random.Random(spec.seed)
        pool = StubPairSampler().population(engine_topology)
        victim, attacker = rng.sample(pool, 2)
        assert trials[0].victim == victim
        assert trials[0].attackers == (attacker,)
        assert trials[0].tie_seed == rng.getrandbits(32)

    def test_materialization_is_reproducible(self, engine_topology):
        spec = two_cell_spec(fractions=(0.0, 0.5))
        assert materialize_trials(spec, engine_topology) == (
            materialize_trials(spec, engine_topology)
        )

    def test_validators_only_drawn_for_fractions(self, engine_topology):
        universal = materialize_trials(two_cell_spec(), engine_topology)
        assert all(t.validating_ases is None for t in universal)
        partial = materialize_trials(
            two_cell_spec(fractions=(0.5,)), engine_topology
        )
        expected = round(0.5 * len(engine_topology))
        assert all(
            len(t.validating_ases) == expected for t in partial
        )


class TestExecutorEquivalence:
    @pytest.mark.parametrize("seeding", ["derived", "stream"])
    def test_process_matches_serial(self, engine_topology, seeding):
        """The headline property: byte-identical aggregated results."""
        spec = two_cell_spec(
            trials=6, fractions=(0.0, 0.5, None), seeding=seeding
        )
        serial = ExperimentRunner(
            engine_topology, spec, executor="serial"
        ).run(bootstrap_resamples=100)
        parallel = ExperimentRunner(
            engine_topology, spec, executor="process", workers=2
        ).run(bootstrap_resamples=100)
        assert serial == parallel

    def test_record_streams_carry_same_set(self, engine_topology):
        spec = two_cell_spec(trials=5)
        serial = list(
            ExperimentRunner(engine_topology, spec).iter_records()
        )
        parallel = list(
            ExperimentRunner(
                engine_topology, spec, executor="process",
                workers=2, batch_size=2,
            ).iter_records()
        )
        key = lambda r: r.sort_key  # noqa: E731
        assert sorted(parallel, key=key) == sorted(serial, key=key)

    def test_unknown_executor_rejected(self, engine_topology):
        with pytest.raises(ReproError, match="unknown executor"):
            ExperimentRunner(
                engine_topology, two_cell_spec(), executor="threads"
            )

    def test_bad_worker_counts_rejected(self, engine_topology):
        with pytest.raises(ReproError):
            ExperimentRunner(engine_topology, two_cell_spec(), workers=0)
        with pytest.raises(ReproError):
            ExperimentRunner(engine_topology, two_cell_spec(), batch_size=0)


class TestSpecValidation:
    def test_empty_grid_rejected(self):
        with pytest.raises(ReproError):
            ExperimentSpec(cells=(), trials=1)

    def test_zero_trials_rejected(self):
        with pytest.raises(ReproError):
            two_cell_spec(trials=0)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ReproError):
            two_cell_spec(fractions=(1.5,))

    def test_duplicate_cell_names_rejected(self):
        with pytest.raises(ReproError, match="duplicate cell names"):
            ExperimentSpec(
                cells=(
                    ScenarioCell("forged-origin", MinimalRoa()),
                    ScenarioCell("forged-origin", MinimalRoa()),
                ),
                trials=1,
            )

    def test_unknown_seeding_rejected(self):
        with pytest.raises(ReproError, match="unknown seeding"):
            two_cell_spec(seeding="chaotic")

    def test_unknown_attack_kind_rejected(self):
        with pytest.raises(ReproError, match="unknown attack kind"):
            AttackConfig("route-leak")

    def test_attack_prefix_outside_victim_rejected(self):
        with pytest.raises(ReproError):
            two_cell_spec(attack_prefix=Prefix.parse("9.9.9.0/24"))

    def test_derived_attack_prefix_extends_by_8(self):
        assert two_cell_spec().effective_attack_prefix == (
            Prefix.parse("168.122.0.0/24")
        )

    def test_grid_cross_product(self):
        spec = ExperimentSpec.grid(
            ("subprefix-hijack", "forged-origin-subprefix"),
            (NoRoa(), MinimalRoa()),
            trials=2,
        )
        assert [cell.name for cell in spec.cells] == [
            "subprefix-hijack/none",
            "subprefix-hijack/minimal",
            "forged-origin-subprefix/none",
            "forged-origin-subprefix/minimal",
        ]


class TestJsonRoundTrip:
    def test_full_round_trip(self):
        spec = ExperimentSpec(
            cells=(
                ScenarioCell(
                    AttackConfig("forged-origin", attackers=2, prepend=1),
                    # 1/3 has no short decimal form: pins that the JSON
                    # form carries the exact float, not a rounded label.
                    PartialCoverageRoa(MinimalRoa(), 1 / 3),
                ),
                ScenarioCell(
                    "subprefix-hijack",
                    CustomRoa(
                        (Vrp(Prefix.parse("10.0.0.0/16"), 24, 65001),),
                        name="lab",
                    ),
                ),
            ),
            trials=3,
            seed=9,
            fractions=(0.5, None),
            sampler=FixedPairSampler(111, (666, 667)),
            victim_prefix=Prefix.parse("10.0.0.0/16"),
            seeding="stream",
        )
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_policy_names(self):
        assert policy_from_name("minimal") == MinimalRoa()
        assert policy_from_name("maxlength-loose") == MaxLengthLooseRoa()
        assert policy_from_name("maxlength-22") == MaxLengthLooseRoa(22)
        assert policy_from_name("none") == NoRoa()
        assert policy_from_name("minimal@0.3") == (
            PartialCoverageRoa(MinimalRoa(), 0.3)
        )
        with pytest.raises(ReproError):
            policy_from_name("maximal")

    def test_partial_over_custom_round_trips(self):
        spec = ExperimentSpec(
            cells=(
                ScenarioCell(
                    "subprefix-hijack",
                    PartialCoverageRoa(
                        CustomRoa(
                            (Vrp(Prefix.parse("10.0.0.0/16"), 24, 65001),),
                        ),
                        0.75,
                    ),
                ),
            ),
            trials=1,
        )
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_bad_spec_json_rejected(self):
        with pytest.raises(ReproError):
            ExperimentSpec.from_json("[1, 2]")
        with pytest.raises(ReproError):
            ExperimentSpec.from_json("{bad json")
        with pytest.raises(ReproError, match="missing key"):
            ExperimentSpec.from_json('{"cells": [{"kind": "forged-origin"}]}')
        with pytest.raises(ReproError, match="bad spec JSON value"):
            ExperimentSpec.from_json(
                '{"cells": [{"kind": "forged-origin"}], "trials": "many"}'
            )
        with pytest.raises(ReproError, match="bad cell entry"):
            ExperimentSpec.from_json(
                '{"cells": [{"kind": "forged-origin", '
                '"attackers": "two"}], "trials": 1}'
            )


class TestScenarioDiversity:
    """The scenario space the hand-rolled loops could not express."""

    @pytest.fixture(scope="class")
    def diversity_result(self, engine_topology):
        spec = ExperimentSpec(
            cells=(
                ScenarioCell(AttackConfig("forged-origin"), MinimalRoa()),
                ScenarioCell(
                    AttackConfig("forged-origin", attackers=3), MinimalRoa()
                ),
                ScenarioCell(
                    AttackConfig("forged-origin", prepend=3), MinimalRoa()
                ),
                ScenarioCell(
                    "forged-origin-subprefix",
                    PartialCoverageRoa(MinimalRoa(), 0.5),
                ),
            ),
            trials=8,
            seed=3,
        )
        return ExperimentRunner(engine_topology, spec).run(
            bootstrap_resamples=100
        )

    def test_more_attackers_capture_more(self, diversity_result):
        single = diversity_result.cell("forged-origin/minimal")
        triple = diversity_result.cell("forged-origin+x3/minimal")
        assert triple.mean > single.mean

    def test_prepending_weakens_the_attack(self, diversity_result):
        plain = diversity_result.cell("forged-origin/minimal")
        prepended = diversity_result.cell("forged-origin+prepend3/minimal")
        assert prepended.mean < plain.mean

    def test_partial_coverage_mixes_outcomes(self, diversity_result):
        """Each trial's victim either issued the minimal ROA (capture 0)
        or did not (capture 1): the average sits strictly between."""
        partial = diversity_result.cell(
            "forged-origin-subprefix/minimal@0.5"
        )
        assert set(partial.values) <= {0.0, 1.0}
        assert 0.0 < partial.mean < 1.0

    def test_partial_coverage_validates(self):
        with pytest.raises(ReproError):
            PartialCoverageRoa(MinimalRoa(), 1.5)
        with pytest.raises(ReproError, match="nest"):
            PartialCoverageRoa(PartialCoverageRoa(MinimalRoa(), 0.5), 0.5)

    def test_fixed_pair_sampler_pins_the_cast(self, engine_topology):
        stubs = sorted(engine_topology.stub_ases())
        victim, attacker = stubs[0], stubs[-1]
        spec = ExperimentSpec(
            cells=(ScenarioCell("subprefix-hijack", NoRoa()),),
            trials=3,
            sampler=FixedPairSampler(victim, (attacker,)),
        )
        records = list(
            ExperimentRunner(engine_topology, spec).iter_records()
        )
        assert {(r.victim, r.attackers) for r in records} == {
            (victim, (attacker,))
        }

    def test_fixed_pair_sampler_rejects_overlap(self):
        with pytest.raises(ReproError, match="distinct"):
            FixedPairSampler(1, (1,))

    def test_any_as_sampler_uses_whole_topology(self, engine_topology):
        pool = AnyAsPairSampler().population(engine_topology)
        assert pool == tuple(sorted(engine_topology.ases))
        assert len(pool) > len(StubPairSampler().population(engine_topology))

    def test_sampler_rejects_tiny_population(self):
        with pytest.raises(ReproError, match="cannot cast"):
            StubPairSampler().sample((1,), random.Random(0), 1)


class TestAggregation:
    def test_single_trial_stats(self, engine_topology):
        spec = two_cell_spec(trials=1)
        result = ExperimentRunner(engine_topology, spec).run(
            bootstrap_resamples=50
        )
        stats = result.stats[0][0]
        assert stats.trials == 1
        assert stats.stdev == 0.0
        assert stats.ci_low == stats.ci_high == stats.mean

    def test_ci_brackets_the_mean(self, engine_topology):
        spec = ExperimentSpec(
            cells=(ScenarioCell("forged-origin", MinimalRoa()),),
            trials=10,
            seed=2,
        )
        stats = ExperimentRunner(engine_topology, spec).run(
            bootstrap_resamples=300
        ).stats[0][0]
        assert min(stats.values) <= stats.ci_low <= stats.mean
        assert stats.mean <= stats.ci_high <= max(stats.values)

    def test_fractions_sum_to_one(self, engine_topology):
        spec = two_cell_spec(trials=2)
        for record in ExperimentRunner(engine_topology, spec).iter_records():
            total = (
                record.attacker_fraction
                + record.victim_fraction
                + record.disconnected_fraction
            )
            assert total == pytest.approx(1.0)

    def test_filtered_fraction_full_deployment(self, engine_topology):
        spec = ExperimentSpec(
            cells=(ScenarioCell("subprefix-hijack", MinimalRoa()),),
            trials=3,
        )
        stats = ExperimentRunner(engine_topology, spec).run(
            bootstrap_resamples=50
        ).stats[0][0]
        assert stats.filtered_fraction == 1.0
        assert stats.mean == 0.0

    def test_missing_records_rejected(self, engine_topology):
        spec = two_cell_spec(trials=2)
        records = list(
            ExperimentRunner(engine_topology, spec).iter_records()
        )
        with pytest.raises(ReproError, match="1 of 2 trials"):
            aggregate_records(spec, records[:-2])

    def test_duplicate_records_rejected(self, engine_topology):
        spec = two_cell_spec(trials=1)
        records = list(
            ExperimentRunner(engine_topology, spec).iter_records()
        )
        with pytest.raises(ReproError, match="duplicate record"):
            aggregate_records(spec, records + records)

    def test_cell_lookup_errors(self, engine_topology):
        result = ExperimentRunner(
            engine_topology, two_cell_spec(trials=1)
        ).run(bootstrap_resamples=50)
        with pytest.raises(ReproError, match="no cell named"):
            result.cell("nonexistent")
        with pytest.raises(ReproError, match="no fraction"):
            result.cell("forged-origin-subprefix/minimal", 0.3)

    def test_render_mentions_every_cell(self, engine_topology):
        result = ExperimentRunner(
            engine_topology, two_cell_spec(trials=2, fractions=(0.0, 1.0))
        ).run(bootstrap_resamples=50)
        text = result.render()
        assert "forged-origin-subprefix/minimal" in text
        assert "0%" in text and "100%" in text
        assert "bootstrap CI" in text


class TestLegacyReplay:
    """The adapters reproduce the pre-engine seeded numbers exactly.

    Golden values were captured from the original hand-rolled loops
    (sequential ``random.Random`` streams) before the engine rewrite,
    then re-pinned once when the seeded tie-break was made independent
    of edge insertion order (it now sorts candidates before drawing;
    only ``forged_origin_minimal`` moved).
    """

    @pytest.fixture(scope="class")
    def replay_topology(self):
        return generate_topology(TopologyProfile(ases=150), random.Random(5))

    def test_hijack_study_golden(self, replay_topology):
        from repro.analysis import run_hijack_study

        result = run_hijack_study(replay_topology, samples=7, seed=42)
        assert result.subprefix_no_rpki == 1.0
        assert result.forged_subprefix_nonminimal == 1.0
        assert result.forged_subprefix_minimal == 0.0
        assert result.forged_origin_minimal == 0.2944015444015444

    def test_deployment_sweep_golden(self, replay_topology):
        from repro.analysis import run_deployment_sweep

        sweep = run_deployment_sweep(
            replay_topology, fractions=(0.25, 0.75), samples=5, seed=9
        )
        assert sweep.points[0].subprefix_hijack == 0.28378378378378377
        assert sweep.points[0].forged_subprefix_vs_minimal == (
            0.28378378378378377
        )
        assert sweep.points[0].forged_subprefix_vs_nonminimal == 1.0
        assert sweep.points[1].subprefix_hijack == 0.0

    def test_studies_identical_across_executors(self, replay_topology):
        from repro.analysis import run_deployment_sweep, run_hijack_study

        assert run_hijack_study(
            replay_topology, samples=4, seed=1
        ) == run_hijack_study(
            replay_topology, samples=4, seed=1,
            executor="process", workers=2,
        )
        assert run_deployment_sweep(
            replay_topology, fractions=(0.5,), samples=3, seed=2
        ) == run_deployment_sweep(
            replay_topology, fractions=(0.5,), samples=3, seed=2,
            executor="process", workers=2,
        )


class TestEvaluateTrial:
    def test_records_carry_grid_coordinates(self, engine_topology):
        spec = two_cell_spec(trials=1, fractions=(0.0, 1.0))
        trials = materialize_trials(spec, engine_topology)
        records = evaluate_trial(engine_topology, spec, trials[-1])
        assert [r.cell_index for r in records] == [0, 1]
        assert all(r.fraction_index == 1 for r in records)
        assert all(r.fraction == 1.0 for r in records)
        assert records[0].cell == "forged-origin-subprefix/minimal"

    def test_cells_share_one_tie_rng(self, engine_topology):
        """Evaluating the cells separately with fresh RNGs must differ
        from the paired evaluation for at least the RNG state — the
        paired design is load-bearing for legacy replay, so pin it."""
        spec = ExperimentSpec(
            cells=(
                ScenarioCell("forged-origin", MinimalRoa()),
                ScenarioCell("forged-origin", NoRoa()),
            ),
            trials=1,
            seed=0,
        )
        trial = materialize_trials(spec, engine_topology)[0]
        paired = evaluate_trial(engine_topology, spec, trial)
        # Re-evaluate cell 1 alone: same tie seed now unconsumed by cell 0.
        solo_spec = ExperimentSpec(
            cells=(spec.cells[1],), trials=1, seed=0
        )
        solo = evaluate_trial(
            engine_topology, solo_spec,
            TrialSpec(
                fraction_index=0, trial_index=0, victim=trial.victim,
                attackers=trial.attackers, validating_ases=None,
                tie_seed=trial.tie_seed,
            ),
        )
        # Both are valid measurements of the same scenario; equality of
        # the *scenario* is what matters, not of the luck.
        assert solo[0].cell == paired[1].cell
        assert solo[0].victim == paired[1].victim
