"""Tests for Validated ROA Payloads (repro.rpki.vrp)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netbase import AF_INET, Prefix
from repro.netbase.errors import AsnError, PrefixLengthError
from repro.rpki import Vrp, parse_vrp, sort_vrps


def p(text: str) -> Prefix:
    return Prefix.parse(text)


class TestConstruction:
    def test_valid(self):
        vrp = Vrp(p("168.122.0.0/16"), 24, 111)
        assert vrp.uses_max_length

    def test_exact_length_not_maxlength_use(self):
        assert not Vrp(p("168.122.0.0/16"), 16, 111).uses_max_length

    def test_rejects_maxlength_below_length(self):
        with pytest.raises(PrefixLengthError):
            Vrp(p("10.0.0.0/16"), 8, 1)

    def test_rejects_maxlength_beyond_family(self):
        with pytest.raises(PrefixLengthError):
            Vrp(p("10.0.0.0/16"), 33, 1)
        with pytest.raises(PrefixLengthError):
            Vrp(p("2001:db8::/32"), 129, 1)

    def test_rejects_bad_asn(self):
        with pytest.raises(AsnError):
            Vrp(p("10.0.0.0/16"), 24, -3)


class TestSemantics:
    """The §4 example: ROA (168.122.0.0/16-24, AS 111)."""

    vrp = Vrp(p("168.122.0.0/16"), 24, 111)

    def test_covers_subprefix_regardless_of_origin(self):
        assert self.vrp.covers(p("168.122.0.0/24"))
        assert self.vrp.covers(p("168.122.0.0/25"))

    def test_matches_within_maxlength_and_origin(self):
        assert self.vrp.matches(p("168.122.0.0/16"), 111)
        assert self.vrp.matches(p("168.122.225.0/24"), 111)

    def test_no_match_beyond_maxlength(self):
        assert not self.vrp.matches(p("168.122.0.0/25"), 111)

    def test_no_match_wrong_origin(self):
        assert not self.vrp.matches(p("168.122.0.0/24"), 666)

    def test_no_match_outside_prefix(self):
        assert not self.vrp.matches(p("168.123.0.0/24"), 111)

    def test_authorized_count_closed_form(self):
        assert Vrp(p("10.0.0.0/16"), 16, 1).authorized_count() == 1
        assert Vrp(p("10.0.0.0/16"), 18, 1).authorized_count() == 7
        assert Vrp(p("10.0.0.0/16"), 24, 1).authorized_count() == 2**9 - 1

    def test_authorized_prefixes_enumeration(self):
        vrp = Vrp(p("10.0.0.0/30"), 32, 1)
        listed = list(vrp.authorized_prefixes())
        assert len(listed) == vrp.authorized_count() == 7
        assert p("10.0.0.0/30") in listed and p("10.0.0.3/32") in listed


class TestTextForm:
    def test_str_with_maxlength(self):
        assert str(Vrp(p("10.0.0.0/16"), 24, 65000)) == "10.0.0.0/16-24 => AS65000"

    def test_str_without_maxlength(self):
        assert str(Vrp(p("10.0.0.0/16"), 16, 65000)) == "10.0.0.0/16 => AS65000"

    def test_parse_both_forms(self):
        assert parse_vrp("10.0.0.0/16-24 => AS65000") == Vrp(p("10.0.0.0/16"), 24, 65000)
        assert parse_vrp("10.0.0.0/16 => 65000") == Vrp(p("10.0.0.0/16"), 16, 65000)

    def test_parse_ipv6(self):
        assert parse_vrp("2001:db8::/32-48 => AS1") == Vrp(p("2001:db8::/32"), 48, 1)

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=32),
        st.integers(min_value=0, max_value=32),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_str_parse_round_trip(self, value, length, extra, asn):
        max_length = min(32, length + extra % (33 - length) if length < 32 else 32)
        vrp = Vrp(Prefix(AF_INET, value, length), max(length, max_length), asn)
        assert parse_vrp(str(vrp)) == vrp


class TestOrdering:
    def test_sort_is_deterministic(self):
        vrps = [
            Vrp(p("10.0.0.0/16"), 24, 2),
            Vrp(p("10.0.0.0/16"), 16, 1),
            Vrp(p("9.0.0.0/8"), 8, 9),
        ]
        ordered = sort_vrps(vrps)
        assert ordered[0].prefix == p("9.0.0.0/8")
        assert ordered[1].max_length == 16

    def test_hashable(self):
        a = Vrp(p("10.0.0.0/16"), 24, 1)
        b = Vrp(p("10.0.0.0/16"), 24, 1)
        assert len({a, b}) == 1
