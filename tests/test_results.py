"""repro.results: durable, streaming, resumable run records.

The contracts pinned here:

* the TrialRecord wire schema is versioned and strict — unknown,
  missing, or wrong-schema fields raise instead of silently dropping;
* a JsonlSink survives being killed mid-write: a truncated or corrupt
  tail line is recovered, corruption anywhere else refuses loudly;
* an interrupted-then-resumed run is byte-identical to an
  uninterrupted one — aggregates and trial counts — under serial and
  process executors, both seeding disciplines, and early stopping;
* merge_runs unions shard-partial runs of one spec into the same
  result a single machine would have produced;
* the serve tier answers /experiments with live per-cell stats while
  a run is still streaming records.
"""

from __future__ import annotations

import asyncio
import errno
import json
import random
import statistics

import pytest

from repro.data import TopologyProfile, generate_topology
from repro.exper import (
    ExperimentRunner,
    ExperimentSpec,
    MaxLengthLooseRoa,
    MinimalRoa,
    ScenarioCell,
    TrialRecord,
)
from repro.netbase import Prefix
from repro.netbase.errors import ReproError
from repro.results import (
    GridAccumulator,
    JsonlSink,
    MemorySink,
    ResultsStore,
    RunHeader,
    RunRegistry,
    SinkWriteError,
    TeeSink,
    merge_runs,
    read_run,
    run_result,
)
from repro.rpki import Vrp
from repro.serve import QueryHttpServer, QueryService, ServeMetrics


@pytest.fixture(scope="module")
def topology():
    return generate_topology(TopologyProfile(ases=150), random.Random(9))


def small_spec(**kwargs) -> ExperimentSpec:
    defaults = dict(
        cells=(
            ScenarioCell("forged-origin-subprefix", MinimalRoa()),
            ScenarioCell("forged-origin-subprefix", MaxLengthLooseRoa()),
        ),
        trials=6,
        seed=4,
        fractions=(None, 0.5),
    )
    defaults.update(kwargs)
    return ExperimentSpec(**defaults)


def record_lines(path) -> list[bytes]:
    """The run file's lines (header first), newline-terminated."""
    return path.read_bytes().splitlines(keepends=True)


def run_full(topology, spec, path):
    """An uninterrupted recorded run; returns (result, file lines)."""
    sink = JsonlSink(path)
    result = ExperimentRunner(topology, spec, sink=sink).run()
    sink.close()
    return result, record_lines(path)


# ----------------------------------------------------------------------
# The versioned wire schema
# ----------------------------------------------------------------------


def sample_record(**overrides) -> TrialRecord:
    data = dict(
        fraction_index=0, trial_index=3, cell_index=1, fraction=0.5,
        cell="forged-origin-subprefix/minimal", victim=111,
        attackers=(666,), attacker_fraction=0.25, victim_fraction=0.5,
        disconnected_fraction=0.25, attack_route_filtered=False,
    )
    data.update(overrides)
    return TrialRecord(**data)


class TestRecordWireSchema:
    def test_round_trip(self):
        record = sample_record()
        wire = record.to_json_dict()
        assert wire["schema"] == 1
        assert TrialRecord.from_json_dict(wire) == record
        # ...and through actual JSON text.
        assert TrialRecord.from_json_dict(
            json.loads(json.dumps(wire))
        ) == record

    def test_universal_fraction_round_trips(self):
        record = sample_record(fraction=None, fraction_index=0)
        assert TrialRecord.from_json_dict(record.to_json_dict()) == record

    def test_missing_field_rejected(self):
        wire = sample_record().to_json_dict()
        del wire["victim"]
        with pytest.raises(ReproError, match="missing fields.*victim"):
            TrialRecord.from_json_dict(wire)

    def test_unknown_field_rejected(self):
        wire = sample_record().to_json_dict()
        wire["surprise"] = 1
        with pytest.raises(ReproError, match="unknown fields.*surprise"):
            TrialRecord.from_json_dict(wire)

    def test_wrong_schema_rejected(self):
        wire = sample_record().to_json_dict()
        wire["schema"] = 2
        with pytest.raises(ReproError, match="schema 2"):
            TrialRecord.from_json_dict(wire)
        del wire["schema"]
        with pytest.raises(ReproError, match="schema None"):
            TrialRecord.from_json_dict(wire)

    def test_non_object_rejected(self):
        with pytest.raises(ReproError, match="must be an object"):
            TrialRecord.from_json_dict([1, 2])

    @pytest.mark.parametrize(
        "field,value",
        [
            ("victim", "not-a-number"),
            ("victim", True),
            ("trial_index", 3.5),
            ("attackers", "12"),  # a string must not iterate to (1, 2)
            ("attackers", [1, "2"]),
            ("attack_route_filtered", "false"),  # bool("false") is True
            ("attacker_fraction", "0.5"),
            ("fraction", "0.5"),
            ("cell", 7),
        ],
    )
    def test_bad_value_rejected(self, field, value):
        wire = sample_record().to_json_dict()
        wire[field] = value
        with pytest.raises(ReproError, match="bad trial record value"):
            TrialRecord.from_json_dict(wire)


class TestRunHeader:
    def test_round_trip_and_spec_reconstruction(self):
        spec = small_spec()
        header = RunHeader.for_spec(spec)
        again = RunHeader.from_json_dict(header.to_json_dict())
        assert again == header
        assert again.experiment_spec() == spec
        assert again.spec_hash == spec.spec_hash()

    def test_wrong_kind_rejected(self):
        with pytest.raises(ReproError, match="not a repro.results/run"):
            RunHeader.from_json_dict({"kind": "something-else"})

    def test_spec_hash_tracks_spec_changes(self):
        a, b = small_spec(), small_spec(seed=5)
        assert a.spec_hash() != b.spec_hash()
        assert a.spec_hash() == small_spec().spec_hash()


# ----------------------------------------------------------------------
# JSONL durability edges
# ----------------------------------------------------------------------


class TestJsonlDurability:
    def test_round_trip(self, topology, tmp_path):
        spec = small_spec()
        path = tmp_path / "run.jsonl"
        result, lines = run_full(topology, spec, path)
        header, records = read_run(path)
        assert header == RunHeader.for_spec(spec, topology)
        assert header.topology_hash is not None
        assert len(records) == spec.total_trials * len(spec.cells)
        assert len(lines) == 1 + len(records)
        # Sorted, deduplicated, fully typed records.
        assert records == sorted(records, key=lambda r: r.sort_key)

    def test_truncated_tail_recovered(self, topology, tmp_path):
        path = tmp_path / "run.jsonl"
        _, lines = run_full(topology, small_spec(), path)
        path.write_bytes(b"".join(lines[:5]) + lines[5][:11])
        header, records = read_run(path)
        assert header is not None
        assert len(records) == 4

    def test_corrupt_terminated_tail_recovered(self, topology, tmp_path):
        path = tmp_path / "run.jsonl"
        _, lines = run_full(topology, small_spec(), path)
        path.write_bytes(b"".join(lines[:5]) + b'{"schema": 1, garbage\n')
        _, records = read_run(path)
        assert len(records) == 4

    def test_corrupt_interior_rejected(self, topology, tmp_path):
        path = tmp_path / "run.jsonl"
        _, lines = run_full(topology, small_spec(), path)
        lines[3] = b"not json at all\n"
        path.write_bytes(b"".join(lines))
        with pytest.raises(ReproError, match="corrupt trial record"):
            read_run(path)

    def test_interior_schema_violation_rejected(self, topology, tmp_path):
        path = tmp_path / "run.jsonl"
        _, lines = run_full(topology, small_spec(), path)
        doctored = json.loads(lines[3])
        doctored["surprise"] = True
        lines[3] = json.dumps(doctored).encode() + b"\n"
        path.write_bytes(b"".join(lines))
        with pytest.raises(ReproError, match="unknown fields"):
            read_run(path)

    def test_partial_header_is_empty_run(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_bytes(b'{"kind": "repro.results/run", "sch')
        assert JsonlSink(path).resume_scan(small_spec()) == (None, [])
        with pytest.raises(ReproError, match="no header"):
            read_run(path)

    def test_non_run_file_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"hello": "world"}\n')
        with pytest.raises(ReproError, match="not a repro.results/run"):
            read_run(path)

    def test_identical_duplicates_deduplicated(self, topology, tmp_path):
        path = tmp_path / "run.jsonl"
        _, lines = run_full(topology, small_spec(), path)
        path.write_bytes(b"".join(lines) + lines[1])
        _, records = read_run(path)
        assert len(records) == len(lines) - 1

    def test_conflicting_duplicate_rejected(self, topology, tmp_path):
        path = tmp_path / "run.jsonl"
        _, lines = run_full(topology, small_spec(), path)
        doctored = json.loads(lines[1])
        doctored["attacker_fraction"] = 0.123456
        path.write_bytes(
            b"".join(lines) + json.dumps(doctored).encode() + b"\n"
        )
        with pytest.raises(ReproError, match="conflicting records"):
            read_run(path)

    def test_begin_rejects_other_specs_file(self, topology, tmp_path):
        path = tmp_path / "run.jsonl"
        run_full(topology, small_spec(), path)
        sink = JsonlSink(path)
        other = small_spec(seed=99)
        with pytest.raises(ReproError, match="spec hash"):
            sink.begin(RunHeader.for_spec(other))
        with pytest.raises(ReproError, match="spec hash"):
            JsonlSink(path).resume_scan(other)


class ExplodingFile:
    """A file proxy that tears one write in half, then raises EIO."""

    def __init__(self, fh, fail_on: int) -> None:
        self._fh = fh
        self._fail_on = fail_on
        self._writes = 0

    def write(self, data: bytes) -> int:
        self._writes += 1
        if self._writes == self._fail_on:
            self._fh.write(data[: len(data) // 2])  # torn mid-line
            self._fh.flush()
            raise OSError(errno.EIO, "injected: device error")
        return self._fh.write(data)

    def __getattr__(self, name):
        return getattr(self._fh, name)


class TestSinkWriteFailure:
    """A failed write degrades fail-safe and never corrupts the prefix."""

    def test_torn_write_degrades_then_resumes(self, topology, tmp_path):
        spec = small_spec(trials=3, fractions=(None,))
        clean = tmp_path / "clean.jsonl"
        run_full(topology, spec, clean)
        header, records = read_run(clean)

        path = tmp_path / "run.jsonl"
        sink = JsonlSink(path)
        sink.begin(header)
        sink._fh = ExplodingFile(sink._fh, fail_on=3)
        with pytest.raises(SinkWriteError) as caught:
            for record in records:
                sink.write(record)
        assert caught.value.errno == errno.EIO
        assert caught.value.path == path
        assert sink.dirty
        with pytest.raises(ReproError, match="dirty"):
            sink.write(records[0])

        # The torn tail line is recovered; the prefix is intact.
        got_header, got = read_run(path)
        assert got_header == header
        assert len(got) == 2
        assert got == records[:2]

        # A fresh sink resumes the run to byte-identical output
        # (begin() truncates the torn tail before appending).
        resumed = JsonlSink(path)
        _, existing = resumed.resume_scan(spec)
        resumed.begin(header)
        for record in records[len(existing):]:
            resumed.write(record)
        resumed.finish(())
        resumed.close()
        assert path.read_bytes() == clean.read_bytes()

    def test_close_failure_during_degrade_is_swallowed(
        self, topology, tmp_path
    ):
        """A sick filesystem failing the close too still degrades."""
        spec = small_spec(trials=2, fractions=(None,))
        clean = tmp_path / "clean.jsonl"
        run_full(topology, spec, clean)
        header, records = read_run(clean)

        class SickFile(ExplodingFile):
            def close(self) -> None:
                raise OSError(errno.EIO, "close failed too")

        path = tmp_path / "run.jsonl"
        sink = JsonlSink(path)
        sink.begin(header)
        sink._fh = SickFile(sink._fh, fail_on=1)
        with pytest.raises(SinkWriteError):
            sink.write(records[0])
        assert sink.dirty
        assert sink._fh is None


# ----------------------------------------------------------------------
# Resume
# ----------------------------------------------------------------------


def interrupt(path, lines, keep, partial_tail=True):
    """Rewrite the run file as a killed writer would have left it."""
    data = b"".join(lines[:keep])
    if partial_tail and keep < len(lines):
        data += lines[keep][: len(lines[keep]) // 2]
    path.write_bytes(data)


class TestResume:
    @pytest.mark.parametrize("executor", ["serial", "process"])
    @pytest.mark.parametrize("seeding", ["derived", "stream"])
    def test_interrupted_run_resumes_byte_identical(
        self, topology, tmp_path, executor, seeding
    ):
        spec = small_spec(seeding=seeding)
        full_path = tmp_path / "full.jsonl"
        full, lines = run_full(topology, spec, full_path)

        part = tmp_path / "part.jsonl"
        interrupt(part, lines, keep=8)
        sink = JsonlSink(part)
        resumed = ExperimentRunner(
            topology, spec, executor=executor, workers=2,
            sink=sink, resume_from=sink,
        ).run()
        sink.close()
        assert resumed == full
        assert read_run(part) == read_run(full_path)

    def test_finished_trials_not_reevaluated(
        self, topology, tmp_path, monkeypatch
    ):
        spec = small_spec()
        path = tmp_path / "run.jsonl"
        _, lines = run_full(topology, spec, path)
        cells = len(spec.cells)
        # Keep 7 complete records: 3 finished trials + 1 partial.
        interrupt(path, lines, keep=1 + 3 * cells + 1, partial_tail=False)

        evaluated = []
        import repro.exper.runner as runner_module

        real = runner_module.evaluate_trials

        def spy(topology, spec, trials, **kwargs):
            def watched():
                for trial in trials:
                    evaluated.append(
                        (trial.fraction_index, trial.trial_index)
                    )
                    yield trial
            return real(topology, spec, watched(), **kwargs)

        monkeypatch.setattr(runner_module, "evaluate_trials", spy)
        sink = JsonlSink(path)
        ExperimentRunner(
            topology, spec, sink=sink, resume_from=sink
        ).run()
        sink.close()
        assert (0, 0) not in evaluated
        assert (0, 1) not in evaluated
        assert (0, 2) not in evaluated
        # The partially recorded trial 3 re-evaluates whole.
        assert (0, 3) in evaluated
        assert len(evaluated) == spec.total_trials - 3

    def test_resume_with_early_stopping(self, topology, tmp_path):
        spec = small_spec(
            trials=30, engine="array", stopping="ci",
            stop_ci_width=0.5, stop_min_trials=4, stop_check_every=2,
        )
        full_path = tmp_path / "full.jsonl"
        full, lines = run_full(topology, spec, full_path)
        assert any(c < spec.trials for c in full.trial_counts)

        part = tmp_path / "part.jsonl"
        interrupt(part, lines, keep=6)
        sink = JsonlSink(part)
        resumed = ExperimentRunner(
            topology, spec, sink=sink, resume_from=sink
        ).run()
        sink.close()
        assert resumed == full
        assert read_run(part) == read_run(full_path)

    def test_resume_of_complete_run_replays_everything(
        self, topology, tmp_path
    ):
        spec = small_spec()
        path = tmp_path / "run.jsonl"
        full, _ = run_full(topology, spec, path)
        sink = JsonlSink(path)
        resumed = ExperimentRunner(
            topology, spec, sink=sink, resume_from=sink
        ).run()
        sink.close()
        assert resumed == full

    def test_shm_cleaned_up_when_resume_finishes_early(
        self, topology, tmp_path
    ):
        """A process-executor resume with nothing left to evaluate
        still unlinks its shared topology segment."""
        spec = small_spec()
        path = tmp_path / "run.jsonl"
        full, _ = run_full(topology, spec, path)
        sink = JsonlSink(path)
        runner = ExperimentRunner(
            topology, spec, executor="process", workers=2,
            sink=sink, resume_from=sink,
        )
        assert runner.run() == full
        sink.close()
        name = runner.last_shared_segment
        if name is not None:
            from multiprocessing import shared_memory

            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_resume_into_fresh_tee_rewrites_replay(
        self, topology, tmp_path
    ):
        """Resuming into a *different* sink must rewrite the replayed
        records, so the new recording is complete on its own."""
        spec = small_spec()
        source_path = tmp_path / "source.jsonl"
        full, lines = run_full(topology, spec, source_path)
        interrupt(source_path, lines, keep=8)

        source = JsonlSink(source_path)
        copy = MemorySink()
        resumed = ExperimentRunner(
            topology, spec, sink=copy, resume_from=source
        ).run()
        assert resumed == full
        # The new sink received every record — replayed and fresh —
        # while the resume source was only read, never appended to.
        assert sorted(copy.records, key=lambda r: r.sort_key) == sorted(
            ExperimentRunner(topology, spec).iter_records(),
            key=lambda r: r.sort_key,
        )
        assert len(read_run(source_path)[1]) == 7
        assert copy.trial_counts == full.trial_counts

    def test_memory_sink_resume(self, topology):
        spec = small_spec()
        full = ExperimentRunner(topology, spec).run()
        sink = MemorySink()
        first = ExperimentRunner(topology, spec, sink=sink)
        records = first.iter_records()
        for _ in range(7):
            next(records)
        records.close()  # "crash" mid-run
        resumed = ExperimentRunner(
            topology, spec, sink=sink, resume_from=sink
        ).run()
        assert resumed == full

    def test_resume_rejects_different_topology(self, tmp_path):
        spec = small_spec()
        a = generate_topology(TopologyProfile(ases=130), random.Random(1))
        b = generate_topology(TopologyProfile(ases=170), random.Random(2))
        path = tmp_path / "run.jsonl"
        sink = JsonlSink(path)
        ExperimentRunner(a, spec, sink=sink).run()
        sink.close()
        sink = JsonlSink(path)
        with pytest.raises(ReproError, match="topology"):
            ExperimentRunner(
                b, spec, sink=sink, resume_from=sink
            ).run()

    def test_resume_rejects_mismatched_spec(self, topology, tmp_path):
        path = tmp_path / "run.jsonl"
        run_full(topology, small_spec(), path)
        sink = JsonlSink(path)
        other = small_spec(trials=7)
        with pytest.raises(ReproError, match="spec hash"):
            ExperimentRunner(
                topology, other, sink=sink, resume_from=sink
            ).run()

    @pytest.mark.parametrize("executor", ["serial", "process"])
    @pytest.mark.parametrize("golden", ["hijack", "deployment"])
    def test_golden_specs_resume_byte_identical(
        self, topology, tmp_path, golden, executor
    ):
        """The PR 2/PR 3 golden specs, interrupted and resumed:
        aggregates and trial_counts match the uninterrupted run."""
        import dataclasses

        from repro.analysis.deployment import deployment_sweep_spec
        from repro.analysis.hijack_eval import hijack_study_spec

        if golden == "hijack":
            spec = hijack_study_spec(samples=5, seed=42, engine="array")
        else:
            spec = dataclasses.replace(
                deployment_sweep_spec(
                    fractions=(0.5,), samples=3, seed=9
                ),
                engine="array",
            )
        full_path = tmp_path / "full.jsonl"
        full, lines = run_full(topology, spec, full_path)
        part = tmp_path / "part.jsonl"
        interrupt(part, lines, keep=1 + (len(lines) - 1) // 2)
        sink = JsonlSink(part)
        resumed = ExperimentRunner(
            topology, spec, executor=executor, workers=2,
            sink=sink, resume_from=sink,
        ).run()
        sink.close()
        assert resumed == full
        assert resumed.trial_counts == full.trial_counts
        assert read_run(part) == read_run(full_path)

    def test_plain_sink_does_not_support_resume(self, topology):
        from repro.results import ResultSink

        with pytest.raises(ReproError, match="does not support resuming"):
            ExperimentRunner(
                topology, small_spec(), resume_from=ResultSink()
            ).run()


# ----------------------------------------------------------------------
# Accumulators
# ----------------------------------------------------------------------


class TestAccumulators:
    def test_live_snapshot_matches_exact_statistics(self, topology):
        spec = small_spec()
        grid = GridAccumulator(spec)
        values = {}
        for record in ExperimentRunner(topology, spec).iter_records():
            grid.add(record)
            values.setdefault(
                (record.fraction_index, record.cell_index), []
            ).append(record.attacker_fraction)
        for (f, c), cell_values in values.items():
            snapshot = grid.cell(f, c).live_snapshot()
            assert snapshot["trials"] == len(cell_values)
            assert snapshot["mean"] == pytest.approx(
                statistics.mean(cell_values)
            )
            assert snapshot["stdev"] == pytest.approx(
                statistics.stdev(cell_values)
            )

    def test_merge_unions_disjoint_and_identical(self, topology):
        spec = small_spec()
        records = list(ExperimentRunner(topology, spec).iter_records())
        left, right = GridAccumulator(spec), GridAccumulator(spec)
        for index, record in enumerate(records):
            # Overlapping halves: every record lands in at least one.
            if index % 2 == 0 or index % 3 == 0:
                left.add(record)
            if index % 2 == 1 or index % 3 == 0:
                right.add(record)
        left.merge(right)
        assert left.records == len(records)

    def test_merge_rejects_conflicts(self):
        spec = small_spec()
        a, b = GridAccumulator(spec), GridAccumulator(spec)
        a.add(sample_record(cell_index=0))
        b.add(sample_record(cell_index=0, attacker_fraction=0.9))
        with pytest.raises(ReproError, match="conflicting records"):
            a.merge(b)

    def test_duplicate_add_rejected(self):
        grid = GridAccumulator(small_spec())
        grid.add(sample_record(cell_index=0))
        with pytest.raises(ReproError, match="duplicate record"):
            grid.add(sample_record(cell_index=0))

    def test_out_of_grid_coordinate_rejected(self):
        grid = GridAccumulator(small_spec())
        with pytest.raises(ReproError, match="outside the spec"):
            grid.add(sample_record(cell_index=7))


# ----------------------------------------------------------------------
# Store + merge
# ----------------------------------------------------------------------


class TestStoreAndMerge:
    def shard(self, store, run_id, spec, records, keep):
        sink = store.sink(run_id)
        sink.begin(RunHeader.for_spec(spec))
        for record in records:
            if keep(record):
                sink.write(record)
        sink.close()

    def test_merged_shards_aggregate_like_one_run(
        self, topology, tmp_path
    ):
        spec = small_spec()
        full = ExperimentRunner(topology, spec).run()
        records = list(ExperimentRunner(topology, spec).iter_records())
        store = ResultsStore(tmp_path / "store")
        # Shards split by trial parity, overlapping on trial 0.
        self.shard(store, "shard-0", spec, records,
                   lambda r: r.trial_index % 2 == 0)
        self.shard(store, "shard-1", spec, records,
                   lambda r: r.trial_index % 2 == 1 or r.trial_index == 0)
        header, count = store.merge("merged", ["shard-0", "shard-1"])
        assert count == len(records)
        assert store.run_ids() == ["merged", "shard-0", "shard-1"]
        merged_header, merged_records = store.read("merged")
        result, dropped = run_result(merged_header, merged_records)
        assert dropped == 0
        assert result == full

    def test_merge_is_deterministic_bytes(self, topology, tmp_path):
        spec = small_spec()
        path = tmp_path / "run.jsonl"
        run_full(topology, spec, path)
        out1, out2 = tmp_path / "m1.jsonl", tmp_path / "m2.jsonl"
        merge_runs(out1, [path])
        merge_runs(out2, [path])
        assert out1.read_bytes() == out2.read_bytes()

    def test_merge_rejects_spec_mismatch(self, topology, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        run_full(topology, small_spec(), a)
        run_full(topology, small_spec(seed=8), b)
        with pytest.raises(ReproError, match="spec hash"):
            merge_runs(tmp_path / "out.jsonl", [a, b])

    def test_bad_run_id_rejected(self, tmp_path):
        store = ResultsStore(tmp_path)
        with pytest.raises(ReproError, match="bad run id"):
            store.path("../escape")

    def test_partial_run_aggregates_completed_prefix(
        self, topology, tmp_path
    ):
        spec = small_spec()
        path = tmp_path / "run.jsonl"
        full, lines = run_full(topology, spec, path)
        cells = len(spec.cells)
        # Killed during fraction 0: fraction 1 never started.  The
        # result reports the completed fraction prefix, with per-cell
        # stats identical to the full run's (same bootstrap seeds).
        interrupt(path, lines, keep=1 + 3 * cells + 1, partial_tail=False)
        header, records = read_run(path)
        result, dropped = run_result(header, records)
        assert dropped == 1  # the lone record of the unfinished trial
        assert result.trial_counts == (3,)
        assert result.fractions == (None,)
        for cell_index, stats in enumerate(result.stats[0]):
            assert stats.values == (
                full.stats[0][cell_index].values[:3]
            )

    def test_empty_run_rejected(self, topology, tmp_path):
        spec = small_spec()
        path = tmp_path / "run.jsonl"
        _, lines = run_full(topology, spec, path)
        interrupt(path, lines, keep=2, partial_tail=False)  # 1 record
        header, records = read_run(path)
        with pytest.raises(
            ReproError, match="no complete trials for fraction index 0"
        ):
            run_result(header, records)


class TestMergeEdgeCases:
    """merge_runs under the shapes a sharded run can leave behind."""

    def test_merge_needs_inputs(self, tmp_path):
        with pytest.raises(ReproError, match="at least one input run"):
            merge_runs(tmp_path / "out.jsonl", [])

    def test_empty_shard_run_contributes_nothing(
        self, topology, tmp_path
    ):
        # A shard whose slice the coordinator never needed (or that
        # died before its first record) is a header-only run file.
        spec = small_spec()
        full_path = tmp_path / "full.jsonl"
        run_full(topology, spec, full_path)
        empty = tmp_path / "empty.jsonl"
        sink = JsonlSink(empty)
        sink.begin(RunHeader.for_spec(spec))
        sink.close()
        out = tmp_path / "out.jsonl"
        header, count = merge_runs(out, [full_path, empty])
        assert count == len(read_run(full_path)[1])
        assert out.read_bytes() == full_path.read_bytes()

    def test_single_shard_union_is_identity(self, topology, tmp_path):
        spec = small_spec()
        path = tmp_path / "run.jsonl"
        run_full(topology, spec, path)
        out = tmp_path / "out.jsonl"
        merge_runs(out, [path])
        assert out.read_bytes() == path.read_bytes()

    def test_duplicate_identical_shard_collapses(
        self, topology, tmp_path
    ):
        spec = small_spec()
        path = tmp_path / "run.jsonl"
        run_full(topology, spec, path)
        once, twice = tmp_path / "once.jsonl", tmp_path / "twice.jsonl"
        merge_runs(once, [path])
        merge_runs(twice, [path, path])
        assert twice.read_bytes() == once.read_bytes()

    def test_conflicting_records_rejected(self, topology, tmp_path):
        spec = small_spec()
        path = tmp_path / "run.jsonl"
        run_full(topology, spec, path)
        # Rewrite one record's outcome in a copy: same grid
        # coordinate, different payload — a re-evaluation that
        # diverged, which merging must refuse to paper over.
        lines = path.read_bytes().splitlines(keepends=True)
        record = json.loads(lines[1])
        record["attacker_fraction"] = 0.123456
        forged = tmp_path / "forged.jsonl"
        forged.write_bytes(
            lines[0]
            + json.dumps(record).encode()
            + b"\n"
            + b"".join(lines[2:])
        )
        with pytest.raises(
            ReproError, match="conflicting records for fraction index"
        ):
            merge_runs(tmp_path / "out.jsonl", [path, forged])

    def test_truncated_then_recovered_shard_merges(
        self, topology, tmp_path
    ):
        # A shard killed mid-write leaves a partial tail line; the
        # reader drops it, and a retry that resumed the same file
        # completes it.  Both states must merge cleanly.
        spec = small_spec()
        full_path = tmp_path / "full.jsonl"
        _, lines = run_full(topology, spec, full_path)
        partial = tmp_path / "partial.jsonl"
        interrupt(partial, lines, keep=7)  # + half of line 7
        out = tmp_path / "out.jsonl"
        header, count = merge_runs(out, [full_path, partial])
        assert out.read_bytes() == full_path.read_bytes()
        # Recover the partial exactly as a retried shard would: the
        # resume scan truncates the torn tail, then the writer
        # re-appends the missing records.
        sink = JsonlSink(partial)
        sink.resume_scan(spec)
        sink.begin(RunHeader.for_spec(spec))
        recovered = {
            line + b"\n" for line in partial.read_bytes().splitlines()
        }
        for line in lines[1:]:
            if line not in recovered:
                sink.write(TrialRecord.from_json_dict(json.loads(line)))
        sink.close()
        merge_runs(out, [partial])
        assert out.read_bytes() == full_path.read_bytes()


# ----------------------------------------------------------------------
# Live serving
# ----------------------------------------------------------------------


async def http_get(host, port, path):
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(
        f"GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n".encode()
    )
    await writer.drain()
    data = await reader.read()
    writer.close()
    head, _, body = data.partition(b"\r\n\r\n")
    return int(head.split(b" ", 2)[1]), json.loads(body)


class TestLiveServing:
    def query_service(self, metrics=None):
        return QueryService(
            [Vrp(Prefix.parse("10.0.0.0/24"), 24, 65000)],
            metrics=metrics,
        )

    def test_experiments_endpoint_updates_mid_run(self, topology):
        spec = small_spec()
        metrics = ServeMetrics()
        registry = RunRegistry()
        runner = ExperimentRunner(
            topology, spec,
            sink=registry.publisher("live-1", metrics=metrics),
        )

        async def scenario():
            service = self.query_service(metrics)
            async with QueryHttpServer(
                service, metrics=metrics, runs=registry
            ) as http:
                stream = runner.iter_records()
                seen = 0
                for _ in range(5):
                    next(stream)
                    seen += 1
                status, listing = await http_get(
                    http.host, http.port, "/experiments")
                assert status == 200
                (entry,) = listing["runs"]
                assert entry["run"] == "live-1"
                assert entry["status"] == "running"
                assert entry["records"] == seen

                status, snapshot = await http_get(
                    http.host, http.port, "/experiments/live-1")
                assert status == 200
                assert snapshot["status"] == "running"
                assert sum(
                    cell["trials"] for cell in snapshot["cells"]
                ) == seen
                assert snapshot["trial_counts"] is None

                for record in stream:
                    seen += 1
                status, snapshot = await http_get(
                    http.host, http.port, "/experiments/live-1")
                assert snapshot["status"] == "finished"
                assert snapshot["records"] == seen
                assert snapshot["trial_counts"] == [spec.trials] * 2
                cell_stats = {
                    (c["cell"], c["fraction"]): c
                    for c in snapshot["cells"]
                }
                assert all(
                    stats["trials"] == spec.trials
                    for stats in cell_stats.values()
                )
        asyncio.run(scenario())
        assert metrics["records_published"] == (
            spec.total_trials * len(spec.cells)
        )
        assert metrics["experiment_requests"] == 3

    def test_unknown_run_404_and_post_405(self):
        async def scenario():
            async with QueryHttpServer(self.query_service()) as http:
                status, body = await http_get(
                    http.host, http.port, "/experiments/none")
                assert status == 404
                assert "none" in body["error"]
                status, body = await http_get(
                    http.host, http.port, "/experiments")
                assert status == 200 and body == {"runs": []}
                reader, writer = await asyncio.open_connection(
                    http.host, http.port)
                writer.write(
                    b"POST /experiments HTTP/1.1\r\n"
                    b"Connection: close\r\nContent-Length: 0\r\n\r\n")
                data = await reader.read()
                assert data.split(b" ", 2)[1] == b"405"
        asyncio.run(scenario())

    def test_store_loaded_registry_serves_archived_runs(
        self, topology, tmp_path
    ):
        spec = small_spec()
        store = ResultsStore(tmp_path)
        sink = store.sink("archived")
        ExperimentRunner(topology, spec, sink=sink).run()
        sink.close()
        registry = RunRegistry()
        assert registry.load_store(store) == 1
        snapshot = registry.snapshot("archived")
        assert snapshot["status"] == "finished"
        assert snapshot["records"] == spec.total_trials * len(spec.cells)

    def test_load_store_skips_unreadable_runs(self, topology, tmp_path):
        """One headerless stray must not take the directory off the
        air — strict mode raises instead."""
        spec = small_spec()
        store = ResultsStore(tmp_path)
        sink = store.sink("good")
        ExperimentRunner(topology, spec, sink=sink).run()
        sink.close()
        (tmp_path / "stray.jsonl").write_bytes(b"")
        registry = RunRegistry()
        assert registry.load_store(store) == 1
        assert registry.run_ids() == ["good"]
        with pytest.raises(ReproError, match="no header"):
            RunRegistry().load_store(store, strict=True)

    def test_publish_without_begin_rejected(self):
        registry = RunRegistry()
        publisher = registry.publisher("r")
        with pytest.raises(ReproError, match="no live run"):
            publisher.write(sample_record())


# ----------------------------------------------------------------------
# Sinks misc
# ----------------------------------------------------------------------


class TestSinkProtocol:
    def test_tee_fans_out(self, topology, tmp_path):
        spec = small_spec()
        a, b = MemorySink(), JsonlSink(tmp_path / "tee.jsonl")
        tee = TeeSink(a, b)
        result = ExperimentRunner(topology, spec, sink=tee).run()
        tee.close()
        header, records = read_run(tmp_path / "tee.jsonl")
        assert sorted(a.records, key=lambda r: r.sort_key) == records
        assert a.trial_counts == result.trial_counts
        assert a.header == header

    def test_empty_tee_rejected(self):
        with pytest.raises(ReproError, match="at least one sink"):
            TeeSink()

    def test_write_before_begin_rejected(self, tmp_path):
        sink = JsonlSink(tmp_path / "x.jsonl")
        with pytest.raises(ReproError, match="before begin"):
            sink.write(sample_record())
