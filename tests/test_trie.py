"""Tests for the binary prefix trie (repro.netbase.trie)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netbase import AF_INET, Prefix, PrefixTrie
from repro.netbase.errors import TrieError


def p(text: str) -> Prefix:
    return Prefix.parse(text)


class TestBasics:
    def test_empty(self):
        trie = PrefixTrie[int](AF_INET)
        assert len(trie) == 0
        assert p("10.0.0.0/8") not in trie
        assert trie.get(p("10.0.0.0/8")) is None

    def test_insert_get(self):
        trie = PrefixTrie[int](AF_INET)
        trie.insert(p("10.0.0.0/8"), 42)
        assert p("10.0.0.0/8") in trie
        assert trie.get(p("10.0.0.0/8")) == 42
        assert len(trie) == 1

    def test_insert_overwrites(self):
        trie = PrefixTrie[int](AF_INET)
        trie.insert(p("10.0.0.0/8"), 1)
        trie.insert(p("10.0.0.0/8"), 2)
        assert trie.get(p("10.0.0.0/8")) == 2
        assert len(trie) == 1

    def test_interior_nodes_are_not_values(self):
        trie = PrefixTrie[int](AF_INET)
        trie.insert(p("10.0.0.0/16"), 1)
        assert p("10.0.0.0/8") not in trie
        assert trie.get(p("10.0.0.0/8")) is None

    def test_root_can_hold_value(self):
        trie = PrefixTrie[int](AF_INET)
        trie.insert(p("0.0.0.0/0"), 9)
        assert trie.get(p("0.0.0.0/0")) == 9

    def test_update_combines(self):
        trie = PrefixTrie[int](AF_INET)
        combine = lambda old: 24 if old is None else max(old, 24)
        trie.update(p("10.0.0.0/8"), combine)
        trie.update(p("10.0.0.0/8"), lambda old: max(old or 0, 16))
        assert trie.get(p("10.0.0.0/8")) == 24

    def test_family_mismatch_raises(self):
        trie = PrefixTrie[int](AF_INET)
        with pytest.raises(TrieError):
            trie.insert(p("::/0"), 1)

    def test_remove(self):
        trie = PrefixTrie[int](AF_INET)
        trie.insert(p("10.0.0.0/24"), 1)
        assert trie.remove(p("10.0.0.0/24"))
        assert len(trie) == 0
        assert not trie.remove(p("10.0.0.0/24"))

    def test_remove_prunes_unvalued_chain(self):
        trie = PrefixTrie[int](AF_INET)
        trie.insert(p("10.0.0.0/24"), 1)
        trie.remove(p("10.0.0.0/24"))
        # only the root remains materialized
        assert trie.node_count() == 1

    def test_remove_keeps_shared_path(self):
        trie = PrefixTrie[int](AF_INET)
        trie.insert(p("10.0.0.0/24"), 1)
        trie.insert(p("10.0.0.0/16"), 2)
        trie.remove(p("10.0.0.0/24"))
        assert trie.get(p("10.0.0.0/16")) == 2

    def test_unmark_keeps_structure(self):
        trie = PrefixTrie[int](AF_INET)
        node = trie.insert(p("10.0.0.0/16"), 1)
        trie.insert(p("10.0.0.0/24"), 2)
        trie.unmark(node)
        assert len(trie) == 1
        assert trie.get(p("10.0.0.0/16")) is None
        assert trie.get(p("10.0.0.0/24")) == 2


class TestLookups:
    def test_longest_match(self):
        trie = PrefixTrie[str](AF_INET)
        trie.insert(p("10.0.0.0/8"), "eight")
        trie.insert(p("10.1.0.0/16"), "sixteen")
        assert trie.longest_match(p("10.1.2.3/32")).value == "sixteen"
        assert trie.longest_match(p("10.9.0.0/16")).value == "eight"
        assert trie.longest_match(p("11.0.0.0/8")) is None

    def test_covering_nodes_order(self):
        trie = PrefixTrie[int](AF_INET)
        trie.insert(p("10.0.0.0/8"), 8)
        trie.insert(p("10.0.0.0/16"), 16)
        covering = [n.value for n in trie.covering_nodes(p("10.0.0.0/24"))]
        assert covering == [8, 16]

    def test_covered_nodes(self):
        trie = PrefixTrie[int](AF_INET)
        for text in ["10.0.0.0/16", "10.0.1.0/24", "10.1.0.0/16", "11.0.0.0/8"]:
            trie.insert(p(text), 0)
        covered = {str(n.prefix) for n in trie.covered_nodes(p("10.0.0.0/15"))}
        assert covered == {"10.0.0.0/16", "10.0.1.0/24", "10.1.0.0/16"}

    def test_items_sorted(self):
        trie = PrefixTrie[int](AF_INET)
        inputs = ["10.1.0.0/16", "10.0.0.0/8", "9.0.0.0/8"]
        for text in inputs:
            trie.insert(p(text), 0)
        assert [str(k) for k in trie.keys()] == sorted(inputs, key=lambda t: p(t))


class TestDirectChildren:
    def test_both_immediate(self):
        trie = PrefixTrie[int](AF_INET)
        parent = trie.insert(p("10.0.0.0/16"), 16)
        trie.insert(p("10.0.0.0/17"), 17)
        trie.insert(p("10.0.128.0/17"), 17)
        left, right = parent.direct_children()
        assert left.prefix == p("10.0.0.0/17")
        assert right.prefix == p("10.0.128.0/17")

    def test_skips_interior_nodes(self):
        trie = PrefixTrie[int](AF_INET)
        parent = trie.insert(p("10.0.0.0/16"), 16)
        trie.insert(p("10.0.0.0/19"), 19)  # left side, three levels down
        left, right = parent.direct_children()
        assert left is not None and left.prefix == p("10.0.0.0/19")
        assert right is None

    def test_valued_node_bars_descent(self):
        trie = PrefixTrie[int](AF_INET)
        parent = trie.insert(p("10.0.0.0/16"), 16)
        trie.insert(p("10.0.0.0/17"), 17)
        trie.insert(p("10.0.0.0/18"), 18)  # below the /17, must not surface
        left, _right = parent.direct_children()
        assert left.prefix == p("10.0.0.0/17")


class TestTraversal:
    def test_postorder_children_before_parents(self):
        trie = PrefixTrie[int](AF_INET)
        for text in ["10.0.0.0/8", "10.0.0.0/9", "10.128.0.0/9"]:
            trie.insert(p(text), 0)
        order = [n.prefix for n in trie.postorder_nodes() if n.has_value]
        assert order.index(p("10.0.0.0/9")) < order.index(p("10.0.0.0/8"))
        assert order.index(p("10.128.0.0/9")) < order.index(p("10.0.0.0/8"))

    def test_postorder_covers_all_materialized(self):
        trie = PrefixTrie[int](AF_INET)
        trie.insert(p("10.0.0.0/10"), 0)
        assert sum(1 for _ in trie.postorder_nodes()) == trie.node_count() == 11


class TestAgainstDict:
    """The trie must agree with a plain dict model under random ops."""

    small_prefixes = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=255),
            st.integers(min_value=24, max_value=32),
        ),
        min_size=1,
        max_size=40,
    )

    @settings(max_examples=40, deadline=None)
    @given(small_prefixes)
    def test_insert_then_lookup(self, entries):
        base = p("10.20.30.0/24")
        trie = PrefixTrie[int](AF_INET)
        model: dict[Prefix, int] = {}
        for offset, length in entries:
            step = 1 << (32 - length)
            candidate = Prefix(
                AF_INET, base.value + (offset % (1 << (length - 24))) * step, length
            )
            trie.insert(candidate, length)
            model[candidate] = length
        assert len(trie) == len(model)
        for key, value in model.items():
            assert trie.get(key) == value
        assert sorted(trie.keys()) == sorted(model)

    @settings(max_examples=40, deadline=None)
    @given(small_prefixes)
    def test_longest_match_matches_bruteforce(self, entries):
        base = p("10.20.30.0/24")
        trie = PrefixTrie[int](AF_INET)
        model: set[Prefix] = set()
        for offset, length in entries:
            step = 1 << (32 - length)
            candidate = Prefix(
                AF_INET, base.value + (offset % (1 << (length - 24))) * step, length
            )
            trie.insert(candidate, 0)
            model.add(candidate)
        rng = random.Random(1)
        for _ in range(20):
            probe = Prefix(AF_INET, base.value + rng.randrange(256), 32)
            expected = max(
                (m for m in model if m.covers(probe)),
                key=lambda m: m.length,
                default=None,
            )
            got = trie.longest_match(probe)
            assert (got.prefix if got else None) == expected
