"""Integration tests for the Figure 1 local-cache pipeline."""

from __future__ import annotations

import random

import pytest

from repro.bgp import ValidationState, VrpIndex
from repro.core import LocalCache
from repro.netbase import Prefix
from repro.rpki import (
    CertificateAuthority,
    Repository,
    Roa,
    RoaPrefix,
    Vrp,
)
from repro.rtr import RtrClient


def p(text: str) -> Prefix:
    return Prefix.parse(text)


@pytest.fixture(scope="module")
def rpki_world():
    """TA -> BU hierarchy with the paper's ROA, published and signed."""
    rng = random.Random(3)
    repository = Repository()
    ta = CertificateAuthority.create_trust_anchor(
        "TA", repository, ip_resources=(p("0.0.0.0/0"),), rng=rng, now=500
    )
    bu = ta.issue_child("BU", ip_resources=(p("168.122.0.0/16"),))
    bu.issue_roa(Roa(111, [RoaPrefix(p("168.122.0.0/16"), 24)]))
    bu.issue_roa(
        Roa(111, [RoaPrefix(p("168.122.32.0/19")),
                  RoaPrefix(p("168.122.32.0/20")),
                  RoaPrefix(p("168.122.48.0/20")),
                  RoaPrefix(p("168.122.32.0/21"))])
    )
    ta.publish_tree()
    return repository, ta


class TestRefresh:
    def test_crypto_path_produces_pdus(self, rpki_world):
        repository, ta = rpki_world
        cache = LocalCache()
        run = cache.refresh_from_repository(repository, [ta.certificate], now=500)
        assert run.ok
        assert len(cache.pdus) == 5
        assert Vrp(p("168.122.0.0/16"), 24, 111) in cache.pdus

    def test_compressing_cache_shrinks_pdus(self, rpki_world):
        repository, ta = rpki_world
        plain = LocalCache()
        plain.refresh_from_repository(repository, [ta.certificate], now=500)
        compressing = LocalCache(compress=True)
        compressing.refresh_from_repository(repository, [ta.certificate], now=500)
        # Figure 2's four tuples compress to two; the /16-24 stays.
        assert len(compressing.pdus) == 3 < len(plain.pdus)
        stats = compressing.compression_stats()
        assert stats.before == 5 and stats.after == 3

    def test_vrp_fast_path(self):
        cache = LocalCache(compress=True)
        cache.refresh_from_vrps(
            [
                Vrp(p("10.0.0.0/16"), 16, 1),
                Vrp(p("10.0.0.0/17"), 17, 1),
                Vrp(p("10.0.128.0/17"), 17, 1),
            ]
        )
        assert cache.pdus == [Vrp(p("10.0.0.0/16"), 17, 1)]


class TestEndToEnd:
    def test_repository_to_router_origin_validation(self, rpki_world):
        """Figure 1 complete: repository -> cache -> RTR -> router -> RFC 6811."""
        repository, ta = rpki_world
        with LocalCache(compress=True) as cache:
            cache.refresh_from_repository(repository, [ta.certificate], now=500)
            server = cache.serve()
            with RtrClient(server.host, server.port) as router:
                router.sync()
                index = VrpIndex(router.vrps)
                # the paper's §4 judgment, now through the full stack:
                assert index.validate(p("168.122.0.0/24"), 111) is ValidationState.VALID
                assert index.validate(p("168.122.0.0/24"), 666) is ValidationState.INVALID
                assert index.validate(p("168.122.0.0/25"), 111) is ValidationState.INVALID
                assert index.validate(p("9.9.9.0/24"), 666) is ValidationState.NOTFOUND

    def test_compression_is_invisible_to_routers(self, rpki_world):
        """Drop-in property (§7.1): routers validate identically with
        and without compress_roas in the pipeline."""
        repository, ta = rpki_world
        verdicts = []
        for compress in (False, True):
            with LocalCache(compress=compress) as cache:
                cache.refresh_from_repository(repository, [ta.certificate], now=500)
                server = cache.serve()
                with RtrClient(server.host, server.port) as router:
                    router.sync()
                    index = VrpIndex(router.vrps)
                    verdicts.append(
                        [
                            index.validate(p(text), asn)
                            for text, asn in [
                                ("168.122.0.0/16", 111),
                                ("168.122.32.0/20", 111),
                                ("168.122.40.0/21", 111),
                                ("168.122.32.0/21", 666),
                                ("168.122.64.0/20", 111),
                            ]
                        ]
                    )
        assert verdicts[0] == verdicts[1]

    def test_refresh_pushes_update_to_connected_router(self):
        with LocalCache() as cache:
            cache.refresh_from_vrps([Vrp(p("10.0.0.0/16"), 16, 1)])
            server = cache.serve()
            with RtrClient(server.host, server.port) as router:
                router.sync()
                assert router.vrps == {Vrp(p("10.0.0.0/16"), 16, 1)}
                cache.refresh_from_vrps([Vrp(p("11.0.0.0/16"), 16, 2)])
                router.wait_for_notify()
                router.sync()
                assert router.vrps == {Vrp(p("11.0.0.0/16"), 16, 2)}
