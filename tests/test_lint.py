"""Tests for :mod:`repro.lint` — the invariant linter.

Three layers:

* per-rule fixtures: for every rule, wrong code that must flag and
  right/suppressed code that must pass;
* the tree gate: ``src/repro`` lints clean, and the RNG001
  suppression inventory contains exactly the one documented entropy
  bootstrap in ``repro.crypto.rsa``;
* determinism regressions for the findings the linter surfaced in the
  tree (multi-attacker evaluation is identical across engines and
  independent of attacker-seed order).
"""

from __future__ import annotations

import json
import random
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    LintUsageError,
    iter_suppressions,
    lint_paths,
    lint_source,
    lint_sources,
    module_name_for,
    render_text,
    rule_catalog,
    to_json,
)

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

ALL_RULES = ("ASY001", "DEP001", "DEP002", "DOC001", "RNG001", "RNG002")


def rules_of(findings):
    return [finding.rule for finding in findings]


def flags(text, module, rule):
    findings = lint_source(
        textwrap.dedent(text), module=module, rules=[rule]
    )
    return rules_of(findings)


class TestEngine:
    def test_module_name_inference(self):
        assert module_name_for(SRC / "exper" / "runner.py") == (
            "repro.exper.runner"
        )
        assert module_name_for(SRC / "__init__.py") == "repro"
        assert module_name_for(SRC / "cli.py") == "repro.cli"

    def test_stray_file_gets_no_repro_rules(self, tmp_path):
        bad = tmp_path / "loose.py"
        bad.write_text("import numpy\nx = random.random()\n")
        assert lint_paths([bad]) == []

    def test_missing_path_is_usage_error(self):
        with pytest.raises(LintUsageError):
            lint_paths([SRC / "no-such-dir"])

    def test_unknown_rule_is_usage_error(self):
        with pytest.raises(LintUsageError):
            lint_source("x = 1\n", module="repro.x", rules=["NOPE"])

    def test_syntax_error_becomes_parse_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        findings = lint_paths([bad])
        assert rules_of(findings) == ["PARSE"]

    def test_catalog_is_complete(self):
        assert tuple(rule_catalog()) == ALL_RULES

    def test_reporters(self):
        findings = lint_source(
            "import numpy\n", module="repro.data.fixture",
            rules=["DEP001"],
        )
        text = render_text(findings)
        assert "DEP001" in text and "1 finding" in text
        document = to_json(findings)
        assert document["schema"] == 1
        assert document["count"] == 1
        assert document["findings"][0]["rule"] == "DEP001"
        assert render_text([]).startswith("repro-lint: clean")


class TestSuppressions:
    def test_trailing_comment_suppresses_its_line(self):
        text = (
            "import random\n"
            "x = random.random()  # repro-lint: disable=RNG001\n"
        )
        assert flags(text, "repro.data.fixture", "RNG001") == []

    def test_standalone_comment_covers_next_line(self):
        text = (
            "import random\n"
            "# repro-lint: disable=RNG001\n"
            "x = random.random()\n"
        )
        assert flags(text, "repro.data.fixture", "RNG001") == []

    def test_suppression_is_rule_specific(self):
        text = (
            "import random\n"
            "x = random.random()  # repro-lint: disable=RNG002\n"
        )
        assert flags(text, "repro.data.fixture", "RNG001") == ["RNG001"]


class TestRng001:
    def test_global_random_call_flags(self):
        text = "import random\nvalue = random.random()\n"
        assert flags(text, "repro.data.fixture", "RNG001") == ["RNG001"]

    def test_from_import_of_global_function_flags(self):
        text = "from random import shuffle\n"
        assert flags(text, "repro.data.fixture", "RNG001") == ["RNG001"]

    def test_function_local_import_flags(self):
        text = (
            "def build():\n"
            "    import random\n"
            "    return random.Random(7)\n"
        )
        assert flags(text, "repro.cli", "RNG001") == ["RNG001"]

    def test_injected_random_instance_passes(self):
        text = (
            "import random\n"
            "def topology(seed: int) -> random.Random:\n"
            "    return random.Random(seed)\n"
        )
        assert flags(text, "repro.data.fixture", "RNG001") == []

    def test_from_import_of_random_class_passes(self):
        text = "from random import Random\nrng = Random(7)\n"
        assert flags(text, "repro.data.fixture", "RNG001") == []


class TestRng002:
    def test_for_over_set_literal_flags(self):
        text = "for item in {1, 2, 3}:\n    print(item)\n"
        assert flags(text, "repro.exper.fixture", "RNG002") == ["RNG002"]

    def test_comprehension_over_set_call_flags(self):
        text = "values = [2 * v for v in set(range(9))]\n"
        assert flags(text, "repro.results.fixture", "RNG002") == ["RNG002"]

    def test_list_of_set_valued_local_flags(self):
        text = (
            "judged = frozenset((3, 1, 2))\n"
            "order = list(judged)\n"
        )
        assert flags(text, "repro.bgp.fixture", "RNG002") == ["RNG002"]

    def test_sorted_wrapper_passes(self):
        text = (
            "judged = frozenset((3, 1, 2))\n"
            "for asn in sorted(judged):\n"
            "    print(asn)\n"
        )
        assert flags(text, "repro.bgp.fixture", "RNG002") == []

    def test_out_of_scope_package_passes(self):
        text = "for item in {1, 2, 3}:\n    print(item)\n"
        assert flags(text, "repro.netbase.fixture", "RNG002") == []

    def test_membership_test_passes(self):
        text = (
            "attackers = frozenset((3, 1))\n"
            "hit = 3 in attackers\n"
        )
        assert flags(text, "repro.bgp.fixture", "RNG002") == []


class TestDep001:
    def test_third_party_import_flags(self):
        text = "import numpy as np\n"
        assert flags(text, "repro.bgp.fixture", "DEP001") == ["DEP001"]

    def test_third_party_from_import_flags(self):
        text = "from requests import get\n"
        assert flags(text, "repro.serve.fixture", "DEP001") == ["DEP001"]

    def test_stdlib_and_self_imports_pass(self):
        text = (
            "import json\n"
            "from pathlib import Path\n"
            "import repro.netbase\n"
            "from repro.netbase import Prefix\n"
        )
        assert flags(text, "repro.data.fixture", "DEP001") == []


class TestDep002:
    def test_upward_import_flags(self):
        text = "from repro.serve import AsyncRtrServer\n"
        assert flags(text, "repro.netbase.fixture", "DEP002") == ["DEP002"]

    def test_relative_upward_import_flags(self):
        text = "from ..exper.spec import ExperimentSpec\n"
        assert flags(text, "repro.rpki.fixture", "DEP002") == ["DEP002"]

    def test_obs_must_import_no_repro(self):
        text = "from repro.netbase import Prefix\n"
        assert flags(text, "repro.obs.fixture", "DEP002") == ["DEP002"]

    def test_obs_importable_from_lowest_layer(self):
        text = "from repro.obs import get_registry\n"
        assert flags(text, "repro.netbase.fixture", "DEP002") == []

    def test_downward_and_same_layer_imports_pass(self):
        text = (
            "from repro.exper.spec import ExperimentSpec\n"
            "from repro.results.sinks import JsonlSink\n"
            "from repro.bgp.topology import AsTopology\n"
        )
        assert flags(text, "repro.serve.fixture", "DEP002") == []

    def test_unknown_package_flags(self):
        text = "from repro.newthing import gadget\n"
        assert flags(text, "repro.cli", "DEP002") == ["DEP002"]

    def test_module_cycle_flags(self):
        findings = lint_sources(
            [
                ("repro.exper.alpha", "from repro.exper.beta import b\n"),
                ("repro.exper.beta", "from repro.exper.alpha import a\n"),
            ],
            rules=["DEP002"],
        )
        assert rules_of(findings) == ["DEP002"]
        assert "cycle" in findings[0].message

    def test_lazy_imports_do_not_make_cycles(self):
        findings = lint_sources(
            [
                ("repro.exper.alpha", "from repro.exper.beta import b\n"),
                (
                    "repro.exper.beta",
                    "from typing import TYPE_CHECKING\n"
                    "if TYPE_CHECKING:\n"
                    "    from repro.exper.alpha import a\n"
                    "def late():\n"
                    "    from repro.exper.alpha import a\n"
                    "    return a\n",
                ),
            ],
            rules=["DEP002"],
        )
        assert findings == []


class TestAsy001:
    def test_time_sleep_in_async_flags(self):
        text = (
            "import time\n"
            "async def pump():\n"
            "    time.sleep(1)\n"
        )
        assert flags(text, "repro.serve.fixture", "ASY001") == ["ASY001"]

    def test_bare_open_in_async_flags(self):
        text = (
            "async def load(path):\n"
            "    with open(path) as handle:\n"
            "        return handle.read()\n"
        )
        assert flags(text, "repro.serve.fixture", "ASY001") == ["ASY001"]

    def test_subprocess_in_async_flags(self):
        text = (
            "import subprocess\n"
            "async def shell():\n"
            "    subprocess.run(['true'])\n"
        )
        assert flags(text, "repro.serve.fixture", "ASY001") == ["ASY001"]

    def test_sync_function_passes(self):
        text = "import time\ndef pump():\n    time.sleep(1)\n"
        assert flags(text, "repro.serve.fixture", "ASY001") == []

    def test_nested_sync_helper_passes(self):
        text = (
            "import time\n"
            "async def outer():\n"
            "    def helper():\n"
            "        time.sleep(1)\n"
            "    return helper\n"
        )
        assert flags(text, "repro.serve.fixture", "ASY001") == []

    def test_asyncio_sleep_passes(self):
        text = (
            "import asyncio\n"
            "async def pump():\n"
            "    await asyncio.sleep(1)\n"
        )
        assert flags(text, "repro.serve.fixture", "ASY001") == []

    def test_out_of_scope_package_passes(self):
        text = "import time\nasync def pump():\n    time.sleep(1)\n"
        assert flags(text, "repro.exper.fixture", "ASY001") == []


class TestDoc001:
    def test_missing_module_docstring_flags(self):
        assert flags("x = 1\n", "repro.data.fixture", "DOC001") == [
            "DOC001"
        ]

    def test_exported_function_without_docstring_flags(self):
        text = (
            '"""Module docstring."""\n'
            "__all__ = ['helper']\n"
            "def helper():\n"
            "    return 1\n"
        )
        assert flags(text, "repro.data.fixture", "DOC001") == ["DOC001"]

    def test_documented_surface_passes(self):
        text = (
            '"""Module docstring."""\n'
            "__all__ = ['helper', 'LIMIT']\n"
            "LIMIT = 3\n"
            "def helper():\n"
            '    """Do the thing."""\n'
            "    return 1\n"
        )
        assert flags(text, "repro.data.fixture", "DOC001") == []

    def test_unexported_private_function_passes(self):
        text = (
            '"""Module docstring."""\n'
            "__all__ = []\n"
            "def _internal():\n"
            "    return 1\n"
        )
        assert flags(text, "repro.data.fixture", "DOC001") == []


class TestTreeGate:
    def test_lint_tree_clean(self):
        findings = lint_paths([SRC])
        assert findings == [], "\n" + render_text(findings)

    def test_rng001_suppressed_exactly_once_in_the_library(self):
        sites = [
            site
            for site in iter_suppressions([SRC])
            if "RNG001" in site.rules
        ]
        assert len(sites) == 1, sites
        assert sites[0].path.endswith("crypto/rsa.py")

    def test_every_rule_fires_on_its_fixture(self):
        # One wrong-code fixture per registered rule: proves no rule
        # in the catalog is dead code.
        wrong = {
            "RNG001": ("repro.data.f", "import random\nx = random.random()\n"),
            "RNG002": ("repro.exper.f", "for v in {1, 2}:\n    print(v)\n"),
            "DEP001": ("repro.data.f", "import numpy\n"),
            "DEP002": ("repro.netbase.f", "from repro.cli import main\n"),
            "ASY001": (
                "repro.serve.f",
                "import time\nasync def f():\n    time.sleep(1)\n",
            ),
            "DOC001": ("repro.data.f", "x = 1\n"),
        }
        assert set(wrong) == set(rule_catalog())
        for rule_id, (module, text) in wrong.items():
            assert flags(text, module, rule_id) == [rule_id], rule_id


class TestCli:
    def test_cli_clean_tree_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["lint", str(SRC)]) == EXIT_CLEAN
        assert "clean" in capsys.readouterr().out

    def test_cli_findings_exit_one_and_json(self, tmp_path, capsys):
        from repro.cli import main

        package = tmp_path / "repro" / "exper"
        package.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text('"""Fixture."""\n')
        (package / "__init__.py").write_text('"""Fixture."""\n')
        (package / "bad.py").write_text(
            '"""Fixture."""\nfor v in {1, 2}:\n    print(v)\n'
        )
        assert main(
            ["lint", "--json", "--rule", "RNG002", str(tmp_path)]
        ) == EXIT_FINDINGS
        document = json.loads(capsys.readouterr().out)
        assert document["count"] == 1
        assert document["findings"][0]["rule"] == "RNG002"

    def test_cli_unknown_rule_exits_two(self, capsys):
        from repro.cli import main

        assert main(["lint", "--rule", "NOPE", str(SRC)]) == EXIT_USAGE
        assert "unknown rule" in capsys.readouterr().err

    def test_cli_list_rules(self, capsys):
        from repro.cli import main

        assert main(["lint", "--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule_id in ALL_RULES:
            assert rule_id in out


class TestDeterminismRegressions:
    """The RNG002 findings fixed in the tree were in the multi-attacker
    measurement cores (`attacks.py` judged loop, `fastprop.py` cast
    construction).  Pin that multi-attacker evaluation is identical
    across engines and independent of attacker-seed order — the
    property unsorted set iteration would eventually break."""

    @pytest.fixture(scope="class")
    def scenario(self):
        from repro.bgp.attacks import Seed
        from repro.data import TopologyProfile, generate_topology
        from repro.netbase import Prefix

        topology = generate_topology(
            TopologyProfile(ases=160), random.Random(11)
        )
        ases = sorted(topology.ases)
        victim = ases[5]
        attackers = [ases[17], ases[31], ases[53]]
        return {
            "topology": topology,
            "victim": victim,
            "victim_prefix": Prefix.parse("10.0.0.0/16"),
            "attack_prefix": Prefix.parse("10.0.0.0/24"),
            "seeds": [Seed.forged_origin(asn, victim) for asn in attackers],
        }

    def test_multi_attacker_engines_agree(self, scenario):
        from repro.bgp.attacks import evaluate_attack_seeds

        results = {}
        for engine in ("object", "array"):
            results[engine] = evaluate_attack_seeds(
                scenario["topology"], scenario["victim"],
                scenario["victim_prefix"], scenario["attack_prefix"],
                scenario["seeds"], rng=random.Random(5), engine=engine,
            )
        assert results["object"] == results["array"]

    @pytest.mark.parametrize("engine", ["object", "array"])
    def test_attacker_seed_order_is_immaterial(self, scenario, engine):
        from repro.bgp.attacks import evaluate_attack_seeds

        forward = evaluate_attack_seeds(
            scenario["topology"], scenario["victim"],
            scenario["victim_prefix"], scenario["attack_prefix"],
            scenario["seeds"], rng=random.Random(5), engine=engine,
        )
        reversed_seeds = evaluate_attack_seeds(
            scenario["topology"], scenario["victim"],
            scenario["victim_prefix"], scenario["attack_prefix"],
            list(reversed(scenario["seeds"])), rng=random.Random(5),
            engine=engine,
        )
        assert forward == reversed_seeds
