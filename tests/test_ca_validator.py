"""Integration tests: CA hierarchy, publication, relying-party validation."""

from __future__ import annotations

import random

import pytest

from repro.netbase import Prefix
from repro.netbase.errors import ValidationError
from repro.rpki import (
    AsRange,
    CertificateAuthority,
    INHERIT,
    ObjectKind,
    RelyingParty,
    Repository,
    Roa,
    RoaPrefix,
    Vrp,
    scan_roas,
)


def p(text: str) -> Prefix:
    return Prefix.parse(text)


@pytest.fixture()
def rpki():
    """A small three-level hierarchy: TA -> RIR -> two orgs."""
    rng = random.Random(1)
    repository = Repository()
    ta = CertificateAuthority.create_trust_anchor(
        "TA", repository,
        ip_resources=(p("0.0.0.0/0"), p("::/0")),
        rng=rng, now=1_000,
    )
    rir = ta.issue_child(
        "RIR", ip_resources=(p("168.0.0.0/6"),),
        as_resources=(AsRange(0, 2**32 - 1),),
    )
    bu = rir.issue_child("BU", ip_resources=(p("168.122.0.0/16"),))
    other = rir.issue_child("OTHER", ip_resources=(p("169.0.0.0/16"),))
    return repository, ta, rir, bu, other


class TestHappyPath:
    def test_roa_validates_end_to_end(self, rpki):
        repository, ta, _rir, bu, _other = rpki
        bu.issue_roa(Roa(111, [RoaPrefix(p("168.122.0.0/16"), 24)]))
        ta.publish_tree()
        run = scan_roas(repository, [ta.certificate], now=1_000)
        assert run.ok, [str(i) for i in run.issues]
        assert run.vrps == [Vrp(p("168.122.0.0/16"), 24, 111)]
        assert run.cas_seen == 4  # TA, RIR, BU, OTHER

    def test_multiple_roas_multiple_cas(self, rpki):
        repository, ta, _rir, bu, other = rpki
        bu.issue_roa(Roa(111, [p("168.122.0.0/16")]))
        bu.issue_roa(Roa(112, [p("168.122.8.0/24")]))
        other.issue_roa(Roa(200, [p("169.0.1.0/24")]))
        ta.publish_tree()
        run = scan_roas(repository, [ta.certificate], now=1_000)
        assert run.ok
        assert len(run.vrps) == 3
        assert run.roas_seen == 3

    def test_inherit_resources_chain(self, rpki):
        repository, ta, rir, _bu, _other = rpki
        inheritor = rir.issue_child("INH")  # inherits RIR's resources
        inheritor.issue_roa(Roa(300, [p("168.5.0.0/16")]))
        ta.publish_tree()
        run = scan_roas(repository, [ta.certificate], now=1_000)
        assert run.ok, [str(i) for i in run.issues]
        assert Vrp(p("168.5.0.0/16"), 16, 300) in run.vrps

    def test_validation_is_time_dependent(self, rpki):
        repository, ta, _rir, bu, _other = rpki
        bu.issue_roa(Roa(111, [p("168.122.0.0/16")]))
        ta.publish_tree()
        late = 1_000 + 366 * 24 * 3600
        run = scan_roas(repository, [ta.certificate], now=late)
        assert not run.ok
        assert not run.vrps


class TestNegativeCases:
    def test_issue_overclaiming_child_rejected(self, rpki):
        _repository, _ta, rir, _bu, _other = rpki
        with pytest.raises(ValidationError):
            rir.issue_child("greedy", ip_resources=(p("8.0.0.0/8"),))

    def test_issue_overclaiming_roa_rejected(self, rpki):
        _repository, _ta, _rir, bu, _other = rpki
        with pytest.raises(ValidationError):
            bu.issue_roa(Roa(111, [p("10.0.0.0/8")]))

    def test_tampered_roa_flagged_by_manifest(self, rpki):
        repository, ta, _rir, bu, _other = rpki
        bu.issue_roa(Roa(111, [p("168.122.0.0/16")]))
        ta.publish_tree()
        point = repository.point_for("BU")
        blob = point.get("roa-0.roa").data
        point.publish("roa-0.roa", ObjectKind.ROA, blob[:-1] + bytes([blob[-1] ^ 1]))
        run = scan_roas(repository, [ta.certificate], now=1_000)
        assert not run.ok
        assert not run.vrps
        assert any("manifest" in str(issue) for issue in run.issues)

    def test_removed_roa_flagged_missing(self, rpki):
        repository, ta, _rir, bu, _other = rpki
        bu.issue_roa(Roa(111, [p("168.122.0.0/16")]))
        ta.publish_tree()
        repository.point_for("BU").withdraw("roa-0.roa")
        run = scan_roas(repository, [ta.certificate], now=1_000)
        assert any("missing" in str(issue) for issue in run.issues)

    def test_revoked_ee_rejected(self, rpki):
        repository, ta, _rir, bu, _other = rpki
        signed = bu.issue_roa(Roa(111, [p("168.122.0.0/16")]))
        bu.revoke(signed.ee_cert.serial)
        ta.publish_tree()
        run = scan_roas(repository, [ta.certificate], now=1_000)
        assert not run.vrps
        assert any("revoked" in str(issue) for issue in run.issues)

    def test_revoked_ca_certificate_rejected(self, rpki):
        repository, ta, rir, bu, _other = rpki
        bu.issue_roa(Roa(111, [p("168.122.0.0/16")]))
        rir.revoke(bu.certificate.serial)
        ta.publish_tree()
        run = scan_roas(repository, [ta.certificate], now=1_000)
        assert not run.vrps

    def test_missing_manifest_flagged(self, rpki):
        repository, ta, _rir, bu, _other = rpki
        bu.issue_roa(Roa(111, [p("168.122.0.0/16")]))
        ta.publish_tree()
        repository.point_for("BU").withdraw("BU.mft")
        run = scan_roas(repository, [ta.certificate], now=1_000)
        assert any("manifest missing" in str(issue) for issue in run.issues)

    def test_foreign_signed_roa_rejected(self, rpki):
        """A ROA published at BU but signed by OTHER's CA key fails."""
        repository, ta, _rir, bu, other = rpki
        signed = other.issue_roa(Roa(200, [p("169.0.0.0/16")]))
        repository.point_for("OTHER").withdraw("roa-0.roa")
        repository.point_for("BU").publish(
            "stolen.roa", ObjectKind.ROA, signed.to_der()
        )
        ta.publish_tree()
        run = scan_roas(repository, [ta.certificate], now=1_000)
        assert not any(vrp.asn == 200 for vrp in run.vrps)

    def test_strict_mode_raises(self, rpki):
        repository, ta, _rir, bu, _other = rpki
        bu.issue_roa(Roa(111, [p("168.122.0.0/16")]))
        ta.publish_tree()
        repository.point_for("BU").withdraw("BU.mft")
        party = RelyingParty(repository, [ta.certificate], now=1_000, strict=True)
        with pytest.raises(ValidationError):
            party.validate()

    def test_non_self_signed_trust_anchor_rejected(self, rpki):
        repository, ta, _rir, bu, _other = rpki
        ta.publish_tree()
        # BU's cert is signed by RIR, not itself: cannot act as an anchor
        run = scan_roas(repository, [bu.certificate], now=1_000)
        assert not run.ok
        assert not run.vrps


class TestPublication:
    def test_manifest_covers_publication_point(self, rpki):
        repository, ta, _rir, bu, _other = rpki
        bu.issue_roa(Roa(111, [p("168.122.0.0/16")]))
        ta.publish_tree()
        point = repository.point_for("BU")
        names = set(point.names())
        assert {"BU.mft", "BU.crl", "BU.cer", "roa-0.roa"} <= names

    def test_repository_counts(self, rpki):
        repository, ta, _rir, _bu, _other = rpki
        ta.publish_tree()
        assert repository.total_objects() > 8
        assert "TA" in repository and "BU" in repository

    def test_republish_is_idempotent(self, rpki):
        repository, ta, _rir, bu, _other = rpki
        bu.issue_roa(Roa(111, [p("168.122.0.0/16")]))
        ta.publish_tree()
        ta.publish_tree()  # manifests reissued over the same contents
        run = scan_roas(repository, [ta.certificate], now=1_000)
        assert run.ok
        assert len(run.vrps) == 1
