"""Tests for the §8 recommendations engine (ROA lint)."""

from __future__ import annotations

import pytest

from repro.core import (
    Finding,
    FindingCode,
    Severity,
    lint_roa,
    lint_roas,
)
from repro.netbase import Prefix
from repro.rpki import Roa, RoaPrefix


def p(text: str) -> Prefix:
    return Prefix.parse(text)


class TestCleanRoas:
    def test_minimal_fully_announced_roa_is_clean(self):
        roa = Roa(111, [p("168.122.0.0/16"), p("168.122.225.0/24")])
        announced = [(p("168.122.0.0/16"), 111), (p("168.122.225.0/24"), 111)]
        review = lint_roa(roa, announced)
        assert review.ok
        assert not review.findings
        assert review.suggested is None
        assert review.severity is Severity.INFO
        assert "clean" in review.render()

    def test_tight_maxlength_fully_announced_is_clean(self):
        roa = Roa(1, [RoaPrefix(p("10.0.0.0/16"), 17)])
        announced = [
            (p("10.0.0.0/16"), 1),
            (p("10.0.0.0/17"), 1),
            (p("10.0.128.0/17"), 1),
        ]
        review = lint_roa(roa, announced)
        assert review.ok and not review.findings


class TestVulnerableMaxlength:
    def test_paper_example_flagged(self):
        """§4's ROA: (168.122.0.0/16-24, AS 111) with sparse announcements."""
        roa = Roa(111, [RoaPrefix(p("168.122.0.0/16"), 24)])
        announced = [(p("168.122.0.0/16"), 111), (p("168.122.225.0/24"), 111)]
        review = lint_roa(roa, announced)
        assert not review.ok
        codes = {finding.code for finding in review.findings}
        assert FindingCode.VULNERABLE_MAXLENGTH in codes
        assert review.severity is Severity.ERROR

    def test_suggests_minimal_replacement(self):
        roa = Roa(111, [RoaPrefix(p("168.122.0.0/16"), 24)])
        announced = [(p("168.122.0.0/16"), 111), (p("168.122.225.0/24"), 111)]
        review = lint_roa(roa, announced)
        assert review.suggested == Roa(
            111, [p("168.122.0.0/16"), p("168.122.225.0/24")]
        )
        assert not review.suggested.uses_max_length

    def test_suggestion_is_compressed(self):
        """The replacement uses Algorithm 1 so the operator pays no
        unnecessary PDU penalty (§8's closing advice)."""
        roa = Roa(1, [RoaPrefix(p("10.0.0.0/16"), 24)])
        announced = [
            (p("10.0.0.0/16"), 1),
            (p("10.0.0.0/17"), 1),
            (p("10.0.128.0/17"), 1),
        ]
        review = lint_roa(roa, announced)
        assert review.suggested == Roa(1, [RoaPrefix(p("10.0.0.0/16"), 17)])

    def test_gap_count_in_message(self):
        roa = Roa(1, [RoaPrefix(p("10.0.0.0/24"), 25)])
        announced = [(p("10.0.0.0/24"), 1), (p("10.0.0.0/25"), 1)]
        review = lint_roa(roa, announced)
        vulnerable = [f for f in review.findings
                      if f.code is FindingCode.VULNERABLE_MAXLENGTH]
        assert len(vulnerable) == 1
        assert "1 unannounced" in vulnerable[0].message


class TestOtherFindings:
    def test_unused_entry(self):
        roa = Roa(1, [p("10.0.0.0/16"), p("10.1.0.0/16")])
        announced = [(p("10.0.0.0/16"), 1)]
        review = lint_roa(roa, announced)
        unused = [f for f in review.findings if f.code is FindingCode.UNUSED_ENTRY]
        assert len(unused) == 1
        assert unused[0].entry.prefix == p("10.1.0.0/16")
        assert review.severity is Severity.WARNING

    def test_redundant_entry(self):
        roa = Roa(1, [RoaPrefix(p("10.0.0.0/16"), 24), RoaPrefix(p("10.0.1.0/24"))])
        announced = [(p("10.0.0.0/16"), 1), (p("10.0.1.0/24"), 1)]
        review = lint_roa(roa, announced)
        redundant = [f for f in review.findings
                     if f.code is FindingCode.REDUNDANT_ENTRY]
        assert len(redundant) == 1
        assert redundant[0].entry.prefix == p("10.0.1.0/24")

    def test_wide_maxlength(self):
        roa = Roa(1, [RoaPrefix(p("10.0.0.0/12"), 24)])
        announced = [(p("10.0.0.0/12"), 1)]
        review = lint_roa(roa, announced)
        codes = {f.code for f in review.findings}
        assert FindingCode.WIDE_MAXLENGTH in codes
        assert FindingCode.VULNERABLE_MAXLENGTH in codes

    def test_own_route_invalid(self):
        """§3: de-aggregating past the ROA makes your own route invalid."""
        roa = Roa(111, [RoaPrefix(p("168.122.0.0/16"))])
        announced = [
            (p("168.122.0.0/16"), 111),
            (p("168.122.225.0/24"), 111),  # invalid under the exact ROA!
        ]
        review = lint_roa(roa, announced)
        own = [f for f in review.findings
               if f.code is FindingCode.OWN_ROUTE_INVALID]
        assert len(own) == 1
        assert "168.122.225.0/24" in own[0].message
        assert not review.ok

    def test_own_route_authorized_by_other_entry_not_flagged(self):
        roa = Roa(111, [RoaPrefix(p("168.122.0.0/16")),
                        RoaPrefix(p("168.122.225.0/24"))])
        announced = [
            (p("168.122.0.0/16"), 111),
            (p("168.122.225.0/24"), 111),
        ]
        review = lint_roa(roa, announced)
        assert not any(f.code is FindingCode.OWN_ROUTE_INVALID
                       for f in review.findings)


class TestLintSnapshot:
    def test_reviews_every_roa(self, tiny_snapshot):
        reviews = lint_roas(tiny_snapshot.roas, tiny_snapshot.announced)
        assert len(reviews) == len(tiny_snapshot.roas)

    def test_flags_track_vulnerability_analysis(self, tiny_snapshot):
        """Every maxLength-vulnerable VRP's ROA must carry an ERROR."""
        from repro.core import build_origin_index, is_vulnerable

        index = build_origin_index(tiny_snapshot.announced)
        reviews = lint_roas(tiny_snapshot.roas, tiny_snapshot.announced)
        for roa, review in zip(tiny_snapshot.roas, reviews):
            has_vulnerable_vrp = any(
                is_vulnerable(vrp, index) for vrp in roa.vrps()
            )
            if has_vulnerable_vrp:
                assert review.severity is Severity.ERROR, roa

    def test_suggestions_are_never_vulnerable(self, tiny_snapshot):
        from repro.core import analyze_vrps

        reviews = lint_roas(tiny_snapshot.roas, tiny_snapshot.announced)
        suggested = [r.suggested for r in reviews if r.suggested is not None]
        assert suggested, "expected some suggestions on the synthetic RPKI"
        vrps = [vrp for roa in suggested for vrp in roa.vrps()]
        report = analyze_vrps(vrps, tiny_snapshot.announced)
        assert report.vulnerable_vrps == 0

    def test_render_mentions_replacement(self):
        roa = Roa(111, [RoaPrefix(p("168.122.0.0/16"), 24)])
        announced = [(p("168.122.0.0/16"), 111)]
        text = lint_roa(roa, announced).render()
        assert "suggested replacement" in text
        assert "ERROR" in text
