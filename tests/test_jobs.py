"""repro.jobs: the durable experiment platform.

The contracts pinned here:

* the queue's wire schema round-trips exactly and refuses versions
  and shapes it does not understand;
* :class:`JobStore` is crash-safe: a partial trailing line (the most
  a SIGKILL mid-append can leave) is dropped on read and truncated
  before the next append, interior corruption is a loud error, and a
  job's status is a pure fold of its events;
* **architecture invariant 8** (docs/architecture.md): a job executed
  by the scheduler produces a run file byte-identical to a direct
  ``repro-roa experiment`` of the same spec — for fresh jobs, for
  jobs resumed after a SIGKILL mid-run (both in-process and through
  the real CLI with an injected crash fault), and with a delay-fault
  plan installed;
* cancel semantics: queued jobs never run, terminal jobs 409;
* the HTTP control plane (``POST /experiments``, ``/jobs`` CRUD) and
  the read side it inherits: ``GET /experiments/<run>/ci`` serves
  exactly the canonical :func:`run_ci_document` bytes, and ``GET
  /diff`` is byte-stable across processes (it shares
  :func:`run_diff_document` + canonical JSON with ``repro-roa jobs
  diff``);
* ``jobs.*`` metrics appear in the registry snapshot and the
  Prometheus rendering, and cost nothing when metrics are disabled;
* a sharded job publishes per-shard progress into the run registry.
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.exper import (
    ExperimentRunner,
    ExperimentSpec,
    MaxLengthLooseRoa,
    MinimalRoa,
    ScenarioCell,
)
from repro.faults import FaultPlan, FaultRule, PLAN_ENV, install, uninstall
from repro.jobs import (
    JobRecord,
    JobScheduler,
    JobSpec,
    JobStore,
    JobsHttpServer,
)
from repro.netbase import Prefix
from repro.netbase.errors import ReproError
from repro.obs import NULL_REGISTRY, MetricsRegistry, use_registry
from repro.results import (
    RunRegistry,
    run_ci_document,
    run_diff_document,
)
from repro.rpki import Vrp
from repro.serve import QueryService

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def no_leftover_plan():
    """Every test starts and ends with no fault plan installed."""
    uninstall()
    yield
    uninstall()


def small_spec(**kwargs) -> ExperimentSpec:
    defaults = dict(
        cells=(
            ScenarioCell("forged-origin-subprefix", MinimalRoa()),
            ScenarioCell("forged-origin-subprefix", MaxLengthLooseRoa()),
        ),
        trials=4,
        seed=4,
        fractions=(None, 0.5),
    )
    defaults.update(kwargs)
    return ExperimentSpec(**defaults)


def job_spec(**kwargs) -> JobSpec:
    defaults = dict(spec=small_spec(), ases=60, topology_seed=11)
    defaults.update(kwargs)
    return JobSpec(**defaults)


def direct_run_bytes(jspec: JobSpec, path: Path) -> bytes:
    """The job's spec run directly, the way ``repro-roa experiment``
    would: same topology construction, one JsonlSink."""
    from repro.results import JsonlSink

    sink = JsonlSink(path)
    try:
        ExperimentRunner(
            jspec.build_topology(), jspec.spec,
            workers=jspec.workers, shards=jspec.shards, sink=sink,
        ).run(bootstrap_resamples=200)
    finally:
        sink.close()
    return path.read_bytes()


# ----------------------------------------------------------------------
# Wire schema
# ----------------------------------------------------------------------


class TestJobModel:
    def test_spec_json_round_trip(self):
        jspec = job_spec(run="archive", workers=2, shards=3)
        parsed = JobSpec.from_json_dict(jspec.to_json_dict())
        assert parsed == jspec
        assert parsed.spec_hash == jspec.spec.spec_hash()

    def test_spec_validation(self):
        with pytest.raises(ReproError, match="2 ASes"):
            job_spec(ases=1)
        with pytest.raises(ReproError, match="workers"):
            job_spec(workers=0)
        with pytest.raises(ReproError, match="shards"):
            job_spec(shards=0)
        with pytest.raises(ReproError, match="'spec'"):
            JobSpec.from_json_dict({"run": "x"})

    def test_with_run_pins_only_the_run(self):
        jspec = job_spec()
        assert jspec.run is None
        pinned = jspec.with_run("job-000007")
        assert pinned.run == "job-000007"
        assert pinned.spec == jspec.spec

    def test_record_validation(self):
        with pytest.raises(ReproError, match="unknown job event"):
            JobRecord(job="j", event="exploded")
        with pytest.raises(ReproError, match="carry the spec"):
            JobRecord(job="j", event="enqueued")
        line = JobRecord(
            job="j", event="enqueued", spec=job_spec()
        ).to_json_dict()
        assert JobRecord.from_json_dict(line).spec == job_spec()
        with pytest.raises(ReproError, match="schema"):
            JobRecord.from_json_dict({**line, "schema": 99})
        with pytest.raises(ReproError, match="kind"):
            JobRecord.from_json_dict({**line, "kind": "other"})


# ----------------------------------------------------------------------
# The durable queue
# ----------------------------------------------------------------------


class TestJobStore:
    def test_enqueue_ids_sequential_and_run_adopted(self, tmp_path):
        store = JobStore(tmp_path)
        first = store.enqueue(job_spec())
        second = store.enqueue(job_spec(run="pinned"))
        assert (first, second) == ("job-000001", "job-000002")
        assert store.job(first).spec.run == "job-000001"
        assert store.job(second).spec.run == "pinned"

    def test_fold_and_pending(self, tmp_path):
        store = JobStore(tmp_path)
        a = store.enqueue(job_spec())
        b = store.enqueue(job_spec())
        store.mark(a, "started")
        store.mark(a, "finished")
        jobs = store.jobs()
        assert jobs[a].status == "done"
        assert jobs[a].history == ("enqueued", "started", "finished")
        assert not jobs[a].pending
        assert jobs[b].status == "queued"
        assert [state.job for state in store.pending()] == [b]

    def test_failed_detail_survives_the_fold(self, tmp_path):
        store = JobStore(tmp_path)
        a = store.enqueue(job_spec())
        store.mark(a, "started")
        store.mark(a, "failed", detail="disk full")
        assert store.job(a).status == "failed"
        assert store.job(a).detail == "disk full"

    def test_partial_tail_dropped_and_truncated(self, tmp_path):
        store = JobStore(tmp_path)
        a = store.enqueue(job_spec())
        complete = store.path.read_bytes()
        store.path.write_bytes(complete + b'{"half a rec')
        # Reads ignore the crash tail entirely.
        assert [r.event for r in store.records()] == ["enqueued"]
        assert store.job(a).status == "queued"
        # The next append truncates it, so lines never fuse.
        store.mark(a, "started")
        assert b"half a rec" not in store.path.read_bytes()
        assert store.job(a).status == "running"

    def test_interior_corruption_is_loud(self, tmp_path):
        store = JobStore(tmp_path)
        store.enqueue(job_spec())
        complete = store.path.read_bytes()
        store.path.write_bytes(complete + b"garbage\n")
        with pytest.raises(ReproError, match="corrupt line"):
            store.jobs()
        store.path.write_bytes(complete + b"\n" + complete)
        with pytest.raises(ReproError, match="blank interior"):
            store.jobs()

    def test_wrong_header_refused(self, tmp_path):
        path = tmp_path / "queue.jsonl"
        path.write_bytes(b'{"kind":"other","schema":1}\n')
        with pytest.raises(ReproError, match="job queue"):
            JobStore(tmp_path).jobs()

    def test_event_before_enqueued_is_an_error(self, tmp_path):
        store = JobStore(tmp_path)
        store.enqueue(job_spec())
        orphan = JobRecord(job="job-999999", event="started")
        with open(store.path, "ab") as handle:
            handle.write(
                json.dumps(
                    orphan.to_json_dict(), sort_keys=True,
                    separators=(",", ":"),
                ).encode() + b"\n"
            )
        with pytest.raises(ReproError, match="before 'enqueued'"):
            store.jobs()

    def test_mark_unknown_job_raises(self, tmp_path):
        store = JobStore(tmp_path)
        with pytest.raises(ReproError, match="no job"):
            store.mark("job-000001", "started")


# ----------------------------------------------------------------------
# The scheduler and invariant 8
# ----------------------------------------------------------------------


class TestSchedulerInvariant8:
    def test_scheduled_job_matches_direct_run_bytes(self, tmp_path):
        store = JobStore(tmp_path / "jobs")
        runs = RunRegistry()
        scheduler = JobScheduler(store, runs=runs)
        job_id = scheduler.submit(job_spec())
        assert scheduler.run_pending() == 1
        state = store.job(job_id)
        assert state.status == "done"
        scheduled = scheduler.results.path(state.spec.run).read_bytes()
        direct = direct_run_bytes(job_spec(), tmp_path / "direct.jsonl")
        assert scheduled == direct
        # The registry mirrored the run live and saw it finish.
        snapshot = runs.snapshot(state.spec.run)
        assert snapshot["status"] == "finished"

    def test_restart_resumes_to_identical_bytes(self, tmp_path):
        direct = direct_run_bytes(job_spec(), tmp_path / "direct.jsonl")
        # Forge the crash scene: the dead scheduler had marked the job
        # started and recorded a prefix of the run (header + some
        # records) before the SIGKILL, including a half-written line.
        store = JobStore(tmp_path / "jobs")
        job_id = store.enqueue(job_spec())
        store.mark(job_id, "started")
        run_path = store.results_store().path(job_id)
        run_path.parent.mkdir(parents=True, exist_ok=True)
        lines = direct.split(b"\n")
        run_path.write_bytes(
            b"\n".join(lines[:4]) + b"\n" + lines[4][: len(lines[4]) // 2]
        )
        assert run_path.read_bytes() != direct
        # A fresh scheduler (the restart) sees the job pending and
        # continues its file rather than restarting it.
        scheduler = JobScheduler(JobStore(tmp_path / "jobs"))
        assert scheduler.run_pending() == 1
        assert scheduler.store.job(job_id).status == "done"
        assert run_path.read_bytes() == direct

    def test_invariant_holds_under_delay_fault_plan(self, tmp_path):
        direct = direct_run_bytes(job_spec(), tmp_path / "direct.jsonl")
        install(FaultPlan(rules=(
            FaultRule(site="results.sink.write", action="delay",
                      delay=0.001),
            FaultRule(site="jobs.execute", action="stall", delay=0.001),
        ), seed=3))
        scheduler = JobScheduler(JobStore(tmp_path / "jobs"))
        job_id = scheduler.submit(job_spec())
        assert scheduler.run_pending() == 1
        state = scheduler.store.job(job_id)
        assert state.status == "done"
        assert (
            scheduler.results.path(state.spec.run).read_bytes() == direct
        )

    def test_injected_error_fails_the_job_durably(self, tmp_path):
        install(FaultPlan(rules=(
            FaultRule(site="jobs.execute", action="error",
                      error="io"),
        ), seed=3))
        scheduler = JobScheduler(JobStore(tmp_path / "jobs"))
        job_id = scheduler.submit(job_spec())
        scheduler.run_pending()
        state = scheduler.store.job(job_id)
        assert state.status == "failed"
        assert "injected fault" in state.detail
        assert not state.pending  # a restart will not retry it


class TestSchedulerLifecycle:
    def test_cancel_queued_job_never_runs(self, tmp_path):
        scheduler = JobScheduler(JobStore(tmp_path))
        first = scheduler.submit(job_spec())
        second = scheduler.submit(job_spec())
        scheduler.cancel(first)
        assert scheduler.run_pending() == 1
        assert scheduler.store.job(first).status == "cancelled"
        assert scheduler.store.job(second).status == "done"
        assert not scheduler.results.path(first).exists()

    def test_cancel_unknown_and_terminal_raise(self, tmp_path):
        scheduler = JobScheduler(JobStore(tmp_path))
        with pytest.raises(ReproError, match="no job"):
            scheduler.cancel("job-000001")
        job_id = scheduler.submit(job_spec())
        scheduler.run_pending()
        with pytest.raises(ReproError, match="already done"):
            scheduler.cancel(job_id)

    def test_background_thread_drains_submissions(self, tmp_path):
        import time

        scheduler = JobScheduler(
            JobStore(tmp_path), poll_interval=0.05
        ).start()
        try:
            job_id = scheduler.submit(job_spec())
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if not scheduler.store.job(job_id).pending:
                    break
                time.sleep(0.05)
            assert scheduler.store.job(job_id).status == "done"
        finally:
            scheduler.stop()

    def test_resume_refuses_a_foreign_run_file(self, tmp_path):
        """A pinned run id colliding with a different spec's file must
        fail the job loudly, never silently mix records."""
        store = JobStore(tmp_path)
        other = job_spec(spec=small_spec(seed=99), run="shared")
        scheduler = JobScheduler(store)
        results = store.results_store()
        results.path("shared").parent.mkdir(parents=True, exist_ok=True)
        direct_run_bytes(other, results.path("shared"))
        job_id = scheduler.submit(job_spec(run="shared"))
        scheduler.run_pending()
        state = store.job(job_id)
        assert state.status == "failed"
        assert state.detail  # the incompatibility is recorded


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------


class TestJobsMetrics:
    def test_lifecycle_counted_and_rendered(self, tmp_path):
        with use_registry(MetricsRegistry()) as registry:
            scheduler = JobScheduler(JobStore(tmp_path))
            scheduler.submit(job_spec())
            cancelled = scheduler.submit(job_spec())
            scheduler.cancel(cancelled)
            scheduler.run_pending()
            snapshot = registry.snapshot()
        assert snapshot["jobs.enqueued"] == 2
        assert snapshot["jobs.started"] == 1
        assert snapshot["jobs.completed"] == 1
        assert snapshot["jobs.cancelled"] == 1
        assert snapshot["jobs.queue_depth"] == 0
        assert snapshot["jobs.job_seconds"]["count"] == 1
        text = registry.render_prometheus()
        assert "jobs_enqueued 2" in text
        assert "jobs_queue_depth 0" in text
        assert "jobs_job_seconds_bucket" in text

    def test_disabled_registry_records_nothing(self, tmp_path):
        with use_registry(NULL_REGISTRY):
            scheduler = JobScheduler(JobStore(tmp_path))
            scheduler.submit(job_spec())
            scheduler.run_pending()
        with use_registry(MetricsRegistry()) as registry:
            pass
        assert "jobs.enqueued" not in registry.snapshot()


# ----------------------------------------------------------------------
# Shard progress (satellite: coordinator → registry)
# ----------------------------------------------------------------------


class TestShardProgress:
    def test_sharded_job_publishes_shard_states(self, tmp_path):
        runs = RunRegistry()
        scheduler = JobScheduler(JobStore(tmp_path), runs=runs)
        job_id = scheduler.submit(
            job_spec(spec=small_spec(executor="sharded"), shards=2)
        )
        assert scheduler.run_pending() == 1
        state = scheduler.store.job(job_id)
        assert state.status == "done"
        snapshot = runs.snapshot(state.spec.run)
        shards = snapshot["shards"]
        assert sorted(shards) == ["0", "1"]
        for entry in shards.values():
            assert entry["state"] == "done"
            assert entry["attempt"] == 0
            assert entry["records"] > 0
        # Progress reporting never perturbs the run's bytes.
        direct = direct_run_bytes(
            job_spec(spec=small_spec(executor="sharded"), shards=2),
            tmp_path / "direct.jsonl",
        )
        assert (
            scheduler.results.path(state.spec.run).read_bytes() == direct
        )

    def test_update_shards_tolerates_unknown_run(self):
        RunRegistry().update_shards("ghost", {0: {"state": "done"}})


# ----------------------------------------------------------------------
# HTTP control plane
# ----------------------------------------------------------------------


def p(text: str) -> Prefix:
    return Prefix.parse(text)


PAPER_ROAS = [
    Vrp(p("87.254.32.0/19"), 20, 31283),
    Vrp(p("87.254.32.0/21"), 21, 31283),
]


async def http_request(
    host, port, method: str, path: str, body: bytes = b""
) -> tuple[int, bytes]:
    reader, writer = await asyncio.open_connection(host, port)
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    ).encode()
    writer.write(head + body)
    response = await reader.readuntil(b"\r\n\r\n")
    status = int(response.split(b" ", 2)[1])
    length = 0
    for line in response.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":")[1])
    payload = await reader.readexactly(length)
    writer.close()
    return status, payload


class TestJobsHttp:
    def run_with_server(self, scheduler, scenario):
        async def wrapper():
            service = QueryService(PAPER_ROAS)
            async with JobsHttpServer(service, scheduler) as http:
                await scenario(http)

        asyncio.run(wrapper())

    def test_submit_list_show_cancel(self, tmp_path):
        scheduler = JobScheduler(JobStore(tmp_path))

        async def scenario(http):
            body = json.dumps(job_spec().to_json_dict()).encode()
            status, payload = await http_request(
                http.host, http.port, "POST", "/experiments", body
            )
            assert status == 201
            created = json.loads(payload)
            assert created == {
                "job": "job-000001",
                "run": "job-000001",
                "status": "queued",
            }
            status, payload = await http_request(
                http.host, http.port, "GET", "/jobs"
            )
            assert status == 200
            listed = json.loads(payload)["jobs"]
            assert [j["job"] for j in listed] == ["job-000001"]
            status, payload = await http_request(
                http.host, http.port, "GET", "/jobs/job-000001"
            )
            assert status == 200
            assert json.loads(payload)["status"] == "queued"
            status, payload = await http_request(
                http.host, http.port, "DELETE", "/jobs/job-000001"
            )
            assert status == 200
            assert json.loads(payload)["status"] == "cancelled"
            # Terminal now: a second cancel is a conflict.
            status, payload = await http_request(
                http.host, http.port, "DELETE", "/jobs/job-000001"
            )
            assert status == 409
            status, _ = await http_request(
                http.host, http.port, "GET", "/jobs/nope"
            )
            assert status == 404
            status, _ = await http_request(
                http.host, http.port, "PUT", "/jobs/job-000001"
            )
            assert status == 405

        self.run_with_server(scheduler, scenario)
        assert scheduler.store.job("job-000001").status == "cancelled"

    def test_submit_rejects_bad_bodies(self, tmp_path):
        scheduler = JobScheduler(JobStore(tmp_path))

        async def scenario(http):
            for body in (
                b"{nope",
                b"[]",
                b"{}",
                json.dumps(
                    {**job_spec().to_json_dict(), "surprise": 1}
                ).encode(),
                json.dumps({"spec": {"cells": "nope"}}).encode(),
            ):
                status, _ = await http_request(
                    http.host, http.port, "POST", "/experiments", body
                )
                assert status == 400

        self.run_with_server(scheduler, scenario)
        assert scheduler.store.jobs() == {}

    def test_ci_endpoint_serves_golden_document(self, tmp_path):
        """GET /experiments/<run>/ci is exactly the canonical bytes of
        run_ci_document over the run's records (which re-aggregates
        through aggregate_records)."""
        scheduler = JobScheduler(JobStore(tmp_path))
        job_id = scheduler.submit(job_spec())
        scheduler.run_pending()
        run_id = scheduler.store.job(job_id).spec.run
        header, records = scheduler.results.read(run_id)
        golden = (json.dumps(
            run_ci_document(run_id, header, records),
            sort_keys=True, separators=(",", ":"),
        ) + "\n").encode()

        async def scenario(http):
            status, payload = await http_request(
                http.host, http.port, "GET", f"/experiments/{run_id}/ci"
            )
            assert status == 200
            assert payload == golden
            status, _ = await http_request(
                http.host, http.port, "GET", "/experiments/ghost/ci"
            )
            assert status == 404

        self.run_with_server(scheduler, scenario)
        document = json.loads(golden)
        assert document["run"] == run_id
        assert document["records"] == len(records)
        assert document["result"]["cells"]

    def test_diff_endpoint_matches_local_diff(self, tmp_path):
        scheduler = JobScheduler(JobStore(tmp_path))
        a = scheduler.submit(job_spec())
        b = scheduler.submit(job_spec(spec=small_spec(seed=5)))
        scheduler.run_pending()
        a_run = scheduler.store.job(a).spec.run
        b_run = scheduler.store.job(b).spec.run
        a_header, a_records = scheduler.results.read(a_run)
        b_header, b_records = scheduler.results.read(b_run)
        golden = (json.dumps(
            run_diff_document(
                a_run, a_header, a_records, b_run, b_header, b_records
            ),
            sort_keys=True, separators=(",", ":"),
        ) + "\n").encode()

        async def scenario(http):
            status, payload = await http_request(
                http.host, http.port, "GET",
                f"/diff?a={a_run}&b={b_run}",
            )
            assert status == 200
            assert payload == golden
            status, _ = await http_request(
                http.host, http.port, "GET", f"/diff?a={a_run}&b=ghost"
            )
            assert status == 404
            status, _ = await http_request(
                http.host, http.port, "GET", "/diff?a=only"
            )
            assert status == 400

        self.run_with_server(scheduler, scenario)
        document = json.loads(golden)
        assert document["spec_match"] is False
        assert all("delta_mean" in cell for cell in document["cells"])


# ----------------------------------------------------------------------
# The real thing: CLI subprocesses, SIGKILL, byte-stable diffs
# ----------------------------------------------------------------------


SPEC_FLAGS = [
    "--kinds", "forged-origin-subprefix",
    "--policies", "minimal,maxlength-loose",
    "--fractions", "0,0.5,1",
    "--trials", "4",
    "--seed", "4",
    "--ases", "60",
    "--topology-seed", "11",
]


def run_cli(argv, tmp_path, env_extra=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part
        for part in (str(REPO / "src"), env.get("PYTHONPATH"))
        if part
    )
    env.pop(PLAN_ENV, None)
    if env_extra:
        env.update(env_extra)
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True, cwd=tmp_path, env=env, timeout=300,
    )


class TestCliPlatform:
    def test_sigkill_mid_job_then_restart_resumes_bytes(self, tmp_path):
        """Invariant 8 end to end: submit through the CLI, SIGKILL the
        executing scheduler mid-run via an injected crash fault, drain
        again in a fresh process, and compare against a direct
        ``repro-roa experiment`` recording byte for byte."""
        store = tmp_path / "jobs"
        submitted = run_cli(
            ["jobs", "submit", "--store", str(store), *SPEC_FLAGS],
            tmp_path,
        )
        assert submitted.returncode == 0, submitted.stderr.decode()
        assert b"job-000001 queued" in submitted.stdout

        plan = FaultPlan(rules=(
            FaultRule(site="results.sink.write", action="crash",
                      at=(7,)),
        ), seed=1)
        killed = run_cli(
            ["jobs", "run", "--store", str(store)],
            tmp_path, env_extra={PLAN_ENV: plan.to_json()},
        )
        assert killed.returncode == -9  # SIGKILL, mid-write
        partial = (store / "runs" / "job-000001.jsonl").read_bytes()

        recovered = run_cli(
            ["jobs", "run", "--store", str(store)], tmp_path
        )
        assert recovered.returncode == 0, recovered.stderr.decode()
        listed = run_cli(
            ["jobs", "list", "--store", str(store), "--json"], tmp_path
        )
        status = json.loads(listed.stdout)["jobs"][0]
        assert status["status"] == "done"
        assert status["events"] == [
            "enqueued", "started", "started", "finished",
        ]

        direct = run_cli(
            ["experiment", *SPEC_FLAGS,
             "--sink", str(tmp_path / "direct.jsonl")],
            tmp_path,
        )
        assert direct.returncode == 0, direct.stderr.decode()
        final = (store / "runs" / "job-000001.jsonl").read_bytes()
        assert final == (tmp_path / "direct.jsonl").read_bytes()
        assert partial != final  # the kill really landed mid-run

    def test_jobs_diff_is_byte_stable_across_processes(self, tmp_path):
        """Satellite: two separate processes print the identical diff
        document for the same pair of runs (canonical JSON end to
        end — the /diff endpoint shares the same serialization)."""
        store = tmp_path / "jobs"
        scheduler = JobScheduler(JobStore(store))
        scheduler.submit(job_spec())
        scheduler.submit(job_spec(spec=small_spec(trials=5)))
        scheduler.run_pending()

        first = run_cli(
            ["jobs", "diff", "--store", str(store),
             "job-000001", "job-000002"],
            tmp_path,
        )
        second = run_cli(
            ["jobs", "diff", "--store", str(store),
             "job-000001", "job-000002"],
            tmp_path,
        )
        assert first.returncode == 0, first.stderr.decode()
        assert first.stdout == second.stdout
        a_header, a_records = scheduler.results.read("job-000001")
        b_header, b_records = scheduler.results.read("job-000002")
        golden = json.dumps(
            run_diff_document(
                "job-000001", a_header, a_records,
                "job-000002", b_header, b_records,
            ),
            sort_keys=True, separators=(",", ":"),
        )
        assert first.stdout.decode() == golden + "\n"

    def test_jobs_requires_exactly_one_target(self, tmp_path):
        neither = run_cli(["jobs", "list"], tmp_path)
        assert neither.returncode == 2
        assert b"--store" in neither.stderr
        both = run_cli(
            ["jobs", "list", "--store", "x", "--server", "http://y"],
            tmp_path,
        )
        assert both.returncode == 2
