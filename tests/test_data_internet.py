"""Tests for the calibrated synthetic-Internet generator.

The calibration assertions check *shape* against the paper's 2017-06-01
dataset with generous bands (the generator is stochastic and the test
snapshot is small); exact targets live in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.bgp import ValidationState, VrpIndex
from repro.core import analyze_vrps, compress_vrps, lower_bound_pdu_count, to_minimal_vrps
from repro.data import GeneratorConfig, generate_snapshot
from repro.netbase import AF_INET, AF_INET6
from repro.rpki import Vrp


class TestDeterminism:
    def test_same_seed_same_snapshot(self):
        config = GeneratorConfig(scale=0.003, seed=5)
        a = generate_snapshot(config)
        b = generate_snapshot(config)
        assert a.announced == b.announced
        assert a.roas == b.roas

    def test_different_seeds_differ(self):
        a = generate_snapshot(GeneratorConfig(scale=0.003, seed=5))
        b = generate_snapshot(GeneratorConfig(scale=0.003, seed=6))
        assert a.announced != b.announced


class TestStructure:
    def test_scaling_is_roughly_linear(self):
        small = generate_snapshot(GeneratorConfig(scale=0.004, seed=1))
        large = generate_snapshot(GeneratorConfig(scale=0.016, seed=1))
        ratio = len(large.announced) / len(small.announced)
        assert 2.0 <= ratio <= 8.0

    def test_both_families_present(self, small_snapshot):
        assert any(p.family == AF_INET for p, _ in small_snapshot.announced)
        assert any(p.family == AF_INET6 for p, _ in small_snapshot.announced)

    def test_allocations_do_not_overlap_across_ases(self, tiny_snapshot):
        """Synthetic allocations are disjoint, so a covering prefix of a
        different origin is a deliberate misconfiguration, not noise."""
        by_prefix = {}
        for prefix, asn in tiny_snapshot.announced:
            by_prefix.setdefault(prefix, set()).add(asn)
        # each prefix should have exactly one origin
        multi_origin = [p for p, asns in by_prefix.items() if len(asns) > 1]
        assert len(multi_origin) < len(by_prefix) * 0.01

    def test_vrps_are_deduplicated_and_sorted(self, small_snapshot):
        vrps = small_snapshot.vrps
        assert vrps == sorted(set(vrps))

    def test_adopters_recorded(self, small_snapshot):
        assert len(small_snapshot.adopter_ases) == len(small_snapshot.roas)

    def test_no_announcement_longer_than_24_or_48(self, small_snapshot):
        for prefix, _asn in small_snapshot.announced:
            limit = 24 if prefix.family == AF_INET else 48
            assert prefix.length <= limit

    def test_invalid_routes_exist(self, small_snapshot):
        """The misconfig generator must produce RPKI-invalid routes."""
        index = VrpIndex(small_snapshot.vrps)
        invalid = sum(
            1
            for prefix, origin in small_snapshot.announced
            if index.validate(prefix, origin) is ValidationState.INVALID
        )
        assert invalid > 0

    def test_repr(self, tiny_snapshot):
        assert "pairs" in repr(tiny_snapshot)


class TestCalibration:
    """§6/§7 shape checks; paper values in brackets."""

    def test_maxlength_fraction(self, small_snapshot):
        report = analyze_vrps(small_snapshot.vrps, small_snapshot.announced)
        assert 0.06 <= report.maxlength_fraction <= 0.18  # [0.116]

    def test_vulnerable_fraction(self, small_snapshot):
        report = analyze_vrps(small_snapshot.vrps, small_snapshot.announced)
        assert report.vulnerable_fraction_of_maxlength >= 0.70  # [0.84]

    def test_status_quo_compression(self, small_snapshot):
        vrps = small_snapshot.vrps
        ratio = 1 - len(compress_vrps(vrps)) / len(vrps)
        assert 0.10 <= ratio <= 0.22  # [0.159]

    def test_minimal_conversion_grows_tuples(self, small_snapshot):
        vrps = small_snapshot.vrps
        minimal = to_minimal_vrps(vrps, small_snapshot.announced)
        growth = len(minimal) / len(vrps) - 1
        assert 0.15 <= growth <= 0.60  # [0.32]

    def test_full_deployment_compression_near_bound(self, small_snapshot):
        pairs = small_snapshot.announced_set
        full = [Vrp(q, q.length, a) for q, a in pairs]
        compressed = len(compress_vrps(full))
        bound = lower_bound_pdu_count(pairs)
        achieved = 1 - compressed / len(full)
        maximum = 1 - bound / len(full)
        assert 0.04 <= achieved <= 0.09   # [0.0604]
        assert 0.04 <= maximum <= 0.095   # [0.0612]
        assert 0 <= (maximum - achieved) <= 0.004  # gap [~0.0008]
