"""Tests for the attack-effectiveness study (E7)."""

from __future__ import annotations

import pytest

from repro.analysis import run_hijack_study
from repro.bgp import AsTopology


class TestHijackStudy:
    @pytest.fixture(scope="class")
    def result(self, small_topology):
        return run_hijack_study(small_topology, samples=12, seed=1)

    def test_paper_ordering_of_attacks(self, result):
        """The §4/§5 hierarchy of attack effectiveness."""
        # Forged-origin subprefix vs non-minimal ROA is as strong as an
        # unprotected subprefix hijack...
        assert result.forged_subprefix_nonminimal == pytest.approx(
            result.subprefix_no_rpki, abs=0.02
        )
        # ...a minimal ROA kills it completely...
        assert result.forged_subprefix_minimal == 0.0
        # ...forcing the attacker down to the same-prefix variant,
        # where the majority of traffic stays on the legitimate route.
        assert result.forged_origin_minimal < 0.5

    def test_subprefix_hijack_captures_nearly_all(self, result):
        assert result.subprefix_no_rpki > 0.95

    def test_same_prefix_attack_still_captures_something(self, result):
        assert result.forged_origin_minimal > 0.0

    def test_deterministic_given_seed(self, small_topology):
        a = run_hijack_study(small_topology, samples=5, seed=9)
        b = run_hijack_study(small_topology, samples=5, seed=9)
        assert a == b

    def test_summary_lines(self, result):
        text = "\n".join(result.summary_lines())
        assert "non-minimal" in text
        assert "12 (victim, attacker) pairs" in text

    def test_tiny_topology_rejected(self):
        topo = AsTopology()
        topo.add_customer_provider(2, 1)
        with pytest.raises(ValueError):
            run_hijack_study(topo, samples=1)
