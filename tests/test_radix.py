"""Tests for the Patricia radix tree (repro.netbase.radix)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netbase import AF_INET, AF_INET6, Prefix, RadixTree
from repro.netbase.errors import TrieError


def p(text: str) -> Prefix:
    return Prefix.parse(text)


class TestBasics:
    def test_empty(self):
        tree = RadixTree[int](AF_INET)
        assert len(tree) == 0
        assert tree.get(p("10.0.0.0/8")) is None
        assert tree.longest_match(p("10.0.0.0/8")) is None

    def test_insert_and_get(self):
        tree = RadixTree[int](AF_INET)
        tree.insert(p("10.0.0.0/8"), 1)
        assert tree.get(p("10.0.0.0/8")) == 1
        assert p("10.0.0.0/8") in tree
        assert len(tree) == 1

    def test_overwrite_same_key(self):
        tree = RadixTree[int](AF_INET)
        tree.insert(p("10.0.0.0/8"), 1)
        tree.insert(p("10.0.0.0/8"), 2)
        assert tree.get(p("10.0.0.0/8")) == 2
        assert len(tree) == 1

    def test_insert_ancestor_after_descendant(self):
        tree = RadixTree[int](AF_INET)
        tree.insert(p("10.1.0.0/16"), 16)
        tree.insert(p("10.0.0.0/8"), 8)
        assert tree.get(p("10.0.0.0/8")) == 8
        assert tree.get(p("10.1.0.0/16")) == 16

    def test_diverging_keys_create_glue(self):
        tree = RadixTree[int](AF_INET)
        tree.insert(p("10.0.0.0/24"), 1)
        tree.insert(p("10.0.1.0/24"), 2)
        # the glue node (10.0.0.0/23) must not appear as a value
        assert tree.get(p("10.0.0.0/23")) is None
        assert sorted(str(k) for k in tree.keys()) == [
            "10.0.0.0/24",
            "10.0.1.0/24",
        ]

    def test_family_check(self):
        tree = RadixTree[int](AF_INET)
        with pytest.raises(TrieError):
            tree.insert(p("::/0"), 1)

    def test_ipv6_keys(self):
        tree = RadixTree[int](AF_INET6)
        tree.insert(p("2001:db8::/32"), 1)
        tree.insert(p("2001:db8:1::/48"), 2)
        assert tree.longest_match(p("2001:db8:1::1/128"))[1] == 2
        assert tree.longest_match(p("2001:db8:f::1/128"))[1] == 1


class TestRemoval:
    def test_remove_leaf(self):
        tree = RadixTree[int](AF_INET)
        tree.insert(p("10.0.0.0/24"), 1)
        assert tree.remove(p("10.0.0.0/24"))
        assert len(tree) == 0
        assert tree.get(p("10.0.0.0/24")) is None

    def test_remove_missing_returns_false(self):
        tree = RadixTree[int](AF_INET)
        tree.insert(p("10.0.0.0/24"), 1)
        assert not tree.remove(p("10.0.1.0/24"))
        assert not tree.remove(p("10.0.0.0/16"))

    def test_remove_interior_value_keeps_descendants(self):
        tree = RadixTree[int](AF_INET)
        tree.insert(p("10.0.0.0/8"), 8)
        tree.insert(p("10.0.0.0/24"), 24)
        tree.insert(p("10.0.1.0/24"), 24)
        assert tree.remove(p("10.0.0.0/8"))
        assert tree.get(p("10.0.0.0/24")) == 24
        assert tree.get(p("10.0.1.0/24")) == 24
        assert len(tree) == 2

    def test_remove_then_reinsert(self):
        tree = RadixTree[int](AF_INET)
        tree.insert(p("10.0.0.0/16"), 1)
        tree.remove(p("10.0.0.0/16"))
        tree.insert(p("10.0.0.0/16"), 2)
        assert tree.get(p("10.0.0.0/16")) == 2


class TestCoveringQueries:
    def test_covering_shortest_first(self):
        tree = RadixTree[int](AF_INET)
        tree.insert(p("10.0.0.0/8"), 8)
        tree.insert(p("10.0.0.0/16"), 16)
        tree.insert(p("10.0.0.0/24"), 24)
        covering = [v for _k, v in tree.covering(p("10.0.0.0/32"))]
        assert covering == [8, 16, 24]

    def test_covering_includes_exact(self):
        tree = RadixTree[int](AF_INET)
        tree.insert(p("10.0.0.0/24"), 24)
        assert [v for _k, v in tree.covering(p("10.0.0.0/24"))] == [24]

    def test_covered_enumeration(self):
        tree = RadixTree[int](AF_INET)
        for text in ["10.0.0.0/16", "10.0.1.0/24", "10.1.0.0/16", "11.0.0.0/8"]:
            tree.insert(p(text), 0)
        covered = {str(k) for k, _v in tree.covered(p("10.0.0.0/8"))}
        assert covered == {"10.0.0.0/16", "10.0.1.0/24", "10.1.0.0/16"}

    def test_covered_of_exact_leaf(self):
        tree = RadixTree[int](AF_INET)
        tree.insert(p("10.0.0.0/24"), 1)
        assert [k for k, _ in tree.covered(p("10.0.0.0/24"))] == [p("10.0.0.0/24")]


class TestAgainstBruteForce:
    entries = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2**32 - 1),
            st.integers(min_value=4, max_value=32),
        ),
        min_size=1,
        max_size=60,
        )

    @settings(max_examples=40, deadline=None)
    @given(entries, st.integers(min_value=0, max_value=2**32 - 1))
    def test_longest_match(self, items, probe_value):
        tree = RadixTree[int](AF_INET)
        model: set[Prefix] = set()
        for value, length in items:
            prefix = Prefix(AF_INET, value, length)
            tree.insert(prefix, length)
            model.add(prefix)
        probe = Prefix(AF_INET, probe_value, 32)
        expected = max(
            (m for m in model if m.covers(probe)),
            key=lambda m: m.length,
            default=None,
        )
        got = tree.longest_match(probe)
        assert (got[0] if got else None) == expected

    @settings(max_examples=40, deadline=None)
    @given(entries)
    def test_items_complete_and_sorted(self, items):
        tree = RadixTree[int](AF_INET)
        model: set[Prefix] = set()
        for value, length in items:
            prefix = Prefix(AF_INET, value, length)
            tree.insert(prefix, 0)
            model.add(prefix)
        listed = list(tree.keys())
        assert listed == sorted(model)
        assert len(tree) == len(model)

    @settings(max_examples=40, deadline=None)
    @given(entries)
    def test_covered_matches_bruteforce(self, items):
        tree = RadixTree[int](AF_INET)
        model: set[Prefix] = set()
        for value, length in items:
            prefix = Prefix(AF_INET, value, length)
            tree.insert(prefix, 0)
            model.add(prefix)
        query = p("128.0.0.0/2")
        got = {k for k, _ in tree.covered(query)}
        assert got == {m for m in model if query.covers(m)}

    @settings(max_examples=40, deadline=None)
    @given(entries)
    def test_random_removals_consistent(self, items):
        tree = RadixTree[int](AF_INET)
        model: dict[Prefix, int] = {}
        for value, length in items:
            prefix = Prefix(AF_INET, value, length)
            tree.insert(prefix, length)
            model[prefix] = length
        rng = random.Random(3)
        victims = rng.sample(sorted(model), k=len(model) // 2)
        for victim in victims:
            assert tree.remove(victim)
            del model[victim]
        assert sorted(tree.keys()) == sorted(model)
        for key, value in model.items():
            assert tree.get(key) == value
