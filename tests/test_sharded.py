"""repro.exper.sharded: the sharded executor, proven byte-identical.

The pinned invariant (docs/architecture.md): a sharded run's output —
aggregated result *and* recorded sink file — is byte-identical to the
serial executor's, under both seeding disciplines, with early stopping
on or off, **including** after a shard is killed or raises mid-stream
(the coordinator retries/reassigns) and after the coordinator itself
dies and is resumed.  Also pinned here:

* shard planning tiles the grid's canonical order contiguously, and
  shard JSON round-trips;
* ``executor="auto"`` resolves to serial on a single core (the 0.87x
  one-core process regression) and to process otherwise;
* a property-style sweep of randomized small specs agrees across
  serial, process, and sharded executors;
* crashed shards leak neither shared-memory segments nor temporary
  shard stores;
* the HTTP transport (serve tier shard workers) produces the same
  bytes, reassigns away from dead hosts, and refuses topology
  mismatches.
"""

from __future__ import annotations

import glob
import json
import os
import random
import urllib.request

import pytest

from repro.data import TopologyProfile, generate_topology
from repro.exper import (
    AnyAsPairSampler,
    ExperimentRunner,
    ExperimentSpec,
    MaxLengthLooseRoa,
    MinimalRoa,
    NoRoa,
    ScenarioCell,
    Shard,
    ShardCoordinator,
    StubPairSampler,
    plan_shards,
    resolve_executor,
)
from repro.exper.sharded import FAULT_ENV
from repro.netbase.errors import ReproError
from repro.results import JsonlSink, ResultsStore, read_run, shard_run_id
from repro.serve import HttpShardTransport, ThreadedShardWorkerServer


@pytest.fixture(scope="module")
def topology():
    return generate_topology(TopologyProfile(ases=150), random.Random(9))


def small_spec(**kwargs) -> ExperimentSpec:
    defaults = dict(
        cells=(
            ScenarioCell("forged-origin-subprefix", MinimalRoa()),
            ScenarioCell("forged-origin-subprefix", MaxLengthLooseRoa()),
        ),
        trials=6,
        seed=4,
        fractions=(None, 0.5),
    )
    defaults.update(kwargs)
    return ExperimentSpec(**defaults)


def run_recorded(topology, spec, path, **runner_kwargs):
    """A recorded run; returns (result, file bytes)."""
    sink = JsonlSink(path)
    try:
        result = ExperimentRunner(
            topology, spec, sink=sink, **runner_kwargs
        ).run(bootstrap_resamples=200)
    finally:
        sink.close()
    return result, path.read_bytes()


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------


class TestPlanning:
    def test_shards_tile_the_grid_contiguously(self):
        spec = small_spec(trials=5, fractions=(None, 0.5))
        plan = plan_shards(spec, 3)
        assert [shard.ranges for shard in plan] == [
            ((0, 0, 4),),
            ((0, 4, 5), (1, 0, 2)),
            ((1, 2, 5),),
        ]
        assert sum(shard.trial_count for shard in plan) == 10
        seen = []
        for fraction_index in range(2):
            for trial_index in range(5):
                owners = [
                    shard.shard_index for shard in plan
                    if shard.contains(fraction_index, trial_index)
                ]
                assert len(owners) == 1
                seen.append(owners[0])
        # Walking the grid in canonical order visits shards in order.
        assert seen == sorted(seen)

    def test_plan_clamps_to_total_trials(self):
        spec = small_spec(trials=2, fractions=(None,))
        plan = plan_shards(spec, 10)
        assert len(plan) == 2

    def test_plan_rejects_nonpositive(self):
        with pytest.raises(ReproError, match="positive"):
            plan_shards(small_spec(), 0)

    def test_shard_json_round_trip(self):
        shard = plan_shards(small_spec(trials=5), 3)[1]
        wire = json.loads(json.dumps(shard.to_json_dict()))
        assert Shard.from_json_dict(wire) == shard

    def test_bad_shard_json_rejected(self):
        with pytest.raises(ReproError, match="shard JSON missing key"):
            Shard.from_json_dict({"shard_index": 0})

    def test_shard_run_ids(self):
        assert shard_run_id("grid-abc", 2, 12) == "grid-abc.shard02of12"
        store = ResultsStore("unused")
        assert store.shard_ids("g", 2) == ["g.shard0of2", "g.shard1of2"]
        with pytest.raises(ReproError, match="outside the plan|outside"):
            shard_run_id("g", 5, 3)
        with pytest.raises(ReproError, match="bad shard run id"):
            shard_run_id("bad name", 0, 1)


# ----------------------------------------------------------------------
# Executor selection
# ----------------------------------------------------------------------


class TestAutoExecutor:
    def test_auto_falls_back_to_serial_on_one_core(self):
        # The one-core process executor was measured at 0.87x serial
        # (ROADMAP): auto must never pick it there.
        assert resolve_executor("auto", cpu_count=1) == "serial"

    def test_auto_uses_process_with_parallelism(self):
        assert resolve_executor("auto", cpu_count=4) == "process"

    def test_auto_respects_explicit_width_of_one(self):
        assert resolve_executor("auto", workers=1, cpu_count=8) == "serial"
        assert resolve_executor("auto", shards=1, cpu_count=8) == "serial"

    def test_concrete_executors_pass_through(self):
        for name in ("serial", "process", "sharded"):
            assert resolve_executor(name, cpu_count=1) == name

    def test_unknown_executor_rejected(self):
        with pytest.raises(ReproError, match="unknown executor"):
            resolve_executor("threads")
        with pytest.raises(ReproError, match="unknown executor"):
            ExperimentSpec(
                cells=(ScenarioCell("forged-origin-subprefix", NoRoa()),),
                trials=1, executor="threads",
            )

    def test_spec_executor_round_trips_but_not_identity(self):
        serial = small_spec(executor="serial")
        sharded = small_spec(executor="sharded")
        assert ExperimentSpec.from_json(
            sharded.to_json()
        ).executor == "sharded"
        # Execution strategy is not run identity: same hash, so runs
        # merge and resume across executors.
        assert serial.spec_hash() == sharded.spec_hash()


# ----------------------------------------------------------------------
# Byte-identity to serial
# ----------------------------------------------------------------------


class TestShardedEquivalence:
    @pytest.mark.parametrize("seeding", ["derived", "stream"])
    @pytest.mark.parametrize("stopping", ["none", "ci"])
    def test_sharded_matches_serial_bytes(
        self, topology, tmp_path, seeding, stopping
    ):
        spec = small_spec(
            trials=8, seeding=seeding, stopping=stopping,
            stop_ci_width=0.4, stop_min_trials=3, stop_check_every=2,
        )
        serial, serial_bytes = run_recorded(
            topology, spec, tmp_path / "serial.jsonl", executor="serial")
        sharded, sharded_bytes = run_recorded(
            topology, spec, tmp_path / "sharded.jsonl",
            executor="sharded", shards=3)
        assert sharded == serial
        assert sharded_bytes == serial_bytes

    def test_shard_store_merges_back_to_serial(self, topology, tmp_path):
        spec = small_spec()
        _, serial_bytes = run_recorded(
            topology, spec, tmp_path / "serial.jsonl", executor="serial")
        store = ResultsStore(tmp_path / "shards")
        run_recorded(
            topology, spec, tmp_path / "sharded.jsonl",
            executor="sharded", shards=3, shard_store=store)
        ids = store.run_ids()
        assert len(ids) == 3 and all(".shard" in i for i in ids)
        store.merge("merged", ids)
        assert store.path("merged").read_bytes() == serial_bytes

    def test_property_random_specs_agree_across_executors(
        self, topology, tmp_path
    ):
        """~20 seeded random small specs: serial == process == sharded."""
        rng = random.Random(20250807)
        kinds = ("forged-origin-subprefix", "forged-origin")
        policies = (MinimalRoa(), MaxLengthLooseRoa(), NoRoa())
        combos = [(kind, policy) for kind in kinds for policy in policies]
        for case in range(20):
            cells = tuple(
                ScenarioCell(kind, policy)
                for kind, policy in rng.sample(combos, rng.randint(1, 2))
            )
            spec = ExperimentSpec(
                cells=cells,
                trials=rng.randint(2, 5),
                seed=rng.randint(0, 999),
                fractions=tuple(
                    rng.sample([None, 0.0, 0.5, 1.0], rng.randint(1, 2))
                ),
                sampler=rng.choice(
                    [StubPairSampler(), AnyAsPairSampler()]),
                seeding=rng.choice(["derived", "stream"]),
                stopping=rng.choice(["none", "ci"]),
                stop_ci_width=0.5, stop_min_trials=2, stop_check_every=1,
            )
            serial, serial_bytes = run_recorded(
                topology, spec, tmp_path / f"{case}-serial.jsonl",
                executor="serial")
            process, process_bytes = run_recorded(
                topology, spec, tmp_path / f"{case}-process.jsonl",
                executor="process", workers=2)
            sharded, sharded_bytes = run_recorded(
                topology, spec, tmp_path / f"{case}-sharded.jsonl",
                executor="sharded", shards=rng.randint(2, 4))
            assert process == serial and sharded == serial, f"case {case}"
            # The process executor may interleave fractions in its
            # sink (records release on completion watermarks); its
            # record *set* is identical.  The sharded coordinator
            # re-streams in grid order, so its file is byte-for-byte
            # the serial one.
            assert sorted(set(process_bytes.splitlines())) == sorted(
                set(serial_bytes.splitlines())), f"case {case}"
            assert sharded_bytes == serial_bytes, f"case {case}"


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------


class TestFaultInjection:
    @pytest.mark.parametrize("mode", ["kill", "raise"])
    @pytest.mark.parametrize("seeding", ["derived", "stream"])
    def test_shard_death_mid_stream_retried_byte_identical(
        self, topology, tmp_path, monkeypatch, mode, seeding
    ):
        spec = small_spec(seeding=seeding)
        _, serial_bytes = run_recorded(
            topology, spec, tmp_path / "serial.jsonl", executor="serial")
        # Shard 1 dies after 3 records on its first attempt; the
        # retry must pick up from its flushed partial and the merged
        # stream must not show a seam.
        monkeypatch.setenv(FAULT_ENV, f"1:{mode}:3")
        sharded, sharded_bytes = run_recorded(
            topology, spec, tmp_path / "sharded.jsonl",
            executor="sharded", shards=3)
        assert sharded_bytes == serial_bytes

    def test_instant_death_and_store_retry_resumes_partial(
        self, topology, tmp_path, monkeypatch
    ):
        spec = small_spec()
        _, serial_bytes = run_recorded(
            topology, spec, tmp_path / "serial.jsonl", executor="serial")
        monkeypatch.setenv(FAULT_ENV, "0:kill:0")
        store = ResultsStore(tmp_path / "shards")
        _, sharded_bytes = run_recorded(
            topology, spec, tmp_path / "sharded.jsonl",
            executor="sharded", shards=3, shard_store=store)
        assert sharded_bytes == serial_bytes

    def test_no_leaked_segments_or_shard_dirs(
        self, topology, tmp_path, monkeypatch
    ):
        before = set(glob.glob("/tmp/repro-shards-*"))
        spec = small_spec(trials=3)
        monkeypatch.setenv(FAULT_ENV, "1:kill:2")
        runner = ExperimentRunner(topology, spec, executor="sharded",
                                  shards=2)
        runner.run(bootstrap_resamples=100)
        # The coordinator's temporary shard store is gone...
        assert set(glob.glob("/tmp/repro-shards-*")) == before
        # ...and so is the topology's shared-memory segment.
        segment = runner.last_shared_segment
        if segment is not None:
            from multiprocessing import shared_memory

            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=segment)

    def test_retries_exhausted_raises(self, topology, monkeypatch):
        spec = small_spec(trials=3)
        monkeypatch.setenv(FAULT_ENV, "0:kill:0")
        coordinator = ShardCoordinator(
            topology, spec, shards=2, retries=0)
        with pytest.raises(ReproError, match="failed after 1 attempts"):
            list(coordinator.records())

    def test_fault_env_only_fires_on_first_attempt(self, monkeypatch):
        from repro.exper.sharded import _parse_fault

        assert _parse_fault("1:kill:3", 1, 0) == ("kill", 3)
        assert _parse_fault("1:kill:3", 1, 1) is None
        assert _parse_fault("1:kill:3", 0, 0) is None
        assert _parse_fault(None, 1, 0) is None
        with pytest.raises(ReproError, match="bad .*FAULT"):
            _parse_fault("nonsense", 0, 0)


# ----------------------------------------------------------------------
# Coordinator resume
# ----------------------------------------------------------------------


class TestCoordinatorResume:
    @pytest.mark.parametrize("seeding", ["derived", "stream"])
    def test_killed_coordinator_resumes_byte_identical(
        self, topology, tmp_path, seeding
    ):
        spec = small_spec(seeding=seeding)
        full_path = tmp_path / "full.jsonl"
        full, full_bytes = run_recorded(
            topology, spec, full_path, executor="serial")
        # Rewrite the coordinator's sink as its death would have left
        # it: a complete prefix plus half a record line.
        lines = full_path.read_bytes().splitlines(keepends=True)
        part = tmp_path / "part.jsonl"
        part.write_bytes(b"".join(lines[:8]) + lines[8][: len(lines[8]) // 2])
        sink = JsonlSink(part)
        try:
            resumed = ExperimentRunner(
                topology, spec, executor="sharded", shards=3,
                sink=sink, resume_from=sink,
            ).run(bootstrap_resamples=200)
        finally:
            sink.close()
        assert resumed == full
        # The half-recorded trial is re-evaluated whole; its re-written
        # records are byte-identical, so the *deduplicated* stream is
        # byte-for-byte the uninterrupted run (the durable-sink resume
        # contract, same as the serial executor's).
        assert read_run(part) == read_run(full_path)
        assert sorted(set(part.read_bytes().splitlines())) == sorted(
            set(full_bytes.splitlines()))

    def test_resume_with_persistent_store_reuses_shard_files(
        self, topology, tmp_path, monkeypatch
    ):
        """Coordinator death + resume over the same shard store: the
        surviving complete shard files short-circuit re-evaluation."""
        spec = small_spec()
        full_path = tmp_path / "full.jsonl"
        _, full_bytes = run_recorded(
            topology, spec, full_path, executor="serial")
        store = ResultsStore(tmp_path / "shards")
        sink_path = tmp_path / "sharded.jsonl"
        _, sharded_bytes = run_recorded(
            topology, spec, sink_path, executor="sharded", shards=3,
            shard_store=store)
        assert sharded_bytes == full_bytes
        # "Kill" the coordinator: truncate its sink (on a complete
        # trial boundary), keep shard files.
        lines = sink_path.read_bytes().splitlines(keepends=True)
        sink_path.write_bytes(b"".join(lines[:5]))
        sink = JsonlSink(sink_path)
        try:
            resumed = ExperimentRunner(
                topology, spec, executor="sharded", shards=3,
                shard_store=store, sink=sink, resume_from=sink,
            ).run(bootstrap_resamples=200)
        finally:
            sink.close()
        assert sink_path.read_bytes() == full_bytes
        full_result, _ = run_recorded(
            topology, spec, tmp_path / "again.jsonl", executor="serial")
        assert resumed == full_result


# ----------------------------------------------------------------------
# The HTTP transport (serve-tier shard workers)
# ----------------------------------------------------------------------


class TestHttpTransport:
    def test_http_workers_byte_identical(self, topology, tmp_path):
        spec = small_spec(trials=4)
        _, serial_bytes = run_recorded(
            topology, spec, tmp_path / "serial.jsonl", executor="serial")
        with ThreadedShardWorkerServer(topology) as w1, \
                ThreadedShardWorkerServer(topology) as w2:
            transport = HttpShardTransport([
                f"127.0.0.1:{w1.port}", f"http://127.0.0.1:{w2.port}",
            ])
            _, sharded_bytes = run_recorded(
                topology, spec, tmp_path / "http.jsonl",
                executor="sharded", shards=3, shard_transport=transport)
        assert sharded_bytes == serial_bytes

    def test_dead_host_reassigned(self, topology, tmp_path):
        spec = small_spec(trials=4, fractions=(None,))
        _, serial_bytes = run_recorded(
            topology, spec, tmp_path / "serial.jsonl", executor="serial")
        with ThreadedShardWorkerServer(topology) as worker:
            # Port 9 (discard) is a dead host: its shards fail fast
            # and rotate onto the live worker on retry.
            transport = HttpShardTransport(
                [f"127.0.0.1:{worker.port}", "127.0.0.1:9"],
                request_timeout=2.0,
            )
            assert transport.host_for(1, 0).endswith(":9")
            assert transport.host_for(1, 1).endswith(f":{worker.port}")
            _, sharded_bytes = run_recorded(
                topology, spec, tmp_path / "http.jsonl",
                executor="sharded", shards=2, shard_transport=transport)
        assert sharded_bytes == serial_bytes

    def test_topology_mismatch_refused(self, topology):
        other = generate_topology(
            TopologyProfile(ases=80), random.Random(2))
        spec = small_spec(trials=2, fractions=(None,))
        with ThreadedShardWorkerServer(other) as worker:
            transport = HttpShardTransport([f"127.0.0.1:{worker.port}"])
            coordinator = ShardCoordinator(
                topology, spec, shards=1, transport=transport, retries=0)
            with pytest.raises(ReproError, match="topology mismatch"):
                list(coordinator.records())

    def test_worker_status_endpoints(self, topology):
        with ThreadedShardWorkerServer(topology) as worker:
            base = f"http://127.0.0.1:{worker.port}"
            with urllib.request.urlopen(f"{base}/status", timeout=5) as r:
                status = json.load(r)
            assert status["topology_hash"] == worker.topology_hash
            assert status["shards"] == 0
            with urllib.request.urlopen(f"{base}/shards", timeout=5) as r:
                assert json.load(r) == {"shards": []}
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{base}/shards/7", timeout=5)
            assert err.value.code == 404


# ----------------------------------------------------------------------
# Runner integration details
# ----------------------------------------------------------------------


class TestRunnerIntegration:
    def test_spec_executor_drives_runner(self, topology):
        spec = small_spec(trials=2, fractions=(None,), executor="sharded")
        runner = ExperimentRunner(topology, spec)
        assert runner.executor == "sharded"
        # An explicit runner argument overrides the spec.
        assert ExperimentRunner(
            topology, spec, executor="serial"
        ).executor == "serial"

    def test_shard_metrics_recorded(self, topology):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        spec = small_spec(trials=3, fractions=(None,))
        ExperimentRunner(
            topology, spec, executor="sharded", shards=2,
            registry=registry,
        ).run(bootstrap_resamples=100)
        snapshot = registry.snapshot()
        assert snapshot["exper.shards_dispatched"] == 2
        assert snapshot["exper.shards_completed"] == 2

    def test_array_engine_sharded_matches_object(self, topology, tmp_path):
        object_spec = small_spec(trials=4, fractions=(None,))
        array_spec = small_spec(
            trials=4, fractions=(None,), engine="array")
        _, object_bytes = run_recorded(
            topology, object_spec, tmp_path / "object.jsonl",
            executor="sharded", shards=2)
        _, array_bytes = run_recorded(
            topology, array_spec, tmp_path / "array.jsonl",
            executor="sharded", shards=2)
        header, object_records = read_run(tmp_path / "object.jsonl")
        _, array_records = read_run(tmp_path / "array.jsonl")
        assert header.engine == "object"
        assert array_records == object_records
