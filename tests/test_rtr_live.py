"""Live RTR cache/client tests over real localhost TCP sockets."""

from __future__ import annotations

import pytest

from repro.netbase import Prefix
from repro.rpki import Vrp
from repro.rtr import RtrCacheServer, RtrClient
from repro.rtr.session import CacheState, VrpDiff


def p(text: str) -> Prefix:
    return Prefix.parse(text)


V1 = Vrp(p("168.122.0.0/16"), 24, 111)
V2 = Vrp(p("10.0.0.0/8"), 8, 65000)
V3 = Vrp(p("2001:db8::/32"), 48, 7)


class TestCacheState:
    def test_update_produces_diff(self):
        state = CacheState()
        diff = state.update([V1, V2])
        assert set(diff.announced) == {V1, V2}
        assert not diff.withdrawn
        assert state.serial == 1

    def test_incremental_diffs(self):
        state = CacheState()
        state.update([V1])
        state.update([V1, V2])
        state.update([V2])
        diffs = state.diff_since(1)
        assert diffs is not None and len(diffs) == 2
        net = state.flatten_diffs(diffs)
        assert set(net.announced) == {V2}
        assert set(net.withdrawn) == {V1}

    def test_flatten_cancels_bounce(self):
        state = CacheState()
        bounce = [
            VrpDiff(announced=(V1,), withdrawn=()),
            VrpDiff(announced=(), withdrawn=(V1,)),
        ]
        net = state.flatten_diffs(bounce)
        assert net.empty

    def test_history_limit_forces_reset(self):
        state = CacheState(history_limit=2)
        for vrps in ([V1], [V2], [V1, V2], [V3], [V1, V3]):
            state.update(vrps)
        assert state.serial == 5
        assert state.diff_since(1) is None
        assert state.diff_since(state.serial) == []

    def test_future_serial_is_unknown(self):
        state = CacheState()
        state.update([V1])
        assert state.diff_since(99) is None

    def test_noop_update_coalesced(self):
        state = CacheState()
        state.update([V1, V2])
        diff = state.update([V2, V1])  # same set, different order
        assert diff.empty
        assert state.serial == 1
        # No empty diff polluting the history either.
        assert state.diff_since(0) is not None
        assert all(not d.empty for d in state.diff_since(0))

    def test_noop_updates_do_not_flush_history(self):
        state = CacheState(history_limit=2)
        state.update([V1])
        state.update([V1, V2])
        for _ in range(10):
            state.update([V1, V2])  # idle refreshes
        assert state.diff_since(1) is not None  # history survived


@pytest.fixture()
def server():
    with RtrCacheServer([V1, V2]) as running:
        yield running


class TestLiveProtocol:
    def test_reset_query_full_table(self, server):
        with RtrClient(server.host, server.port) as client:
            client.sync()
            assert client.vrps == {V1, V2}
            assert client.serial == server.state.serial

    def test_incremental_update(self, server):
        with RtrClient(server.host, server.port) as client:
            client.sync()
            server.update([V1, V3])  # add V3, drop V2
            client.wait_for_notify()
            client.sync()
            assert client.vrps == {V1, V3}

    def test_noop_update_sends_no_notify(self, server):
        with RtrClient(server.host, server.port) as client:
            client.sync()
            before = server.state.serial
            server.update([V1, V2])  # identical set: coalesced
            assert server.state.serial == before
            # A fresh sync still works and converges to the same set.
            client.sync()
            assert client.vrps == {V1, V2}

    def test_two_clients_both_notified(self, server):
        with RtrClient(server.host, server.port) as a, RtrClient(
            server.host, server.port
        ) as b:
            a.sync()
            b.sync()
            server.update([V3])
            a.wait_for_notify()
            b.wait_for_notify()
            a.sync()
            b.sync()
            assert a.vrps == b.vrps == {V3}

    def test_stale_serial_triggers_cache_reset_path(self, server):
        with RtrClient(server.host, server.port) as client:
            client.sync()
            # Push the cache far beyond its diff history.
            for index in range(20):
                server.update([V1, Vrp(p("10.0.0.0/8"), 8 + index % 3 + 8, 65000)])
            client.sync()  # serial query -> cache reset -> reset query
            assert client.vrps == server.state.vrps

    def test_session_mismatch_resets(self, server):
        with RtrClient(server.host, server.port) as client:
            client.sync()
            client.session_id = 999  # pretend we spoke to another cache
            client.sync()
            assert client.vrps == {V1, V2}

    def test_large_table_transfer(self):
        many = [
            Vrp(Prefix(4, (10 << 24) + (i << 8), 24), 24, 65000 + (i % 100))
            for i in range(3000)
        ]
        with RtrCacheServer(many) as big_server:
            with RtrClient(big_server.host, big_server.port) as client:
                processed = client.sync()
                assert len(client.vrps) == 3000
                assert processed == 3000 + 2  # cache response + end of data
