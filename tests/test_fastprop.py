"""Tests for the array propagation engine and the compiled topology.

The headline invariant: the ``"array"`` engine is *bit-identical* to
the ``"object"`` engine — same routes, same capture fractions, same
RNG consumption — on every scenario shape, including the PR 2 golden
specs whose numbers are pinned in ``tests/test_exper.py``.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.bgp import (
    AsTopology,
    CompiledTopology,
    Seed,
    VrpIndex,
    coerce_engine,
    evaluate_attack_seeds,
    propagate_prefix,
    propagate_prefix_array,
)
from repro.data import read_caida_compiled, write_caida
from repro.data.asgraph import TopologyProfile, generate_topology
from repro.exper import ExperimentRunner, ExperimentSpec
from repro.netbase import Prefix
from repro.netbase.errors import ReproError
from repro.rpki import Vrp

PFX = Prefix.parse("168.122.0.0/16")
SUB = Prefix.parse("168.122.0.0/24")


@pytest.fixture(scope="module")
def topology():
    """Big enough for interesting structure, fast enough to sweep."""
    return generate_topology(TopologyProfile(ases=250), random.Random(8))


@pytest.fixture(scope="module")
def cast(topology):
    stubs = sorted(topology.stub_ases())
    return stubs[1], stubs[-2], stubs[5]  # victim, attacker, attacker 2


class TestCompiledTopology:
    def test_indices_follow_asn_order(self, topology):
        compiled = topology.compiled()
        assert list(compiled.asns) == sorted(topology.ases)
        assert all(
            compiled.index_of[asn] == i
            for i, asn in enumerate(compiled.asns)
        )

    def test_csr_rows_match_object_views(self, topology):
        compiled = topology.compiled()
        for i, asn in enumerate(compiled.asns):
            for rows, view in (
                (compiled.provider_rows, topology.providers_of),
                (compiled.customer_rows, topology.customers_of),
                (compiled.peer_rows, topology.peers_of),
            ):
                neighbors = tuple(compiled.asns[j] for j in rows[i])
                assert neighbors == tuple(sorted(view(asn)))
                assert list(rows[i]) == sorted(rows[i])

    def test_csr_flat_arrays_are_consistent(self, topology):
        compiled = topology.compiled()
        assert compiled.provider_indptr[0] == 0
        assert compiled.provider_indptr[-1] == len(compiled.provider_indices)
        assert compiled.edge_count() == topology.edge_count()

    def test_compile_is_cached_and_invalidated(self, topology):
        compiled = topology.compiled()
        assert topology.compiled() is compiled
        mutated = generate_topology(TopologyProfile(ases=20), random.Random(0))
        first = mutated.compiled()
        mutated.add_as(9999)
        assert mutated.compiled() is not first
        assert 9999 in mutated.compiled()

    def test_pickle_drops_the_compiled_cache(self, topology):
        topology.compiled()
        clone = pickle.loads(pickle.dumps(topology))
        assert clone._compiled is None
        assert clone.ases == topology.ases
        assert len(clone.compiled()) == len(topology)

    def test_validation_mask(self, topology):
        compiled = topology.compiled()
        assert sum(compiled.validation_mask(None)) == len(compiled)
        chosen = frozenset(list(compiled.asns)[:7])
        mask = compiled.validation_mask(chosen)
        assert sum(mask) == 7
        # ASNs outside the topology are ignored, not an error.
        assert sum(compiled.validation_mask(frozenset({999999}))) == 0

    def test_read_caida_compiled(self, topology, tmp_path):
        path = tmp_path / "rel.txt"
        write_caida(topology, path)
        loaded, compiled = read_caida_compiled(path)
        assert loaded.ases == topology.ases
        assert loaded.compiled() is compiled
        assert compiled.asns == topology.compiled().asns


def _scenarios(victim, attacker, attacker2):
    """The scenario shapes both engines must agree on."""
    return [
        ([Seed.origin(victim)], None, None),
        ([Seed.origin(victim), Seed.origin(attacker)], None, None),
        (
            [Seed.origin(victim), Seed.forged_origin(attacker, victim)],
            VrpIndex([Vrp(PFX, 16, victim)]),
            None,
        ),
        (
            [Seed.forged_origin(attacker, victim)],
            VrpIndex([Vrp(PFX, 24, victim)]),
            None,
        ),
        (
            [Seed.origin(attacker), Seed.forged_origin(attacker2, victim)],
            VrpIndex([Vrp(PFX, 16, victim)]),
            "half",
        ),
        (
            # Prepended forged-origin announcement.
            [Seed(attacker, (attacker, attacker, attacker, victim))],
            VrpIndex([Vrp(PFX, 24, victim)]),
            "half",
        ),
    ]


class TestRouteEquivalence:
    @pytest.mark.parametrize("case", range(6))
    @pytest.mark.parametrize("prefix", [PFX, SUB], ids=["same", "sub"])
    @pytest.mark.parametrize("seeded", [False, True], ids=["det", "rng"])
    def test_routes_bit_identical(self, topology, cast, case, prefix, seeded):
        victim, attacker, attacker2 = cast
        seeds, vrps, val = _scenarios(victim, attacker, attacker2)[case]
        if val == "half":
            val = frozenset(
                random.Random(case).sample(sorted(topology.ases), 120)
            )
        rng_a = random.Random(40 + case) if seeded else None
        rng_b = random.Random(40 + case) if seeded else None
        by_object = propagate_prefix(
            topology, prefix, seeds,
            vrp_index=vrps, validating_ases=val, rng=rng_a,
        )
        by_array = propagate_prefix_array(
            topology, prefix, seeds,
            vrp_index=vrps, validating_ases=val, rng=rng_b,
        )
        assert by_object == by_array
        if seeded:
            # Not just the same routes: the same randomness consumed.
            assert rng_a.getstate() == rng_b.getstate()

    def test_accepts_a_precompiled_topology(self, topology, cast):
        victim = cast[0]
        assert propagate_prefix_array(
            topology.compiled(), PFX, [Seed.origin(victim)]
        ) == propagate_prefix(topology, PFX, [Seed.origin(victim)])

    def test_seed_errors_match_object_engine(self, topology):
        from repro.bgp import SimulationError

        with pytest.raises(SimulationError, match="not in topology"):
            propagate_prefix_array(topology, PFX, [Seed.origin(10**9)])
        victim = min(topology.stub_ases())
        with pytest.raises(SimulationError, match="duplicate seed"):
            propagate_prefix_array(
                topology, PFX, [Seed.origin(victim), Seed.origin(victim)]
            )

    def test_shuffled_edge_order_agrees_across_engines(self, topology):
        """The tie-break bugfix's purpose: engines agree no matter how
        the topology was assembled."""
        edges = [
            (a, b, "c2p" if kind.value == "customer" else "p2p")
            for a, b, kind in topology.edges()
        ]
        random.Random(13).shuffle(edges)
        rebuilt = AsTopology.from_edges(edges)
        origin = min(topology.stub_ases())
        for seed in range(3):
            assert propagate_prefix(
                rebuilt, PFX, [Seed.origin(origin)], rng=random.Random(seed)
            ) == propagate_prefix_array(
                rebuilt, PFX, [Seed.origin(origin)], rng=random.Random(seed)
            )


class TestEvaluateEquivalence:
    @pytest.mark.parametrize("case", range(6))
    @pytest.mark.parametrize("attack_prefix", [PFX, SUB], ids=["same", "sub"])
    def test_fractions_bit_identical(self, topology, cast, case, attack_prefix):
        victim, attacker, attacker2 = cast
        seeds, vrps, val = _scenarios(victim, attacker, attacker2)[case]
        seeds = [s for s in seeds if s.asn != victim] or [
            Seed.origin(attacker)
        ]
        if val == "half":
            val = frozenset(
                random.Random(case).sample(sorted(topology.ases), 120)
            )
        rng_a, rng_b = random.Random(case), random.Random(case)
        by_object = evaluate_attack_seeds(
            topology, victim, PFX, attack_prefix, seeds,
            vrp_index=vrps, validating_ases=val, rng=rng_a,
        )
        by_array = evaluate_attack_seeds(
            topology, victim, PFX, attack_prefix, seeds,
            vrp_index=vrps, validating_ases=val, rng=rng_b,
            engine="array",
        )
        assert by_object == by_array
        assert rng_a.getstate() == rng_b.getstate()

    def test_unknown_engine_rejected(self, topology, cast):
        victim, attacker, _ = cast
        with pytest.raises(ReproError, match="unknown propagation engine"):
            evaluate_attack_seeds(
                topology, victim, PFX, SUB, [Seed.origin(attacker)],
                engine="quantum",
            )
        with pytest.raises(ReproError):
            coerce_engine("quantum")

    def test_tiny_topology_rejected(self):
        tiny = AsTopology.from_edges([(1, 2, "c2p")])
        with pytest.raises(ReproError, match="too small"):
            evaluate_attack_seeds(
                tiny, 1, PFX, PFX, [Seed.origin(2)], engine="array"
            )


class TestExperimentEngineField:
    def test_spec_round_trips_engine(self):
        from repro.exper import MinimalRoa, ScenarioCell

        spec = ExperimentSpec(
            cells=(ScenarioCell("forged-origin", MinimalRoa()),),
            trials=2,
            engine="array",
        )
        assert ExperimentSpec.from_json(spec.to_json()) == spec
        assert '"engine": "array"' in spec.to_json()
        # Older spec files without the field default to the object engine.
        legacy = ExperimentSpec.from_json(
            '{"cells": [{"kind": "forged-origin"}], "trials": 1}'
        )
        assert legacy.engine == "object"

    def test_bad_engine_rejected(self):
        from repro.exper import MinimalRoa, ScenarioCell

        with pytest.raises(ReproError, match="unknown propagation engine"):
            ExperimentSpec(
                cells=(ScenarioCell("forged-origin", MinimalRoa()),),
                trials=1,
                engine="quantum",
            )

    def test_golden_specs_byte_identical_across_engines(self, topology):
        """The acceptance criterion: on the PR 2 golden specs, the
        array engine's aggregated ExperimentResult equals the object
        engine's exactly — bootstrap CIs and all."""
        import dataclasses

        from repro.analysis.deployment import deployment_sweep_spec
        from repro.analysis.hijack_eval import hijack_study_spec

        for spec in (
            hijack_study_spec(samples=5, seed=42),
            deployment_sweep_spec(fractions=(0.5,), samples=3, seed=9),
        ):
            by_object = ExperimentRunner(topology, spec).run(
                bootstrap_resamples=100
            )
            by_array = ExperimentRunner(
                topology, dataclasses.replace(spec, engine="array")
            ).run(bootstrap_resamples=100)
            assert by_object == by_array

    def test_array_engine_reproduces_golden_numbers(self):
        """Same pinned values as tests/test_exper.py, array engine."""
        from repro.analysis import run_hijack_study

        replay = generate_topology(TopologyProfile(ases=150), random.Random(5))
        result = run_hijack_study(replay, samples=7, seed=42, engine="array")
        assert result.subprefix_no_rpki == 1.0
        assert result.forged_subprefix_nonminimal == 1.0
        assert result.forged_subprefix_minimal == 0.0
        assert result.forged_origin_minimal == 0.2944015444015444

    def test_array_engine_with_process_executor(self, topology):
        """Engine and executor axes compose: array × process equals
        array × serial equals object × serial."""
        from repro.exper import MaxLengthLooseRoa, ScenarioCell

        spec = ExperimentSpec(
            cells=(
                ScenarioCell("forged-origin-subprefix", MaxLengthLooseRoa()),
            ),
            trials=4,
            seed=3,
            engine="array",
        )
        serial = ExperimentRunner(topology, spec).run(bootstrap_resamples=50)
        parallel = ExperimentRunner(
            topology, spec, executor="process", workers=2
        ).run(bootstrap_resamples=50)
        assert serial == parallel
