"""Tests for the AS topology model and the synthetic graph generator."""

from __future__ import annotations

import random

import pytest

from repro.bgp import AsTopology, Relationship, TopologyError
from repro.data.asgraph import TopologyProfile, generate_topology


class TestAsTopology:
    def test_customer_provider_views(self):
        topo = AsTopology()
        topo.add_customer_provider(2, 1)
        assert topo.providers_of(2) == {1}
        assert topo.customers_of(1) == {2}
        assert topo.relationship(1, 2) is Relationship.CUSTOMER
        assert topo.relationship(2, 1) is Relationship.PROVIDER

    def test_peering_symmetric(self):
        topo = AsTopology()
        topo.add_peering(1, 2)
        assert topo.peers_of(1) == {2} and topo.peers_of(2) == {1}
        assert topo.relationship(1, 2) is Relationship.PEER

    def test_conflicting_edge_rejected(self):
        topo = AsTopology()
        topo.add_customer_provider(2, 1)
        with pytest.raises(TopologyError):
            topo.add_peering(1, 2)
        with pytest.raises(TopologyError):
            topo.add_customer_provider(1, 2)

    def test_self_edges_rejected(self):
        topo = AsTopology()
        with pytest.raises(TopologyError):
            topo.add_customer_provider(1, 1)
        with pytest.raises(TopologyError):
            topo.add_peering(1, 1)

    def test_relationship_requires_neighbors(self):
        topo = AsTopology()
        topo.add_as(1)
        topo.add_as(2)
        with pytest.raises(TopologyError):
            topo.relationship(1, 2)

    def test_edges_enumerated_once(self):
        topo = AsTopology()
        topo.add_peering(1, 2)
        topo.add_customer_provider(3, 1)
        edges = list(topo.edges())
        assert len(edges) == topo.edge_count() == 2

    def test_stub_and_tier1_views(self, chain_topology):
        assert chain_topology.stub_ases() == {111, 666, 40}
        assert chain_topology.tier1_ases() == {1, 2}

    def test_from_edges(self):
        topo = AsTopology.from_edges([(2, 1, "c2p"), (1, 3, "p2p")])
        assert topo.providers_of(2) == {1}
        assert topo.peers_of(1) == {3}
        with pytest.raises(TopologyError):
            AsTopology.from_edges([(1, 2, "sibling")])

    def test_membership(self, chain_topology):
        assert 111 in chain_topology
        assert 9999 not in chain_topology
        assert len(chain_topology) == 8


class TestGenerateTopology:
    def test_size_and_determinism(self):
        profile = TopologyProfile(ases=300, tier1=4)
        a = generate_topology(profile, random.Random(5))
        b = generate_topology(profile, random.Random(5))
        assert len(a) == 300
        assert sorted(a.edges()) == sorted(b.edges())

    def test_tier1_clique_is_fully_meshed(self, small_topology):
        tier1 = sorted(small_topology.tier1_ases() & set(range(1, 5)))
        for left in tier1:
            for right in tier1:
                if left < right:
                    assert right in small_topology.peers_of(left)

    def test_every_non_tier1_has_a_provider(self, small_topology):
        for asn in small_topology.ases:
            if asn not in small_topology.tier1_ases():
                assert small_topology.providers_of(asn)

    def test_customer_provider_graph_is_acyclic(self, small_topology):
        """c2p edges must form a DAG or Gao-Rexford is ill-defined."""
        state: dict[int, int] = {}

        def visit(asn: int) -> None:
            state[asn] = 1
            for provider in small_topology.providers_of(asn):
                mark = state.get(provider)
                assert mark != 1, "customer-provider cycle detected"
                if mark is None:
                    visit(provider)
            state[asn] = 2

        for asn in small_topology.ases:
            if asn not in state:
                visit(asn)

    def test_mostly_stubs(self, small_topology):
        stubs = small_topology.stub_ases()
        assert len(stubs) > len(small_topology) * 0.6

    def test_rejects_degenerate_profiles(self):
        with pytest.raises(ValueError):
            TopologyProfile(ases=3, tier1=5)
        with pytest.raises(ValueError):
            TopologyProfile(transit_fraction=1.5)
