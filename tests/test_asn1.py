"""Tests for the DER codec (repro.asn1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asn1 import (
    Asn1Error,
    BitString,
    ContextTag,
    Integer,
    Null,
    ObjectIdentifier,
    OctetString,
    Sequence_,
    Set_,
    Utf8String,
    decode,
    decode_all,
    encode,
)


class TestKnownVectors:
    """Byte-exact vectors from X.690 and common fixtures."""

    def test_integer_zero(self):
        assert encode(Integer(0)) == bytes.fromhex("020100")

    def test_integer_127_128(self):
        assert encode(Integer(127)) == bytes.fromhex("02017f")
        assert encode(Integer(128)) == bytes.fromhex("02020080")

    def test_integer_negative(self):
        assert encode(Integer(-1)) == bytes.fromhex("0201ff")
        assert encode(Integer(-129)) == bytes.fromhex("0202ff7f")

    def test_integer_65537(self):
        assert encode(Integer(65537)) == bytes.fromhex("0203010001")

    def test_null(self):
        assert encode(Null()) == bytes.fromhex("0500")

    def test_oid_sha256_with_rsa(self):
        oid = ObjectIdentifier("1.2.840.113549.1.1.11")
        assert encode(oid) == bytes.fromhex("06092a864886f70d01010b")

    def test_oid_two_arcs(self):
        assert encode(ObjectIdentifier("2.5")) == bytes.fromhex("060155")

    def test_octet_string(self):
        assert encode(OctetString(b"hi")) == bytes.fromhex("04026869")

    def test_bit_string_with_padding(self):
        # 6 bits '101100' -> 2 unused bits, padded byte 0xb0
        assert encode(BitString("101100")) == bytes.fromhex("030202b0")

    def test_bit_string_empty(self):
        assert encode(BitString("")) == bytes.fromhex("030100")

    def test_empty_sequence(self):
        assert encode(Sequence_([])) == bytes.fromhex("3000")

    def test_long_form_length(self):
        data = encode(OctetString(b"x" * 200))
        assert data[:3] == bytes.fromhex("0481c8")

    def test_set_sorts_elements(self):
        encoded = encode(Set_([Integer(3), Integer(1)]))
        assert decode(encoded) == Set_([Integer(1), Integer(3)])


class TestRoundTrip:
    def test_nested_structure(self):
        value = Sequence_(
            [
                Integer(65537),
                OctetString(b"payload"),
                ObjectIdentifier("1.2.840.113549.1.9.16.1.24"),
                BitString("10101000011110101"),
                Null(),
                Utf8String("RIPE ROA é"),
                ContextTag(3, Sequence_([Integer(-42)])),
            ]
        )
        assert decode(encode(value)) == value

    def test_decode_all_concatenation(self):
        blob = encode(Integer(1)) + encode(Integer(2))
        assert decode_all(blob) == [Integer(1), Integer(2)]

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=-(2**256), max_value=2**256))
    def test_integer_round_trip(self, value):
        assert decode(encode(Integer(value))) == Integer(value)

    @settings(max_examples=100, deadline=None)
    @given(st.binary(max_size=300))
    def test_octet_string_round_trip(self, blob):
        assert decode(encode(OctetString(blob))) == OctetString(blob)

    @settings(max_examples=100, deadline=None)
    @given(st.text(alphabet="01", max_size=70))
    def test_bit_string_round_trip(self, bits):
        assert decode(encode(BitString(bits))) == BitString(bits)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=2**40), min_size=2, max_size=8)
    )
    def test_oid_round_trip(self, arcs):
        arcs[0] = arcs[0] % 3
        arcs[1] = arcs[1] % 40
        oid = ObjectIdentifier(".".join(str(a) for a in arcs))
        assert decode(encode(oid)) == oid


class TestErrors:
    def test_trailing_bytes_rejected(self):
        with pytest.raises(Asn1Error):
            decode(encode(Integer(1)) + b"\x00")

    def test_truncated_length(self):
        with pytest.raises(Asn1Error):
            decode(bytes.fromhex("0205"))

    def test_truncated_body(self):
        with pytest.raises(Asn1Error):
            decode(bytes.fromhex("040548656c6c"))

    def test_indefinite_length_rejected(self):
        with pytest.raises(Asn1Error):
            decode(bytes.fromhex("30800000"))

    def test_unsupported_tag(self):
        with pytest.raises(Asn1Error):
            decode(bytes.fromhex("1e00"))

    def test_empty_integer_body(self):
        with pytest.raises(Asn1Error):
            decode(bytes.fromhex("0200"))

    def test_bit_string_bad_unused_count(self):
        with pytest.raises(Asn1Error):
            decode(bytes.fromhex("030209b0"))

    def test_bit_string_nonzero_padding(self):
        with pytest.raises(Asn1Error):
            decode(bytes.fromhex("030202b1"))

    def test_bit_string_requires_01(self):
        with pytest.raises(Asn1Error):
            BitString("10a")

    def test_null_with_body(self):
        with pytest.raises(Asn1Error):
            decode(bytes.fromhex("050100"))

    def test_bad_oid_values(self):
        with pytest.raises(Asn1Error):
            encode(ObjectIdentifier("4.1"))
        with pytest.raises(Asn1Error):
            encode(ObjectIdentifier("nope"))
        with pytest.raises(Asn1Error):
            encode(ObjectIdentifier("1"))

    def test_truncated_oid_arc(self):
        with pytest.raises(Asn1Error):
            decode(bytes.fromhex("060188"))

    def test_context_tag_number_limit(self):
        with pytest.raises(Asn1Error):
            encode(ContextTag(31, Integer(1)))

    def test_non_minimal_long_form_rejected(self):
        # length 5 written in long form (0x81 0x05) is not DER
        with pytest.raises(Asn1Error):
            decode(bytes.fromhex("04810548656c6c6f"))
