"""Adversarial fuzzing of the relying party.

The security property behind everything else: **no byte-level tampering
with a published repository may ever produce a VRP the honest
repository did not authorize.**  Corruption may (and usually will)
invalidate objects — that's availability, the RPKI's known weak spot —
but it must never manufacture authorization.

We flip random bits/bytes in random published objects and re-validate,
asserting the resulting VRP set is always a subset of the honest one.
"""

from __future__ import annotations

import random

import pytest

from repro.netbase import Prefix
from repro.rpki import (
    AsRange,
    CertificateAuthority,
    ObjectKind,
    Repository,
    Roa,
    RoaPrefix,
    scan_roas,
)


def p(text: str) -> Prefix:
    return Prefix.parse(text)


@pytest.fixture(scope="module")
def honest_world():
    rng = random.Random(77)
    repository = Repository()
    ta = CertificateAuthority.create_trust_anchor(
        "TA", repository, ip_resources=(p("0.0.0.0/0"), p("::/0")),
        as_resources=(AsRange(0, 2**32 - 1),), rng=rng, now=100,
    )
    rir = ta.issue_child("RIR", ip_resources=(p("10.0.0.0/8"), p("2a00::/12")))
    org_a = rir.issue_child("ORG-A", ip_resources=(p("10.1.0.0/16"),))
    org_b = rir.issue_child("ORG-B", ip_resources=(p("10.2.0.0/16"), p("2a00::/16")))
    org_a.issue_roa(Roa(64500, [RoaPrefix(p("10.1.0.0/16"), 24)]))
    org_a.issue_roa(Roa(64501, [p("10.1.64.0/18"), p("10.1.128.0/18")]))
    org_b.issue_roa(Roa(64502, [RoaPrefix(p("10.2.0.0/16"))]))
    org_b.issue_roa(Roa(64503, [RoaPrefix(p("2a00::/16"), 32)]))
    ta.publish_tree()
    run = scan_roas(repository, [ta.certificate], now=100)
    assert run.ok
    return repository, ta, frozenset(run.vrps)


def _clone_repository(repository: Repository) -> Repository:
    clone = Repository()
    for point in repository.points():
        target = clone.point_for(point.authority)
        for obj in point.objects():
            target.publish(obj.name, obj.kind, obj.data)
    return clone


def _all_objects(repository: Repository):
    return [
        (point.authority, obj)
        for point in repository.points()
        for obj in point.objects()
    ]


class TestTamperFuzz:
    @pytest.mark.parametrize("trial", range(40))
    def test_single_bit_flip_never_adds_authorization(self, honest_world, trial):
        repository, ta, honest_vrps = honest_world
        rng = random.Random(1000 + trial)
        clone = _clone_repository(repository)
        authority, obj = rng.choice(_all_objects(clone))
        data = bytearray(obj.data)
        bit = rng.randrange(len(data) * 8)
        data[bit // 8] ^= 1 << (bit % 8)
        clone.point_for(authority).publish(obj.name, obj.kind, bytes(data))

        run = scan_roas(clone, [ta.certificate], now=100)
        assert set(run.vrps) <= honest_vrps, (
            f"bit flip in {authority}/{obj.name} manufactured VRPs: "
            f"{set(run.vrps) - honest_vrps}"
        )

    @pytest.mark.parametrize("trial", range(15))
    def test_chunk_corruption_never_adds_authorization(self, honest_world, trial):
        repository, ta, honest_vrps = honest_world
        rng = random.Random(2000 + trial)
        clone = _clone_repository(repository)
        for _ in range(rng.randint(1, 3)):
            authority, obj = rng.choice(_all_objects(clone))
            data = bytearray(obj.data)
            start = rng.randrange(max(len(data) - 8, 1))
            for index in range(start, min(start + 8, len(data))):
                data[index] = rng.randrange(256)
            clone.point_for(authority).publish(obj.name, obj.kind, bytes(data))

        run = scan_roas(clone, [ta.certificate], now=100)
        assert set(run.vrps) <= honest_vrps

    def test_object_swap_between_points_never_adds(self, honest_world):
        """Republishing ORG-B's ROA at ORG-A's point must not validate
        (wrong issuer) nor create new authorizations."""
        repository, ta, honest_vrps = honest_world
        clone = _clone_repository(repository)
        org_b_roa = clone.point_for("ORG-B").get("roa-0.roa")
        assert org_b_roa is not None
        clone.point_for("ORG-A").publish(
            "smuggled.roa", ObjectKind.ROA, org_b_roa.data
        )
        run = scan_roas(clone, [ta.certificate], now=100)
        assert set(run.vrps) <= honest_vrps
        assert not run.ok  # the smuggled object must at least be flagged

    def test_truncation_never_adds(self, honest_world):
        repository, ta, honest_vrps = honest_world
        rng = random.Random(3)
        clone = _clone_repository(repository)
        for _ in range(3):
            authority, obj = rng.choice(_all_objects(clone))
            cut = rng.randrange(1, len(obj.data))
            clone.point_for(authority).publish(obj.name, obj.kind, obj.data[:cut])
        run = scan_roas(clone, [ta.certificate], now=100)
        assert set(run.vrps) <= honest_vrps
