"""Tests for RTR PDU wire encoding (RFC 6810)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netbase import AF_INET, AF_INET6, Prefix
from repro.rpki import Vrp
from repro.rtr import (
    CacheResetPdu,
    CacheResponsePdu,
    EndOfDataPdu,
    ErrorReportPdu,
    FLAG_ANNOUNCE,
    FLAG_WITHDRAW,
    IncompletePdu,
    Ipv4PrefixPdu,
    Ipv6PrefixPdu,
    PduError,
    ResetQueryPdu,
    SerialNotifyPdu,
    SerialQueryPdu,
    decode_pdu,
    decode_stream,
    encode_pdu,
    pdu_to_vrp,
    vrp_to_pdu,
)


def p(text: str) -> Prefix:
    return Prefix.parse(text)


ALL_PDUS = [
    SerialNotifyPdu(session_id=7, serial=42),
    SerialQueryPdu(session_id=7, serial=42),
    ResetQueryPdu(),
    CacheResponsePdu(session_id=7),
    Ipv4PrefixPdu(FLAG_ANNOUNCE, 16, 24, p("168.122.0.0/16").value, 111),
    Ipv6PrefixPdu(FLAG_WITHDRAW, 32, 48, p("2001:db8::/32").value, 65000),
    EndOfDataPdu(session_id=7, serial=42),
    CacheResetPdu(),
    ErrorReportPdu(ErrorReportPdu.CORRUPT_DATA, b"\x01\x02", "bad"),
]


class TestWireFormat:
    def test_header_is_eight_bytes_and_version_zero(self):
        for pdu in ALL_PDUS:
            data = encode_pdu(pdu)
            assert data[0] == 0  # protocol version
            assert len(data) >= 8

    def test_declared_length_matches(self):
        for pdu in ALL_PDUS:
            data = encode_pdu(pdu)
            declared = int.from_bytes(data[4:8], "big")
            assert declared == len(data)

    def test_ipv4_prefix_pdu_is_20_bytes(self):
        data = encode_pdu(ALL_PDUS[4])
        assert len(data) == 20 and data[1] == 4

    def test_ipv6_prefix_pdu_is_32_bytes(self):
        data = encode_pdu(ALL_PDUS[5])
        assert len(data) == 32 and data[1] == 6

    def test_reset_query_fixed_bytes(self):
        assert encode_pdu(ResetQueryPdu()) == bytes.fromhex("0002000000000008")

    @pytest.mark.parametrize("pdu", ALL_PDUS, ids=lambda x: type(x).__name__)
    def test_round_trip(self, pdu):
        decoded, consumed = decode_pdu(encode_pdu(pdu))
        assert decoded == pdu
        assert consumed == len(encode_pdu(pdu))


class TestVrpConversion:
    def test_ipv4(self):
        vrp = Vrp(p("168.122.0.0/16"), 24, 111)
        pdu = vrp_to_pdu(vrp)
        assert isinstance(pdu, Ipv4PrefixPdu)
        assert pdu.flags == FLAG_ANNOUNCE
        assert pdu_to_vrp(pdu) == vrp

    def test_ipv6(self):
        vrp = Vrp(p("2a00::/12"), 32, 5)
        pdu = vrp_to_pdu(vrp, announce=False)
        assert isinstance(pdu, Ipv6PrefixPdu)
        assert pdu.flags == FLAG_WITHDRAW
        assert pdu_to_vrp(pdu) == vrp

    def test_non_prefix_pdu_rejected(self):
        with pytest.raises(PduError):
            pdu_to_vrp(ResetQueryPdu())

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=32),
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_round_trip_random_v4(self, value, length, extra, asn):
        vrp = Vrp(Prefix(AF_INET, value, length), min(32, length + extra), asn)
        assert pdu_to_vrp(vrp_to_pdu(vrp)) == vrp

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**128 - 1),
        st.integers(min_value=0, max_value=128),
        st.integers(min_value=0, max_value=16),
    )
    def test_round_trip_random_v6(self, value, length, extra):
        vrp = Vrp(Prefix(AF_INET6, value, length), min(128, length + extra), 1)
        assert pdu_to_vrp(vrp_to_pdu(vrp)) == vrp


class TestStreamDecoding:
    def test_multiple_pdus(self):
        blob = b"".join(encode_pdu(pdu) for pdu in ALL_PDUS)
        pdus, rest = decode_stream(blob)
        assert pdus == ALL_PDUS
        assert rest == b""

    def test_partial_tail_preserved(self):
        blob = encode_pdu(ResetQueryPdu()) + encode_pdu(CacheResetPdu())[:3]
        pdus, rest = decode_stream(blob)
        assert pdus == [ResetQueryPdu()]
        assert len(rest) == 3

    def test_incomplete_raises_with_missing_count(self):
        full = encode_pdu(SerialNotifyPdu(1, 2))
        with pytest.raises(IncompletePdu) as info:
            decode_pdu(full[:10])
        assert info.value.missing == len(full) - 10

    def test_byte_at_a_time_feeding(self):
        """Regression: frames split at every offset — including mid-header
        — must survive the buffer-and-retry loop every consumer runs."""
        blob = b"".join(encode_pdu(pdu) for pdu in ALL_PDUS)
        buffer = b""
        decoded = []
        for offset in range(len(blob)):
            buffer += blob[offset:offset + 1]
            pdus, buffer = decode_stream(buffer)
            decoded.extend(pdus)
        assert decoded == ALL_PDUS
        assert buffer == b""

    def test_mid_header_split_single_frame(self):
        """A lone frame cut inside its 8-byte header decodes nothing and
        preserves every byte for the next read."""
        frame = encode_pdu(SerialNotifyPdu(3, 9))
        for cut in range(1, 8):
            pdus, rest = decode_stream(frame[:cut])
            assert pdus == []
            assert rest == frame[:cut]
            # ...and completing the frame yields exactly the PDU.
            pdus, rest = decode_stream(rest + frame[cut:])
            assert pdus == [SerialNotifyPdu(3, 9)]
            assert rest == b""

    def test_mid_header_split_after_complete_frame(self):
        """A complete frame followed by a partial header: the complete
        one decodes, the partial header is returned untouched."""
        head = encode_pdu(ResetQueryPdu())
        tail = encode_pdu(EndOfDataPdu(1, 7))
        for cut in range(1, 8):
            pdus, rest = decode_stream(head + tail[:cut])
            assert pdus == [ResetQueryPdu()]
            assert rest == tail[:cut]

    def test_pdu_buffer_incremental(self):
        from repro.rtr import PduBuffer

        blob = b"".join(encode_pdu(pdu) for pdu in ALL_PDUS)
        buffer = PduBuffer()
        decoded = []
        for offset in range(0, len(blob), 3):  # odd chunking, mid-header
            buffer.feed(blob[offset:offset + 3])
            while (pdu := buffer.next()) is not None:
                decoded.append(pdu)
        assert decoded == ALL_PDUS
        assert buffer.next() is None

    def test_pdu_buffer_raises_on_garbage(self):
        from repro.rtr import PduBuffer

        buffer = PduBuffer()
        buffer.feed(b"\xff" * 8)
        with pytest.raises(PduError):
            buffer.next()

    def test_decode_pdu_at_offset(self):
        """decode_pdu(data, offset) reads mid-buffer without slicing."""
        blob = b"".join(encode_pdu(pdu) for pdu in ALL_PDUS)
        offset = 0
        for expected in ALL_PDUS:
            pdu, consumed = decode_pdu(blob, offset)
            assert pdu == expected
            offset += consumed
        assert offset == len(blob)
        with pytest.raises(IncompletePdu):
            decode_pdu(blob, offset)


class TestErrors:
    def test_wrong_version(self):
        data = bytearray(encode_pdu(ResetQueryPdu()))
        data[0] = 9  # versions 0 and 1 are both legal
        with pytest.raises(PduError):
            decode_pdu(bytes(data))

    def test_unknown_type(self):
        data = bytearray(encode_pdu(ResetQueryPdu()))
        data[1] = 99
        with pytest.raises(PduError):
            decode_pdu(bytes(data))

    def test_implausible_length(self):
        data = bytearray(encode_pdu(ResetQueryPdu()))
        data[4:8] = (1 << 24).to_bytes(4, "big")
        with pytest.raises(PduError):
            decode_pdu(bytes(data))

    def test_wrong_body_size(self):
        # Serial Notify with a 2-byte body
        bad = bytes.fromhex("000000070000000a") + b"\x00\x01"
        with pytest.raises(PduError):
            decode_pdu(bad)

    def test_truncated_error_report(self):
        bad = bytes.fromhex("000a0000 0000000c 00000009".replace(" ", ""))
        with pytest.raises(PduError):
            decode_pdu(bad)

    def test_error_report_with_unicode_text(self):
        pdu = ErrorReportPdu(3, b"", "badé")
        decoded, _ = decode_pdu(encode_pdu(pdu))
        assert decoded == pdu


class TestVersion1:
    """RFC 8210 additions: intervals and Router Key PDUs."""

    def test_end_of_data_v1_intervals_round_trip(self):
        from repro.rtr import PROTOCOL_VERSION_1

        pdu = EndOfDataPdu(7, 42, refresh_interval=3600,
                           retry_interval=600, expire_interval=7200)
        data = encode_pdu(pdu, version=PROTOCOL_VERSION_1)
        assert len(data) == 24
        assert data[0] == 1
        decoded, _ = decode_pdu(data)
        assert decoded == pdu
        assert decoded.has_intervals

    def test_end_of_data_v1_without_intervals_stays_short(self):
        from repro.rtr import PROTOCOL_VERSION_1

        pdu = EndOfDataPdu(7, 42)
        data = encode_pdu(pdu, version=PROTOCOL_VERSION_1)
        assert len(data) == 12
        decoded, _ = decode_pdu(data)
        assert not decoded.has_intervals

    def test_router_key_round_trip(self):
        from repro.rtr import PROTOCOL_VERSION_1, RouterKeyPdu

        pdu = RouterKeyPdu(1, b"\x11" * 20, 65000, b"fake-spki-bytes")
        data = encode_pdu(pdu, version=PROTOCOL_VERSION_1)
        decoded, _ = decode_pdu(data)
        assert decoded == pdu

    def test_router_key_requires_v1(self):
        from repro.rtr import RouterKeyPdu

        pdu = RouterKeyPdu(0, b"\x00" * 20, 1, b"")
        with pytest.raises(PduError):
            encode_pdu(pdu)  # default version 0

    def test_router_key_on_v0_wire_rejected(self):
        from repro.rtr import PROTOCOL_VERSION_1, RouterKeyPdu

        pdu = RouterKeyPdu(0, b"\x00" * 20, 1, b"")
        data = bytearray(encode_pdu(pdu, version=PROTOCOL_VERSION_1))
        data[0] = 0
        with pytest.raises(PduError):
            decode_pdu(bytes(data))

    def test_bad_ski_length_rejected(self):
        from repro.rtr import RouterKeyPdu

        with pytest.raises(PduError):
            RouterKeyPdu(0, b"\x00" * 19, 1, b"")

    def test_prefix_pdus_identical_across_versions(self):
        from repro.rtr import PROTOCOL_VERSION_1

        pdu = Ipv4PrefixPdu(FLAG_ANNOUNCE, 16, 24, 0x0A000000, 65000)
        v0 = encode_pdu(pdu)
        v1 = encode_pdu(pdu, version=PROTOCOL_VERSION_1)
        assert v0[1:] == v1[1:]  # only the version byte differs
        assert decode_pdu(v1)[0] == pdu

    def test_bad_version_argument(self):
        with pytest.raises(PduError):
            encode_pdu(ResetQueryPdu(), version=3)
