"""Tests for the maximally-permissive lower bound (§6)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import lower_bound_pdu_count, maximally_permissive_vrps
from repro.netbase import AF_INET, Prefix
from repro.rpki import Vrp


def p(text: str) -> Prefix:
    return Prefix.parse(text)


class TestMaximallyPermissive:
    def test_independent_pairs_all_kept(self):
        announced = [(p("10.0.0.0/16"), 1), (p("11.0.0.0/16"), 2)]
        vrps = maximally_permissive_vrps(announced)
        assert len(vrps) == 2
        assert all(v.max_length == 32 for v in vrps)

    def test_covered_same_as_removed(self):
        """§6: a covering announcement's /32-maxLength VRP subsumes the
        same AS's subprefix announcements."""
        announced = [
            (p("10.0.0.0/16"), 1),
            (p("10.0.1.0/24"), 1),
            (p("10.0.0.0/17"), 1),
        ]
        vrps = maximally_permissive_vrps(announced)
        assert vrps == [Vrp(p("10.0.0.0/16"), 32, 1)]

    def test_covered_other_as_kept(self):
        announced = [(p("10.0.0.0/16"), 1), (p("10.0.1.0/24"), 2)]
        assert len(maximally_permissive_vrps(announced)) == 2

    def test_ipv6_gets_128(self):
        vrps = maximally_permissive_vrps([(p("2a00::/32"), 1)])
        assert vrps == [Vrp(p("2a00::/32"), 128, 1)]

    def test_duplicate_pairs_counted_once(self):
        announced = [(p("10.0.0.0/16"), 1)] * 4
        assert lower_bound_pdu_count(announced) == 1

    def test_nested_chain_keeps_only_root(self):
        announced = [
            (p("10.0.0.0/8"), 1),
            (p("10.0.0.0/16"), 1),
            (p("10.0.0.0/24"), 1),
            (p("10.128.0.0/9"), 1),
        ]
        assert lower_bound_pdu_count(announced) == 1

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**16 - 1),
                st.integers(min_value=8, max_value=24),
                st.sampled_from([1, 2, 3]),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_matches_bruteforce(self, raw):
        announced = []
        for value, length, asn in raw:
            announced.append((Prefix(AF_INET, value << 16, length), asn))
        unique = set(announced)
        expected = sum(
            1
            for prefix, asn in unique
            if not any(
                other.covers_properly(prefix)
                for other, other_asn in unique
                if other_asn == asn
            )
        )
        assert lower_bound_pdu_count(unique) == expected

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=255),
                st.integers(min_value=8, max_value=24),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_bound_authorizes_everything_announced(self, raw):
        announced = {(Prefix(AF_INET, v << 24, l), 9) for v, l in raw}
        vrps = maximally_permissive_vrps(announced)
        for prefix, asn in announced:
            assert any(v.matches(prefix, asn) for v in vrps)

    def test_bound_never_exceeds_pair_count(self, tiny_snapshot):
        pairs = tiny_snapshot.announced_set
        bound = lower_bound_pdu_count(pairs)
        assert bound <= len(pairs)

    def test_bound_is_true_lower_bound_for_compression(self, tiny_snapshot):
        """No lossless scheme can beat it: compress_vrps >= bound."""
        from repro.core import compress_vrps

        pairs = tiny_snapshot.announced_set
        full = [Vrp(q, q.length, a) for q, a in pairs]
        assert len(compress_vrps(full)) >= lower_bound_pdu_count(pairs)
