"""The one way benchmark reports are written.

Every ``bench_*.py`` script used to hand-roll its own report tail —
dump JSON, write ``results/<name>.json``, scan the acceptance dict,
exit non-zero on failure — with slightly different layouts, which made
the ``BENCH_*`` trajectory points under ``benchmarks/results/`` hard
to compare across PRs.  :func:`emit_report` is that tail, once, with a
fixed envelope::

    {
      "benchmark": "<name>",           # which benchmark
      "bench_schema": 1,               # envelope version
      ...benchmark-specific payload...,
      "acceptance": {"gate": true|false|null}   # null = skipped
    }

Acceptance values are tri-state: ``True`` passed, ``False`` failed
(the script exits 1 and CI goes red), ``None`` skipped (recorded but
not gating — e.g. a check that needs more cores than the runner has).

Scripts may additionally wrap their top-level stages in
:func:`phase` (``with phase("setup"): …``); the accumulated wall
times then ride along in the envelope as an optional ``"phases"``
mapping, so a slow trajectory point shows *where* the time went
(setup vs. run vs. aggregate) without re-running anything.
"""

from __future__ import annotations

import contextlib
import json
import sys
import time
from pathlib import Path
from typing import Dict, Iterator, Mapping, Optional

__all__ = ["BENCH_SCHEMA", "RESULTS_DIR", "emit_report", "phase"]

#: Version of the report envelope written by :func:`emit_report`.
BENCH_SCHEMA = 1

RESULTS_DIR = Path(__file__).parent / "results"

#: Wall seconds accumulated per phase name since the last
#: :func:`emit_report` (which drains it into the envelope).
_PHASES: Dict[str, float] = {}


@contextlib.contextmanager
def phase(name: str) -> Iterator[None]:
    """Accrue the block's wall time under ``name`` in the next report.

    Re-entering a name accumulates, so a phase wrapped around each of
    several repeats reports their total.
    """
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        _PHASES[name] = _PHASES.get(name, 0.0) + elapsed


def emit_report(
    name: str,
    payload: Mapping[str, object],
    acceptance: Mapping[str, Optional[bool]],
    *,
    results_dir: Path = RESULTS_DIR,
) -> int:
    """Print, persist, and gate one benchmark report.

    Writes ``<results_dir>/<name>.json``, prints the same JSON to
    stdout, and returns the script's exit code: 1 if any acceptance
    value is ``False``, else 0 (``None`` values never gate).
    """
    report: Dict[str, object] = {
        "benchmark": name,
        "bench_schema": BENCH_SCHEMA,
    }
    for key, value in payload.items():
        if key in report or key in ("acceptance", "phases"):
            raise ValueError(f"payload may not override {key!r}")
        report[key] = value
    if _PHASES:
        report["phases"] = {
            name: round(seconds, 6)
            for name, seconds in _PHASES.items()
        }
        _PHASES.clear()
    report["acceptance"] = dict(acceptance)
    text = json.dumps(report, indent=2)
    print(text)
    results_dir.mkdir(exist_ok=True)
    (results_dir / f"{name}.json").write_text(
        text + "\n", encoding="utf-8"
    )
    failed = [
        gate for gate, passed in acceptance.items() if passed is False
    ]
    if failed:
        print(f"acceptance FAILED: {failed}", file=sys.stderr)
        return 1
    return 0
