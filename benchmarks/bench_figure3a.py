"""E2 — Figure 3(a): today's-deployment PDU counts over the timeline.

Four series across the eight weekly snapshots (4/13–6/1): status quo,
status quo compressed, minimal-no-maxLength, minimal-with-maxLength.
The paper's qualitative content — ordering between the series at every
week, and vulnerable-vs-secure labeling — is asserted; the rendered
ASCII panel lands in ``results/figure3a.txt``.
"""

from __future__ import annotations

from repro.analysis import compute_figure3a, render_panel

from .conftest import write_result


def test_bench_figure3a(benchmark, weekly_series):
    panel = benchmark.pedantic(
        compute_figure3a, args=(weekly_series,), rounds=1, iterations=1
    )
    by_name = {series.name: series for series in panel.series}

    status_quo = by_name["Status quo"]
    compressed = by_name["Status quo (compressed)"]
    minimal = by_name["Minimal ROAs, no maxLength"]
    minimal_ml = by_name["Minimal ROAs, with maxLength"]

    for week in range(len(panel.labels)):
        # compression always helps, minimality always costs (paper fig 3a)
        assert compressed.values[week] < status_quo.values[week]
        assert minimal_ml.values[week] < minimal.values[week]
        assert status_quo.values[week] < minimal.values[week]
        # compressed-minimal stays within a modest factor of status quo
        assert minimal_ml.values[week] < 1.6 * status_quo.values[week]

    # dashed (vulnerable) vs solid (secure), as in the figure legend
    assert not status_quo.secure and not compressed.secure
    assert minimal.secure and minimal_ml.secure

    text = render_panel(panel)
    write_result("figure3a.txt", text)
    print("\n" + text)
