"""E1 — Table 1: PDU counts routers process under seven scenarios.

Regenerates every row of the paper's Table 1 on the synthetic
2017-06-01 snapshot and checks the qualitative content: row orderings,
compression ratios, and the secure/vulnerable classification.  The
rendered table (with paper values scaled for comparison) lands in
``results/table1.txt``.
"""

from __future__ import annotations

from repro.analysis import PAPER_TABLE1, compute_table1
from repro.analysis.table1 import (
    FULL_LOWER_BOUND,
    FULL_MINIMAL,
    FULL_MINIMAL_COMPRESSED,
    TODAY,
    TODAY_COMPRESSED,
    TODAY_MINIMAL,
    TODAY_MINIMAL_COMPRESSED,
)
from repro.core import compress_vrps, to_minimal_vrps
from repro.core.bounds import lower_bound_pdu_count
from repro.rpki import Vrp

from .conftest import write_result


def test_bench_compress_status_quo(benchmark, snapshot):
    """Row 2: compress_roas on today's tuples."""
    result = benchmark.pedantic(
        compress_vrps, args=(snapshot.vrps,), rounds=3, iterations=1
    )
    ratio = 1 - len(result) / len(snapshot.vrps)
    benchmark.extra_info["compression"] = f"{100 * ratio:.1f}%"
    assert 0.10 <= ratio <= 0.22  # paper: 15.9%


def test_bench_minimal_conversion(benchmark, snapshot):
    """Row 3: converting today's RPKI to minimal ROAs."""
    result = benchmark.pedantic(
        to_minimal_vrps, args=(snapshot.vrps, snapshot.announced),
        rounds=3, iterations=1,
    )
    growth = len(result) / len(snapshot.vrps) - 1
    benchmark.extra_info["pdu_increase"] = f"{100 * growth:.0f}%"
    assert 0.1 <= growth <= 0.6  # paper: +32%


def test_bench_full_deployment_compression(benchmark, snapshot):
    """Row 6: compress_roas on the full-deployment minimal set."""
    pairs = snapshot.announced_set
    full = [Vrp(p, p.length, asn) for p, asn in pairs]
    result = benchmark.pedantic(compress_vrps, args=(full,), rounds=1, iterations=1)
    ratio = 1 - len(result) / len(full)
    benchmark.extra_info["compression"] = f"{100 * ratio:.2f}%"
    assert 0.03 <= ratio <= 0.10  # paper: 6.04%


def test_bench_lower_bound(benchmark, snapshot):
    """Row 7: the maximally-permissive bound."""
    pairs = snapshot.announced_set
    bound = benchmark.pedantic(
        lower_bound_pdu_count, args=(pairs,), rounds=1, iterations=1
    )
    ratio = 1 - bound / len(pairs)
    benchmark.extra_info["max_compression"] = f"{100 * ratio:.2f}%"
    assert 0.03 <= ratio <= 0.10  # paper: 6.12%


def test_bench_table1_all_rows(benchmark, snapshot, scale):
    """The whole table, rendered against the paper's values."""
    table = benchmark.pedantic(
        compute_table1, args=(snapshot.vrps, snapshot.announced),
        rounds=1, iterations=1,
    )
    n = {row.scenario: row.pdus for row in table.rows}

    # The paper's qualitative claims, row by row.
    assert n[TODAY_COMPRESSED] < n[TODAY] < n[TODAY_MINIMAL]
    assert n[TODAY_MINIMAL_COMPRESSED] < n[TODAY_MINIMAL]
    assert n[FULL_LOWER_BOUND] <= n[FULL_MINIMAL_COMPRESSED] < n[FULL_MINIMAL]
    # "23% more tuples than the status quo" (paper): stays in the tens
    # of percent, well under the full-deployment blowup.
    assert n[TODAY_MINIMAL_COMPRESSED] < 1.6 * n[TODAY]

    lines = [
        f"Table 1 @ scale {scale} (paper values scaled alongside)",
        "",
        f"{'scenario':<55} {'measured':>10} {'paper*scale':>12}  secure?",
        "-" * 90,
    ]
    for row in table.rows:
        paper = round(PAPER_TABLE1[row.scenario] * scale)
        lines.append(
            f"{row.scenario:<55} {row.pdus:>10,} {paper:>12,}  "
            f"{'yes' if row.secure else 'NO'}"
        )
    text = "\n".join(lines)
    write_result("table1.txt", text)
    print("\n" + text)
