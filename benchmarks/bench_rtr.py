"""E8 supplement — RTR protocol throughput.

The PDU-count reductions of Table 1 matter because each PDU costs
router work; this bench quantifies the per-PDU costs in our stack:
wire encode/decode throughput and a full cache→router table transfer
over a real localhost socket.
"""

from __future__ import annotations

from repro.rtr import (
    RtrCacheServer,
    RtrClient,
    decode_stream,
    encode_pdu,
    vrp_to_pdu,
)

from .conftest import write_result


def test_bench_pdu_encode(benchmark, snapshot):
    vrps = snapshot.vrps

    def encode_all():
        return [encode_pdu(vrp_to_pdu(vrp)) for vrp in vrps]

    encoded = benchmark(encode_all)
    assert len(encoded) == len(vrps)


def test_bench_pdu_decode(benchmark, snapshot):
    blob = b"".join(encode_pdu(vrp_to_pdu(vrp)) for vrp in snapshot.vrps)

    def decode_all():
        pdus, rest = decode_stream(blob)
        assert not rest
        return pdus

    pdus = benchmark(decode_all)
    assert len(pdus) == len(snapshot.vrps)


def test_bench_full_table_transfer(benchmark, snapshot):
    """One Reset Query round trip carrying the whole VRP table."""
    vrps = snapshot.vrps

    def transfer():
        with RtrCacheServer(vrps) as server:
            with RtrClient(server.host, server.port, timeout=60) as client:
                client.sync()
                return len(client.vrps)

    count = benchmark.pedantic(transfer, rounds=3, iterations=1)
    assert count == len(set(vrps))
    write_result(
        "rtr_transfer.txt",
        f"full RTR table transfer: {count:,} VRPs per Reset Query round trip",
    )
