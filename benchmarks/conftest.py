"""Shared benchmark fixtures.

Dataset size is controlled by ``REPRO_BENCH_SCALE`` (default 0.2: a
~155k-pair Internet, one fifth of the paper's 776,945). Paper-absolute
counts scale linearly; every ratio is scale-free.  Set
``REPRO_BENCH_SCALE=1.0`` to regenerate Table 1 at full size.

Generation is session-scoped: the snapshot and weekly series are built
once and shared by all benchmarks.  Each benchmark writes its rendered
table/series into ``results/`` next to this file.
"""

from __future__ import annotations

import os
import random
from pathlib import Path

import pytest

from repro.data import (
    GeneratorConfig,
    SeriesConfig,
    TopologyProfile,
    generate_snapshot,
    generate_topology,
    generate_weekly_series,
)

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.2"))
SERIES_SCALE = float(os.environ.get("REPRO_BENCH_SERIES_SCALE", "0.05"))

RESULTS_DIR = Path(__file__).parent / "results"


def write_result(name: str, text: str) -> None:
    """Persist a rendered experiment output for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n", encoding="utf-8")


@pytest.fixture(scope="session")
def snapshot():
    """The 2017-06-01 dataset at benchmark scale."""
    return generate_snapshot(GeneratorConfig(scale=BENCH_SCALE))


@pytest.fixture(scope="session")
def weekly_series():
    """The eight Figure 3 snapshots (smaller scale: 8 full Internets)."""
    return generate_weekly_series(
        SeriesConfig(base=GeneratorConfig(scale=SERIES_SCALE))
    )


@pytest.fixture(scope="session")
def attack_topology():
    """A 1000-AS topology for the hijack-effectiveness study."""
    return generate_topology(TopologyProfile(ases=1000), random.Random(42))


@pytest.fixture(scope="session")
def scale() -> float:
    return BENCH_SCALE
