#!/usr/bin/env python3
"""Experiment-engine throughput: trials/sec, serial vs multiprocessing.

Runs one :class:`~repro.exper.ExperimentSpec` (the §4/§5 forged-origin
subprefix pair, minimal vs maxLength-loose ROA) twice — once on the
serial executor, once on the multiprocessing executor — and records
trials/sec for each plus the speedup.  Also asserts the engine's
headline invariant: both executors produce byte-identical aggregated
results.

The ≥2× speedup acceptance is the ISSUE's criterion for a 4-worker
run; it applies only when the run uses ≥4 workers on a machine with at
least that many cores.  Otherwise (e.g. a 2-worker run, whose ceiling
is exactly 2×) it is recorded as skipped (``null``), not failed, so
reduced-scale smoke runs stay meaningful.

Emits a JSON document to stdout and a copy into
``benchmarks/results/experiment_engine.json``.

Run:  PYTHONPATH=src python benchmarks/bench_experiment_engine.py \
          [--ases 300] [--trials 200] [--workers 4]
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import time

from benchlib import emit_report, phase
from repro.data import TopologyProfile, generate_topology
from repro.exper import (
    ExperimentRunner,
    ExperimentSpec,
    MaxLengthLooseRoa,
    MinimalRoa,
    ScenarioCell,
)


def bench_executor(topology, spec, executor: str, workers: int) -> dict:
    runner = ExperimentRunner(
        topology, spec, executor=executor,
        workers=workers if executor == "process" else None,
    )
    start = time.perf_counter()
    result = runner.run()
    elapsed = time.perf_counter() - start
    return {
        "executor": executor,
        "wall_seconds": round(elapsed, 4),
        "trials": spec.total_trials,
        "trials_per_second": round(spec.total_trials / elapsed, 1),
        "_result": result,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ases", type=int, default=300)
    parser.add_argument("--trials", type=int, default=200)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=2017)
    args = parser.parse_args(argv)

    print(f"generating a {args.ases}-AS topology...", file=sys.stderr)
    with phase("setup"):
        topology = generate_topology(
            TopologyProfile(ases=args.ases), random.Random(args.seed)
        )
    spec = ExperimentSpec(
        cells=(
            ScenarioCell("forged-origin-subprefix", MinimalRoa()),
            ScenarioCell("forged-origin-subprefix", MaxLengthLooseRoa()),
        ),
        trials=args.trials,
        seed=args.seed,
    )

    print(f"serial: {spec.total_trials} trials x {len(spec.cells)} cells...",
          file=sys.stderr)
    with phase("run"):
        serial = bench_executor(topology, spec, "serial", args.workers)
    print(f"process: same spec on {args.workers} workers...",
          file=sys.stderr)
    with phase("run"):
        parallel = bench_executor(topology, spec, "process", args.workers)

    with phase("aggregate"):
        identical = serial.pop("_result") == parallel.pop("_result")
    speedup = round(
        parallel["trials_per_second"] / serial["trials_per_second"], 2
    )
    cpu_count = os.cpu_count() or 1
    # The >=2x criterion is defined for a 4-worker run on >=4 real
    # cores; with fewer workers the theoretical ceiling is too close
    # to 2x (or below it) for the check to be meaningful.
    applicable = args.workers >= 4 and cpu_count >= args.workers

    return emit_report(
        "experiment_engine",
        {
            "topology_ases": args.ases,
            "workers": args.workers,
            "cpu_count": cpu_count,
            "serial": serial,
            "process": parallel,
            "speedup": speedup,
        },
        {
            "results_identical": identical,
            # null = skipped (needs a >=4-worker run on >=4 cores).
            "gte_2x_speedup": speedup >= 2.0 if applicable else None,
        },
    )


if __name__ == "__main__":
    sys.exit(main())
