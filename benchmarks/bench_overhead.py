"""E6 — §7.2 computational overhead of compress_roas.

The paper (Intel i7-6700, authors' tooling): today's RPKI compresses in
2.4 s / 19 MB; the full-deployment table in 36 s / 290 MB.  Absolute
numbers here differ (pure Python, different host); what must reproduce
is feasibility — seconds-scale, modest memory — and roughly linear
scaling between the two dataset sizes.
"""

from __future__ import annotations

from repro.analysis import measure_compression_overhead
from repro.core import compress_vrps
from repro.rpki import Vrp

from .conftest import write_result

_RESULTS: dict[str, object] = {}


def test_bench_compress_todays_rpki(benchmark, snapshot):
    """Paper: 2.4 s / 19 MB on ~40k tuples."""
    benchmark.pedantic(compress_vrps, args=(snapshot.vrps,), rounds=3, iterations=1)
    measurement = measure_compression_overhead("today", snapshot.vrps)
    _RESULTS["today"] = measurement
    benchmark.extra_info["peak_mb"] = round(measurement.peak_memory_mb, 1)
    assert measurement.wall_seconds < 60


def test_bench_compress_full_deployment(benchmark, snapshot, scale):
    """Paper: 36 s / 290 MB on ~777k tuples."""
    pairs = snapshot.announced_set
    full = [Vrp(p, p.length, asn) for p, asn in pairs]
    benchmark.pedantic(compress_vrps, args=(full,), rounds=1, iterations=1)
    measurement = measure_compression_overhead("full deployment", full)
    _RESULTS["full"] = measurement
    benchmark.extra_info["peak_mb"] = round(measurement.peak_memory_mb, 1)
    assert measurement.wall_seconds < 600

    today = _RESULTS.get("today")
    lines = [f"compress_roas overhead @ scale {scale}", ""]
    if today is not None:
        lines.append(str(today))
        ratio = measurement.wall_seconds / max(today.wall_seconds, 1e-9)
        size_ratio = measurement.input_tuples / max(today.input_tuples, 1)
        lines.append(str(measurement))
        lines.append(
            f"time ratio full/today: {ratio:.1f}x for {size_ratio:.1f}x "
            f"the tuples (paper: 15x for 19x)"
        )
        # roughly linear scaling: the time ratio must not explode
        # beyond the size ratio by more than ~3x.
        assert ratio < size_ratio * 3
    lines += [
        "",
        "paper (i7-6700, authors' tooling): today 2.4 s / 19 MB; "
        "full deployment 36 s / 290 MB",
    ]
    text = "\n".join(lines)
    write_result("overhead.txt", text)
    print("\n" + text)
