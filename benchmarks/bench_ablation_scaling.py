"""A2 — ablation: Algorithm 1 cost scaling and optimality gap.

Two questions DESIGN.md calls out:

1. How does compress_roas scale with input size?  (The paper
   parallelizes across tries as future work; the per-trie cost is what
   matters.)  We sweep 1k→64k tuples and assert near-linear growth.
2. How close is Algorithm 1 to the true optimum?  The DP-based
   :func:`compress_vrps_optimal` computes the minimum lossless tuple
   set; on minimal (maxLength-free) inputs — the paper's deployment
   recommendation — Algorithm 1 should be at or near optimal.
"""

from __future__ import annotations

import time

from repro.core import compress_vrps, compress_vrps_optimal
from repro.data import GeneratorConfig, generate_snapshot
from repro.rpki import Vrp

from .conftest import write_result

SIZES = [1_000, 4_000, 16_000, 64_000]


def _full_vrps(scale: float) -> list[Vrp]:
    snapshot = generate_snapshot(GeneratorConfig(scale=scale, seed=31))
    return [Vrp(p, p.length, asn) for p, asn in snapshot.announced_set]


def test_bench_scaling(benchmark):
    def sweep():
        rows = []
        for size in SIZES:
            vrps = _full_vrps(size / 776_945)
            started = time.perf_counter()
            compress_vrps(vrps)
            rows.append((len(vrps), time.perf_counter() - started))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # near-linear: 64x the input must cost well under 64 * 8 = O(n^1.5)
    smallest_rate = rows[0][1] / max(rows[0][0], 1)
    largest_rate = rows[-1][1] / max(rows[-1][0], 1)
    assert largest_rate < smallest_rate * 8

    lines = [
        "Ablation A2a: compress_roas runtime scaling",
        "",
        f"{'tuples':>9} {'seconds':>9} {'us/tuple':>9}",
    ]
    for size, seconds in rows:
        lines.append(f"{size:>9,} {seconds:>9.3f} {1e6 * seconds / size:>9.2f}")
    text = "\n".join(lines)
    write_result("ablation_scaling.txt", text)
    print("\n" + text)


def test_bench_optimality_gap(benchmark):
    """Algorithm 1 vs the provably minimum representation."""
    vrps = _full_vrps(4_000 / 776_945)

    def both():
        return compress_vrps(vrps), compress_vrps_optimal(vrps)

    algorithm1, optimal = benchmark.pedantic(both, rounds=1, iterations=1)
    assert len(optimal) <= len(algorithm1) <= len(vrps)
    gap = (len(algorithm1) - len(optimal)) / len(vrps)
    # On minimal inputs Algorithm 1 is essentially optimal — this is
    # why the paper lands 6.1% against the 6.2% bound.
    assert gap < 0.01

    lines = [
        "Ablation A2b: Algorithm 1 vs optimal lossless compression",
        "",
        f"input tuples:      {len(vrps):,}",
        f"Algorithm 1:       {len(algorithm1):,}",
        f"optimal (DP):      {len(optimal):,}",
        f"optimality gap:    {100 * gap:.3f}% of input",
    ]
    text = "\n".join(lines)
    write_result("ablation_optimality.txt", text)
    print("\n" + text)
