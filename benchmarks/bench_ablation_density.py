"""A1 — ablation: compression ratio vs sibling-announcement density.

Why is full-deployment compression only ~6%?  Because compression can
only merge announced sibling pairs under an announced parent, and real
ASes rarely de-aggregate that way.  This ablation sweeps the
full-de-aggregation probability and shows the achieved compression
tracking it, explaining the paper's §6 finding ("most ASes do not send
BGP announcements for subprefixes of their prefixes") mechanically.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core import compress_vrps
from repro.data import GeneratorConfig, generate_snapshot
from repro.rpki import Vrp

from .conftest import write_result

DENSITIES = [0.0, 0.02, 0.0435, 0.10, 0.20, 0.40]


def _compression_at(density: float) -> tuple[int, float]:
    config = GeneratorConfig(
        scale=0.02,
        seed=99,
        full_deagg_prob=density,
        adopter_full_deagg_prob=density,
        partial_deagg_prob=0.0,
    )
    snapshot = generate_snapshot(config)
    pairs = snapshot.announced_set
    full = [Vrp(p, p.length, asn) for p, asn in pairs]
    compressed = compress_vrps(full)
    return len(full), 1 - len(compressed) / len(full)


def test_bench_density_sweep(benchmark):
    def sweep():
        return [(d, *_compression_at(d)) for d in DENSITIES]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    ratios = [ratio for _d, _n, ratio in rows]
    # compression must be monotone (weakly) in de-aggregation density
    for earlier, later in zip(ratios, ratios[1:]):
        assert later >= earlier - 0.005
    assert ratios[0] < 0.01  # no de-agg -> (almost) nothing to compress
    assert ratios[-1] > 0.25  # heavy de-agg -> large savings

    lines = [
        "Ablation A1: full-deployment compression vs de-agg density",
        "",
        f"{'P(full de-agg)':>15} {'pairs':>9} {'compression':>12}",
    ]
    for density, pairs, ratio in rows:
        marker = "  <- calibrated (paper ~6%)" if density == 0.0435 else ""
        lines.append(f"{density:>15.4f} {pairs:>9,} {100 * ratio:>11.2f}%{marker}")
    text = "\n".join(lines)
    write_result("ablation_density.txt", text)
    print("\n" + text)
