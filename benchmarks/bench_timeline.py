"""E9 (extension) — vulnerability classification along the timeline.

Runs the §6 maxLength/vulnerability classification on every weekly
snapshot, producing the monitoring view a registry would watch: the
vulnerable population grows in lockstep with RPKI adoption when the
misconfiguration rate stays constant — the trend that motivated the
paper's BCP push (§8, later RFC 9319).
"""

from __future__ import annotations

from repro.analysis import compute_timeline

from .conftest import write_result


def test_bench_vulnerability_timeline(benchmark, weekly_series):
    timeline = benchmark.pedantic(
        compute_timeline, args=(weekly_series,), rounds=1, iterations=1
    )
    assert len(timeline.points) == 8

    total = sum(point.total_vrps for point in timeline.points)
    maxlength = sum(point.maxlength_vrps for point in timeline.points)
    vulnerable = sum(point.vulnerable_vrps for point in timeline.points)
    # aggregate §6 bands across the series
    assert 0.06 <= maxlength / total <= 0.20
    assert vulnerable / maxlength >= 0.70

    text = "Vulnerability timeline (weekly snapshots)\n\n" + timeline.render()
    write_result("timeline.txt", text)
    print("\n" + text)
