"""A3 — ablation: partial validation deployment vs attack success.

Extends E7 along the axis §2 flags ("very few ASes make routing
decisions based on the validation state"): sweep the fraction of
validating ASes and measure attacker capture.  The paper's point shows
up as the non-minimal-ROA column refusing to move: when maxLength makes
the hijack announcement *valid*, no amount of validator deployment
helps.
"""

from __future__ import annotations

from repro.analysis import run_deployment_sweep

from .conftest import write_result

FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)


def test_bench_deployment_sweep(benchmark, attack_topology):
    sweep = benchmark.pedantic(
        run_deployment_sweep,
        args=(attack_topology,),
        kwargs={"fractions": FRACTIONS, "samples": 10, "seed": 7},
        rounds=1,
        iterations=1,
    )

    first, last = sweep.points[0], sweep.points[-1]
    # stoppable attacks go from ~total capture to zero...
    assert first.subprefix_hijack > 0.95 and last.subprefix_hijack == 0.0
    assert (
        first.forged_subprefix_vs_minimal > 0.95
        and last.forged_subprefix_vs_minimal == 0.0
    )
    # ...monotonically...
    captures = [point.subprefix_hijack for point in sweep.points]
    for earlier, later in zip(captures, captures[1:]):
        assert later <= earlier + 0.02
    # ...while the maxLength-enabled attack is immune to deployment.
    for point in sweep.points:
        assert point.forged_subprefix_vs_nonminimal > 0.95

    lines = [
        f"Ablation A3: validation deployment sweep "
        f"({len(attack_topology)}-AS topology, "
        f"{sweep.samples_per_point} samples/point)",
        "",
        sweep.render(),
        "",
        "columns: plain subprefix hijack; forged-origin subprefix vs "
        "minimal ROA; forged-origin subprefix vs non-minimal ROA "
        "(the last never improves: the announcement is RPKI-valid)",
    ]
    text = "\n".join(lines)
    write_result("ablation_deployment.txt", text)
    print("\n" + text)
