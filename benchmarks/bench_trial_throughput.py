#!/usr/bin/env python3
"""Experiment-engine trial throughput: pre-PR baseline vs the overhaul.

The workload is the paper's §4/§5 ROA-granularity grid — a
forged-origin/subprefix attacker evaluated against a spectrum of ROA
maxLength choices (minimal … loose … none) — on a synthetic ≥10k-AS
topology, array engine.  Two engines run the *identical* trial set:

* **baseline** — the pre-overhaul hot path, reconstructed here: the
  object ``AsTopology`` shipped to each pool worker, every worker
  compiling its own flat-array form, every trial allocating fresh
  propagation state (``evaluate_trial`` with no workspace).
* **current** — the overhauled ``ExperimentRunner``: the compiled
  topology shipped once as a flat blob over shared memory, one
  reusable ``PropagationWorkspace`` per worker, trials streamed in
  bounded batches.

Both are timed serial and multi-process, and both must produce
byte-identical aggregated results — the equivalence gate that makes
the speedup comparison meaningful.  Acceptance (CI-gated): the
current engine clears **≥3× trials/sec** over the baseline at 10k
ASes on the process executor.  A synthetic CAIDA-scale (75k-AS) run
of the current engine is also recorded — reduced trial count, success
plus trials/sec — unless ``--skip-75k``.

Durable recording must stay effectively free: the serial engine is
also timed with a :class:`repro.results.JsonlSink` attached, and the
recorded run must keep **≥95% of the plain trials/sec** (≤5% sink
overhead), with byte-identical results.  Both arms take the best of
``--sink-repeats`` timing runs so shared-runner noise cannot flake
the gate.

So must telemetry: the serial engine is timed with the process
metrics registry live (tracing off) vs the null registry, and the
instrumented run must keep **≥98% of the uninstrumented trials/sec**
(≤2% telemetry overhead) with byte-identical results — the
:mod:`repro.obs` contract that telemetry observes the engine without
perturbing it.

Emits a JSON document to stdout and a copy into
``benchmarks/results/trial_throughput.json``.

Run:  PYTHONPATH=src python benchmarks/bench_trial_throughput.py \\
          [--ases 10000] [--trials 24] [--workers 4] [--skip-75k]
"""

from __future__ import annotations

import argparse
import multiprocessing
import os
import random
import sys
import tempfile
import time
from pathlib import Path

from benchlib import emit_report, phase
from repro.data import TopologyProfile, generate_topology
from repro.obs import NULL_REGISTRY, MetricsRegistry, use_registry
from repro.exper import (
    ExperimentRunner,
    ExperimentSpec,
    MaxLengthLooseRoa,
    MinimalRoa,
    NoRoa,
    PartialCoverageRoa,
    ScenarioCell,
    aggregate_records,
    evaluate_trial,
    materialize_trials,
)
from repro.results import JsonlSink


def granularity_spec(trials: int, seed: int) -> ExperimentSpec:
    """The §4/§5 maxLength-granularity sweep: one attack, ten ROA
    postures from minimal to absent."""
    policies = (
        MinimalRoa(),
        MaxLengthLooseRoa(17),
        MaxLengthLooseRoa(18),
        MaxLengthLooseRoa(19),
        MaxLengthLooseRoa(20),
        MaxLengthLooseRoa(22),
        MaxLengthLooseRoa(),
        PartialCoverageRoa(MinimalRoa(), 0.5),
        NoRoa(),
    )
    cells = tuple(
        ScenarioCell("forged-origin-subprefix", policy)
        for policy in policies
    ) + (ScenarioCell("subprefix-hijack", MinimalRoa()),)
    return ExperimentSpec(
        cells=cells, trials=trials, seed=seed, engine="array"
    )


# ----------------------------------------------------------------------
# The pre-PR baseline, reconstructed: object topology per worker,
# per-worker recompilation, per-trial state allocation.
# ----------------------------------------------------------------------

_BASELINE: dict = {}


def _baseline_init(topology, spec):
    _BASELINE["topology"] = topology
    _BASELINE["spec"] = spec


def _baseline_batch(batch):
    topology = _BASELINE["topology"]
    spec = _BASELINE["spec"]
    records = []
    for trial in batch:
        records.extend(evaluate_trial(topology, spec, trial))
    return records


def run_baseline(topology, spec, executor, workers):
    trials = materialize_trials(spec, topology)
    if executor == "serial":
        records = [
            record
            for trial in trials
            for record in evaluate_trial(topology, spec, trial)
        ]
    else:
        batch_size = max(1, len(trials) // (workers * 4))
        batches = [
            trials[start:start + batch_size]
            for start in range(0, len(trials), batch_size)
        ]
        with multiprocessing.Pool(
            processes=workers,
            initializer=_baseline_init,
            initargs=(topology, spec),
        ) as pool:
            records = [
                record
                for chunk in pool.imap_unordered(_baseline_batch, batches)
                for record in chunk
            ]
    return aggregate_records(spec, records, bootstrap_resamples=200)


def run_current(topology, spec, executor, workers, shards=None):
    runner = ExperimentRunner(
        topology, spec, executor=executor,
        workers=workers if executor == "process" else None,
        shards=shards if executor == "sharded" else None,
    )
    return runner.run(bootstrap_resamples=200)


def timed(label, fn, *args):
    print(f"  {label}...", file=sys.stderr)
    start = time.perf_counter()
    result = fn(*args)
    elapsed = time.perf_counter() - start
    return elapsed, result


def bench_sink_overhead(topology, spec, repeats):
    """Serial trials/sec with and without a JSONL sink attached.

    Interleaved best-of-``repeats`` timing (plain, sink, plain, sink,
    …) so a load spike on a shared runner hits both arms alike; the
    sink writes to a fresh temp file per run.
    """
    total = spec.total_trials
    best = {"plain": None, "sink": None}
    results = {}
    with tempfile.TemporaryDirectory() as tmp:
        for repeat in range(repeats):
            for arm in ("plain", "sink"):
                sink = None
                if arm == "sink":
                    path = Path(tmp) / f"run-{repeat}.jsonl"
                    sink = JsonlSink(path)
                runner = ExperimentRunner(topology, spec, sink=sink)
                start = time.perf_counter()
                results[arm] = runner.run(bootstrap_resamples=200)
                elapsed = time.perf_counter() - start
                if sink is not None:
                    sink.close()
                if best[arm] is None or elapsed < best[arm]:
                    best[arm] = elapsed
    plain_tps = total / best["plain"]
    sink_tps = total / best["sink"]
    return {
        "trials": total,
        "timing_repeats": repeats,
        "plain_wall_seconds": round(best["plain"], 4),
        "plain_trials_per_second": round(plain_tps, 2),
        "sink_wall_seconds": round(best["sink"], 4),
        "sink_trials_per_second": round(sink_tps, 2),
        "overhead_fraction": round(1.0 - sink_tps / plain_tps, 4),
        "_identical": results["plain"] == results["sink"],
    }


def bench_telemetry_overhead(topology, spec, repeats):
    """Serial trials/sec with telemetry off (null registry) vs on.

    The tentpole's overhead gate: instruments record on every trial,
    sweep, and record release, so "on" pays the real metric cost while
    "off" proves the null-registry fast path skips even the clock
    reads.  Interleaved best-of-``repeats`` timing, like the sink arm
    — but additionally alternating which arm goes first each repeat,
    so CPU warm-up and frequency-scaling transients cannot
    systematically favor one arm of a 2% gate; results must be
    byte-identical (telemetry never touches the trial RNG).
    """
    total = spec.total_trials
    best = {"off": None, "on": None}
    results = {}
    for repeat in range(repeats):
        order = ("off", "on") if repeat % 2 == 0 else ("on", "off")
        for arm in order:
            registry = NULL_REGISTRY if arm == "off" else MetricsRegistry()
            with use_registry(registry):
                runner = ExperimentRunner(topology, spec)
                start = time.perf_counter()
                results[arm] = runner.run(bootstrap_resamples=200)
                elapsed = time.perf_counter() - start
            if best[arm] is None or elapsed < best[arm]:
                best[arm] = elapsed
    off_tps = total / best["off"]
    on_tps = total / best["on"]
    return {
        "trials": total,
        "timing_repeats": repeats,
        "off_wall_seconds": round(best["off"], 4),
        "off_trials_per_second": round(off_tps, 2),
        "on_wall_seconds": round(best["on"], 4),
        "on_trials_per_second": round(on_tps, 2),
        "overhead_fraction": round(1.0 - on_tps / off_tps, 4),
        "_identical": results["off"] == results["on"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ases", type=int, default=10000,
                        help="topology size for the gated runs")
    parser.add_argument("--trials", type=int, default=48,
                        help="trials per engine/executor combination")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=2017)
    parser.add_argument("--big-ases", type=int, default=75000,
                        help="CAIDA-scale topology size")
    parser.add_argument("--big-trials", type=int, default=3)
    parser.add_argument("--skip-75k", action="store_true",
                        help="skip the CAIDA-scale run (CI time budget)")
    parser.add_argument("--shards", type=int, default=0,
                        help="also time the sharded executor with this "
                             "many shards (0 = skip; its results must "
                             "match the serial run byte for byte)")
    parser.add_argument("--sink-repeats", type=int, default=3,
                        help="timing repetitions per sink-overhead arm; "
                             "best run counts")
    parser.add_argument("--telemetry-repeats", type=int, default=10,
                        help="timing repetitions per telemetry-overhead "
                             "arm; best run counts (the 2%% gate is "
                             "tighter than the sink gate, so it takes "
                             "more repeats to outrun runner noise)")
    args = parser.parse_args(argv)

    print(f"generating a {args.ases}-AS topology...", file=sys.stderr)
    with phase("setup"):
        topology = generate_topology(
            TopologyProfile(ases=args.ases), random.Random(args.seed)
        )
    spec = granularity_spec(args.trials, args.seed)
    total = spec.total_trials
    workers = args.workers

    runs = {}
    results = {}
    with phase("run"):
        for engine, runner in (("baseline", run_baseline),
                               ("current", run_current)):
            for executor in ("serial", "process"):
                elapsed, result = timed(
                    f"{engine}/{executor} ({total} trials x "
                    f"{len(spec.cells)} cells)",
                    runner, topology, spec, executor, workers,
                )
                runs[f"{engine}_{executor}"] = {
                    "wall_seconds": round(elapsed, 4),
                    "trials": total,
                    "trials_per_second": round(total / elapsed, 2),
                }
                results[f"{engine}_{executor}"] = result

    sharded_identical = None
    if args.shards > 0:
        with phase("run"):
            elapsed, result = timed(
                f"current/sharded x{args.shards} ({total} trials x "
                f"{len(spec.cells)} cells)",
                run_current, topology, spec, "sharded", workers,
                args.shards,
            )
        runs["current_sharded"] = {
            "wall_seconds": round(elapsed, 4),
            "trials": total,
            "shards": args.shards,
            "trials_per_second": round(total / elapsed, 2),
        }
        sharded_identical = result == results["current_serial"]

    print(
        f"  sink overhead (serial, best of {args.sink_repeats})...",
        file=sys.stderr,
    )
    with phase("run"):
        sink_overhead = bench_sink_overhead(
            topology, spec, args.sink_repeats
        )
    sink_identical = sink_overhead.pop("_identical")

    print(
        f"  telemetry overhead (serial, best of "
        f"{args.telemetry_repeats})...",
        file=sys.stderr,
    )
    with phase("run"):
        telemetry_overhead = bench_telemetry_overhead(
            topology, spec, args.telemetry_repeats
        )
    telemetry_identical = telemetry_overhead.pop("_identical")

    with phase("aggregate"):
        identical = (
            results["baseline_serial"] == results["baseline_process"]
            == results["current_serial"] == results["current_process"]
        )
    process_speedup = round(
        runs["current_process"]["trials_per_second"]
        / runs["baseline_process"]["trials_per_second"], 2
    )
    serial_speedup = round(
        runs["current_serial"]["trials_per_second"]
        / runs["baseline_serial"]["trials_per_second"], 2
    )

    big_run = None
    if not args.skip_75k:
        print(f"generating a {args.big_ases}-AS topology...",
              file=sys.stderr)
        big_topology = generate_topology(
            TopologyProfile(ases=args.big_ases), random.Random(args.seed)
        )
        big_spec = granularity_spec(args.big_trials, args.seed)
        big_total = big_spec.total_trials
        try:
            elapsed, _ = timed(
                f"current/serial at {args.big_ases} ASes "
                f"({big_total} trials)",
                run_current, big_topology, big_spec, "serial", workers,
            )
            big_run = {
                "ases": args.big_ases,
                "trials": big_total,
                "wall_seconds": round(elapsed, 4),
                "trials_per_second": round(big_total / elapsed, 3),
                "succeeded": True,
            }
        except Exception as exc:  # recorded, and fails acceptance below
            big_run = {
                "ases": args.big_ases,
                "succeeded": False,
                "error": f"{type(exc).__name__}: {exc}",
            }

    return emit_report(
        "trial_throughput",
        {
            "topology_ases": args.ases,
            "topology_edges": topology.edge_count(),
            "workers": workers,
            "cpu_count": os.cpu_count() or 1,
            "cells": len(spec.cells),
            "runs": runs,
            "speedup_process": process_speedup,
            "speedup_serial": serial_speedup,
            "sink_overhead": sink_overhead,
            "telemetry_overhead": telemetry_overhead,
            "synthetic_75k": big_run,
        },
        {
            "results_identical": identical,
            "gte_3x_trials_per_second": process_speedup >= 3.0,
            "sink_results_identical": sink_identical,
            "sink_overhead_lte_5pct": (
                sink_overhead["sink_trials_per_second"]
                >= 0.95 * sink_overhead["plain_trials_per_second"]
            ),
            "telemetry_results_identical": telemetry_identical,
            "telemetry_overhead_lte_2pct": (
                telemetry_overhead["on_trials_per_second"]
                >= 0.98 * telemetry_overhead["off_trials_per_second"]
            ),
            # null = skipped (no --shards)
            "sharded_results_identical": sharded_identical,
            # null = skipped via --skip-75k
            "caida_scale_run": (
                None if big_run is None else big_run["succeeded"]
            ),
        },
    )


if __name__ == "__main__":
    sys.exit(main())
