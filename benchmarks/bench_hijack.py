"""E7 — attack effectiveness: the quantified §4/§5 comparison.

Samples (victim, attacker) stub pairs on a 1000-AS Gao–Rexford
topology and measures the attacker's capture fraction under each
attack/ROA combination.  The paper's claims, as assertions:

* forged-origin subprefix vs a non-minimal ROA == plain subprefix
  hijack == ~100% capture;
* the same attack vs a minimal ROA: 0%;
* the fallback same-prefix forged-origin attack: traffic splits, with
  the majority staying on the legitimate route ([16]).
"""

from __future__ import annotations

from repro.analysis import run_hijack_study

from .conftest import write_result


def test_bench_hijack_study(benchmark, attack_topology):
    result = benchmark.pedantic(
        run_hijack_study,
        args=(attack_topology,),
        kwargs={"samples": 40, "seed": 2017},
        rounds=1,
        iterations=1,
    )

    assert result.subprefix_no_rpki > 0.97
    assert result.forged_subprefix_nonminimal > 0.97
    assert result.forged_subprefix_minimal == 0.0
    assert result.forged_origin_minimal < 0.5
    assert result.forged_origin_minimal > 0.0

    lines = [
        f"Hijack study on {len(attack_topology)}-AS topology",
        "",
        *result.summary_lines(),
        "",
        "paper claims: subprefix variants capture ~everything; minimal "
        "ROAs force the same-prefix attack, where the majority of "
        "traffic stays on the legitimate route [16]",
    ]
    text = "\n".join(lines)
    write_result("hijack.txt", text)
    print("\n" + text)
