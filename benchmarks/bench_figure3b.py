"""E3 — Figure 3(b): full-deployment PDU counts over the timeline.

Three series: minimal-no-maxLength (= every announced pair), minimal-
with-maxLength (compress_roas output), and the maximally-permissive
lower bound.  The paper's headline here is that the compressed series
hugs the bound ("this result is consistent across all measurements");
we assert that gap stays under half a percent of the table size at
every week.
"""

from __future__ import annotations

from repro.analysis import compute_figure3b, render_panel

from .conftest import write_result


def test_bench_figure3b(benchmark, weekly_series):
    panel = benchmark.pedantic(
        compute_figure3b, args=(weekly_series,), rounds=1, iterations=1
    )
    by_name = {series.name: series for series in panel.series}

    plain = by_name["Minimal ROAs, no maxLength"]
    compressed = by_name["Minimal ROAs, with maxLength"]
    bound = by_name["Lower bound on # PDUs"]

    for week in range(len(panel.labels)):
        assert bound.values[week] <= compressed.values[week] < plain.values[week]
        # compress_roas recovers almost all of the possible compression
        gap = (compressed.values[week] - bound.values[week]) / plain.values[week]
        assert gap <= 0.005  # paper: 730,008 vs 729,371 = 0.08%
        # ... and the possible compression itself is small (~6%)
        saving = 1 - compressed.values[week] / plain.values[week]
        assert 0.03 <= saving <= 0.10

    assert plain.secure and compressed.secure and not bound.secure

    text = render_panel(panel)
    write_result("figure3b.txt", text)
    print("\n" + text)
