#!/usr/bin/env python3
"""Propagation-engine throughput: object vs array on a large AS graph.

Runs the paper's §4 attack measurement (forged-origin subprefix hijack
against a maxLength-loose ROA — two full propagations per evaluation,
origin validation on) over sampled stub (victim, attacker) pairs on a
synthetic ≥10k-AS topology, once per engine, and records wall time,
propagations/sec, and the speedup.  Asserts the two invariants that
gate CAIDA-scale grids:

* both engines return identical capture fractions on every pair, and
* the array engine is ≥5× faster than the object engine.

Topology compilation (the array engine's one-time CSR build) is timed
separately and excluded from the per-evaluation throughput — it is
amortized over an entire experiment grid.  A warmup evaluation per
engine runs before the clock starts, and the timed section repeats
(``--repeats``, default 3) with the best run counting, so shared-runner
scheduler noise cannot flake the ≥5× gate.

Emits a JSON document to stdout and a copy into
``benchmarks/results/propagation.json``.

Run:  PYTHONPATH=src python benchmarks/bench_propagation.py \
          [--ases 10000] [--pairs 8] [--seed 11]
"""

from __future__ import annotations

import argparse
import random
import sys
import time

from benchlib import emit_report, phase
from repro.bgp import Seed, VrpIndex, evaluate_attack_seeds
from repro.data import TopologyProfile, generate_topology
from repro.netbase import Prefix
from repro.rpki import Vrp

VICTIM_PREFIX = Prefix.parse("168.122.0.0/16")
ATTACK_PREFIX = Prefix.parse("168.122.0.0/24")


def evaluate_pair(topology, victim, attacker, rng_seed, engine):
    """One §4 evaluation: forged-origin subprefix vs a loose ROA."""
    vrp_index = VrpIndex([Vrp(VICTIM_PREFIX, 24, victim)])
    return evaluate_attack_seeds(
        topology, victim, VICTIM_PREFIX, ATTACK_PREFIX,
        [Seed.forged_origin(attacker, victim)],
        vrp_index=vrp_index,
        rng=random.Random(rng_seed),
        engine=engine,
    )


def bench_engine(topology, pairs, engine, repeats):
    # Warmup: primes the compiled-topology cache (array) and gives both
    # engines one un-timed evaluation.  The timed section then runs
    # ``repeats`` times and the best wall time counts — scheduler noise
    # on a shared runner only ever slows a run down, so the minimum is
    # the honest estimate and keeps the CI gate from flaking.
    evaluate_pair(topology, pairs[0][0], pairs[0][1], 0, engine)
    best = None
    outcomes = None
    for _ in range(repeats):
        start = time.perf_counter()
        outcomes = [
            evaluate_pair(topology, victim, attacker, index, engine)
            for index, (victim, attacker) in enumerate(pairs)
        ]
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    propagations = 2 * len(pairs)  # covering + attack prefix per pair
    return {
        "engine": engine,
        "wall_seconds": round(best, 4),
        "evaluations": len(pairs),
        "timing_repeats": repeats,
        "propagations_per_second": round(propagations / best, 1),
        "_outcomes": outcomes,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ases", type=int, default=10000,
                        help="synthetic topology size (default 10000)")
    parser.add_argument("--pairs", type=int, default=8,
                        help="sampled (victim, attacker) stub pairs")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions; best run counts")
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args(argv)

    print(f"generating a {args.ases}-AS topology...", file=sys.stderr)
    with phase("setup"):
        topology = generate_topology(
            TopologyProfile(ases=args.ases), random.Random(args.seed)
        )
        start = time.perf_counter()
        compiled = topology.compiled()
        compile_seconds = time.perf_counter() - start

        stubs = sorted(topology.stub_ases())
        rng = random.Random(args.seed)
        pairs = [tuple(rng.sample(stubs, 2)) for _ in range(args.pairs)]

    print(f"object engine: {args.pairs} evaluations x {args.repeats}...",
          file=sys.stderr)
    with phase("run"):
        object_run = bench_engine(topology, pairs, "object", args.repeats)
    print(f"array engine: {args.pairs} evaluations x {args.repeats}...",
          file=sys.stderr)
    with phase("run"):
        array_run = bench_engine(topology, pairs, "array", args.repeats)

    with phase("aggregate"):
        identical = (
            object_run.pop("_outcomes") == array_run.pop("_outcomes")
        )
    speedup = round(
        object_run["wall_seconds"] / array_run["wall_seconds"], 2
    )
    return emit_report(
        "propagation",
        {
            "topology_ases": len(topology),
            "topology_edges": topology.edge_count(),
            "compile_seconds": round(compile_seconds, 4),
            "compiled_size": len(compiled),
            "object": object_run,
            "array": array_run,
            "speedup": speedup,
        },
        {
            "results_identical": identical,
            "gte_5x_speedup": speedup >= 5.0,
        },
    )


if __name__ == "__main__":
    sys.exit(main())
