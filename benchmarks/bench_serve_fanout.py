#!/usr/bin/env python3
"""Serving-tier fan-out benchmark: RTR distribution + validity queries.

Measures the two acceptance numbers of the ``repro.serve`` subsystem:

* **RTR fan-out** — N concurrent asyncio router sessions each pull the
  full VRP table (Reset Query) from one :class:`AsyncRtrServer`; the
  per-serial frame cache must keep the table-encode count at 1 no
  matter how many routers connect.
* **Query throughput** — in-process ``validity()`` lookups/sec against
  the radix-indexed snapshot, single-shot and batch.
* **Hardening under churn and slow consumers** — the server survives
  rapid connect/sync/disconnect churn, and routers that flood Reset
  Queries while never reading are evicted by the per-client write
  deadline with the server's outstanding write buffers bounded (the
  memory claim behind ``client_deadline``; see docs/robustness.md).

Emits a JSON document to stdout (machine-readable, like the other
``bench_*`` outputs land in ``results/``) and a copy into
``benchmarks/results/serve_fanout.json``.

Run:  PYTHONPATH=src python benchmarks/bench_serve_fanout.py \
          [--vrps 10000] [--clients 100] [--queries 100000]
"""

from __future__ import annotations

import argparse
import asyncio
import random
import sys
import time

from benchlib import emit_report, phase
from repro.netbase import AF_INET, Prefix
from repro.rpki import Vrp
from repro.rtr.pdu import ResetQueryPdu, encode_pdu
from repro.serve import (
    AsyncRtrClient,
    AsyncRtrServer,
    QueryService,
    ServeMetrics,
)



def synth_vrps(count: int, rng: random.Random) -> list[Vrp]:
    """A deterministic ~count-entry VRP table with mixed maxLengths."""
    vrps = []
    for index in range(count):
        value = ((10 + index % 60) << 24) | ((index // 60) << 10)
        length = 22 + index % 3
        max_length = min(24, length + index % 2)
        vrps.append(Vrp(Prefix(AF_INET, value, length), max_length,
                        64500 + index % 500))
    return sorted(set(vrps))


async def bench_rtr_fanout(vrps: list[Vrp], clients: int) -> dict:
    metrics = ServeMetrics()
    async with AsyncRtrServer(vrps, metrics=metrics) as server:
        routers = [AsyncRtrClient() for _ in range(clients)]
        for router in routers:
            await router.connect(server.host, server.port)
        started = time.perf_counter()
        await asyncio.gather(*(router.sync() for router in routers))
        elapsed = time.perf_counter() - started
        table_ok = all(len(router.vrps) == len(vrps) for router in routers)
        for router in routers:
            await router.close()
    return {
        "vrps": len(vrps),
        "clients": clients,
        "all_tables_complete": table_ok,
        "wall_seconds": round(elapsed, 4),
        "tables_per_second": round(clients / elapsed, 1),
        "pdus_sent": metrics["pdus_sent"],
        "pdus_per_second": round(metrics["pdus_sent"] / elapsed, 1),
        "bytes_sent": metrics["bytes_sent"],
        # The tentpole claim: one encode per serial, not per client.
        "table_encodes": metrics["frame_encodes"],
        "frame_cache_hits": metrics["frame_hits"],
    }


async def bench_hardening(
    vrps: list[Vrp],
    churn_cycles: int,
    slow_clients: int,
    deadline: float = 0.25,
) -> dict:
    """Disconnect churn, then slow consumers against one server.

    The slow clients flood Reset Queries (each answer is a full-table
    frame) and never read; with ``client_deadline`` set the server
    must evict every one of them and its outstanding write buffers
    must stay bounded instead of absorbing the unread frames.
    """
    metrics = ServeMetrics()
    async with AsyncRtrServer(
        vrps, metrics=metrics, client_deadline=deadline
    ) as server:
        started = time.perf_counter()
        for _ in range(churn_cycles):
            router = AsyncRtrClient()
            await router.connect(server.host, server.port)
            await router.sync()
            await router.close()
        churn_elapsed = time.perf_counter() - started

        flood = encode_pdu(ResetQueryPdu()) * 128
        stuck = []
        for _ in range(slow_clients):
            _, writer = await asyncio.open_connection(
                server.host, server.port)
            writer.write(flood)
            await writer.drain()
            stuck.append(writer)
        started = time.perf_counter()
        wait_until = asyncio.get_running_loop().time() + 30
        while metrics["clients_evicted"] < slow_clients:
            if asyncio.get_running_loop().time() >= wait_until:
                break
            await asyncio.sleep(0.02)
        eviction_elapsed = time.perf_counter() - started
        outstanding = sum(
            writer.transport.get_write_buffer_size()
            for writer in server._writers
            if not writer.is_closing()
        )
        for writer in stuck:
            writer.close()

        # A well-behaved router still gets the full table afterwards.
        probe = AsyncRtrClient()
        await probe.connect(server.host, server.port)
        await probe.sync()
        probe_ok = len(probe.vrps) == len(vrps)
        await probe.close()
    return {
        "churn_cycles": churn_cycles,
        "churn_seconds": round(churn_elapsed, 4),
        "churn_cycles_per_second": round(churn_cycles / churn_elapsed, 1),
        "slow_clients": slow_clients,
        "client_deadline_seconds": deadline,
        "clients_evicted": metrics["clients_evicted"],
        "eviction_seconds": round(eviction_elapsed, 4),
        "outstanding_write_buffer_bytes": outstanding,
        "requests_shed": metrics["requests_shed"],
        "probe_table_complete": probe_ok,
    }


def bench_queries(vrps: list[Vrp], count: int, rng: random.Random) -> dict:
    service = QueryService(vrps, metrics=ServeMetrics())
    pool = rng.sample(vrps, min(len(vrps), 2000))
    queries = []
    for index in range(count):
        vrp = pool[index % len(pool)]
        # Mix of valid / invalid-length / invalid-origin / not-found.
        mode = index % 4
        prefix, asn = vrp.prefix, vrp.asn
        if mode == 1 and prefix.length < prefix.max_family_length:
            prefix = next(iter(prefix.subprefixes(min(
                prefix.max_family_length, vrp.max_length + 2))))
        elif mode == 2:
            asn = 65535
        elif mode == 3:
            prefix = Prefix(AF_INET, (198 << 24) | (index << 8) & 0xFFFFFF00, 24)
        queries.append((asn, prefix))

    started = time.perf_counter()
    for asn, prefix in queries:
        service.validity(asn, prefix)
    single_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    results = service.validity_batch(queries)
    batch_elapsed = time.perf_counter() - started

    states = {}
    for result in results:
        states[result.reason] = states.get(result.reason, 0) + 1
    latency = service.metrics.snapshot()["query_latency"]
    return {
        "queries": count,
        "single_seconds": round(single_elapsed, 4),
        "single_per_second": round(count / single_elapsed, 1),
        "batch_seconds": round(batch_elapsed, 4),
        "batch_per_second": round(count / batch_elapsed, 1),
        "reason_mix": states,
        "latency_us": {key: round(value, 2)
                       for key, value in latency.items() if key != "count"},
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--vrps", type=int, default=10000)
    parser.add_argument("--clients", type=int, default=100)
    parser.add_argument("--queries", type=int, default=100000)
    parser.add_argument("--churn", type=int, default=25,
                        help="connect/sync/close churn cycles")
    parser.add_argument("--slow-clients", type=int, default=4,
                        help="never-reading routers to flood and evict")
    parser.add_argument("--seed", type=int, default=20170601)
    args = parser.parse_args(argv)

    rng = random.Random(args.seed)
    with phase("setup"):
        vrps = synth_vrps(args.vrps, rng)

    print(f"table: {len(vrps)} VRPs; {args.clients} concurrent routers...",
          file=sys.stderr)
    with phase("run"):
        fanout = asyncio.run(bench_rtr_fanout(vrps, args.clients))
    print(f"queries: {args.queries} validity lookups...", file=sys.stderr)
    with phase("run"):
        queries = bench_queries(vrps, args.queries, rng)
    print(f"hardening: {args.churn} churn cycles, "
          f"{args.slow_clients} slow clients...", file=sys.stderr)
    with phase("run"):
        hardening = asyncio.run(bench_hardening(
            vrps, args.churn, args.slow_clients))

    return emit_report(
        "serve_fanout",
        {
            "rtr_fanout": fanout,
            "validity_queries": queries,
            "hardening": hardening,
        },
        {
            "single_table_encode": fanout["table_encodes"] == 1,
            "all_tables_complete": fanout["all_tables_complete"],
            "gte_50k_queries_per_second":
                queries["batch_per_second"] >= 50000,
            "server_survives_churn": hardening["probe_table_complete"],
            "slow_clients_evicted":
                hardening["clients_evicted"] >= args.slow_clients,
            # The memory claim: unread frames must not pile up in the
            # server once the deadline has evicted the slow consumers.
            "eviction_bounds_buffers":
                hardening["outstanding_write_buffer_bytes"] < (1 << 20),
        },
    )


if __name__ == "__main__":
    sys.exit(main())
