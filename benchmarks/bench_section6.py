"""E4 — §6 in-text measurements.

Every number the section quotes, on the synthetic snapshot:

* ~12% of ROA prefixes carry a maxLength longer than the prefix;
* ~84% of those are non-minimal, hence hijackable;
* minimal conversion needs "13K additional prefixes" (+33% PDUs, at
  paper scale);
* the full-deployment maxLength benefit is bounded by ~6.2% and
  compress_roas achieves ~6.1%.
"""

from __future__ import annotations

from repro.analysis import measure_section6

from .conftest import write_result


def test_bench_section6(benchmark, snapshot, scale):
    measurements = benchmark.pedantic(
        measure_section6, args=(snapshot.vrps, snapshot.announced),
        rounds=1, iterations=1,
    )
    report = measurements.vulnerability

    assert 0.06 <= report.maxlength_fraction <= 0.18           # paper 0.116
    assert report.vulnerable_fraction_of_maxlength >= 0.70     # paper 0.84
    assert 0.10 <= measurements.pdu_increase_fraction <= 0.60  # paper 0.32
    assert 0.04 <= measurements.max_compression_fraction <= 0.095   # 0.062
    assert (
        measurements.achieved_compression_fraction
        <= measurements.max_compression_fraction
    )
    gap = (
        measurements.max_compression_fraction
        - measurements.achieved_compression_fraction
    )
    assert gap <= 0.005                                        # 6.2 vs 6.1

    lines = [f"Section 6 measurements @ scale {scale}", ""]
    lines += measurements.summary_lines()
    lines += [
        "",
        "paper (scale 1.0): 39,949 prefixes; 4,630 use maxLength (11.6%); "
        "84% vulnerable; 13K additional prefixes (+33%); bound 6.2%; "
        "software 6.1%",
    ]
    text = "\n".join(lines)
    write_result("section6.txt", text)
    print("\n" + text)
