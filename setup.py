"""Legacy setup shim.

The build environment has no ``wheel`` package, so PEP 660 editable
installs are unavailable; ``pip install -e . --no-build-isolation
--no-use-pep517`` uses this file via ``setup.py develop`` instead.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
