"""Setuptools metadata for the reproduction package.

Kept as a plain ``setup.py`` (no pyproject.toml) because the build
environment has no ``wheel`` package, so PEP 660 editable installs are
unavailable; ``pip install -e . --no-build-isolation --no-use-pep517``
falls back to ``setup.py develop`` via this file.  The library has
zero runtime dependencies beyond the standard library, and everything
also works uninstalled with ``PYTHONPATH=src`` (``repro-roa`` ≡
``python -m repro.cli``).
"""

from setuptools import find_packages, setup

setup(
    name="repro-roa",
    version="0.3.0",
    description=(
        "Reproduction of 'MaxLength Considered Harmful to the RPKI' "
        "(CoNEXT'17): RPKI object model, compress_roas, hijack "
        "simulations, RTR serving tier"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.11",
    entry_points={"console_scripts": ["repro-roa = repro.cli:main"]},
)
