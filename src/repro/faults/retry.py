"""One retry/backoff policy for every layer that retries anything.

Before this module each retry loop hand-rolled its own counting (the
shard coordinator's ``attempts[index] > retries``, immediate
relaunch).  :class:`RetryPolicy` centralizes the policy — how many
retry attempts a task gets, and how long to wait before each — with
exponential backoff and *deterministic* jitter: instead of drawing
from an RNG (which would either perturb reproducible runs or demand
seed plumbing), the jitter fraction is hash-derived from a caller
token and the attempt number.  Same token, same attempt → same delay,
every run; different shards → decorrelated delays, which is all
jitter is for.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..netbase.errors import ReproError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How often to retry a failed task, and how long to wait.

    ``retries`` is the number of *retry* attempts after the first try
    (``retries=2`` → at most three executions).  Delays grow as
    ``base_delay * multiplier**(attempt-1)``, capped at ``max_delay``;
    ``jitter`` adds up to that fraction of the delay again, derived
    deterministically from ``(token, attempt)`` via BLAKE2b — no RNG,
    no global state, byte-reproducible runs.  The default policy
    (``base_delay=0``) retries immediately, matching the coordinator's
    historical behavior.
    """

    retries: int = 2
    base_delay: float = 0.0
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ReproError("retries must be non-negative")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ReproError("retry delays must be non-negative")
        if self.multiplier < 1:
            raise ReproError("retry multiplier must be >= 1")
        if not 0 <= self.jitter <= 1:
            raise ReproError("retry jitter must be in [0, 1]")

    def allows(self, attempt: int) -> bool:
        """May a failed task make retry ``attempt`` (1-based)?"""
        return attempt <= self.retries

    def backoff(self, attempt: int, token: str = "") -> float:
        """Seconds to wait before retry ``attempt`` (1-based).

        ``token`` decorrelates the jitter across callers (the shard
        coordinator passes ``"<run_base>:<shard>"``); the same
        ``(token, attempt)`` always yields the same delay.
        """
        if attempt < 1 or self.base_delay <= 0:
            return 0.0
        delay = min(
            self.base_delay * self.multiplier ** (attempt - 1),
            self.max_delay,
        )
        if self.jitter:
            digest = hashlib.blake2b(
                f"{token}:{attempt}".encode("utf-8"), digest_size=8
            ).digest()
            unit = int.from_bytes(digest, "big") / 2**64
            delay += delay * self.jitter * unit
        return min(delay, self.max_delay)
