"""Seeded, deterministic fault injection for the whole stack.

PR 8 proved one narrow fault survives: a shard worker killed
mid-stream (``REPRO_SHARD_FAULT``) still converges on the serial
bytes.  This module generalizes that discipline.  A :class:`FaultPlan`
is a *schedule* of :class:`FaultRule`\\ s over named injection sites
threaded through the serve and results tiers::

    serve.rtr.accept      a router session was accepted
    serve.rtr.send        an RTR frame is about to be written
    serve.http.accept     an HTTP connection was accepted
    serve.http.request    an HTTP request is about to be routed
    serve.shards.dispatch a shard dispatch is about to be scheduled
    serve.shards.execute  a shard is about to execute on a worker
    serve.shards.request  a transport HTTP request is about to go out
    results.sink.write    a sink line is about to hit the file
    exper.shard.record    a shard worker just wrote one record
    rtr.client.send       a router is about to write an RTR query
    rtr.client.recv       a router is about to read from its cache
    jobs.enqueue          a job is about to be appended to the queue
    jobs.execute          a queued job is about to start executing

Code at each site calls :func:`fire` (or :func:`fire_async` inside the
serve tier's event loop) with keyword context (``shard=1``,
``attempt=0``, ...).  With no plan installed that is one global read
and a ``return`` — effectively free, which is what lets the hooks live
on hot paths.  With a plan installed, every matching rule counts the
hit, and a rule whose 1-based ordinal is scheduled *injects*: raises
an :class:`OSError` (``EIO``/``ENOSPC``), raises
:class:`ConnectionResetError`, stalls the caller, delays it by a
deterministically jittered latency, or SIGKILLs the process.  Every
injection increments the ``faults.injected`` counter and is appended
to the plan's ``fired`` log.

Determinism is the contract: a plan is pure data (JSON round trip via
:meth:`FaultPlan.to_json`), :meth:`FaultPlan.generate` derives a plan
from a seed through an injected ``random.Random`` (same seed → same
schedule, asserted in tests), and hit counting is ordered by rule
declaration under one lock.  Worker processes inherit plans through
:data:`PLAN_ENV` — :func:`install_from_env` at worker entry re-parses
the JSON, so fork-inherited hit counters reset and every attempt sees
the same fresh schedule.
"""

from __future__ import annotations

import asyncio
import errno
import hashlib
import json
import os
import random
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Tuple, Union

from ..netbase.errors import ReproError
from ..obs.metrics import get_registry

__all__ = [
    "PLAN_ENV",
    "SITES",
    "FaultRule",
    "FaultPlan",
    "active_plan",
    "fire",
    "fire_async",
    "install",
    "install_from_env",
    "uninstall",
]

#: Environment variable carrying a JSON-encoded :class:`FaultPlan`.
#: Worker entry points call :func:`install_from_env` so dispatched
#: shards (forked processes, worker servers) honor the same schedule.
PLAN_ENV = "REPRO_FAULT_PLAN"

#: The injection sites threaded through the stack (see module
#: docstring).  Purely documentary — :func:`fire` accepts any site
#: string, so new call sites need no registry edit.
SITES = (
    "serve.rtr.accept",
    "serve.rtr.send",
    "serve.http.accept",
    "serve.http.request",
    "serve.shards.dispatch",
    "serve.shards.execute",
    "serve.shards.request",
    "results.sink.write",
    "exper.shard.record",
    "rtr.client.send",
    "rtr.client.recv",
    "jobs.enqueue",
    "jobs.execute",
)

_ACTIONS = ("error", "reset", "stall", "delay", "crash")
_ERRNOS = {"io": errno.EIO, "enospc": errno.ENOSPC}


@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault: *where*, *what*, and *when*.

    ``site`` names the injection point; ``action`` is one of
    ``"error"`` (raise :class:`OSError` with the errno named by
    ``error`` — ``"io"`` or ``"enospc"``), ``"reset"`` (raise
    :class:`ConnectionResetError`), ``"stall"`` (sleep ``delay``
    seconds verbatim, then continue), ``"delay"`` (sleep ``delay``
    scaled by a deterministic per-hit jitter factor in [0.5, 1.5) —
    latency spread for tail-latency studies, reproducible per plan),
    or ``"crash"`` (SIGKILL the process).
    ``at`` holds 1-based ordinals over the rule's *matching* hits —
    ``at=(3,)`` injects on the third matching call.  ``match`` filters
    hits by context: every ``(key, value)`` pair must equal
    ``str(context[key])``, so ``match=(("shard", "1"), ("attempt",
    "0"))`` targets shard 1's first attempt only.
    """

    site: str
    action: str
    at: Tuple[int, ...] = (1,)
    error: str = "io"
    delay: float = 0.0
    match: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "at", tuple(int(v) for v in self.at))
        raw = self.match
        if isinstance(raw, Mapping):
            raw = tuple(sorted(raw.items()))
        object.__setattr__(
            self,
            "match",
            tuple((str(k), str(v)) for k, v in raw),
        )
        if self.action not in _ACTIONS:
            raise ReproError(
                f"bad fault action {self.action!r}: expected one of "
                f"{', '.join(_ACTIONS)}"
            )
        if self.action == "error" and self.error not in _ERRNOS:
            raise ReproError(
                f"bad fault error kind {self.error!r}: expected one of "
                f"{', '.join(sorted(_ERRNOS))}"
            )
        if not self.at or any(ordinal < 1 for ordinal in self.at):
            raise ReproError("fault ordinals in `at` are 1-based")
        if self.delay < 0:
            raise ReproError("fault delay must be non-negative")
        if self.action == "delay" and self.delay <= 0:
            raise ReproError(
                "a delay fault needs a positive base delay to jitter"
            )

    def matches(self, site: str, context: Mapping[str, object]) -> bool:
        """Does a hit at ``site`` with ``context`` count for this rule?"""
        if site != self.site:
            return False
        return all(
            str(context.get(key)) == value for key, value in self.match
        )

    def to_json_dict(self) -> dict:
        return {
            "site": self.site,
            "action": self.action,
            "at": list(self.at),
            "error": self.error,
            "delay": self.delay,
            "match": [list(pair) for pair in self.match],
        }

    @classmethod
    def from_json_dict(cls, data: object) -> "FaultRule":
        if not isinstance(data, dict):
            raise ReproError(f"fault rule must be an object: {data!r}")
        try:
            return cls(
                site=str(data["site"]),
                action=str(data["action"]),
                at=tuple(int(v) for v in data.get("at", (1,))),
                error=str(data.get("error", "io")),
                delay=float(data.get("delay", 0.0)),
                match=tuple(
                    (str(k), str(v)) for k, v in data.get("match", ())
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"bad fault rule: {exc}") from None


_PLAN_KIND = "repro.faults/plan"
_PLAN_SCHEMA = 1


@dataclass
class FaultPlan:
    """A deterministic schedule of faults, plus its firing record.

    The plan is pure data — rules and an optional provenance seed —
    and serializes to stable JSON (:meth:`to_json`), which is how it
    crosses process boundaries via :data:`PLAN_ENV`.  The runtime
    state (per-rule hit counters, the ``fired`` log) lives on the
    installed instance under a lock; :func:`install_from_env` parses a
    fresh instance, so counters always start at zero in a new worker.
    """

    rules: Tuple[FaultRule, ...] = ()
    seed: Optional[int] = None
    fired: List[dict] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.rules = tuple(self.rules)
        self._lock = threading.Lock()
        self._hits = [0] * len(self.rules)

    def to_json(self) -> str:
        """The plan as one stable JSON line (state excluded)."""
        return json.dumps(
            {
                "kind": _PLAN_KIND,
                "schema": _PLAN_SCHEMA,
                "seed": self.seed,
                "rules": [rule.to_json_dict() for rule in self.rules],
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: Union[str, bytes]) -> "FaultPlan":
        """Parse a plan produced by :meth:`to_json`."""
        try:
            data = json.loads(text)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ReproError(f"bad fault plan JSON: {exc}") from None
        if not isinstance(data, dict) or data.get("kind") != _PLAN_KIND:
            raise ReproError(
                f"not a {_PLAN_KIND} document: {str(text)[:80]!r}"
            )
        if data.get("schema") != _PLAN_SCHEMA:
            raise ReproError(
                f"fault plan schema {data.get('schema')!r} is not the "
                f"supported schema {_PLAN_SCHEMA}"
            )
        seed = data.get("seed")
        return cls(
            rules=tuple(
                FaultRule.from_json_dict(rule)
                for rule in data.get("rules", ())
            ),
            seed=None if seed is None else int(seed),
        )

    @classmethod
    def generate(
        cls,
        seed: int,
        *,
        shards: int = 2,
        rules: int = 2,
        max_hit: int = 6,
        profile: str = "sharded",
    ) -> "FaultPlan":
        """Derive a plan from ``seed``: same seed, same schedule.

        ``profile="sharded"`` targets ``exper.shard.record`` with
        worker crashes and IO errors pinned to ``attempt=0`` (so
        retries recover and chaos equivalence holds); ``profile=
        "serve"`` targets ``serve.http.request`` with connection
        resets, IO errors, short stalls, and jittered delays.  All
        randomness comes from one injected ``random.Random(seed)``.
        """
        rng = random.Random(seed)
        if profile == "sharded":
            plan_rules = tuple(
                FaultRule(
                    site="exper.shard.record",
                    action=rng.choice(("crash", "error")),
                    at=(rng.randrange(1, max_hit + 1),),
                    error=rng.choice(("io", "enospc")),
                    match=(
                        ("shard", str(rng.randrange(shards))),
                        ("attempt", "0"),
                    ),
                )
                for _ in range(rules)
            )
        elif profile == "serve":
            plan_rules = tuple(
                FaultRule(
                    site="serve.http.request",
                    action=rng.choice(("reset", "error", "stall", "delay")),
                    at=(rng.randrange(1, max_hit + 1),),
                    error=rng.choice(("io", "enospc")),
                    delay=round(rng.uniform(0.005, 0.02), 4),
                )
                for _ in range(rules)
            )
        else:
            raise ReproError(
                f"unknown fault profile {profile!r}: "
                f"expected 'sharded' or 'serve'"
            )
        return cls(rules=plan_rules, seed=seed)

    def decide(
        self, site: str, context: Mapping[str, object]
    ) -> Optional[FaultRule]:
        """Count one hit; the rule scheduled to inject now, if any.

        Every matching rule's counter advances on every hit; the first
        rule whose new count is in its ``at`` schedule wins (and is
        logged).  Called by :func:`fire` — callers rarely need it
        directly.
        """
        decision = self._decide(site, context)
        return None if decision is None else decision[0]

    def delay_for(self, rule: FaultRule, site: str, hit: int) -> float:
        """The concrete sleep one injection of ``rule`` causes.

        ``stall`` sleeps the rule's delay verbatim.  ``delay`` scales
        it by a jitter factor in [0.5, 1.5) hashed from the plan seed,
        the site, and the hit ordinal — so one plan always produces
        the same latency *sequence* (no RNG, no global state), and
        different hits of the same rule land at different points of
        the spread, which is what a tail-latency study needs.
        """
        if rule.action != "delay":
            return rule.delay
        digest = hashlib.blake2b(
            f"repro.faults.delay/{self.seed}/{site}/{hit}".encode(
                "utf-8"
            ),
            digest_size=8,
        ).digest()
        factor = 0.5 + int.from_bytes(digest, "big") / 2.0 ** 64
        return rule.delay * factor

    def _decide(
        self, site: str, context: Mapping[str, object]
    ) -> Optional[Tuple[FaultRule, int]]:
        """:meth:`decide`, plus the winning rule's hit ordinal."""
        chosen: Optional[Tuple[FaultRule, int]] = None
        with self._lock:
            for index, rule in enumerate(self.rules):
                if not rule.matches(site, context):
                    continue
                self._hits[index] += 1
                if chosen is None and self._hits[index] in rule.at:
                    chosen = (rule, self._hits[index])
            if chosen is None:
                return None
            rule, hit = chosen
            self.fired.append({
                "site": site,
                "action": rule.action,
                "hit": hit,
                "context": {
                    key: str(value)
                    for key, value in sorted(context.items())
                },
            })
        return rule, hit


_INSTALLED: Optional[FaultPlan] = None


def install(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` as the process's active fault plan."""
    global _INSTALLED
    _INSTALLED = plan
    return plan


def uninstall() -> None:
    """Remove the active fault plan; :func:`fire` goes back to free."""
    global _INSTALLED
    _INSTALLED = None


def active_plan() -> Optional[FaultPlan]:
    """The currently installed plan, or ``None``."""
    return _INSTALLED


def install_from_env(
    environ: Optional[Mapping[str, str]] = None,
) -> Optional[FaultPlan]:
    """Install the :data:`PLAN_ENV` plan, if set; else leave things be.

    Worker entry points call this first: parsing the env JSON yields a
    *fresh* plan instance, so hit counters inherited across ``fork``
    reset and every attempt replays the same deterministic schedule.
    """
    value = (os.environ if environ is None else environ).get(PLAN_ENV)
    if not value:
        return None
    return install(FaultPlan.from_json(value))


def _execute(plan: FaultPlan, rule: FaultRule, site: str, hit: int) -> float:
    """Perform a scheduled injection; returns the sleep to apply (or 0)."""
    registry = get_registry()
    if registry.enabled:
        registry.view("faults").counter("injected").inc()
    if rule.action == "crash":
        os.kill(os.getpid(), signal.SIGKILL)
    if rule.action == "reset":
        raise ConnectionResetError(
            f"injected fault: connection reset at {site}"
        )
    if rule.action == "error":
        code = _ERRNOS[rule.error]
        raise OSError(
            code, f"injected fault at {site}: {os.strerror(code)}"
        )
    return plan.delay_for(rule, site, hit)


def fire(site: str, **context: object) -> None:
    """An injection point: no-op unless an installed rule is due.

    The disabled path is one module-global read and a return, so the
    hooks are safe on hot paths (sink writes, per-record loops).
    """
    plan = _INSTALLED
    if plan is None:
        return
    decision = plan._decide(site, context)
    if decision is None:
        return
    rule, hit = decision
    delay = _execute(plan, rule, site, hit)
    if delay > 0:
        time.sleep(delay)


async def fire_async(site: str, **context: object) -> None:
    """:func:`fire` for the serve tier's event loop: stalls await
    ``asyncio.sleep`` instead of blocking the loop."""
    plan = _INSTALLED
    if plan is None:
        return
    decision = plan._decide(site, context)
    if decision is None:
        return
    rule, hit = decision
    delay = _execute(plan, rule, site, hit)
    if delay > 0:
        await asyncio.sleep(delay)
