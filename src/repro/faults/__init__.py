"""``repro.faults`` — deterministic fault injection + retry policy.

The robustness layer: a seeded :class:`FaultPlan` schedules faults
(IO errors, connection resets, stalls, worker crashes) over named
injection sites threaded through the serve and results tiers, and
:class:`RetryPolicy` is the one retry/backoff-with-jitter object every
retry loop shares.  Both are pure data and fully deterministic — the
test suite pins that a sharded run under an aggressive fault plan is
byte-identical to a fault-free serial run (architecture.md invariant
7).  See ``docs/robustness.md``.
"""

from .plan import (
    PLAN_ENV,
    SITES,
    FaultPlan,
    FaultRule,
    active_plan,
    fire,
    fire_async,
    install,
    install_from_env,
    uninstall,
)
from .retry import RetryPolicy

__all__ = [
    "PLAN_ENV",
    "SITES",
    "FaultPlan",
    "FaultRule",
    "RetryPolicy",
    "active_plan",
    "fire",
    "fire_async",
    "install",
    "install_from_env",
    "uninstall",
]
