"""Pure-Python RSA signatures (PKCS#1 v1.5 over SHA-256).

The RPKI signs every object (certificates, ROAs, manifests) with RSA.
This environment has no crypto libraries, so we implement the needed
subset from first principles:

* probabilistic prime generation (Miller–Rabin with fixed rounds plus a
  small-prime sieve),
* RSA key generation (e = 65537),
* EMSA-PKCS1-v1_5 encoding with the SHA-256 DigestInfo header,
* sign / verify primitives.

Keys default to 1024 bits — far too small for production, plenty for a
simulation where the adversary model is "forged BGP announcements", not
factoring.  Key generation accepts a seeded :class:`random.Random` so
test fixtures are deterministic.

Security note: this module is for the reproduction's *simulated* PKI
only.  Do not use it to protect real data.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from ..netbase.errors import ValidationError

__all__ = ["RsaPrivateKey", "RsaPublicKey", "generate_keypair", "SignatureError"]


class SignatureError(ValidationError):
    """A signature failed to verify or could not be produced."""


# SHA-256 DigestInfo prefix from RFC 8017 §9.2.
_SHA256_DIGEST_INFO = bytes.fromhex("3031300d060960864801650304020105000420")

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
]


def _is_probable_prime(candidate: int, rng: random.Random, rounds: int = 24) -> bool:
    """Miller–Rabin primality test."""
    if candidate < 2:
        return False
    for prime in _SMALL_PRIMES:
        if candidate % prime == 0:
            return candidate == prime
    # Write candidate - 1 as d * 2^r with d odd.
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        witness = rng.randrange(2, candidate - 1)
        x = pow(witness, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, candidate)
            if x == candidate - 1:
                break
        else:
            return False
    return True


def _generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random prime of exactly ``bits`` bits."""
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # exact width, odd
        if _is_probable_prime(candidate, rng):
            return candidate


@dataclass(frozen=True)
class RsaPublicKey:
    """An RSA public key (n, e)."""

    modulus: int
    exponent: int

    @property
    def byte_length(self) -> int:
        return (self.modulus.bit_length() + 7) // 8

    def verify(self, message: bytes, signature: bytes) -> bool:
        """True iff ``signature`` is a valid PKCS#1 v1.5/SHA-256 signature."""
        if len(signature) != self.byte_length:
            return False
        value = int.from_bytes(signature, "big")
        if value >= self.modulus:
            return False
        decoded = pow(value, self.exponent, self.modulus)
        recovered = decoded.to_bytes(self.byte_length, "big")
        expected = _emsa_pkcs1_v15(message, self.byte_length)
        return recovered == expected

    def fingerprint(self) -> str:
        """A stable hex identifier for the key (SHA-256 of n || e)."""
        n_bytes = self.modulus.to_bytes(self.byte_length, "big")
        e_bytes = self.exponent.to_bytes(4, "big")
        return hashlib.sha256(n_bytes + e_bytes).hexdigest()


@dataclass(frozen=True)
class RsaPrivateKey:
    """An RSA private key; ``public`` carries the matching public half."""

    modulus: int
    public_exponent: int
    private_exponent: int

    @property
    def public(self) -> RsaPublicKey:
        return RsaPublicKey(self.modulus, self.public_exponent)

    @property
    def byte_length(self) -> int:
        return (self.modulus.bit_length() + 7) // 8

    def sign(self, message: bytes) -> bytes:
        """Produce a PKCS#1 v1.5/SHA-256 signature over ``message``."""
        encoded = _emsa_pkcs1_v15(message, self.byte_length)
        value = int.from_bytes(encoded, "big")
        signature = pow(value, self.private_exponent, self.modulus)
        return signature.to_bytes(self.byte_length, "big")


def _emsa_pkcs1_v15(message: bytes, em_length: int) -> bytes:
    """EMSA-PKCS1-v1_5 encoding (RFC 8017 §9.2) with SHA-256."""
    digest = hashlib.sha256(message).digest()
    t = _SHA256_DIGEST_INFO + digest
    if em_length < len(t) + 11:
        raise SignatureError("intended encoded message length too short")
    padding = b"\xff" * (em_length - len(t) - 3)
    return b"\x00\x01" + padding + b"\x00" + t


def generate_keypair(bits: int = 1024, rng: random.Random | None = None) -> RsaPrivateKey:
    """Generate an RSA keypair with public exponent 65537.

    Args:
        bits: modulus size; halved per prime.
        rng: seeded source for deterministic fixtures; defaults to a
            fresh SystemRandom-seeded generator.
    """
    if bits < 512:
        raise SignatureError(f"modulus of {bits} bits is below the supported minimum")
    if rng is None:
        # The library's one sanctioned global-RNG touch: seeding the
        # injectable generator itself requires OS entropy.
        # repro-lint: disable=RNG001
        rng = random.Random(random.SystemRandom().getrandbits(64))
    e = 65537
    while True:
        p = _generate_prime(bits // 2, rng)
        q = _generate_prime(bits - bits // 2, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        d = pow(e, -1, phi)
        if n.bit_length() != bits:
            continue
        return RsaPrivateKey(modulus=n, public_exponent=e, private_exponent=d)
