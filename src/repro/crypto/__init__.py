"""Pure-Python cryptography for the simulated RPKI (RSA + SHA-256)."""

from .rsa import RsaPrivateKey, RsaPublicKey, SignatureError, generate_keypair

__all__ = ["RsaPrivateKey", "RsaPublicKey", "SignatureError", "generate_keypair"]
