"""Single-prefix BGP route propagation under Gao–Rexford policy.

The evaluation of §4/§5 needs to *measure* attack effectiveness: what
fraction of the Internet routes to a hijacker under each attack
variant?  This module implements the standard interdomain propagation
model used by that literature (e.g. Lychev–Goldberg–Schapira [16]):

* **Preference**: customer routes over peer routes over provider
  routes; then shorter AS paths; then a deterministic (or seeded
  random) tie-break.
* **Export**: routes learned from customers are exported to everyone;
  routes learned from peers or providers are exported only to
  customers.

Propagation proceeds in three phases — customer routes climb provider
links from the origins, peer routes cross one peering edge, provider
routes descend.  Within each phase, candidate routes are adopted in
strictly increasing path-length order (a bucketed BFS), so every AS
sees *all* of its equally-short options before the tie-break runs.
Length ordering matters because seeds may inject paths of different
lengths: a forged-origin announcement starts with path
``(attacker, victim)`` — one hop longer than the victim's honest
``(victim,)`` — which is exactly the handicap [16] identifies.

Origin validation plugs in as a filter: validating ASes silently
discard announcements whose (prefix, claimed origin) is RPKI-invalid.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from ..netbase import Prefix
from ..netbase.errors import ReproError
from .origin_validation import ValidationState, VrpIndex
from .topology import AsTopology

__all__ = ["RouteClass", "Route", "Seed", "propagate_prefix", "SimulationError"]


class SimulationError(ReproError):
    """Inconsistent simulation setup (unknown seed AS, duplicate seeds)."""


class RouteClass(enum.IntEnum):
    """Adoption preference, best first."""

    ORIGIN = 0  # the AS itself injected the route
    CUSTOMER = 1
    PEER = 2
    PROVIDER = 3


@dataclass(frozen=True)
class Route:
    """The route one AS selected for the simulated prefix.

    Attributes:
        path: AS path as it stands at this AS (this AS not prepended).
        route_class: how the route arrived.
        seed: the AS that injected the announcement — for a forged
            path this is the *attacker*, even though ``path[-1]`` names
            the victim.
    """

    path: tuple[int, ...]
    route_class: RouteClass
    seed: int

    @property
    def length(self) -> int:
        return len(self.path)

    @property
    def claimed_origin(self) -> int:
        return self.path[-1]


@dataclass(frozen=True)
class Seed:
    """One announcement injected into the simulation.

    Attributes:
        asn: the AS sending the announcement.
        path: initial AS path; ``(asn,)`` for an honest origination,
            ``(asn, victim)`` for a forged-origin announcement.
    """

    asn: int
    path: tuple[int, ...]

    @classmethod
    def origin(cls, asn: int) -> "Seed":
        return cls(asn, (asn,))

    @classmethod
    def forged_origin(cls, attacker: int, victim: int) -> "Seed":
        return cls(attacker, (attacker, victim))


#: A candidate route offer: (advertising neighbor, full path, seed AS).
_Offer = tuple[int, tuple[int, ...], int]


def propagate_prefix(
    topology: AsTopology,
    prefix: Prefix,
    seeds: Iterable[Seed],
    *,
    vrp_index: Optional[VrpIndex] = None,
    validating_ases: Optional[frozenset[int]] = None,
    rng: Optional[random.Random] = None,
) -> dict[int, Route]:
    """Simulate propagation of one prefix; returns each AS's choice.

    Args:
        topology: the AS graph.
        prefix: the announced prefix (used only for origin validation).
        seeds: the competing announcements.
        vrp_index: when given, validating ASes drop announcements whose
            (prefix, claimed origin) is RPKI-INVALID.
        validating_ases: which ASes enforce validation; defaults to all
            (when ``vrp_index`` is given) — the paper's "RPKI deployed"
            setting.
        rng: tie-break source; None means deterministic (prefer the
            lower advertising-neighbor ASN).

    Returns:
        Mapping from ASN to the :class:`Route` it selected.  ASes that
        never hear a (surviving) route are absent.
    """
    seed_list = list(seeds)
    seen_seed_ases: set[int] = set()
    for seed in seed_list:
        if seed.asn not in topology:
            raise SimulationError(f"seed AS{seed.asn} not in topology")
        if seed.asn in seen_seed_ases:
            raise SimulationError(f"duplicate seed for AS{seed.asn}")
        seen_seed_ases.add(seed.asn)

    def drops(asn: int, path: tuple[int, ...]) -> bool:
        if vrp_index is None:
            return False
        if validating_ases is not None and asn not in validating_ases:
            return False
        return vrp_index.validate(prefix, path[-1]) is ValidationState.INVALID

    def tie_break(options: list[_Offer]) -> _Offer:
        # Offers accumulate in neighbor-set iteration order, which is an
        # artifact of edge insertion order; sort before drawing so the
        # seeded pick is a function of the topology, not of how it was
        # built (and so the array engine can reproduce it exactly).
        options.sort()
        if rng is not None:
            return rng.choice(options)
        return options[0]

    adopted: dict[int, Route] = {}
    for seed in seed_list:
        if not drops(seed.asn, seed.path):
            adopted[seed.asn] = Route(seed.path, RouteClass.ORIGIN, seed.asn)

    def sweep(
        exporters: list[tuple[int, Route]],
        next_hops: Callable[[int], frozenset[int]],
        route_class: RouteClass,
    ) -> None:
        """Adopt routes along ``next_hops`` edges in path-length order.

        ``exporters`` seeds the frontier; every adoption re-exports to
        its own ``next_hops``, so the sweep chains (phases 1 and 3).
        """
        buckets: dict[int, dict[int, list[_Offer]]] = {}

        def offer(source: int, route: Route) -> None:
            # A seed's own path already names it; everyone else prepends.
            if route.route_class is RouteClass.ORIGIN:
                path = route.path
            else:
                path = (source,) + route.path
            for target in next_hops(source):
                if target in adopted or target in path:
                    continue
                if drops(target, path):
                    continue
                buckets.setdefault(len(path), {}).setdefault(target, []).append(
                    (source, path, route.seed)
                )

        for asn, route in exporters:
            offer(asn, route)
        while buckets:
            length = min(buckets)
            batch = buckets.pop(length)
            for asn, options in sorted(batch.items()):
                if asn in adopted:
                    continue
                _neighbor, path, seed_asn = tie_break(options)
                route = Route(path, route_class, seed_asn)
                adopted[asn] = route
                offer(asn, route)

    # Phase 1 — customer routes climb provider edges.
    sweep(list(adopted.items()), topology.providers_of, RouteClass.CUSTOMER)

    # Phase 2 — customer/origin routes cross one peering edge.  No
    # chaining: peer routes are not re-exported to peers, so collect
    # offers once and settle each AS by shortest-then-tie-break.
    peer_offers: dict[int, list[_Offer]] = {}
    for asn, route in list(adopted.items()):
        if route.route_class not in (RouteClass.ORIGIN, RouteClass.CUSTOMER):
            continue
        if route.route_class is RouteClass.ORIGIN:
            path = route.path
        else:
            path = (asn,) + route.path
        for peer in topology.peers_of(asn):
            if peer in adopted or peer in path:
                continue
            if drops(peer, path):
                continue
            peer_offers.setdefault(peer, []).append((asn, path, route.seed))
    for asn, options in sorted(peer_offers.items()):
        best_length = min(len(path) for _n, path, _s in options)
        shortest = [opt for opt in options if len(opt[1]) == best_length]
        _neighbor, path, seed_asn = tie_break(shortest)
        adopted[asn] = Route(path, RouteClass.PEER, seed_asn)

    # Phase 3 — every adopted route descends customer edges.
    sweep(list(adopted.items()), topology.customers_of, RouteClass.PROVIDER)

    return adopted
