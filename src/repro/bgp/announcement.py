"""BGP route announcements.

An announcement binds an IP prefix to an AS path; the *origin* (the
rightmost AS) is what ROAs authorize and what hijackers forge.  The
notation matches the paper's running example::

    "168.122.0.0/16: AS 3356, AS 111"

is ``Announcement(Prefix.parse("168.122.0.0/16"), (3356, 111))`` —
AS 111 originated the route, AS 3356 prepended itself while
propagating it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..netbase import Prefix, validate_asn
from ..netbase.errors import ReproError

__all__ = ["Announcement", "AnnouncementError"]


class AnnouncementError(ReproError):
    """Malformed announcement (empty path, bad ASN, AS loop)."""


@dataclass(frozen=True)
class Announcement:
    """One BGP route: prefix plus AS path (leftmost = most recent hop).

    Attributes:
        prefix: the announced prefix (NLRI).
        as_path: AS numbers, newest first; the last element originated
            the route.
    """

    prefix: Prefix
    as_path: tuple[int, ...]

    def __init__(self, prefix: Prefix, as_path: Iterable[int]) -> None:
        path = tuple(as_path)
        if not path:
            raise AnnouncementError("AS path cannot be empty")
        for asn in path:
            validate_asn(asn)
        object.__setattr__(self, "prefix", prefix)
        object.__setattr__(self, "as_path", path)

    @property
    def origin(self) -> int:
        """The originating AS (rightmost on the path)."""
        return self.as_path[-1]

    @property
    def path_length(self) -> int:
        return len(self.as_path)

    def has_loop(self) -> bool:
        """True if any AS appears twice (loops are discarded on receipt).

        Prepending (the same AS repeated *consecutively* for traffic
        engineering) is not a loop.
        """
        seen: set[int] = set()
        previous: int | None = None
        for asn in self.as_path:
            if asn != previous and asn in seen:
                return True
            seen.add(asn)
            previous = asn
        return False

    def prepended_by(self, asn: int) -> "Announcement":
        """The announcement a neighbor propagates onward."""
        validate_asn(asn)
        return Announcement(self.prefix, (asn,) + self.as_path)

    def origin_pair(self) -> tuple[Prefix, int]:
        """(prefix, origin) — the unit every RPKI measurement uses."""
        return (self.prefix, self.origin)

    def __str__(self) -> str:
        path_text = ", ".join(f"AS {asn}" for asn in self.as_path)
        return f"“{self.prefix}: {path_text}”"
