"""AS-level Internet topology with business relationships.

Interdomain routing policy is driven by the Gao–Rexford model: each
inter-AS link is either *customer–provider* (the customer pays) or
*peer–peer* (settlement-free).  The topology stores the directed
customer→provider relation plus the symmetric peer relation, and offers
the neighbor views the propagation simulator needs.
"""

from __future__ import annotations

import enum
from array import array
from typing import Iterable, Iterator, Optional

from ..netbase.errors import ReproError

__all__ = [
    "Relationship",
    "AsTopology",
    "CompiledTopology",
    "TopologyError",
]


class TopologyError(ReproError):
    """Inconsistent topology construction (conflicting edge types)."""


class Relationship(enum.Enum):
    """The three ways a route can arrive, in preference order."""

    CUSTOMER = "customer"  # learned from a customer (they pay us)
    PEER = "peer"
    PROVIDER = "provider"  # learned from a provider (we pay them)


class AsTopology:
    """A multigraph-free AS topology.

    Edges are added with :meth:`add_customer_provider` and
    :meth:`add_peering`; an AS pair can have only one relationship.
    """

    def __init__(self) -> None:
        self._providers: dict[int, set[int]] = {}
        self._customers: dict[int, set[int]] = {}
        self._peers: dict[int, set[int]] = {}
        self._nodes: set[int] = set()
        self._compiled: Optional["CompiledTopology"] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_as(self, asn: int) -> None:
        self._nodes.add(asn)
        self._invalidate()

    def add_customer_provider(self, customer: int, provider: int) -> None:
        """Record that ``customer`` buys transit from ``provider``."""
        if customer == provider:
            raise TopologyError(f"AS{customer} cannot be its own provider")
        if self._has_edge(customer, provider):
            raise TopologyError(
                f"AS{customer}-AS{provider} already has a relationship"
            )
        self._nodes.update((customer, provider))
        self._providers.setdefault(customer, set()).add(provider)
        self._customers.setdefault(provider, set()).add(customer)
        self._invalidate()

    def add_peering(self, left: int, right: int) -> None:
        """Record a settlement-free peering between two ASes."""
        if left == right:
            raise TopologyError(f"AS{left} cannot peer with itself")
        if self._has_edge(left, right):
            raise TopologyError(f"AS{left}-AS{right} already has a relationship")
        self._nodes.update((left, right))
        self._peers.setdefault(left, set()).add(right)
        self._peers.setdefault(right, set()).add(left)
        self._invalidate()

    def _invalidate(self) -> None:
        self._compiled = None

    def __getstate__(self) -> dict:
        # The compiled form is cheap to rebuild and can be large; keep
        # pickles (multiprocessing workers receive one topology each)
        # lean by letting every process compile its own.
        state = self.__dict__.copy()
        state["_compiled"] = None
        return state

    def compiled(self) -> "CompiledTopology":
        """The flat-array form of this topology, compiled once.

        The result is cached until the next mutating call; the cache is
        not pickled, so multiprocessing workers compile independently.
        """
        if self._compiled is None:
            self._compiled = CompiledTopology.from_topology(self)
        return self._compiled

    def _has_edge(self, a: int, b: int) -> bool:
        return (
            b in self._providers.get(a, ())
            or b in self._customers.get(a, ())
            or b in self._peers.get(a, ())
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def ases(self) -> frozenset[int]:
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, asn: int) -> bool:
        return asn in self._nodes

    def providers_of(self, asn: int) -> frozenset[int]:
        return frozenset(self._providers.get(asn, ()))

    def customers_of(self, asn: int) -> frozenset[int]:
        return frozenset(self._customers.get(asn, ()))

    def peers_of(self, asn: int) -> frozenset[int]:
        return frozenset(self._peers.get(asn, ()))

    def neighbors_of(self, asn: int) -> frozenset[int]:
        return (
            self.providers_of(asn) | self.customers_of(asn) | self.peers_of(asn)
        )

    def relationship(self, asn: int, neighbor: int) -> Relationship:
        """How a route from ``neighbor`` arrives at ``asn``."""
        if neighbor in self._customers.get(asn, ()):
            return Relationship.CUSTOMER
        if neighbor in self._peers.get(asn, ()):
            return Relationship.PEER
        if neighbor in self._providers.get(asn, ()):
            return Relationship.PROVIDER
        raise TopologyError(f"AS{asn} and AS{neighbor} are not neighbors")

    def edges(self) -> Iterator[tuple[int, int, Relationship]]:
        """All edges once: (customer, provider, CUSTOMER) and
        (low, high, PEER) tuples."""
        for customer, providers in self._providers.items():
            for provider in providers:
                yield (customer, provider, Relationship.CUSTOMER)
        for left, peers in self._peers.items():
            for right in peers:
                if left < right:
                    yield (left, right, Relationship.PEER)

    def edge_count(self) -> int:
        return sum(1 for _ in self.edges())

    def stub_ases(self) -> frozenset[int]:
        """ASes with no customers — the topology's leaves."""
        return frozenset(
            asn for asn in self._nodes if not self._customers.get(asn)
        )

    def tier1_ases(self) -> frozenset[int]:
        """ASes with no providers — the provider-free core."""
        return frozenset(
            asn for asn in self._nodes if not self._providers.get(asn)
        )

    @classmethod
    def from_edges(
        cls, edges: Iterable[tuple[int, int, str]]
    ) -> "AsTopology":
        """Build from (a, b, kind) tuples; kind is "c2p" (a is customer
        of b) or "p2p" (peers) — the CAIDA serialization convention."""
        topology = cls()
        for a, b, kind in edges:
            if kind == "c2p":
                topology.add_customer_provider(a, b)
            elif kind == "p2p":
                topology.add_peering(a, b)
            else:
                raise TopologyError(f"unknown edge kind {kind!r}")
        return topology


class CompiledTopology:
    """An :class:`AsTopology` frozen into flat integer arrays.

    ASes get dense indices 0..n-1 in ascending ASN order, so index
    order and ASN order agree — the property that lets the array
    propagation engine reproduce the object engine's sorted tie-breaks
    by comparing indices alone.  Each of the three neighbor relations
    is stored CSR-style: one flat ``indices`` array of neighbor
    indices (each row ascending) plus an ``indptr`` offset array, with
    per-row tuples derived once so the hot loops iterate rows without
    slicing.

    Instances are immutable snapshots; get one via
    :meth:`AsTopology.compiled`, which caches until the next mutation.
    """

    __slots__ = (
        "asns",
        "as_set",
        "index_of",
        "provider_indptr",
        "provider_indices",
        "customer_indptr",
        "customer_indices",
        "peer_indptr",
        "peer_indices",
        "provider_rows",
        "customer_rows",
        "peer_rows",
    )

    def __init__(
        self,
        asns: tuple[int, ...],
        provider_csr: tuple[array, array],
        customer_csr: tuple[array, array],
        peer_csr: tuple[array, array],
    ) -> None:
        self.asns = asns
        self.as_set = frozenset(asns)
        self.index_of = {asn: i for i, asn in enumerate(asns)}
        self.provider_indptr, self.provider_indices = provider_csr
        self.customer_indptr, self.customer_indices = customer_csr
        self.peer_indptr, self.peer_indices = peer_csr
        self.provider_rows = self._rows(*provider_csr)
        self.customer_rows = self._rows(*customer_csr)
        self.peer_rows = self._rows(*peer_csr)

    @staticmethod
    def _rows(
        indptr: array, indices: array
    ) -> tuple[tuple[int, ...], ...]:
        return tuple(
            tuple(indices[indptr[i]:indptr[i + 1]])
            for i in range(len(indptr) - 1)
        )

    @classmethod
    def from_topology(cls, topology: AsTopology) -> "CompiledTopology":
        """Compile ``topology``; O(V + E log E) once, reused per trial."""
        asns = tuple(sorted(topology.ases))
        index_of = {asn: i for i, asn in enumerate(asns)}

        def csr(neighbor_sets: dict[int, set[int]]) -> tuple[array, array]:
            indptr = array("l", [0])
            indices = array("l")
            for asn in asns:
                for neighbor in sorted(neighbor_sets.get(asn, ())):
                    indices.append(index_of[neighbor])
                indptr.append(len(indices))
            return indptr, indices

        return cls(
            asns,
            csr(topology._providers),
            csr(topology._customers),
            csr(topology._peers),
        )

    def __len__(self) -> int:
        return len(self.asns)

    def __contains__(self, asn: int) -> bool:
        return asn in self.index_of

    def edge_count(self) -> int:
        """Undirected edge count (each c2p and p2p edge once)."""
        return len(self.provider_indices) + len(self.peer_indices) // 2

    def validation_mask(
        self, validating_ases: Optional[frozenset[int]]
    ) -> bytearray:
        """Per-AS-index bitmask of who enforces origin validation.

        ``None`` means universal validation, matching
        :func:`repro.bgp.simulation.propagate_prefix`; ASNs outside the
        topology are ignored.
        """
        if validating_ases is None:
            return bytearray(b"\x01" * len(self.asns))
        mask = bytearray(len(self.asns))
        index_of = self.index_of
        for asn in validating_ases:
            i = index_of.get(asn)
            if i is not None:
                mask[i] = 1
        return mask
