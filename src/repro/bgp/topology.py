"""AS-level Internet topology with business relationships.

Interdomain routing policy is driven by the Gao–Rexford model: each
inter-AS link is either *customer–provider* (the customer pays) or
*peer–peer* (settlement-free).  The topology stores the directed
customer→provider relation plus the symmetric peer relation, and offers
the neighbor views the propagation simulator needs.
"""

from __future__ import annotations

import enum
import struct
import sys
from array import array
from typing import Iterable, Iterator, Optional, Union

from ..netbase.errors import ReproError

__all__ = [
    "Relationship",
    "AsTopology",
    "CompiledTopology",
    "TopologyError",
]


class TopologyError(ReproError):
    """Inconsistent topology construction (conflicting edge types)."""


class Relationship(enum.Enum):
    """The three ways a route can arrive, in preference order."""

    CUSTOMER = "customer"  # learned from a customer (they pay us)
    PEER = "peer"
    PROVIDER = "provider"  # learned from a provider (we pay them)


class AsTopology:
    """A multigraph-free AS topology.

    Edges are added with :meth:`add_customer_provider` and
    :meth:`add_peering`; an AS pair can have only one relationship.
    """

    def __init__(self) -> None:
        self._providers: dict[int, set[int]] = {}
        self._customers: dict[int, set[int]] = {}
        self._peers: dict[int, set[int]] = {}
        self._nodes: set[int] = set()
        self._compiled: Optional["CompiledTopology"] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_as(self, asn: int) -> None:
        self._nodes.add(asn)
        self._invalidate()

    def add_customer_provider(self, customer: int, provider: int) -> None:
        """Record that ``customer`` buys transit from ``provider``."""
        if customer == provider:
            raise TopologyError(f"AS{customer} cannot be its own provider")
        if self._has_edge(customer, provider):
            raise TopologyError(
                f"AS{customer}-AS{provider} already has a relationship"
            )
        self._nodes.update((customer, provider))
        self._providers.setdefault(customer, set()).add(provider)
        self._customers.setdefault(provider, set()).add(customer)
        self._invalidate()

    def add_peering(self, left: int, right: int) -> None:
        """Record a settlement-free peering between two ASes."""
        if left == right:
            raise TopologyError(f"AS{left} cannot peer with itself")
        if self._has_edge(left, right):
            raise TopologyError(f"AS{left}-AS{right} already has a relationship")
        self._nodes.update((left, right))
        self._peers.setdefault(left, set()).add(right)
        self._peers.setdefault(right, set()).add(left)
        self._invalidate()

    def _invalidate(self) -> None:
        self._compiled = None

    def __getstate__(self) -> dict:
        # The compiled form is cheap to rebuild and can be large; keep
        # pickles (multiprocessing workers receive one topology each)
        # lean by letting every process compile its own.
        state = self.__dict__.copy()
        state["_compiled"] = None
        return state

    def compiled(self) -> "CompiledTopology":
        """The flat-array form of this topology, compiled once.

        The result is cached until the next mutating call; the cache is
        not pickled, so multiprocessing workers compile independently.
        """
        if self._compiled is None:
            self._compiled = CompiledTopology.from_topology(self)
        return self._compiled

    def _has_edge(self, a: int, b: int) -> bool:
        return (
            b in self._providers.get(a, ())
            or b in self._customers.get(a, ())
            or b in self._peers.get(a, ())
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def ases(self) -> frozenset[int]:
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, asn: int) -> bool:
        return asn in self._nodes

    def providers_of(self, asn: int) -> frozenset[int]:
        return frozenset(self._providers.get(asn, ()))

    def customers_of(self, asn: int) -> frozenset[int]:
        return frozenset(self._customers.get(asn, ()))

    def peers_of(self, asn: int) -> frozenset[int]:
        return frozenset(self._peers.get(asn, ()))

    def neighbors_of(self, asn: int) -> frozenset[int]:
        return (
            self.providers_of(asn) | self.customers_of(asn) | self.peers_of(asn)
        )

    def relationship(self, asn: int, neighbor: int) -> Relationship:
        """How a route from ``neighbor`` arrives at ``asn``."""
        if neighbor in self._customers.get(asn, ()):
            return Relationship.CUSTOMER
        if neighbor in self._peers.get(asn, ()):
            return Relationship.PEER
        if neighbor in self._providers.get(asn, ()):
            return Relationship.PROVIDER
        raise TopologyError(f"AS{asn} and AS{neighbor} are not neighbors")

    def edges(self) -> Iterator[tuple[int, int, Relationship]]:
        """All edges once: (customer, provider, CUSTOMER) and
        (low, high, PEER) tuples."""
        for customer, providers in self._providers.items():
            for provider in providers:
                yield (customer, provider, Relationship.CUSTOMER)
        for left, peers in self._peers.items():
            for right in peers:
                if left < right:
                    yield (left, right, Relationship.PEER)

    def edge_count(self) -> int:
        return sum(1 for _ in self.edges())

    def stub_ases(self) -> frozenset[int]:
        """ASes with no customers — the topology's leaves."""
        return frozenset(
            asn for asn in self._nodes if not self._customers.get(asn)
        )

    def tier1_ases(self) -> frozenset[int]:
        """ASes with no providers — the provider-free core."""
        return frozenset(
            asn for asn in self._nodes if not self._providers.get(asn)
        )

    @classmethod
    def from_edges(
        cls, edges: Iterable[tuple[int, int, str]]
    ) -> "AsTopology":
        """Build from (a, b, kind) tuples; kind is "c2p" (a is customer
        of b) or "p2p" (peers) — the CAIDA serialization convention."""
        topology = cls()
        for a, b, kind in edges:
            if kind == "c2p":
                topology.add_customer_provider(a, b)
            elif kind == "p2p":
                topology.add_peering(a, b)
            else:
                raise TopologyError(f"unknown edge kind {kind!r}")
        return topology


#: Blob header: magic, then the element counts of the seven int64
#: buffers (asns + three CSR (indptr, indices) pairs).  The whole
#: blob — header and payload — is little-endian; big-endian hosts
#: byteswap on the way in and out (losing zero-copy, keeping
#: cross-architecture pickles correct).
_BLOB_MAGIC = b"RPROCT1\x00"
_BLOB_HEADER = struct.Struct("<8s7Q")
_LITTLE_ENDIAN = sys.byteorder == "little"

#: Anything the int64 buffer views can be built from.
_IntBuffer = Union[array, memoryview]


def _as_int64(values: Iterable[int]) -> array:
    return array("q", values)


def _buffer_bytes(buf: _IntBuffer) -> bytes:
    """Native int64 buffer → little-endian payload bytes."""
    if _LITTLE_ENDIAN:
        return buf.tobytes() if isinstance(buf, array) else bytes(buf)
    swapped = array("q", buf)
    swapped.byteswap()
    return swapped.tobytes()


def _payload_view(payload: memoryview) -> _IntBuffer:
    """Little-endian payload bytes → native int64 buffer (a zero-copy
    cast on little-endian hosts, a byteswapped copy elsewhere)."""
    if _LITTLE_ENDIAN:
        return payload.cast("q")
    native = array("q")
    native.frombytes(bytes(payload))
    native.byteswap()
    return native


class CompiledTopology:
    """An :class:`AsTopology` frozen into flat integer buffers.

    ASes get dense indices 0..n-1 in ascending ASN order, so index
    order and ASN order agree — the property that lets the array
    propagation engine reproduce the object engine's sorted tie-breaks
    by comparing indices alone.  Each of the three neighbor relations
    is stored CSR-style: one flat ``indices`` buffer of neighbor
    indices (each row ascending) plus an ``indptr`` offset buffer, with
    per-row tuples derived once so the hot loops iterate rows without
    slicing.

    The seven backing buffers are flat int64 sequences —
    :class:`array.array` when compiled in-process, zero-copy
    :class:`memoryview` casts when attached to a pickled blob or a
    :mod:`multiprocessing.shared_memory` segment via
    :meth:`from_blob`.  Pickling goes through :meth:`to_blob`, so a
    compiled topology crosses process boundaries as one flat byte
    string instead of an object graph.

    Instances are immutable snapshots; get one via
    :meth:`AsTopology.compiled`, which caches until the next mutation.
    """

    __slots__ = (
        "asns",
        "as_set",
        "index_of",
        "provider_indptr",
        "provider_indices",
        "customer_indptr",
        "customer_indices",
        "peer_indptr",
        "peer_indices",
        "provider_rows",
        "customer_rows",
        "peer_rows",
    )

    def __init__(
        self,
        asns: Union[tuple[int, ...], _IntBuffer],
        provider_csr: tuple[_IntBuffer, _IntBuffer],
        customer_csr: tuple[_IntBuffer, _IntBuffer],
        peer_csr: tuple[_IntBuffer, _IntBuffer],
    ) -> None:
        if isinstance(asns, tuple):
            asns = _as_int64(asns)
        self.asns = asns
        self.as_set = frozenset(asns)
        self.index_of = {asn: i for i, asn in enumerate(asns)}
        self.provider_indptr, self.provider_indices = provider_csr
        self.customer_indptr, self.customer_indices = customer_csr
        self.peer_indptr, self.peer_indices = peer_csr
        self.provider_rows = self._rows(*provider_csr)
        self.customer_rows = self._rows(*customer_csr)
        self.peer_rows = self._rows(*peer_csr)

    @staticmethod
    def _rows(
        indptr: _IntBuffer, indices: _IntBuffer
    ) -> tuple[tuple[int, ...], ...]:
        return tuple(
            tuple(indices[indptr[i]:indptr[i + 1]])
            for i in range(len(indptr) - 1)
        )

    @classmethod
    def from_topology(cls, topology: AsTopology) -> "CompiledTopology":
        """Compile ``topology``; O(V + E log E) once, reused per trial."""
        asns = tuple(sorted(topology.ases))
        index_of = {asn: i for i, asn in enumerate(asns)}

        def csr(neighbor_sets: dict[int, set[int]]) -> tuple[array, array]:
            indptr = array("q", [0])
            indices = array("q")
            for asn in asns:
                for neighbor in sorted(neighbor_sets.get(asn, ())):
                    indices.append(index_of[neighbor])
                indptr.append(len(indices))
            return indptr, indices

        return cls(
            asns,
            csr(topology._providers),
            csr(topology._customers),
            csr(topology._peers),
        )

    # ------------------------------------------------------------------
    # The flat-blob form (pickling, shared memory)
    # ------------------------------------------------------------------

    def to_blob(self) -> bytes:
        """Serialize to one flat byte string: header + int64 buffers.

        The layout is what :meth:`from_blob` attaches to zero-copy; it
        is also the pickle payload (see :meth:`__reduce__`), so a
        compiled topology ships between processes as a single buffer
        copy with no per-object pickling.
        """
        buffers = (
            self.asns,
            self.provider_indptr, self.provider_indices,
            self.customer_indptr, self.customer_indices,
            self.peer_indptr, self.peer_indices,
        )
        header = _BLOB_HEADER.pack(
            _BLOB_MAGIC, *(len(buf) for buf in buffers)
        )
        return header + b"".join(_buffer_bytes(buf) for buf in buffers)

    @classmethod
    def from_blob(
        cls, blob: Union[bytes, bytearray, memoryview]
    ) -> "CompiledTopology":
        """Attach to a :meth:`to_blob` payload without copying it.

        The seven buffers become ``memoryview`` casts into ``blob``;
        only the derived lookup structures (index map, row tuples) are
        built per attach.  Trailing bytes beyond the recorded lengths
        are ignored, so a page-rounded shared-memory segment attaches
        as-is.
        """
        view = memoryview(blob)
        if len(view) < _BLOB_HEADER.size:
            raise TopologyError("compiled-topology blob too short")
        magic, *counts = _BLOB_HEADER.unpack_from(view, 0)
        if magic != _BLOB_MAGIC:
            raise TopologyError("not a compiled-topology blob")
        offset = _BLOB_HEADER.size
        buffers: list[_IntBuffer] = []
        for count in counts:
            end = offset + 8 * count
            if end > len(view):
                raise TopologyError("truncated compiled-topology blob")
            buffers.append(_payload_view(view[offset:end]))
            offset = end
        return cls(
            buffers[0],
            (buffers[1], buffers[2]),
            (buffers[3], buffers[4]),
            (buffers[5], buffers[6]),
        )

    def __reduce__(self):
        return (CompiledTopology.from_blob, (self.to_blob(),))

    def to_topology(self) -> AsTopology:
        """Rebuild the mutable object form (for the object engine).

        Workers receive only the compiled blob; the ones running the
        object propagation engine reconstruct an equivalent
        :class:`AsTopology` from it — same ASes, same relationships —
        instead of shipping the object graph through the pickle path.
        """
        topology = AsTopology()
        asns = self.asns
        for asn in asns:
            topology.add_as(asn)
        for i, row in enumerate(self.customer_rows):
            provider = asns[i]
            for j in row:
                topology.add_customer_provider(asns[j], provider)
        for i, row in enumerate(self.peer_rows):
            left = asns[i]
            for j in row:
                if i < j:
                    topology.add_peering(left, asns[j])
        return topology

    def __len__(self) -> int:
        return len(self.asns)

    def __contains__(self, asn: int) -> bool:
        return asn in self.index_of

    def edge_count(self) -> int:
        """Undirected edge count (each c2p and p2p edge once)."""
        return len(self.provider_indices) + len(self.peer_indices) // 2

    def validation_mask(
        self, validating_ases: Optional[frozenset[int]]
    ) -> bytearray:
        """Per-AS-index bitmask of who enforces origin validation.

        ``None`` means universal validation, matching
        :func:`repro.bgp.simulation.propagate_prefix`; ASNs outside the
        topology are ignored.
        """
        if validating_ases is None:
            return bytearray(b"\x01" * len(self.asns))
        mask = bytearray(len(self.asns))
        index_of = self.index_of
        for asn in validating_ases:
            i = index_of.get(asn)
            if i is not None:
                mask[i] = 1
        return mask
