"""AS-level Internet topology with business relationships.

Interdomain routing policy is driven by the Gao–Rexford model: each
inter-AS link is either *customer–provider* (the customer pays) or
*peer–peer* (settlement-free).  The topology stores the directed
customer→provider relation plus the symmetric peer relation, and offers
the neighbor views the propagation simulator needs.
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator

from ..netbase.errors import ReproError

__all__ = ["Relationship", "AsTopology", "TopologyError"]


class TopologyError(ReproError):
    """Inconsistent topology construction (conflicting edge types)."""


class Relationship(enum.Enum):
    """The three ways a route can arrive, in preference order."""

    CUSTOMER = "customer"  # learned from a customer (they pay us)
    PEER = "peer"
    PROVIDER = "provider"  # learned from a provider (we pay them)


class AsTopology:
    """A multigraph-free AS topology.

    Edges are added with :meth:`add_customer_provider` and
    :meth:`add_peering`; an AS pair can have only one relationship.
    """

    def __init__(self) -> None:
        self._providers: dict[int, set[int]] = {}
        self._customers: dict[int, set[int]] = {}
        self._peers: dict[int, set[int]] = {}
        self._nodes: set[int] = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_as(self, asn: int) -> None:
        self._nodes.add(asn)

    def add_customer_provider(self, customer: int, provider: int) -> None:
        """Record that ``customer`` buys transit from ``provider``."""
        if customer == provider:
            raise TopologyError(f"AS{customer} cannot be its own provider")
        if self._has_edge(customer, provider):
            raise TopologyError(
                f"AS{customer}-AS{provider} already has a relationship"
            )
        self._nodes.update((customer, provider))
        self._providers.setdefault(customer, set()).add(provider)
        self._customers.setdefault(provider, set()).add(customer)

    def add_peering(self, left: int, right: int) -> None:
        """Record a settlement-free peering between two ASes."""
        if left == right:
            raise TopologyError(f"AS{left} cannot peer with itself")
        if self._has_edge(left, right):
            raise TopologyError(f"AS{left}-AS{right} already has a relationship")
        self._nodes.update((left, right))
        self._peers.setdefault(left, set()).add(right)
        self._peers.setdefault(right, set()).add(left)

    def _has_edge(self, a: int, b: int) -> bool:
        return (
            b in self._providers.get(a, ())
            or b in self._customers.get(a, ())
            or b in self._peers.get(a, ())
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def ases(self) -> frozenset[int]:
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, asn: int) -> bool:
        return asn in self._nodes

    def providers_of(self, asn: int) -> frozenset[int]:
        return frozenset(self._providers.get(asn, ()))

    def customers_of(self, asn: int) -> frozenset[int]:
        return frozenset(self._customers.get(asn, ()))

    def peers_of(self, asn: int) -> frozenset[int]:
        return frozenset(self._peers.get(asn, ()))

    def neighbors_of(self, asn: int) -> frozenset[int]:
        return (
            self.providers_of(asn) | self.customers_of(asn) | self.peers_of(asn)
        )

    def relationship(self, asn: int, neighbor: int) -> Relationship:
        """How a route from ``neighbor`` arrives at ``asn``."""
        if neighbor in self._customers.get(asn, ()):
            return Relationship.CUSTOMER
        if neighbor in self._peers.get(asn, ()):
            return Relationship.PEER
        if neighbor in self._providers.get(asn, ()):
            return Relationship.PROVIDER
        raise TopologyError(f"AS{asn} and AS{neighbor} are not neighbors")

    def edges(self) -> Iterator[tuple[int, int, Relationship]]:
        """All edges once: (customer, provider, CUSTOMER) and
        (low, high, PEER) tuples."""
        for customer, providers in self._providers.items():
            for provider in providers:
                yield (customer, provider, Relationship.CUSTOMER)
        for left, peers in self._peers.items():
            for right in peers:
                if left < right:
                    yield (left, right, Relationship.PEER)

    def edge_count(self) -> int:
        return sum(1 for _ in self.edges())

    def stub_ases(self) -> frozenset[int]:
        """ASes with no customers — the topology's leaves."""
        return frozenset(
            asn for asn in self._nodes if not self._customers.get(asn)
        )

    def tier1_ases(self) -> frozenset[int]:
        """ASes with no providers — the provider-free core."""
        return frozenset(
            asn for asn in self._nodes if not self._providers.get(asn)
        )

    @classmethod
    def from_edges(
        cls, edges: Iterable[tuple[int, int, str]]
    ) -> "AsTopology":
        """Build from (a, b, kind) tuples; kind is "c2p" (a is customer
        of b) or "p2p" (peers) — the CAIDA serialization convention."""
        topology = cls()
        for a, b, kind in edges:
            if kind == "c2p":
                topology.add_customer_provider(a, b)
            elif kind == "p2p":
                topology.add_peering(a, b)
            else:
                raise TopologyError(f"unknown edge kind {kind!r}")
        return topology
