"""BGP-4 wire messages (RFC 4271, with RFC 4760 IPv6 and RFC 6793 AS4).

The simulation layer works on abstract announcements, but a credible
BGP substrate should also speak the wire format: route collectors
(RouteViews) store UPDATE messages, and origin-validation measurement
pipelines parse them.  This module implements the subset needed to
serialize and parse our announcements:

* the common 19-byte header with the 16-byte marker;
* OPEN (version 4, AS, hold time, BGP identifier, capabilities as an
  opaque blob);
* UPDATE with withdrawn routes, path attributes — ORIGIN, AS_PATH
  (AS_SET / AS_SEQUENCE segments, 4-byte ASNs), NEXT_HOP,
  MP_REACH_NLRI for IPv6 — and IPv4 NLRI;
* KEEPALIVE and NOTIFICATION.

Prefixes use the standard (length-byte, truncated-address) NLRI
encoding for both families.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import ClassVar, Optional, Union

from ..netbase import AF_INET, AF_INET6, Prefix, validate_asn
from ..netbase.errors import ReproError
from .announcement import Announcement

__all__ = [
    "BgpMessageError",
    "BgpHeader",
    "OpenMessage",
    "UpdateMessage",
    "KeepaliveMessage",
    "NotificationMessage",
    "BgpMessage",
    "AsPathSegment",
    "encode_message",
    "decode_message",
    "announcement_to_update",
    "update_to_announcements",
]

MARKER = b"\xff" * 16
HEADER_LENGTH = 19

TYPE_OPEN = 1
TYPE_UPDATE = 2
TYPE_NOTIFICATION = 3
TYPE_KEEPALIVE = 4

ATTR_ORIGIN = 1
ATTR_AS_PATH = 2
ATTR_NEXT_HOP = 3
ATTR_MP_REACH_NLRI = 14

ORIGIN_IGP = 0
ORIGIN_EGP = 1
ORIGIN_INCOMPLETE = 2

SEGMENT_AS_SET = 1
SEGMENT_AS_SEQUENCE = 2

FLAG_OPTIONAL = 0x80
FLAG_TRANSITIVE = 0x40
FLAG_EXTENDED_LENGTH = 0x10

AFI_IPV4 = 1
AFI_IPV6 = 2
SAFI_UNICAST = 1


class BgpMessageError(ReproError):
    """Malformed BGP message bytes or an unencodable message."""


@dataclass(frozen=True)
class BgpHeader:
    """The 19-byte header preceding every message."""

    length: int
    message_type: int

    def encode(self) -> bytes:
        return MARKER + struct.pack("!HB", self.length, self.message_type)

    @classmethod
    def decode(cls, data: bytes) -> "BgpHeader":
        if len(data) < HEADER_LENGTH:
            raise BgpMessageError("truncated BGP header")
        if data[:16] != MARKER:
            raise BgpMessageError("bad BGP marker")
        length, message_type = struct.unpack("!HB", data[16:19])
        if not HEADER_LENGTH <= length <= 4096:
            raise BgpMessageError(f"implausible BGP length {length}")
        return cls(length, message_type)


@dataclass(frozen=True)
class OpenMessage:
    """BGP OPEN (RFC 4271 §4.2)."""

    asn: int
    hold_time: int
    bgp_identifier: int
    capabilities: bytes = b""
    version: int = 4
    message_type: ClassVar[int] = TYPE_OPEN

    def body(self) -> bytes:
        # 2-byte AS field carries AS_TRANS for 4-byte ASNs (RFC 6793).
        two_byte = self.asn if self.asn <= 0xFFFF else 23456
        optional = (
            bytes([2, len(self.capabilities)]) + self.capabilities
            if self.capabilities
            else b""
        )
        return (
            struct.pack(
                "!BHHI", self.version, two_byte, self.hold_time,
                self.bgp_identifier,
            )
            + bytes([len(optional)])
            + optional
        )

    @classmethod
    def from_body(cls, body: bytes) -> "OpenMessage":
        if len(body) < 10:
            raise BgpMessageError("truncated OPEN body")
        version, asn, hold_time, identifier = struct.unpack("!BHHI", body[:9])
        optional_length = body[9]
        optional = body[10:10 + optional_length]
        if len(optional) != optional_length:
            raise BgpMessageError("truncated OPEN optional parameters")
        capabilities = b""
        if optional:
            if len(optional) < 2 or optional[0] != 2:
                raise BgpMessageError("unsupported OPEN optional parameter")
            capabilities = optional[2:2 + optional[1]]
        return cls(asn, hold_time, identifier, capabilities, version)


@dataclass(frozen=True)
class AsPathSegment:
    """One AS_PATH segment: an ordered sequence or an unordered set."""

    segment_type: int
    asns: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.segment_type not in (SEGMENT_AS_SET, SEGMENT_AS_SEQUENCE):
            raise BgpMessageError(f"bad segment type {self.segment_type}")
        if not 0 < len(self.asns) <= 255:
            raise BgpMessageError("segment must hold 1..255 ASNs")
        for asn in self.asns:
            validate_asn(asn)

    def encode(self) -> bytes:
        body = struct.pack("!BB", self.segment_type, len(self.asns))
        for asn in self.asns:
            body += struct.pack("!I", asn)
        return body


def _encode_nlri(prefix: Prefix) -> bytes:
    """(length, truncated network bytes) NLRI form."""
    byte_count = (prefix.length + 7) // 8
    width = prefix.max_family_length // 8
    address = prefix.value.to_bytes(width, "big")
    return bytes([prefix.length]) + address[:byte_count]


def _decode_nlri(data: bytes, offset: int, family: int) -> tuple[Prefix, int]:
    if offset >= len(data):
        raise BgpMessageError("truncated NLRI")
    length = data[offset]
    width = 32 if family == AF_INET else 128
    if length > width:
        raise BgpMessageError(f"NLRI length {length} too long for family")
    byte_count = (length + 7) // 8
    chunk = data[offset + 1:offset + 1 + byte_count]
    if len(chunk) != byte_count:
        raise BgpMessageError("truncated NLRI address")
    value = int.from_bytes(chunk + b"\x00" * (width // 8 - byte_count), "big")
    return Prefix(family, value, length), offset + 1 + byte_count


@dataclass(frozen=True)
class UpdateMessage:
    """BGP UPDATE carrying withdrawals and/or one set of reachable NLRI.

    Attributes:
        withdrawn: IPv4 prefixes being withdrawn.
        origin: ORIGIN attribute value (IGP/EGP/INCOMPLETE).
        as_path: AS_PATH segments (empty for pure withdrawals).
        next_hop: IPv4 next hop as an int (None to omit).
        nlri: announced IPv4 prefixes.
        nlri_v6: announced IPv6 prefixes (MP_REACH_NLRI).
        next_hop_v6: IPv6 next hop as an int (used with ``nlri_v6``).
    """

    withdrawn: tuple[Prefix, ...] = ()
    origin: Optional[int] = None
    as_path: tuple[AsPathSegment, ...] = ()
    next_hop: Optional[int] = None
    nlri: tuple[Prefix, ...] = ()
    nlri_v6: tuple[Prefix, ...] = ()
    next_hop_v6: int = 0
    message_type: ClassVar[int] = TYPE_UPDATE

    def flat_as_path(self) -> tuple[int, ...]:
        """The concatenated AS_SEQUENCE view (sets flattened sorted)."""
        path: list[int] = []
        for segment in self.as_path:
            asns = (
                segment.asns
                if segment.segment_type == SEGMENT_AS_SEQUENCE
                else tuple(sorted(segment.asns))
            )
            path.extend(asns)
        return tuple(path)

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def _encode_attribute(self, type_code: int, value: bytes,
                          flags: int = FLAG_TRANSITIVE) -> bytes:
        if len(value) > 255:
            flags |= FLAG_EXTENDED_LENGTH
            return struct.pack("!BBH", flags, type_code, len(value)) + value
        return struct.pack("!BBB", flags, type_code, len(value)) + value

    def body(self) -> bytes:
        withdrawn = b"".join(_encode_nlri(p) for p in self.withdrawn)
        attributes = b""
        if self.origin is not None:
            attributes += self._encode_attribute(ATTR_ORIGIN, bytes([self.origin]))
        if self.as_path:
            attributes += self._encode_attribute(
                ATTR_AS_PATH,
                b"".join(segment.encode() for segment in self.as_path),
            )
        if self.next_hop is not None:
            attributes += self._encode_attribute(
                ATTR_NEXT_HOP, self.next_hop.to_bytes(4, "big")
            )
        if self.nlri_v6:
            mp = struct.pack("!HBB", AFI_IPV6, SAFI_UNICAST, 16)
            mp += self.next_hop_v6.to_bytes(16, "big")
            mp += b"\x00"  # reserved
            mp += b"".join(_encode_nlri(p) for p in self.nlri_v6)
            attributes += self._encode_attribute(
                ATTR_MP_REACH_NLRI, mp, flags=FLAG_OPTIONAL
            )
        nlri = b"".join(_encode_nlri(p) for p in self.nlri)
        return (
            struct.pack("!H", len(withdrawn))
            + withdrawn
            + struct.pack("!H", len(attributes))
            + attributes
            + nlri
        )

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------

    @classmethod
    def from_body(cls, body: bytes) -> "UpdateMessage":
        if len(body) < 4:
            raise BgpMessageError("truncated UPDATE body")
        withdrawn_length = struct.unpack_from("!H", body, 0)[0]
        offset = 2
        end_withdrawn = offset + withdrawn_length
        if end_withdrawn + 2 > len(body):
            raise BgpMessageError("withdrawn length overruns body")
        withdrawn: list[Prefix] = []
        while offset < end_withdrawn:
            prefix, offset = _decode_nlri(body, offset, AF_INET)
            withdrawn.append(prefix)

        attributes_length = struct.unpack_from("!H", body, offset)[0]
        offset += 2
        end_attributes = offset + attributes_length
        if end_attributes > len(body):
            raise BgpMessageError("attributes length overruns body")

        origin: Optional[int] = None
        segments: list[AsPathSegment] = []
        next_hop: Optional[int] = None
        nlri_v6: list[Prefix] = []
        next_hop_v6 = 0
        while offset < end_attributes:
            if offset + 3 > end_attributes:
                raise BgpMessageError("truncated path attribute header")
            flags, type_code = body[offset], body[offset + 1]
            offset += 2
            if flags & FLAG_EXTENDED_LENGTH:
                if offset + 2 > end_attributes:
                    raise BgpMessageError("truncated extended length")
                value_length = struct.unpack_from("!H", body, offset)[0]
                offset += 2
            else:
                value_length = body[offset]
                offset += 1
            value = body[offset:offset + value_length]
            if len(value) != value_length:
                raise BgpMessageError("truncated attribute value")
            offset += value_length

            if type_code == ATTR_ORIGIN:
                if value_length != 1 or value[0] > 2:
                    raise BgpMessageError("bad ORIGIN attribute")
                origin = value[0]
            elif type_code == ATTR_AS_PATH:
                segments.extend(cls._decode_as_path(value))
            elif type_code == ATTR_NEXT_HOP:
                if value_length != 4:
                    raise BgpMessageError("bad NEXT_HOP attribute")
                next_hop = int.from_bytes(value, "big")
            elif type_code == ATTR_MP_REACH_NLRI:
                nlri_v6, next_hop_v6 = cls._decode_mp_reach(value)
            # unknown attributes are skipped (tolerant reader)

        nlri: list[Prefix] = []
        while offset < len(body):
            prefix, offset = _decode_nlri(body, offset, AF_INET)
            nlri.append(prefix)
        return cls(
            withdrawn=tuple(withdrawn),
            origin=origin,
            as_path=tuple(segments),
            next_hop=next_hop,
            nlri=tuple(nlri),
            nlri_v6=tuple(nlri_v6),
            next_hop_v6=next_hop_v6,
        )

    @staticmethod
    def _decode_as_path(value: bytes) -> list[AsPathSegment]:
        segments = []
        offset = 0
        while offset < len(value):
            if offset + 2 > len(value):
                raise BgpMessageError("truncated AS_PATH segment header")
            segment_type, count = value[offset], value[offset + 1]
            offset += 2
            needed = 4 * count
            chunk = value[offset:offset + needed]
            if len(chunk) != needed:
                raise BgpMessageError("truncated AS_PATH segment")
            asns = struct.unpack(f"!{count}I", chunk)
            segments.append(AsPathSegment(segment_type, asns))
            offset += needed
        return segments

    @staticmethod
    def _decode_mp_reach(value: bytes) -> tuple[list[Prefix], int]:
        if len(value) < 5:
            raise BgpMessageError("truncated MP_REACH_NLRI")
        afi, safi, next_hop_length = struct.unpack_from("!HBB", value, 0)
        if afi != AFI_IPV6 or safi != SAFI_UNICAST:
            raise BgpMessageError(f"unsupported AFI/SAFI {afi}/{safi}")
        offset = 4
        next_hop_bytes = value[offset:offset + next_hop_length]
        if len(next_hop_bytes) != next_hop_length:
            raise BgpMessageError("truncated MP next hop")
        next_hop = int.from_bytes(next_hop_bytes[:16].ljust(16, b"\x00"), "big")
        offset += next_hop_length + 1  # +1 reserved byte
        prefixes: list[Prefix] = []
        while offset < len(value):
            prefix, offset = _decode_nlri(value, offset, AF_INET6)
            prefixes.append(prefix)
        return prefixes, next_hop


@dataclass(frozen=True)
class KeepaliveMessage:
    """BGP KEEPALIVE (RFC 4271 §4.4): header only, empty body."""

    message_type: ClassVar[int] = TYPE_KEEPALIVE

    def body(self) -> bytes:
        return b""

    @classmethod
    def from_body(cls, body: bytes) -> "KeepaliveMessage":
        if body:
            raise BgpMessageError("KEEPALIVE must have an empty body")
        return cls()


@dataclass(frozen=True)
class NotificationMessage:
    """BGP NOTIFICATION (RFC 4271 §4.5): error code, subcode, data."""

    error_code: int
    error_subcode: int = 0
    data: bytes = b""
    message_type: ClassVar[int] = TYPE_NOTIFICATION

    def body(self) -> bytes:
        return bytes([self.error_code, self.error_subcode]) + self.data

    @classmethod
    def from_body(cls, body: bytes) -> "NotificationMessage":
        if len(body) < 2:
            raise BgpMessageError("truncated NOTIFICATION body")
        return cls(body[0], body[1], body[2:])


BgpMessage = Union[OpenMessage, UpdateMessage, KeepaliveMessage, NotificationMessage]

_BODY_PARSERS = {
    TYPE_OPEN: OpenMessage.from_body,
    TYPE_UPDATE: UpdateMessage.from_body,
    TYPE_KEEPALIVE: KeepaliveMessage.from_body,
    TYPE_NOTIFICATION: NotificationMessage.from_body,
}


def encode_message(message: BgpMessage) -> bytes:
    """Serialize a message with its header."""
    body = message.body()
    length = HEADER_LENGTH + len(body)
    if length > 4096:
        raise BgpMessageError(f"message of {length} bytes exceeds BGP maximum")
    return BgpHeader(length, message.message_type).encode() + body


def decode_message(data: bytes) -> tuple[BgpMessage, int]:
    """Decode one message from the head of ``data``.

    Returns (message, bytes consumed).
    """
    header = BgpHeader.decode(data)
    if len(data) < header.length:
        raise BgpMessageError("truncated BGP message body")
    body = data[HEADER_LENGTH:header.length]
    parser = _BODY_PARSERS.get(header.message_type)
    if parser is None:
        raise BgpMessageError(f"unknown message type {header.message_type}")
    return parser(body), header.length


# ----------------------------------------------------------------------
# Announcement bridging
# ----------------------------------------------------------------------


def announcement_to_update(
    announcement: Announcement, *, next_hop: int = 0xC0000201
) -> UpdateMessage:
    """The UPDATE a neighbor would receive for this announcement."""
    segment = AsPathSegment(SEGMENT_AS_SEQUENCE, announcement.as_path)
    if announcement.prefix.family == AF_INET:
        return UpdateMessage(
            origin=ORIGIN_IGP,
            as_path=(segment,),
            next_hop=next_hop,
            nlri=(announcement.prefix,),
        )
    return UpdateMessage(
        origin=ORIGIN_IGP,
        as_path=(segment,),
        nlri_v6=(announcement.prefix,),
        next_hop_v6=next_hop,
    )


def update_to_announcements(update: UpdateMessage) -> list[Announcement]:
    """All announcements carried by an UPDATE (both families)."""
    path = update.flat_as_path()
    if not path:
        return []
    return [Announcement(p, path) for p in update.nlri + update.nlri_v6]
