"""RFC 6811 BGP prefix origin validation.

Routers compare each announcement against their validated-prefix table
(the VRPs learned over RTR) and label it:

* **valid** — some VRP *matches*: its prefix covers the announcement,
  the announced length is within maxLength, and the origin AS agrees;
* **invalid** — at least one VRP *covers* the announcement but none
  matches (wrong origin, or length beyond maxLength);
* **notfound** — no VRP covers the announcement at all.

Dropping invalids is what gives the RPKI its security (§2): a subprefix
hijack against a ROA-covered prefix is invalid by construction...
unless a non-minimal maxLength makes the hijack *valid* (§4), which is
the paper's whole point.
"""

from __future__ import annotations

import enum
from typing import Iterable

from ..netbase import Prefix, RadixTree
from ..rpki.vrp import Vrp
from .announcement import Announcement

__all__ = ["ValidationState", "VrpIndex", "validate_announcement"]


class ValidationState(enum.Enum):
    """RFC 6811 §2 route validation states."""

    VALID = "valid"
    INVALID = "invalid"
    NOTFOUND = "notfound"


class VrpIndex:
    """VRPs indexed for covering lookups (one radix tree per family).

    Routers hold exactly this structure: RFC 6811 calls for finding all
    covering VRPs of an announced prefix, which is a radix-tree walk
    along the prefix bits.
    """

    def __init__(self, vrps: Iterable[Vrp] = ()) -> None:
        self._trees: dict[int, RadixTree[list[Vrp]]] = {}
        self._count = 0
        for vrp in vrps:
            self.add(vrp)

    def add(self, vrp: Vrp) -> None:
        tree = self._trees.get(vrp.prefix.family)
        if tree is None:
            tree = RadixTree[list[Vrp]](vrp.prefix.family)
            self._trees[vrp.prefix.family] = tree
        bucket = tree.setdefault(vrp.prefix, [])
        if vrp not in bucket:
            bucket.append(vrp)
            self._count += 1

    def remove(self, vrp: Vrp) -> bool:
        tree = self._trees.get(vrp.prefix.family)
        if tree is None:
            return False
        bucket = tree.get(vrp.prefix)
        if not bucket or vrp not in bucket:
            return False
        bucket.remove(vrp)
        self._count -= 1
        if not bucket:
            tree.remove(vrp.prefix)
        return True

    def __len__(self) -> int:
        return self._count

    def covering(self, prefix: Prefix) -> Iterable[Vrp]:
        """All VRPs whose prefix covers ``prefix``."""
        tree = self._trees.get(prefix.family)
        if tree is None:
            return
        for _prefix, bucket in tree.covering(prefix):
            yield from bucket

    def validate(self, prefix: Prefix, origin: int) -> ValidationState:
        """RFC 6811 validation of a (prefix, origin) pair."""
        covered = False
        for vrp in self.covering(prefix):
            covered = True
            if vrp.matches(prefix, origin):
                return ValidationState.VALID
        return ValidationState.INVALID if covered else ValidationState.NOTFOUND


def validate_announcement(
    announcement: Announcement, index: VrpIndex
) -> ValidationState:
    """Validate a full announcement (uses its origin AS)."""
    return index.validate(announcement.prefix, announcement.origin)
