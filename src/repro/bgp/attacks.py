"""Hijack attack scenarios and their effectiveness measurement.

The four attacks the paper contrasts (§2, §4, §5):

================================  =======================  ==================
attack                            announcement             RPKI verdict
================================  =======================  ==================
prefix hijack                     "p: AS m"                invalid (dropped)
subprefix hijack                  "q ⊂ p: AS m"            invalid (dropped)
forged-origin (same prefix)       "p: AS m, AS v"          valid — traffic
                                                           *splits* with the
                                                           legit route
forged-origin subprefix           "q ⊂ p: AS m, AS v"      valid when a
                                                           non-minimal ROA
                                                           covers q — attacker
                                                           gets **100%** of q
================================  =======================  ==================

Each scenario builder returns the seeds for
:func:`repro.bgp.simulation.propagate_prefix`; :func:`evaluate_attack`
runs the simulation(s) and reports the attacker's capture fraction over
the target address space, using longest-prefix-match to combine the
hijacked prefix with the victim's covering route.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Optional, Sequence

from ..netbase import Prefix
from ..netbase.errors import ReproError
from .origin_validation import ValidationState, VrpIndex
from .simulation import Route, Seed, propagate_prefix
from .topology import AsTopology

__all__ = [
    "AttackKind",
    "AttackScenario",
    "AttackOutcome",
    "ENGINES",
    "coerce_engine",
    "evaluate_attack",
    "evaluate_attack_seeds",
]

#: The two propagation backends: ``"object"`` is the readable bucketed
#: BFS in :mod:`repro.bgp.simulation`; ``"array"`` is the flat-array
#: engine in :mod:`repro.bgp.fastprop`.  They are bit-identical (a
#: tested invariant) — ``"array"`` is simply what makes CAIDA-scale
#: grids practical.
ENGINES = ("object", "array")


def coerce_engine(engine: str) -> str:
    """Validate an engine name; loud on unknowns."""
    if engine not in ENGINES:
        raise ReproError(
            f"unknown propagation engine {engine!r}; expected {ENGINES}"
        )
    return engine


class AttackKind(str, enum.Enum):
    """The four attack variants, as a real enum.

    The string mixin keeps the historical wire/CLI names working:
    ``AttackKind("forged-origin")`` parses, members compare equal to
    their name strings, and formatting yields the bare name.
    """

    PREFIX_HIJACK = "prefix-hijack"
    SUBPREFIX_HIJACK = "subprefix-hijack"
    FORGED_ORIGIN = "forged-origin"
    FORGED_ORIGIN_SUBPREFIX = "forged-origin-subprefix"

    def __str__(self) -> str:
        return self.value

    @classmethod
    def coerce(cls, value: "AttackKind | str") -> "AttackKind":
        """Parse a member from itself or its name; loud on unknowns."""
        try:
            return cls(value)
        except ValueError:
            raise ReproError(
                f"unknown attack kind {value!r}; expected one of "
                f"{[member.value for member in cls]}"
            ) from None

    @property
    def forges_origin(self) -> bool:
        """Does the announcement end in the victim's AS number?"""
        return self in (
            AttackKind.FORGED_ORIGIN,
            AttackKind.FORGED_ORIGIN_SUBPREFIX,
        )

    @property
    def is_subprefix(self) -> bool:
        """Does the attacker announce a strict subprefix?"""
        return self in (
            AttackKind.SUBPREFIX_HIJACK,
            AttackKind.FORGED_ORIGIN_SUBPREFIX,
        )


@dataclass(frozen=True)
class AttackScenario:
    """One (victim, attacker) experiment.

    Attributes:
        kind: an :class:`AttackKind` member; historical string names
            are coerced, unknown names raise :class:`ReproError`.
        victim: the legitimate origin AS.
        attacker: the hijacking AS ("AS m" in the paper).
        victim_prefix: the prefix the victim announces.
        attack_prefix: the prefix the attacker announces (equal to
            ``victim_prefix`` for same-prefix attacks, a subprefix for
            subprefix attacks).
    """

    kind: AttackKind
    victim: int
    attacker: int
    victim_prefix: Prefix
    attack_prefix: Prefix

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", AttackKind.coerce(self.kind))
        if not self.victim_prefix.covers(self.attack_prefix):
            raise ReproError(
                f"attack prefix {self.attack_prefix} outside victim's "
                f"{self.victim_prefix}"
            )

    def attacker_seed(self) -> Seed:
        """The attacker's announcement for this attack kind."""
        if self.kind.forges_origin:
            return Seed.forged_origin(self.attacker, self.victim)
        return Seed.origin(self.attacker)

    @property
    def is_subprefix_attack(self) -> bool:
        return self.attack_prefix != self.victim_prefix


@dataclass(frozen=True)
class AttackOutcome:
    """Result of simulating one scenario.

    Attributes:
        scenario: the input.
        attacker_fraction: share of ASes whose traffic for the attacked
            address space reaches the attacker.
        victim_fraction: share reaching the victim.
        disconnected_fraction: share with no route at all (e.g. the
            hijacked announcement was dropped as invalid and the space
            is not otherwise covered).
        attack_route_filtered: True when RPKI validation removed the
            attacker's announcement everywhere.
    """

    scenario: AttackScenario
    attacker_fraction: float
    victim_fraction: float
    disconnected_fraction: float
    attack_route_filtered: bool

    def __str__(self) -> str:
        return (
            f"{self.scenario.kind}: attacker {100 * self.attacker_fraction:.1f}% "
            f"victim {100 * self.victim_fraction:.1f}% "
            f"(AS{self.scenario.attacker} vs AS{self.scenario.victim})"
        )


def evaluate_attack(
    topology: AsTopology,
    scenario: AttackScenario,
    *,
    vrp_index: Optional[VrpIndex] = None,
    validating_ases: Optional[frozenset[int]] = None,
    rng: Optional[random.Random] = None,
    engine: str = "object",
) -> AttackOutcome:
    """Simulate a hijack and measure who captures the attacked space.

    The victim announces ``victim_prefix`` honestly.  The attacker
    announces ``attack_prefix`` per the scenario kind.  For subprefix
    attacks the two announcements are separate BGP destinations and
    longest-prefix match sends the contested space to whoever has the
    more specific route; for same-prefix attacks the two seeds compete
    inside a single propagation.

    Measurement is over all ASes (excluding the two parties): for each
    AS we resolve where a packet addressed inside ``attack_prefix``
    ends up, following the AS's most specific route.
    """
    fractions, filtered = evaluate_attack_seeds(
        topology, scenario.victim, scenario.victim_prefix,
        scenario.attack_prefix, [scenario.attacker_seed()],
        vrp_index=vrp_index, validating_ases=validating_ases, rng=rng,
        engine=engine,
    )
    return AttackOutcome(
        scenario=scenario,
        attacker_fraction=fractions[0],
        victim_fraction=fractions[1],
        disconnected_fraction=fractions[2],
        attack_route_filtered=filtered,
    )


def evaluate_attack_seeds(
    topology: AsTopology,
    victim: int,
    victim_prefix: Prefix,
    attack_prefix: Prefix,
    attacker_seeds: Sequence[Seed],
    *,
    vrp_index: Optional[VrpIndex] = None,
    validating_ases: Optional[frozenset[int]] = None,
    rng: Optional[random.Random] = None,
    engine: str = "object",
    workspace=None,
) -> tuple[tuple[float, float, float], bool]:
    """The measurement core, generalized to any attacker seed list.

    The victim honestly originates ``victim_prefix``; every seed in
    ``attacker_seeds`` (arbitrary paths — forged origins, prepending,
    several simultaneous attackers) announces ``attack_prefix``.
    Returns ``((attacker, victim, disconnected) fractions, filtered)``
    over all judged ASes (everyone outside the cast), resolving each
    by longest-prefix match as in :func:`evaluate_attack`.

    ``engine`` selects the propagation backend (see :data:`ENGINES`);
    both produce identical results, ``"array"`` an order of magnitude
    faster on large graphs.  ``workspace`` — an array-engine
    :class:`~repro.bgp.fastprop.PropagationWorkspace` — lets repeated
    evaluations reuse state arrays and propagation profiles; it is
    ignored by the object engine and never changes results.
    """
    if coerce_engine(engine) == "array":
        from .fastprop import evaluate_attack_seeds_array

        return evaluate_attack_seeds_array(
            topology, victim, victim_prefix, attack_prefix,
            attacker_seeds, vrp_index=vrp_index,
            validating_ases=validating_ases, rng=rng,
            workspace=workspace,
        )
    attackers = frozenset(seed.asn for seed in attacker_seeds)
    judged = frozenset(topology.ases) - {victim} - attackers
    if not judged:
        raise ReproError("topology too small to judge an attack")

    victim_seed = Seed.origin(victim)
    is_subprefix = attack_prefix != victim_prefix

    if is_subprefix:
        covering_routes = propagate_prefix(
            topology, victim_prefix, [victim_seed],
            vrp_index=vrp_index, validating_ases=validating_ases, rng=rng,
        )
        attack_routes = propagate_prefix(
            topology, attack_prefix, list(attacker_seeds),
            vrp_index=vrp_index, validating_ases=validating_ases, rng=rng,
        )
    else:
        combined = propagate_prefix(
            topology, victim_prefix, [victim_seed, *attacker_seeds],
            vrp_index=vrp_index, validating_ases=validating_ases, rng=rng,
        )
        covering_routes = combined
        attack_routes = {}

    attacker_count = 0
    victim_count = 0
    disconnected = 0
    for asn in sorted(judged):
        route = _preferred_route(asn, attack_routes, covering_routes)
        if route is None:
            disconnected += 1
        elif route.seed in attackers:
            attacker_count += 1
        else:
            victim_count += 1

    total = len(judged)
    if is_subprefix:
        # Propagation-derived: the attacker's prefix is a separate BGP
        # destination, so "filtered everywhere" means nobody adopted it.
        filtered = not attack_routes
    elif vrp_index is None:
        filtered = False
    else:
        # Same-prefix attacks share one propagation with the victim, so
        # derive the claim from the VRP verdict — but an INVALID verdict
        # only removes the announcement *everywhere* when every AS
        # actually validates.
        universal = (
            validating_ases is None or topology.ases <= validating_ases
        )
        filtered = universal and all(
            vrp_index.validate(attack_prefix, seed.path[-1])
            is ValidationState.INVALID
            for seed in attacker_seeds
        )
    return (
        (
            attacker_count / total,
            victim_count / total,
            disconnected / total,
        ),
        filtered,
    )


def _preferred_route(
    asn: int,
    attack_routes: dict[int, Route],
    covering_routes: dict[int, Route],
) -> Optional[Route]:
    """Longest-prefix match between the two route tables.

    The attack prefix is at least as specific as the covering prefix,
    so an AS holding a route for it always prefers that route for
    addresses inside it.
    """
    if asn in attack_routes:
        return attack_routes[asn]
    return covering_routes.get(asn)
