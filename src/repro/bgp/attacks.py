"""Hijack attack scenarios and their effectiveness measurement.

The four attacks the paper contrasts (§2, §4, §5):

================================  =======================  ==================
attack                            announcement             RPKI verdict
================================  =======================  ==================
prefix hijack                     "p: AS m"                invalid (dropped)
subprefix hijack                  "q ⊂ p: AS m"            invalid (dropped)
forged-origin (same prefix)       "p: AS m, AS v"          valid — traffic
                                                           *splits* with the
                                                           legit route
forged-origin subprefix           "q ⊂ p: AS m, AS v"      valid when a
                                                           non-minimal ROA
                                                           covers q — attacker
                                                           gets **100%** of q
================================  =======================  ==================

Each scenario builder returns the seeds for
:func:`repro.bgp.simulation.propagate_prefix`; :func:`evaluate_attack`
runs the simulation(s) and reports the attacker's capture fraction over
the target address space, using longest-prefix-match to combine the
hijacked prefix with the victim's covering route.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..netbase import Prefix
from ..netbase.errors import ReproError
from .origin_validation import ValidationState, VrpIndex
from .simulation import Route, Seed, propagate_prefix
from .topology import AsTopology

__all__ = [
    "AttackKind",
    "AttackScenario",
    "AttackOutcome",
    "evaluate_attack",
]


class AttackKind:
    """Names for the four attack variants."""

    PREFIX_HIJACK = "prefix-hijack"
    SUBPREFIX_HIJACK = "subprefix-hijack"
    FORGED_ORIGIN = "forged-origin"
    FORGED_ORIGIN_SUBPREFIX = "forged-origin-subprefix"


@dataclass(frozen=True)
class AttackScenario:
    """One (victim, attacker) experiment.

    Attributes:
        kind: an :class:`AttackKind` name.
        victim: the legitimate origin AS.
        attacker: the hijacking AS ("AS m" in the paper).
        victim_prefix: the prefix the victim announces.
        attack_prefix: the prefix the attacker announces (equal to
            ``victim_prefix`` for same-prefix attacks, a subprefix for
            subprefix attacks).
    """

    kind: str
    victim: int
    attacker: int
    victim_prefix: Prefix
    attack_prefix: Prefix

    def __post_init__(self) -> None:
        if not self.victim_prefix.covers(self.attack_prefix):
            raise ReproError(
                f"attack prefix {self.attack_prefix} outside victim's "
                f"{self.victim_prefix}"
            )

    def attacker_seed(self) -> Seed:
        """The attacker's announcement for this attack kind."""
        if self.kind in (AttackKind.FORGED_ORIGIN,
                         AttackKind.FORGED_ORIGIN_SUBPREFIX):
            return Seed.forged_origin(self.attacker, self.victim)
        return Seed.origin(self.attacker)

    @property
    def is_subprefix_attack(self) -> bool:
        return self.attack_prefix != self.victim_prefix


@dataclass(frozen=True)
class AttackOutcome:
    """Result of simulating one scenario.

    Attributes:
        scenario: the input.
        attacker_fraction: share of ASes whose traffic for the attacked
            address space reaches the attacker.
        victim_fraction: share reaching the victim.
        disconnected_fraction: share with no route at all (e.g. the
            hijacked announcement was dropped as invalid and the space
            is not otherwise covered).
        attack_route_filtered: True when RPKI validation removed the
            attacker's announcement everywhere.
    """

    scenario: AttackScenario
    attacker_fraction: float
    victim_fraction: float
    disconnected_fraction: float
    attack_route_filtered: bool

    def __str__(self) -> str:
        return (
            f"{self.scenario.kind}: attacker {100 * self.attacker_fraction:.1f}% "
            f"victim {100 * self.victim_fraction:.1f}% "
            f"(AS{self.scenario.attacker} vs AS{self.scenario.victim})"
        )


def evaluate_attack(
    topology: AsTopology,
    scenario: AttackScenario,
    *,
    vrp_index: Optional[VrpIndex] = None,
    validating_ases: Optional[frozenset[int]] = None,
    rng: Optional[random.Random] = None,
) -> AttackOutcome:
    """Simulate a hijack and measure who captures the attacked space.

    The victim announces ``victim_prefix`` honestly.  The attacker
    announces ``attack_prefix`` per the scenario kind.  For subprefix
    attacks the two announcements are separate BGP destinations and
    longest-prefix match sends the contested space to whoever has the
    more specific route; for same-prefix attacks the two seeds compete
    inside a single propagation.

    Measurement is over all ASes (excluding the two parties): for each
    AS we resolve where a packet addressed inside ``attack_prefix``
    ends up, following the AS's most specific route.
    """
    judged = frozenset(topology.ases) - {scenario.victim, scenario.attacker}
    if not judged:
        raise ReproError("topology too small to judge an attack")

    victim_seed = Seed.origin(scenario.victim)
    attacker_seed = scenario.attacker_seed()

    if scenario.is_subprefix_attack:
        covering_routes = propagate_prefix(
            topology, scenario.victim_prefix, [victim_seed],
            vrp_index=vrp_index, validating_ases=validating_ases, rng=rng,
        )
        attack_routes = propagate_prefix(
            topology, scenario.attack_prefix, [attacker_seed],
            vrp_index=vrp_index, validating_ases=validating_ases, rng=rng,
        )
    else:
        combined = propagate_prefix(
            topology, scenario.victim_prefix, [victim_seed, attacker_seed],
            vrp_index=vrp_index, validating_ases=validating_ases, rng=rng,
        )
        covering_routes = combined
        attack_routes = {}

    attacker_count = 0
    victim_count = 0
    disconnected = 0
    for asn in judged:
        route = _preferred_route(asn, attack_routes, covering_routes)
        if route is None:
            disconnected += 1
        elif route.seed == scenario.attacker:
            attacker_count += 1
        else:
            victim_count += 1

    total = len(judged)
    filtered = scenario.is_subprefix_attack and not attack_routes
    if vrp_index is not None and not scenario.is_subprefix_attack:
        filtered = (
            vrp_index.validate(scenario.attack_prefix,
                               attacker_seed.path[-1])
            is ValidationState.INVALID
        )
    return AttackOutcome(
        scenario=scenario,
        attacker_fraction=attacker_count / total,
        victim_fraction=victim_count / total,
        disconnected_fraction=disconnected / total,
        attack_route_filtered=filtered,
    )


def _preferred_route(
    asn: int,
    attack_routes: dict[int, Route],
    covering_routes: dict[int, Route],
) -> Optional[Route]:
    """Longest-prefix match between the two route tables.

    The attack prefix is at least as specific as the covering prefix,
    so an AS holding a route for it always prefers that route for
    addresses inside it.
    """
    if asn in attack_routes:
        return attack_routes[asn]
    return covering_routes.get(asn)
