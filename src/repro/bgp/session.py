"""A minimal BGP speaker: sessions over TCP using the wire codec.

Enough of the RFC 4271 state machine to run realistic end-to-end
experiments on localhost: OPEN exchange, KEEPALIVEs, UPDATE
announcement/withdrawal, NOTIFICATION on protocol errors.  Policy is
out of scope (the propagation *model* lives in
:mod:`repro.bgp.simulation`); what this speaker adds is the part the
paper's Figure 1 implies but never draws — routers applying RFC 6811
origin validation to real UPDATE messages using VRPs learned over
RPKI-to-Router.

A speaker holds an Adj-RIB-In per peer and a Loc-RIB; when constructed
with a :class:`~repro.bgp.origin_validation.VrpIndex` (or given one
later via :meth:`set_vrp_index`), RPKI-invalid routes are rejected at
ingress, exactly like a router configured to drop invalids.

Threads service each peer connection; the public API is synchronous
and thread-safe.
"""

from __future__ import annotations

import socket
import threading
from typing import Optional

from ..netbase import Prefix
from ..netbase.errors import ReproError
from .announcement import Announcement
from .message import (
    BgpMessage,
    BgpMessageError,
    HEADER_LENGTH,
    KeepaliveMessage,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
    announcement_to_update,
    decode_message,
    encode_message,
    update_to_announcements,
)
from .origin_validation import ValidationState, VrpIndex
from .rib import AdjRibIn, Rib

__all__ = ["BgpSpeaker", "BgpSessionError"]


class BgpSessionError(ReproError):
    """Session setup or protocol failure."""


class _Peer:
    """One established session, serviced by a reader thread."""

    def __init__(self, speaker: "BgpSpeaker", connection: socket.socket,
                 peer_asn: int) -> None:
        self.speaker = speaker
        self.connection = connection
        self.peer_asn = peer_asn
        self.established = threading.Event()
        self._buffer = b""

    def send(self, message: BgpMessage) -> None:
        self.connection.sendall(encode_message(message))

    def reader_loop(self) -> None:
        try:
            while True:
                try:
                    chunk = self.connection.recv(65536)
                except OSError:
                    break
                if not chunk:
                    break
                self._buffer += chunk
                if not self._drain():
                    break
        finally:
            self.speaker._drop_peer(self)

    def _drain(self) -> bool:
        from .message import BgpHeader

        while len(self._buffer) >= HEADER_LENGTH:
            try:
                header = BgpHeader.decode(self._buffer)
            except BgpMessageError as exc:
                self._notify_and_die(exc)
                return False
            if len(self._buffer) < header.length:
                return True  # framing incomplete: wait for more bytes
            try:
                message, consumed = decode_message(self._buffer)
            except BgpMessageError as exc:
                self._notify_and_die(exc)
                return False
            self._buffer = self._buffer[consumed:]
            if not self.speaker._handle_message(self, message):
                return False
        return True

    def _notify_and_die(self, exc: BgpMessageError) -> None:
        try:
            self.send(NotificationMessage(1, 0, str(exc).encode()[:64]))
        except OSError:
            pass


class BgpSpeaker:
    """A BGP-4 speaker bound to a localhost port.

    Args:
        asn: our AS number.
        bgp_identifier: 32-bit router ID.
        vrp_index: when given, incoming routes that validate INVALID
            are rejected (not installed in any RIB) — RFC 6811 §5
            "drop invalid" policy.

    Typical use::

        left = BgpSpeaker(111).start()
        right = BgpSpeaker(3356).start()
        right.connect_to("127.0.0.1", left.port, expected_asn=111)
        left.wait_for_peer(3356)
        left.announce(Announcement(Prefix.parse("168.122.0.0/16"), (111,)))
        right.wait_for_route(Prefix.parse("168.122.0.0/16"))
    """

    def __init__(
        self,
        asn: int,
        *,
        bgp_identifier: Optional[int] = None,
        vrp_index: Optional[VrpIndex] = None,
        hold_time: int = 90,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.asn = asn
        self.bgp_identifier = (
            bgp_identifier if bgp_identifier is not None else 0x0A000000 + asn % 2**24
        )
        self.hold_time = hold_time
        self.loc_rib = Rib()
        self.adj_rib_in = AdjRibIn()
        self._vrp_index = vrp_index
        self._rejected: list[Announcement] = []
        self._own_routes: dict[Prefix, Announcement] = {}
        self._peers: dict[int, _Peer] = {}
        self._lock = threading.RLock()
        self._closed = threading.Event()
        self._route_event = threading.Condition(self._lock)
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()[:2]
        self._accept_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "BgpSpeaker":
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"bgp-{self.asn}-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def close(self) -> None:
        self._closed.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            for peer in list(self._peers.values()):
                try:
                    peer.connection.close()
                except OSError:
                    pass
            self._peers.clear()

    def __enter__(self) -> "BgpSpeaker":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Session establishment
    # ------------------------------------------------------------------

    def connect_to(self, host: str, port: int, *, expected_asn: Optional[int] = None,
                   timeout: float = 5.0) -> int:
        """Open a session to a remote speaker; returns the peer ASN."""
        connection = socket.create_connection((host, port), timeout=timeout)
        connection.sendall(encode_message(self._open_message()))
        peer_open = self._read_one_open(connection, timeout)
        if expected_asn is not None and peer_open.asn != expected_asn:
            connection.close()
            raise BgpSessionError(
                f"expected AS{expected_asn}, peer claims AS{peer_open.asn}"
            )
        connection.sendall(encode_message(KeepaliveMessage()))
        self._install_peer(connection, peer_open.asn)
        return peer_open.asn

    def _open_message(self) -> OpenMessage:
        return OpenMessage(
            asn=self.asn,
            hold_time=self.hold_time,
            bgp_identifier=self.bgp_identifier,
        )

    @staticmethod
    def _read_one_open(connection: socket.socket, timeout: float) -> OpenMessage:
        connection.settimeout(timeout)
        buffer = b""
        while True:
            try:
                message, consumed = decode_message(buffer)
            except BgpMessageError:
                chunk = connection.recv(65536)
                if not chunk:
                    raise BgpSessionError("peer closed during OPEN") from None
                buffer += chunk
                continue
            if isinstance(message, OpenMessage):
                return message
            if isinstance(message, KeepaliveMessage):
                buffer = buffer[consumed:]
                continue
            raise BgpSessionError(f"expected OPEN, got {message}")

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                connection, _address = self._listener.accept()
            except OSError:
                return
            try:
                peer_open = self._read_one_open(connection, 5.0)
                connection.sendall(encode_message(self._open_message()))
                connection.sendall(encode_message(KeepaliveMessage()))
            except (BgpSessionError, OSError):
                connection.close()
                continue
            self._install_peer(connection, peer_open.asn)

    def _install_peer(self, connection: socket.socket, peer_asn: int) -> None:
        peer = _Peer(self, connection, peer_asn)
        with self._lock:
            self._peers[peer_asn] = peer
            # Existing routes are advertised to the new peer.
            for announcement in self._own_routes.values():
                peer.send(announcement_to_update(
                    announcement.prepended_by(self.asn)
                    if announcement.as_path[0] != self.asn
                    else announcement
                ))
        threading.Thread(
            target=peer.reader_loop,
            name=f"bgp-{self.asn}-peer-{peer_asn}",
            daemon=True,
        ).start()
        peer.established.set()
        with self._route_event:
            self._route_event.notify_all()

    def _drop_peer(self, peer: _Peer) -> None:
        with self._lock:
            if self._peers.get(peer.peer_asn) is peer:
                del self._peers[peer.peer_asn]
        try:
            peer.connection.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Routing operations
    # ------------------------------------------------------------------

    def set_vrp_index(self, index: Optional[VrpIndex]) -> None:
        """Install (or clear) the validated prefix table."""
        with self._lock:
            self._vrp_index = index

    def announce(self, announcement: Announcement) -> None:
        """Originate (or re-advertise) a route to every peer."""
        with self._lock:
            self._own_routes[announcement.prefix] = announcement
            self.loc_rib.install(announcement)
            for peer in self._peers.values():
                try:
                    peer.send(announcement_to_update(announcement))
                except OSError:
                    pass

    def withdraw(self, prefix: Prefix) -> None:
        """Withdraw one of our routes from every peer."""
        with self._lock:
            self._own_routes.pop(prefix, None)
            self.loc_rib.withdraw(prefix)
            update = UpdateMessage(withdrawn=(prefix,))
            for peer in self._peers.values():
                try:
                    peer.send(update)
                except OSError:
                    pass

    @property
    def rejected_routes(self) -> list[Announcement]:
        """Routes refused by origin validation (for inspection)."""
        with self._lock:
            return list(self._rejected)

    def peers(self) -> list[int]:
        with self._lock:
            return sorted(self._peers)

    # ------------------------------------------------------------------
    # Waiting helpers (tests and examples)
    # ------------------------------------------------------------------

    def wait_for_peer(self, peer_asn: int, timeout: float = 5.0) -> None:
        with self._route_event:
            if not self._route_event.wait_for(
                lambda: peer_asn in self._peers, timeout=timeout
            ):
                raise BgpSessionError(f"no session with AS{peer_asn}")

    def wait_for_route(self, prefix: Prefix, timeout: float = 5.0) -> Announcement:
        with self._route_event:
            if not self._route_event.wait_for(
                lambda: self.loc_rib.route_for_prefix(prefix) is not None,
                timeout=timeout,
            ):
                raise BgpSessionError(f"no route to {prefix} arrived")
            route = self.loc_rib.route_for_prefix(prefix)
            assert route is not None
            return route

    def wait_for_withdrawal(self, prefix: Prefix, timeout: float = 5.0) -> None:
        with self._route_event:
            if not self._route_event.wait_for(
                lambda: self.loc_rib.route_for_prefix(prefix) is None,
                timeout=timeout,
            ):
                raise BgpSessionError(f"route to {prefix} not withdrawn")

    def wait_for_rejection(self, prefix: Prefix, timeout: float = 5.0) -> Announcement:
        with self._route_event:
            if not self._route_event.wait_for(
                lambda: any(a.prefix == prefix for a in self._rejected),
                timeout=timeout,
            ):
                raise BgpSessionError(f"no rejected route for {prefix}")
            return next(a for a in self._rejected if a.prefix == prefix)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------

    def _handle_message(self, peer: _Peer, message: BgpMessage) -> bool:
        """Returns False to terminate the session."""
        if isinstance(message, KeepaliveMessage):
            return True
        if isinstance(message, NotificationMessage):
            return False
        if isinstance(message, OpenMessage):
            try:
                peer.send(NotificationMessage(6, 0, b"unexpected OPEN"))
            except OSError:
                pass
            return False
        if isinstance(message, UpdateMessage):
            self._handle_update(peer, message)
            return True
        return True

    def _handle_update(self, peer: _Peer, update: UpdateMessage) -> None:
        with self._lock:
            for prefix in update.withdrawn:
                self.adj_rib_in.forget(peer.peer_asn, prefix)
                installed = self.loc_rib.route_for_prefix(prefix)
                if installed is not None and prefix not in self._own_routes:
                    self.loc_rib.withdraw(prefix)
            for announcement in update_to_announcements(update):
                if self.asn in announcement.as_path:
                    continue  # loop prevention
                if self._vrp_index is not None:
                    state = self._vrp_index.validate(
                        announcement.prefix, announcement.origin
                    )
                    if state is ValidationState.INVALID:
                        self._rejected.append(announcement)
                        continue
                self.adj_rib_in.learn(peer.peer_asn, announcement)
                if announcement.prefix not in self._own_routes:
                    self.loc_rib.install(announcement)
            self._route_event.notify_all()
