"""CAIDA-scale route propagation: Gao–Rexford as flat-array sweeps.

:func:`repro.bgp.simulation.propagate_prefix` is a faithful but
object-heavy bucketed BFS: every neighbor view builds a frozenset,
every offer builds a path tuple and scans it for loops, and — when
origin validation is on — every offer walks the VRP radix tree.  None
of that is necessary.  This module runs the same three propagation
phases over an :class:`~repro.bgp.topology.CompiledTopology`:

* adjacency is CSR-style flat integer arrays, iterated row by row;
* per-AS route state is five parallel arrays (adopted flag, seed slot,
  parent index, path length, route class) — paths are parent chains,
  materialized only on demand;
* origin validation collapses to one RFC 6811 verdict per *seed*
  (every propagated copy of an announcement claims the same origin)
  combined with a per-AS validation bitmask, so the per-offer check is
  two byte loads instead of a radix walk.

**Bit-for-bit contract.**  Given the same topology, seeds, and RNG,
the array engine produces exactly the routes and consumes exactly the
random stream of the object engine.  This works because:

1. AS indices are assigned in ascending ASN order, so sorting offers
   by source index equals the object engine's sort by advertising
   neighbor — and neighbors are distinct per candidate list, so the
   rest of the object engine's ``(neighbor, path, seed)`` sort key is
   never consulted.
2. Adoption proceeds per path-length bucket in ascending target order,
   the same schedule the object engine follows, so tie-break draws
   happen in the same sequence.
3. ``rng.choice`` consumes randomness as a function of candidate count
   only, which both engines present identically.

The test suite pins this contract; keep it when touching either
engine.

**Trial throughput.**  Monte-Carlo grids evaluate thousands of
propagations on one topology, so the per-propagation constants matter
as much as the sweep itself.  A :class:`PropagationWorkspace` keeps
the per-AS state arrays alive across propagations (reset in O(touched
ASes), not O(n)), caches the per-trial validation bitmask, and — the
big one — caches *single-seed propagation profiles*: with one seed
there is no inter-seed competition, so the adoption structure and the
sequence of tie-break candidate counts are a deterministic function of
(seed, blocked set) alone, independent of what the RNG actually
returns.  A repeated single-seed propagation (the victim's covering
route evaluated for every grid cell, or an attack announcement whose
RFC 6811 verdict repeats across cells) therefore replays the recorded
candidate counts through the RNG — consuming the identical random
stream — without re-running the sweep.  Multi-seed propagations are
never cached: there the chosen winner decides which seed's blocked
set gates later offers, so the structure is draw-dependent.
"""

from __future__ import annotations

import contextlib
import random
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

from ..netbase import Prefix
from ..netbase.errors import ReproError
from ..obs.metrics import MetricsRegistry, get_registry
from .origin_validation import ValidationState, VrpIndex
from .simulation import Route, RouteClass, Seed, SimulationError
from .topology import AsTopology, CompiledTopology

__all__ = [
    "AttackCase",
    "PropagationWorkspace",
    "evaluate_attack_seeds_array",
    "evaluate_attack_seeds_array_batch",
    "propagate_prefix_array",
]

_ORIGIN = int(RouteClass.ORIGIN)
_CUSTOMER = int(RouteClass.CUSTOMER)
_PEER = int(RouteClass.PEER)
_PROVIDER = int(RouteClass.PROVIDER)

#: Single-seed profiles kept per workspace before the cache recycles
#: (bounds worker memory on CAIDA-scale graphs; within one trial a
#: grid needs at most one profile per cell).
_PROFILE_CAP = 32


def _fast_randbelow_ok() -> bool:
    """Can we inline ``Random.choice``'s rejection sampling?

    The hot loop draws one tie-break per adoption; going through
    ``rng.choice`` costs two extra Python frames each time.  When the
    platform's ``Random._randbelow`` is the documented
    getrandbits-rejection loop we consume the identical bit stream
    inline; this probe verifies that equivalence once at import and
    the engine falls back to ``rng.choice`` if it ever fails.
    """
    reference, inlined = random.Random(7), random.Random(7)
    for size in (1, 2, 3, 5, 17):
        expected = reference.choice(range(size))
        getrandbits = inlined.getrandbits
        bits = size.bit_length()
        draw = getrandbits(bits)
        while draw >= size:
            draw = getrandbits(bits)
        if draw != expected or reference.getstate() != inlined.getstate():
            return False
    return True


_FAST_RANDBELOW = _fast_randbelow_ok()


def _choose(srcs: list[int], rng: Optional[random.Random]) -> int:
    """Tie-break exactly as the object engine's sorted ``rng.choice``."""
    if rng is None:
        return min(srcs)
    srcs.sort()
    return rng.choice(srcs)


class _Lane:
    """One reusable set of per-AS propagation arrays.

    ``touched`` lists every index adopted by the last propagation, in
    adoption order; :meth:`reset` restores the clean-lane invariant in
    O(touched): ``adopted`` all zero and ``offer_srcs`` all ``None``.
    The other arrays may hold stale values — they are only ever read
    behind an ``adopted``/offer guard that guarantees a fresh write
    happened first.
    """

    __slots__ = (
        "n", "adopted", "slot", "parent", "plen", "klass",
        "offer_srcs", "offer_len", "touched",
    )

    def __init__(self, n: int) -> None:
        self.n = n
        self.adopted = bytearray(n)
        self.slot = [0] * n
        self.parent = [-1] * n
        self.plen = [0] * n
        self.klass = bytearray(n)
        self.offer_srcs: list[Optional[list[int]]] = [None] * n
        self.offer_len = [0] * n
        self.touched: list[int] = []

    def reset(self) -> None:
        adopted = self.adopted
        offer_srcs = self.offer_srcs
        for i in self.touched:
            adopted[i] = 0
            offer_srcs[i] = None
        self.touched.clear()

    def hard_reset(self) -> None:
        """Full reinitialization — for exception paths, where the
        O(touched) bookkeeping cannot be trusted."""
        self.__init__(self.n)


class _State:
    """Raw propagation outcome: the lane's five parallel per-AS-index
    arrays plus per-seed adoption counts (maintained during the
    sweeps, so capture fractions never need an O(n) scan)."""

    __slots__ = ("seed_list", "adopted", "slot", "parent", "plen", "klass",
                 "counts")

    def __init__(self, seed_list: list[Seed], lane: _Lane,
                 counts: list[int]) -> None:
        self.seed_list = seed_list
        self.adopted = lane.adopted
        self.slot = lane.slot
        self.parent = lane.parent
        self.plen = lane.plen
        self.klass = lane.klass
        self.counts = counts


@dataclass(frozen=True)
class _Profile:
    """Cached outcome of one single-seed propagation.

    ``counts_seq`` is the tie-break candidate count of every adoption,
    in draw order — the complete description of the propagation's RNG
    consumption, replayed by :func:`_replay_draws`.  Stored as
    ``bytes`` when every count fits (the overwhelmingly common case;
    candidate counts are bounded by node degree), which keeps a
    CAIDA-scale profile at one byte per adoption.
    """

    adopted: bytes
    total: int
    counts_seq: Union[bytes, tuple[int, ...]]

    @staticmethod
    def pack_counts(counts: Sequence[int]) -> Union[bytes, tuple[int, ...]]:
        if all(count < 256 for count in counts):
            return bytes(counts)
        return tuple(counts)


def _replay_draws(
    counts_seq: Sequence[int], rng: Optional[random.Random]
) -> None:
    """Consume exactly the random stream of a recorded propagation."""
    if rng is None:
        return
    if _FAST_RANDBELOW and type(rng) is random.Random:
        getrandbits = rng.getrandbits
        for count in counts_seq:
            if count == 1:
                while getrandbits(1):
                    pass
            else:
                bits = count.bit_length()
                draw = getrandbits(bits)
                while draw >= count:
                    draw = getrandbits(bits)
    else:
        choice = rng.choice
        for count in counts_seq:
            choice(range(count))


def _compiled_of(
    topology: Union[AsTopology, CompiledTopology]
) -> CompiledTopology:
    if isinstance(topology, AsTopology):
        return topology.compiled()
    return topology


class _WorkspaceMetrics:
    """The ``fastprop.*`` instruments one workspace records into.

    Counters only — the kernel never reads a clock — so telemetry here
    can never perturb timing-sensitive callers, let alone the RNG.
    """

    __slots__ = (
        "enabled", "sweeps", "touched_ases", "lane_resets",
        "profile_hits", "profile_misses", "mask_builds", "epochs",
    )

    def __init__(self, registry: MetricsRegistry) -> None:
        view = registry.view("fastprop")
        self.enabled = registry.enabled
        self.sweeps = view.counter("sweeps")
        self.touched_ases = view.counter("touched_ases")
        self.lane_resets = view.counter("lane_resets")
        self.profile_hits = view.counter("profile_hits")
        self.profile_misses = view.counter("profile_misses")
        self.mask_builds = view.counter("mask_builds")
        self.epochs = view.counter("epochs")


class PropagationWorkspace:
    """Reusable per-worker state for array-engine trial evaluation.

    Allocate one per (worker, topology) and pass it to
    :func:`evaluate_attack_seeds_array` /
    :func:`evaluate_attack_seeds_array_batch`: the per-AS state arrays
    are allocated once and reset in O(touched) between propagations,
    the validation bitmask is computed once per validator set instead
    of once per propagation, and single-seed propagations repeated
    under the same validator set are served from the profile cache
    (see the module docstring).  Results are byte-identical to the
    workspace-free path — including RNG consumption — which the test
    suite pins.

    The workspace counts its own behavior (sweeps run, ASes touched,
    profile cache hits/misses, mask builds) into ``registry`` under the
    ``fastprop.`` namespace; by default the process registry at
    construction time, so worker processes each record into their own.

    Not thread-safe; share nothing across threads or processes.
    """

    def __init__(
        self,
        topology: Union[AsTopology, CompiledTopology],
        *,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.compiled = _compiled_of(topology)
        self.metrics = _WorkspaceMetrics(
            registry if registry is not None else get_registry()
        )
        self._lanes: list[_Lane] = []
        self._profiles: dict[tuple, _Profile] = {}
        self._validators_token: object = self  # sentinel: no epoch yet
        self._mask: Optional[bytearray] = None
        self._universal_mask: Optional[bytearray] = None

    def lane(self, index: int = 0) -> _Lane:
        while len(self._lanes) <= index:
            self._lanes.append(_Lane(len(self.compiled)))
        return self._lanes[index]

    def begin(self, validating_ases: Optional[frozenset[int]]) -> None:
        """Open a validator epoch (one per trial, shared by its cells).

        Epochs are tracked by object identity — a trial passes the
        same ``validating_ases`` object to every cell — so the check
        is O(1).  A new epoch drops the cached mask and the profile
        cache, whose invalid-seed entries depend on the mask.
        """
        if validating_ases is not self._validators_token:
            self._validators_token = validating_ases
            self._mask = None
            self._profiles.clear()
            self.metrics.epochs.inc()

    def mask(self) -> bytearray:
        """The current epoch's validation bitmask, computed lazily."""
        if self._validators_token is self:
            raise ReproError("workspace epoch not opened; call begin()")
        if self._mask is None:
            validators = self._validators_token
            if validators is None:
                if self._universal_mask is None:
                    self._universal_mask = bytearray(
                        b"\x01" * len(self.compiled)
                    )
                self._mask = self._universal_mask
            else:
                self._mask = self.compiled.validation_mask(validators)
                self.metrics.mask_builds.inc()
        return self._mask

    def profile(self, key: tuple) -> Optional[_Profile]:
        profile = self._profiles.get(key)
        if profile is not None:
            # Refresh recency (dict order is insertion order), so the
            # cap evicts the least recently used profile — never a hot
            # one like the trial's victim-cover profile.
            del self._profiles[key]
            self._profiles[key] = profile
            self.metrics.profile_hits.inc()
        else:
            self.metrics.profile_misses.inc()
        return profile

    def store_profile(self, key: tuple, profile: _Profile) -> None:
        profiles = self._profiles
        if len(profiles) >= _PROFILE_CAP:
            del profiles[next(iter(profiles))]
        profiles[key] = profile


def _propagate(
    compiled: CompiledTopology,
    prefix: Prefix,
    seed_list: list[Seed],
    vrp_index: Optional[VrpIndex],
    validating_ases: Optional[frozenset[int]],
    rng: Optional[random.Random],
    *,
    lane: Optional[_Lane] = None,
    mask: Optional[bytearray] = None,
    invalid: Optional[list[bool]] = None,
    capture: Optional[list[int]] = None,
) -> tuple[_State, _Lane]:
    """The three Gao–Rexford phases as array sweeps.

    ``lane`` supplies reusable arrays (fresh ones are allocated when
    absent); it must satisfy the clean-lane invariant on entry and is
    returned dirty — the caller resets it.  ``mask``/``invalid`` let a
    workspace pass precomputed validation state; ``capture`` records
    the tie-break candidate count of every adoption, in draw order,
    for single-seed profile replay.
    """
    n = len(compiled)
    index_of = compiled.index_of

    seen: set[int] = set()
    for seed in seed_list:
        if seed.asn not in index_of:
            raise SimulationError(f"seed AS{seed.asn} not in topology")
        if seed.asn in seen:
            raise SimulationError(f"duplicate seed for AS{seed.asn}")
        seen.add(seed.asn)

    # One validation verdict per seed: every propagated copy claims the
    # seed's origin, so the object engine's per-offer radix walk is a
    # constant here.
    if invalid is None:
        invalid = [False] * len(seed_list)
        if vrp_index is not None:
            for k, seed in enumerate(seed_list):
                invalid[k] = (
                    vrp_index.validate(prefix, seed.path[-1])
                    is ValidationState.INVALID
                )
    if vrp_index is not None and mask is None and any(invalid):
        mask = compiled.validation_mask(validating_ases)
    validation_on = vrp_index is not None

    # Per-seed offer block mask: never offer a route to an AS on its
    # seed's initial path (loop prevention — every later hop is an
    # adopter and already excluded by the adopted flag), nor — for an
    # invalid seed — to a validating AS.
    blocked: list[bytearray] = []
    for k, seed in enumerate(seed_list):
        blk = bytearray(mask) if (validation_on and invalid[k]) else (
            bytearray(n)
        )
        for asn in seed.path:
            i = index_of.get(asn)
            if i is not None:
                blk[i] = 1
        blocked.append(blk)

    if lane is None:
        lane = _Lane(n)
    adopted = lane.adopted
    slot = lane.slot
    parent = lane.parent
    plen = lane.plen
    klass = lane.klass
    offer_srcs = lane.offer_srcs
    offer_len = lane.offer_len
    touched = lane.touched
    counts = [0] * len(seed_list)

    # Inline the tie-break draw when the RNG is a plain Random (the
    # verified-identical fast path); anything exotic goes through
    # rng.choice so custom Random subclasses keep exact semantics.
    getrandbits = (
        rng.getrandbits
        if rng is not None and _FAST_RANDBELOW and type(rng) is random.Random
        else None
    )

    origins: list[int] = []
    for k, seed in enumerate(seed_list):
        i = index_of[seed.asn]
        if validation_on and invalid[k] and mask[i]:
            continue
        adopted[i] = 1
        slot[i] = k
        plen[i] = len(seed.path)
        klass[i] = _ORIGIN
        counts[k] += 1
        origins.append(i)
        touched.append(i)

    def sweep(
        exporters: list[int],
        rows: tuple[tuple[int, ...], ...],
        route_class: int,
    ) -> None:
        """Adopt along ``rows`` edges in path-length order, chaining.

        Offers are kept in per-target source lists indexed by the lane
        arrays (``offer_srcs``/``offer_len``) instead of per-length
        dicts; each bucket is just the list of targets first offered
        at that length.  An offer strictly longer than one the target
        already holds is discarded immediately — in the object engine
        it would sit in a later bucket and lose to the earlier
        adoption anyway, without consuming randomness — so the live
        candidate lists are exactly the object engine's.
        """
        buckets: dict[int, list[int]] = {}
        for i in exporters:
            row = rows[i]
            if not row:
                continue
            length = plen[i] if klass[i] == _ORIGIN else plen[i] + 1
            blk = blocked[slot[i]]
            bucket = buckets.get(length)
            if bucket is None:
                bucket = buckets[length] = []
            for t in row:
                if adopted[t] or blk[t]:
                    continue
                srcs = offer_srcs[t]
                if srcs is None:
                    offer_srcs[t] = [i]
                    offer_len[t] = length
                    bucket.append(t)
                elif offer_len[t] == length:
                    srcs.append(i)
                elif length < offer_len[t]:
                    offer_srcs[t] = [i]
                    offer_len[t] = length
                    bucket.append(t)
        while buckets:
            length = min(buckets)
            batch = buckets.pop(length)
            next_length = length + 1
            next_bucket = buckets.get(next_length)
            batch.sort()
            for t in batch:
                if adopted[t]:
                    continue
                srcs = offer_srcs[t]
                count = len(srcs)
                if capture is not None:
                    capture.append(count)
                if count == 1:
                    chosen = srcs[0]
                    if getrandbits is not None:
                        while getrandbits(1):
                            pass
                    elif rng is not None:
                        rng.choice(srcs)
                elif getrandbits is not None:
                    srcs.sort()
                    bits = count.bit_length()
                    draw = getrandbits(bits)
                    while draw >= count:
                        draw = getrandbits(bits)
                    chosen = srcs[draw]
                else:
                    chosen = _choose(srcs, rng)
                adopted[t] = 1
                k = slot[chosen]
                slot[t] = k
                parent[t] = chosen
                plen[t] = length
                klass[t] = route_class
                counts[k] += 1
                touched.append(t)
                row = rows[t]
                if row:
                    blk = blocked[k]
                    if next_bucket is None:
                        next_bucket = buckets[next_length] = []
                    for u in row:
                        if adopted[u] or blk[u]:
                            continue
                        srcs = offer_srcs[u]
                        if srcs is None:
                            offer_srcs[u] = [t]
                            offer_len[u] = next_length
                            next_bucket.append(u)
                        elif offer_len[u] == next_length:
                            srcs.append(t)
                        elif next_length < offer_len[u]:
                            offer_srcs[u] = [t]
                            offer_len[u] = next_length
                            next_bucket.append(u)

    # Phase 1 — customer routes climb provider edges.
    sweep(origins, compiled.provider_rows, _CUSTOMER)

    # Phase 2 — customer/origin routes cross one peering edge; no
    # chaining, so collect every offer first, then settle each AS by
    # shortest-then-tie-break in ascending target order.  Exporters
    # come from the touched list (everything adopted so far is ORIGIN
    # or CUSTOMER here) instead of an O(n) scan; offer order cannot
    # matter because the minimum-length candidates are sorted before
    # drawing.
    peer_rows = compiled.peer_rows
    peer_targets: list[int] = []
    for i in list(touched):
        k = klass[i]
        if k != _ORIGIN and k != _CUSTOMER:
            continue
        row = peer_rows[i]
        if not row:
            continue
        length = plen[i] if k == _ORIGIN else plen[i] + 1
        blk = blocked[slot[i]]
        for t in row:
            if adopted[t] or blk[t]:
                continue
            srcs = offer_srcs[t]
            if srcs is None:
                offer_srcs[t] = [i]
                offer_len[t] = length
                peer_targets.append(t)
            elif offer_len[t] == length:
                srcs.append(i)
            elif length < offer_len[t]:
                offer_srcs[t] = [i]
                offer_len[t] = length
    peer_targets.sort()
    for t in peer_targets:
        srcs = offer_srcs[t]
        if capture is not None:
            capture.append(len(srcs))
        chosen = _choose(srcs, rng)
        adopted[t] = 1
        k = slot[chosen]
        slot[t] = k
        parent[t] = chosen
        plen[t] = offer_len[t]
        klass[t] = _PEER
        counts[k] += 1
        touched.append(t)

    # Phase 3 — every adopted route descends customer edges.  The
    # touched list *is* the adopted set (in adoption order; exporter
    # order is immaterial for the same sorted-candidates reason).
    sweep(list(touched), compiled.customer_rows, _PROVIDER)

    return _State(seed_list, lane, counts), lane


def _materialize(compiled: CompiledTopology, state: _State) -> dict[int, Route]:
    """Expand parent chains into the object engine's Route mapping."""
    asns = compiled.asns
    seed_list = state.seed_list
    adopted, slot = state.adopted, state.slot
    parent, klass = state.parent, state.klass
    paths: dict[int, tuple[int, ...]] = {}

    def path_of(i: int) -> tuple[int, ...]:
        chain: list[int] = []
        j = i
        while True:
            path = paths.get(j)
            if path is not None:
                break
            up = parent[j]
            if up < 0:
                path = seed_list[slot[j]].path
                break
            chain.append(j)
            j = up
        paths[j] = path
        while chain:
            child = chain.pop()
            # The route stored at ``child`` is its parent's offered
            # path: the parent's own path, parent-prepended unless the
            # parent originated the announcement.
            if klass[j] != _ORIGIN:
                path = (asns[j],) + path
            paths[child] = path
            j = child
        return path

    routes: dict[int, Route] = {}
    for i in range(len(asns)):
        if adopted[i]:
            routes[asns[i]] = Route(
                path_of(i), RouteClass(klass[i]), seed_list[slot[i]].asn
            )
    return routes


def propagate_prefix_array(
    topology: Union[AsTopology, CompiledTopology],
    prefix: Prefix,
    seeds: Iterable[Seed],
    *,
    vrp_index: Optional[VrpIndex] = None,
    validating_ases: Optional[frozenset[int]] = None,
    rng: Optional[random.Random] = None,
) -> dict[int, Route]:
    """Drop-in array-engine replacement for
    :func:`repro.bgp.simulation.propagate_prefix`.

    Accepts either an :class:`AsTopology` (compiled and cached on first
    use) or a pre-built :class:`CompiledTopology`; returns the same
    ASN→:class:`Route` mapping, bit-for-bit, including the seeded
    tie-break stream.

    This entry point always runs the full sweep: materialized routes
    need parent chains, which are tie-break-dependent, so the
    workspace profile cache cannot serve them.
    """
    compiled = _compiled_of(topology)
    state, _lane = _propagate(
        compiled, prefix, list(seeds), vrp_index, validating_ases, rng
    )
    return _materialize(compiled, state)


# ----------------------------------------------------------------------
# Attack evaluation
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AttackCase:
    """One attack measurement for the batched array entry point.

    Mirrors the arguments of :func:`evaluate_attack_seeds_array`; a
    grid trial builds one case per cell and submits them together so
    the workspace amortizes seed/validation setup across the batch.
    """

    victim: int
    victim_prefix: Prefix
    attack_prefix: Prefix
    attacker_seeds: tuple[Seed, ...]
    vrp_index: Optional[VrpIndex] = None
    validating_ases: Optional[frozenset[int]] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "attacker_seeds", tuple(self.attacker_seeds)
        )


@contextlib.contextmanager
def _lane_propagation(
    compiled: CompiledTopology,
    prefix: Prefix,
    seed_list: list[Seed],
    vrp_index: Optional[VrpIndex],
    validating_ases: Optional[frozenset[int]],
    rng: Optional[random.Random],
    workspace: Optional[PropagationWorkspace],
    *,
    mask: Optional[bytearray] = None,
    invalid: Optional[list[bool]] = None,
    capture: Optional[list[int]] = None,
):
    """The lane lifecycle protocol, shared by every sweep call site:
    acquire a workspace lane (or a fresh one), propagate, yield the
    raw state for the caller to read, then restore the clean-lane
    invariant — O(touched) on success, a full reinitialization when
    the sweep died partway and the bookkeeping cannot be trusted."""
    lane = workspace.lane(0) if workspace is not None else None
    try:
        state, used_lane = _propagate(
            compiled, prefix, seed_list, vrp_index, validating_ases,
            rng, lane=lane, mask=mask, invalid=invalid, capture=capture,
        )
    except BaseException:
        if lane is not None:
            lane.hard_reset()
        raise
    try:
        yield state
    finally:
        if workspace is not None and workspace.metrics.enabled:
            # Read the touched count BEFORE reset clears the list.
            metrics = workspace.metrics
            metrics.sweeps.inc()
            metrics.touched_ases.inc(len(used_lane.touched))
            metrics.lane_resets.inc()
        used_lane.reset()


def _single_seed_outcome(
    compiled: CompiledTopology,
    prefix: Prefix,
    seed: Seed,
    vrp_index: Optional[VrpIndex],
    validating_ases: Optional[frozenset[int]],
    rng: Optional[random.Random],
    workspace: Optional[PropagationWorkspace],
) -> tuple[Union[bytes, bytearray], int]:
    """(adopted flags, total adoptions) of a single-seed propagation.

    With a workspace, served from the profile cache when this (seed,
    verdict) was already propagated under the current validator epoch
    — replaying the recorded candidate counts so the RNG advances
    exactly as a real sweep would.  Cache misses run the sweep on a
    workspace lane, record the profile, and release the lane.
    """
    if workspace is None:
        state, _lane = _propagate(
            compiled, prefix, [seed], vrp_index, validating_ases, rng
        )
        return state.adopted, state.counts[0]

    invalid = vrp_index is not None and (
        vrp_index.validate(prefix, seed.path[-1]) is ValidationState.INVALID
    )
    key = (seed.asn, seed.path, invalid)
    profile = workspace.profile(key)
    if profile is not None:
        _replay_draws(profile.counts_seq, rng)
        return profile.adopted, profile.total

    mask = workspace.mask() if invalid else None
    capture: list[int] = []
    with _lane_propagation(
        compiled, prefix, [seed], vrp_index, validating_ases, rng,
        workspace, mask=mask, invalid=[invalid], capture=capture,
    ) as state:
        profile = _Profile(
            bytes(state.adopted), state.counts[0],
            _Profile.pack_counts(capture),
        )
    workspace.store_profile(key, profile)
    return profile.adopted, profile.total


def evaluate_attack_seeds_array(
    topology: Union[AsTopology, CompiledTopology],
    victim: int,
    victim_prefix: Prefix,
    attack_prefix: Prefix,
    attacker_seeds: Sequence[Seed],
    *,
    vrp_index: Optional[VrpIndex] = None,
    validating_ases: Optional[frozenset[int]] = None,
    rng: Optional[random.Random] = None,
    workspace: Optional[PropagationWorkspace] = None,
) -> tuple[tuple[float, float, float], bool]:
    """Array-engine core of
    :func:`repro.bgp.attacks.evaluate_attack_seeds`.

    Same measurement, same return value, same RNG consumption — but the
    capture fractions are counted straight off the raw adoption arrays,
    so no path tuple or :class:`Route` is ever materialized.  Pass a
    :class:`PropagationWorkspace` (one per worker) to reuse state
    arrays and propagation profiles across calls; results are
    byte-identical either way.
    """
    if workspace is not None:
        compiled = workspace.compiled
        if compiled is not _compiled_of(topology):
            raise ReproError(
                "workspace was built for a different topology"
            )
        workspace.begin(validating_ases)
    else:
        compiled = _compiled_of(topology)
    n = len(compiled)
    index_of = compiled.index_of

    attackers = frozenset(seed.asn for seed in attacker_seeds)
    cast = [index_of[victim]] if victim in index_of else []
    for asn in sorted(attackers):
        i = index_of.get(asn)
        if i is not None and i not in cast:
            cast.append(i)
    total = n - len(cast)
    if total <= 0:
        raise ReproError("topology too small to judge an attack")

    victim_seed = Seed.origin(victim)
    is_subprefix = attack_prefix != victim_prefix

    if is_subprefix:
        cover_adopted, cover_total = _single_seed_outcome(
            compiled, victim_prefix, victim_seed,
            vrp_index, validating_ases, rng, workspace,
        )
        if len(attacker_seeds) == 1:
            attack_adopted, attack_total = _single_seed_outcome(
                compiled, attack_prefix, attacker_seeds[0],
                vrp_index, validating_ases, rng, workspace,
            )
        else:
            # The cover outcome above is immutable profile bytes, so
            # the multi-attacker sweep can reuse lane 0.
            mask = None
            if workspace is not None and vrp_index is not None:
                mask = workspace.mask()
            with _lane_propagation(
                compiled, attack_prefix, list(attacker_seeds),
                vrp_index, validating_ases, rng, workspace, mask=mask,
            ) as attack_state:
                attack_adopted = bytes(attack_state.adopted)
                attack_total = sum(attack_state.counts)
        filtered = attack_total == 0
        # Longest-prefix match: an attack-prefix route wins wherever
        # one was adopted; the covering route serves the rest.  The
        # adoption flags are 0/1 bytes, so the cover-minus-overlap
        # count is one bigint popcount instead of an O(n) scan.
        attacker_count = attack_total
        victim_count = (
            int.from_bytes(cover_adopted, "big")
            & ~int.from_bytes(attack_adopted, "big")
        ).bit_count()
        for i in cast:
            if attack_adopted[i]:
                attacker_count -= 1
            elif cover_adopted[i]:
                victim_count -= 1
    else:
        mask = None
        if workspace is not None and vrp_index is not None:
            mask = workspace.mask()
        with _lane_propagation(
            compiled, victim_prefix, [victim_seed, *attacker_seeds],
            vrp_index, validating_ases, rng, workspace, mask=mask,
        ) as combined:
            adopted, slot = combined.adopted, combined.slot
            victim_count = combined.counts[0]
            attacker_count = sum(combined.counts) - victim_count
            for i in cast:
                if adopted[i]:
                    if slot[i] == 0:
                        victim_count -= 1
                    else:
                        attacker_count -= 1
        if vrp_index is None:
            filtered = False
        else:
            universal = (
                validating_ases is None
                or compiled.as_set <= validating_ases
            )
            filtered = universal and all(
                vrp_index.validate(attack_prefix, seed.path[-1])
                is ValidationState.INVALID
                for seed in attacker_seeds
            )
    disconnected = total - attacker_count - victim_count
    return (
        (
            attacker_count / total,
            victim_count / total,
            disconnected / total,
        ),
        filtered,
    )


def evaluate_attack_seeds_array_batch(
    topology: Union[AsTopology, CompiledTopology],
    cases: Sequence[AttackCase],
    *,
    rng: Optional[random.Random] = None,
    workspace: Optional[PropagationWorkspace] = None,
) -> list[tuple[tuple[float, float, float], bool]]:
    """Evaluate a batch of attack cases with one shared workspace.

    The batched entry point for grid trials: one call per trial, one
    case per cell, all sharing ``rng`` (the trial's tie-break stream,
    consumed case by case in order — exactly as per-call evaluation
    would).  The workspace amortizes the validation bitmask and the
    single-seed propagation profiles across the batch; a missing
    workspace gets a transient one, which still amortizes within the
    batch.
    """
    if workspace is None:
        workspace = PropagationWorkspace(topology)
    return [
        evaluate_attack_seeds_array(
            topology, case.victim, case.victim_prefix, case.attack_prefix,
            case.attacker_seeds,
            vrp_index=case.vrp_index,
            validating_ases=case.validating_ases,
            rng=rng,
            workspace=workspace,
        )
        for case in cases
    ]
