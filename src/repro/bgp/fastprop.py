"""CAIDA-scale route propagation: Gao–Rexford as flat-array sweeps.

:func:`repro.bgp.simulation.propagate_prefix` is a faithful but
object-heavy bucketed BFS: every neighbor view builds a frozenset,
every offer builds a path tuple and scans it for loops, and — when
origin validation is on — every offer walks the VRP radix tree.  None
of that is necessary.  This module runs the same three propagation
phases over an :class:`~repro.bgp.topology.CompiledTopology`:

* adjacency is CSR-style flat integer arrays, iterated row by row;
* per-AS route state is five parallel arrays (adopted flag, seed slot,
  parent index, path length, route class) — paths are parent chains,
  materialized only on demand;
* origin validation collapses to one RFC 6811 verdict per *seed*
  (every propagated copy of an announcement claims the same origin)
  combined with a per-AS validation bitmask, so the per-offer check is
  two byte loads instead of a radix walk.

**Bit-for-bit contract.**  Given the same topology, seeds, and RNG,
the array engine produces exactly the routes and consumes exactly the
random stream of the object engine.  This works because:

1. AS indices are assigned in ascending ASN order, so sorting offers
   by source index equals the object engine's sort by advertising
   neighbor — and neighbors are distinct per candidate list, so the
   rest of the object engine's ``(neighbor, path, seed)`` sort key is
   never consulted.
2. Adoption proceeds per path-length bucket in ascending target order,
   the same schedule the object engine follows, so tie-break draws
   happen in the same sequence.
3. ``rng.choice`` consumes randomness as a function of candidate count
   only, which both engines present identically.

The test suite pins this contract; keep it when touching either
engine.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Sequence, Union

from ..netbase import Prefix
from ..netbase.errors import ReproError
from .origin_validation import ValidationState, VrpIndex
from .simulation import Route, RouteClass, Seed, SimulationError
from .topology import AsTopology, CompiledTopology

__all__ = ["propagate_prefix_array", "evaluate_attack_seeds_array"]

_ORIGIN = int(RouteClass.ORIGIN)
_CUSTOMER = int(RouteClass.CUSTOMER)
_PEER = int(RouteClass.PEER)
_PROVIDER = int(RouteClass.PROVIDER)


def _fast_randbelow_ok() -> bool:
    """Can we inline ``Random.choice``'s rejection sampling?

    The hot loop draws one tie-break per adoption; going through
    ``rng.choice`` costs two extra Python frames each time.  When the
    platform's ``Random._randbelow`` is the documented
    getrandbits-rejection loop we consume the identical bit stream
    inline; this probe verifies that equivalence once at import and
    the engine falls back to ``rng.choice`` if it ever fails.
    """
    reference, inlined = random.Random(7), random.Random(7)
    for size in (1, 2, 3, 5, 17):
        expected = reference.choice(range(size))
        getrandbits = inlined.getrandbits
        bits = size.bit_length()
        draw = getrandbits(bits)
        while draw >= size:
            draw = getrandbits(bits)
        if draw != expected or reference.getstate() != inlined.getstate():
            return False
    return True


_FAST_RANDBELOW = _fast_randbelow_ok()


def _choose(srcs: list[int], rng: Optional[random.Random]) -> int:
    """Tie-break exactly as the object engine's sorted ``rng.choice``."""
    if rng is None:
        return min(srcs)
    srcs.sort()
    return rng.choice(srcs)


class _State:
    """Raw propagation outcome: five parallel per-AS-index arrays plus
    per-seed adoption counts (maintained during the sweeps, so capture
    fractions never need an O(n) scan)."""

    __slots__ = (
        "seed_list", "adopted", "slot", "parent", "plen", "klass", "counts",
    )

    def __init__(
        self,
        seed_list: list[Seed],
        adopted: bytearray,
        slot: list[int],
        parent: list[int],
        plen: list[int],
        klass: bytearray,
        counts: list[int],
    ) -> None:
        self.seed_list = seed_list
        self.adopted = adopted
        self.slot = slot
        self.parent = parent
        self.plen = plen
        self.klass = klass
        self.counts = counts


def _compiled_of(
    topology: Union[AsTopology, CompiledTopology]
) -> CompiledTopology:
    if isinstance(topology, AsTopology):
        return topology.compiled()
    return topology


def _propagate(
    compiled: CompiledTopology,
    prefix: Prefix,
    seed_list: list[Seed],
    vrp_index: Optional[VrpIndex],
    validating_ases: Optional[frozenset[int]],
    rng: Optional[random.Random],
) -> _State:
    """The three Gao–Rexford phases as array sweeps."""
    n = len(compiled)
    index_of = compiled.index_of

    seen: set[int] = set()
    for seed in seed_list:
        if seed.asn not in index_of:
            raise SimulationError(f"seed AS{seed.asn} not in topology")
        if seed.asn in seen:
            raise SimulationError(f"duplicate seed for AS{seed.asn}")
        seen.add(seed.asn)

    # One validation verdict per seed: every propagated copy claims the
    # seed's origin, so the object engine's per-offer radix walk is a
    # constant here.
    mask = None
    invalid = [False] * len(seed_list)
    if vrp_index is not None:
        mask = compiled.validation_mask(validating_ases)
        for k, seed in enumerate(seed_list):
            invalid[k] = (
                vrp_index.validate(prefix, seed.path[-1])
                is ValidationState.INVALID
            )

    # Per-seed offer block mask: never offer a route to an AS on its
    # seed's initial path (loop prevention — every later hop is an
    # adopter and already excluded by the adopted flag), nor — for an
    # invalid seed — to a validating AS.
    blocked: list[bytearray] = []
    for k, seed in enumerate(seed_list):
        blk = bytearray(mask) if (mask is not None and invalid[k]) else (
            bytearray(n)
        )
        for asn in seed.path:
            i = index_of.get(asn)
            if i is not None:
                blk[i] = 1
        blocked.append(blk)

    adopted = bytearray(n)
    slot = [0] * n
    parent = [-1] * n
    plen = [0] * n
    klass = bytearray(n)
    counts = [0] * len(seed_list)

    # Inline the tie-break draw when the RNG is a plain Random (the
    # verified-identical fast path); anything exotic goes through
    # rng.choice so custom Random subclasses keep exact semantics.
    getrandbits = (
        rng.getrandbits
        if rng is not None and _FAST_RANDBELOW and type(rng) is random.Random
        else None
    )

    origins: list[int] = []
    for k, seed in enumerate(seed_list):
        i = index_of[seed.asn]
        if mask is not None and invalid[k] and mask[i]:
            continue
        adopted[i] = 1
        slot[i] = k
        plen[i] = len(seed.path)
        klass[i] = _ORIGIN
        counts[k] += 1
        origins.append(i)

    def sweep(
        exporters: list[int],
        rows: tuple[tuple[int, ...], ...],
        route_class: int,
    ) -> None:
        """Adopt along ``rows`` edges in path-length order, chaining.

        The offer bodies are inlined (sparse rows make a function call
        per offer the dominant cost), and chained offers all land in
        the single length+1 bucket, hoisted out of the adoption loop.
        """
        buckets: dict[int, dict[int, list[int]]] = {}
        for i in exporters:
            row = rows[i]
            if not row:
                continue
            length = plen[i] if klass[i] == _ORIGIN else plen[i] + 1
            blk = blocked[slot[i]]
            bucket = buckets.get(length)
            if bucket is None:
                bucket = buckets[length] = {}
            for t in row:
                if adopted[t] or blk[t]:
                    continue
                lst = bucket.get(t)
                if lst is None:
                    bucket[t] = [i]
                else:
                    lst.append(i)
        while buckets:
            length = min(buckets)
            batch = buckets.pop(length)
            next_length = length + 1
            next_bucket = buckets.get(next_length)
            for t in sorted(batch):
                if adopted[t]:
                    continue
                srcs = batch[t]
                count = len(srcs)
                if count == 1:
                    chosen = srcs[0]
                    if getrandbits is not None:
                        while getrandbits(1):
                            pass
                    elif rng is not None:
                        rng.choice(srcs)
                elif getrandbits is not None:
                    srcs.sort()
                    bits = count.bit_length()
                    draw = getrandbits(bits)
                    while draw >= count:
                        draw = getrandbits(bits)
                    chosen = srcs[draw]
                else:
                    chosen = _choose(srcs, rng)
                adopted[t] = 1
                k = slot[chosen]
                slot[t] = k
                parent[t] = chosen
                plen[t] = length
                klass[t] = route_class
                counts[k] += 1
                row = rows[t]
                if row:
                    blk = blocked[k]
                    if next_bucket is None:
                        next_bucket = buckets[next_length] = {}
                    for u in row:
                        if adopted[u] or blk[u]:
                            continue
                        lst = next_bucket.get(u)
                        if lst is None:
                            next_bucket[u] = [t]
                        else:
                            lst.append(t)

    # Phase 1 — customer routes climb provider edges.
    sweep(origins, compiled.provider_rows, _CUSTOMER)

    # Phase 2 — customer/origin routes cross one peering edge; no
    # chaining, so collect every offer first, then settle each AS by
    # shortest-then-tie-break in ascending target order.
    peer_rows = compiled.peer_rows
    peer_offers: dict[int, list[tuple[int, int]]] = {}
    for i in range(n):
        if not adopted[i]:
            continue
        k = klass[i]
        if k != _ORIGIN and k != _CUSTOMER:
            continue
        row = peer_rows[i]
        if not row:
            continue
        length = plen[i] if k == _ORIGIN else plen[i] + 1
        blk = blocked[slot[i]]
        for t in row:
            if adopted[t] or blk[t]:
                continue
            lst = peer_offers.get(t)
            if lst is None:
                peer_offers[t] = [(length, i)]
            else:
                lst.append((length, i))
    for t, options in sorted(peer_offers.items()):
        best = min(options)[0]
        srcs = [i for length, i in options if length == best]
        chosen = _choose(srcs, rng)
        adopted[t] = 1
        k = slot[chosen]
        slot[t] = k
        parent[t] = chosen
        plen[t] = best
        klass[t] = _PEER
        counts[k] += 1

    # Phase 3 — every adopted route descends customer edges.
    sweep(
        [i for i in range(n) if adopted[i]],
        compiled.customer_rows,
        _PROVIDER,
    )

    return _State(seed_list, adopted, slot, parent, plen, klass, counts)


def _materialize(compiled: CompiledTopology, state: _State) -> dict[int, Route]:
    """Expand parent chains into the object engine's Route mapping."""
    asns = compiled.asns
    seed_list = state.seed_list
    adopted, slot = state.adopted, state.slot
    parent, klass = state.parent, state.klass
    paths: dict[int, tuple[int, ...]] = {}

    def path_of(i: int) -> tuple[int, ...]:
        chain: list[int] = []
        j = i
        while True:
            path = paths.get(j)
            if path is not None:
                break
            up = parent[j]
            if up < 0:
                path = seed_list[slot[j]].path
                break
            chain.append(j)
            j = up
        paths[j] = path
        while chain:
            child = chain.pop()
            # The route stored at ``child`` is its parent's offered
            # path: the parent's own path, parent-prepended unless the
            # parent originated the announcement.
            if klass[j] != _ORIGIN:
                path = (asns[j],) + path
            paths[child] = path
            j = child
        return path

    routes: dict[int, Route] = {}
    for i in range(len(asns)):
        if adopted[i]:
            routes[asns[i]] = Route(
                path_of(i), RouteClass(klass[i]), seed_list[slot[i]].asn
            )
    return routes


def propagate_prefix_array(
    topology: Union[AsTopology, CompiledTopology],
    prefix: Prefix,
    seeds: Iterable[Seed],
    *,
    vrp_index: Optional[VrpIndex] = None,
    validating_ases: Optional[frozenset[int]] = None,
    rng: Optional[random.Random] = None,
) -> dict[int, Route]:
    """Drop-in array-engine replacement for
    :func:`repro.bgp.simulation.propagate_prefix`.

    Accepts either an :class:`AsTopology` (compiled and cached on first
    use) or a pre-built :class:`CompiledTopology`; returns the same
    ASN→:class:`Route` mapping, bit-for-bit, including the seeded
    tie-break stream.
    """
    compiled = _compiled_of(topology)
    state = _propagate(
        compiled, prefix, list(seeds), vrp_index, validating_ases, rng
    )
    return _materialize(compiled, state)


def evaluate_attack_seeds_array(
    topology: Union[AsTopology, CompiledTopology],
    victim: int,
    victim_prefix: Prefix,
    attack_prefix: Prefix,
    attacker_seeds: Sequence[Seed],
    *,
    vrp_index: Optional[VrpIndex] = None,
    validating_ases: Optional[frozenset[int]] = None,
    rng: Optional[random.Random] = None,
) -> tuple[tuple[float, float, float], bool]:
    """Array-engine core of
    :func:`repro.bgp.attacks.evaluate_attack_seeds`.

    Same measurement, same return value, same RNG consumption — but the
    capture fractions are counted straight off the raw adoption arrays,
    so no path tuple or :class:`Route` is ever materialized.
    """
    compiled = _compiled_of(topology)
    n = len(compiled)
    index_of = compiled.index_of

    attackers = frozenset(seed.asn for seed in attacker_seeds)
    cast = [index_of[victim]] if victim in index_of else []
    for asn in attackers:
        i = index_of.get(asn)
        if i is not None and i not in cast:
            cast.append(i)
    total = n - len(cast)
    if total <= 0:
        raise ReproError("topology too small to judge an attack")

    victim_seed = Seed.origin(victim)
    is_subprefix = attack_prefix != victim_prefix

    if is_subprefix:
        cover = _propagate(
            compiled, victim_prefix, [victim_seed],
            vrp_index, validating_ases, rng,
        )
        attack = _propagate(
            compiled, attack_prefix, list(attacker_seeds),
            vrp_index, validating_ases, rng,
        )
        attack_adopted = attack.adopted
        cover_adopted = cover.adopted
        attack_total = sum(attack.counts)
        filtered = attack_total == 0
        # Longest-prefix match: an attack-prefix route wins wherever
        # one was adopted; the covering route serves the rest.  The
        # adoption flags are 0/1 bytes, so the cover-minus-overlap
        # count is one bigint popcount instead of an O(n) scan.
        attacker_count = attack_total
        victim_count = (
            int.from_bytes(cover_adopted, "big")
            & ~int.from_bytes(attack_adopted, "big")
        ).bit_count()
        for i in cast:
            if attack_adopted[i]:
                attacker_count -= 1
            elif cover_adopted[i]:
                victim_count -= 1
    else:
        combined = _propagate(
            compiled, victim_prefix, [victim_seed, *attacker_seeds],
            vrp_index, validating_ases, rng,
        )
        adopted, slot = combined.adopted, combined.slot
        victim_count = combined.counts[0]
        attacker_count = sum(combined.counts) - victim_count
        for i in cast:
            if adopted[i]:
                if slot[i] == 0:
                    victim_count -= 1
                else:
                    attacker_count -= 1
        if vrp_index is None:
            filtered = False
        else:
            universal = (
                validating_ases is None
                or compiled.as_set <= validating_ases
            )
            filtered = universal and all(
                vrp_index.validate(attack_prefix, seed.path[-1])
                is ValidationState.INVALID
                for seed in attacker_seeds
            )
    disconnected = total - attacker_count - victim_count
    return (
        (
            attacker_count / total,
            victim_count / total,
            disconnected / total,
        ),
        filtered,
    )
