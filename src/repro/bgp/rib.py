"""Routing information bases: per-router route storage with LPM.

:class:`Rib` stores the selected route per prefix and answers
longest-prefix-match forwarding queries — the mechanism that makes
subprefix hijacks devastating (§2: "routers perform a longest-prefix
match when deciding where to forward IP packets").

:class:`AdjRibIn` keeps every route heard per (prefix, neighbor), the
way a real BGP speaker does before selection.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..netbase import AF_INET, AF_INET6, Prefix, RadixTree
from .announcement import Announcement

__all__ = ["Rib", "AdjRibIn"]


class Rib:
    """A Loc-RIB: at most one selected route per prefix."""

    def __init__(self) -> None:
        self._trees = {
            AF_INET: RadixTree[Announcement](AF_INET),
            AF_INET6: RadixTree[Announcement](AF_INET6),
        }
        self._count = 0

    def install(self, announcement: Announcement) -> None:
        """Select a route (replacing any previous one for the prefix)."""
        tree = self._trees[announcement.prefix.family]
        if tree.get(announcement.prefix) is None:
            self._count += 1
        tree.insert(announcement.prefix, announcement)

    def withdraw(self, prefix: Prefix) -> bool:
        if self._trees[prefix.family].remove(prefix):
            self._count -= 1
            return True
        return False

    def route_for_prefix(self, prefix: Prefix) -> Optional[Announcement]:
        """The exact route for ``prefix``, if selected."""
        return self._trees[prefix.family].get(prefix)

    def forward(self, address: Prefix) -> Optional[Announcement]:
        """Longest-prefix-match: the route packets to ``address`` take.

        ``address`` is a host prefix (/32 or /128) — or any prefix, in
        which case the most specific covering route is returned.
        """
        match = self._trees[address.family].longest_match(address)
        return match[1] if match is not None else None

    def routes(self) -> Iterator[Announcement]:
        for family in (AF_INET, AF_INET6):
            for _prefix, announcement in self._trees[family].items():
                yield announcement

    def origin_pairs(self) -> Iterator[tuple[Prefix, int]]:
        """(prefix, origin) pairs — the measurement view of this RIB."""
        for announcement in self.routes():
            yield announcement.origin_pair()

    def __len__(self) -> int:
        return self._count

    def __contains__(self, prefix: Prefix) -> bool:
        return self.route_for_prefix(prefix) is not None


class AdjRibIn:
    """All routes heard, keyed by (prefix, advertising neighbor)."""

    def __init__(self) -> None:
        self._routes: dict[tuple[Prefix, int], Announcement] = {}

    def learn(self, neighbor: int, announcement: Announcement) -> None:
        self._routes[(announcement.prefix, neighbor)] = announcement

    def forget(self, neighbor: int, prefix: Prefix) -> bool:
        return self._routes.pop((prefix, neighbor), None) is not None

    def candidates(self, prefix: Prefix) -> list[tuple[int, Announcement]]:
        """(neighbor, route) pairs heard for ``prefix``."""
        return [
            (neighbor, announcement)
            for (candidate_prefix, neighbor), announcement
            in sorted(self._routes.items(),
                      key=lambda item: (item[0][0], item[0][1]))
            if candidate_prefix == prefix
        ]

    def prefixes(self) -> set[Prefix]:
        return {prefix for prefix, _neighbor in self._routes}

    def __len__(self) -> int:
        return len(self._routes)
