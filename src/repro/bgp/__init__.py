"""BGP substrate: announcements, RIBs, validation, propagation, attacks."""

from .announcement import Announcement, AnnouncementError
from .message import (
    AsPathSegment,
    BgpHeader,
    BgpMessage,
    BgpMessageError,
    KeepaliveMessage,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
    announcement_to_update,
    decode_message,
    encode_message,
    update_to_announcements,
)
from .attacks import (
    ENGINES,
    AttackKind,
    AttackOutcome,
    AttackScenario,
    coerce_engine,
    evaluate_attack,
    evaluate_attack_seeds,
)
from .fastprop import (
    AttackCase,
    PropagationWorkspace,
    evaluate_attack_seeds_array,
    evaluate_attack_seeds_array_batch,
    propagate_prefix_array,
)
from .origin_validation import ValidationState, VrpIndex, validate_announcement
from .rib import AdjRibIn, Rib
from .session import BgpSessionError, BgpSpeaker
from .simulation import (
    Route,
    RouteClass,
    Seed,
    SimulationError,
    propagate_prefix,
)
from .topology import (
    AsTopology,
    CompiledTopology,
    Relationship,
    TopologyError,
)

__all__ = [
    "AdjRibIn",
    "Announcement",
    "AnnouncementError",
    "AsPathSegment",
    "BgpHeader",
    "BgpMessage",
    "BgpMessageError",
    "KeepaliveMessage",
    "NotificationMessage",
    "OpenMessage",
    "UpdateMessage",
    "announcement_to_update",
    "decode_message",
    "encode_message",
    "update_to_announcements",
    "AsTopology",
    "CompiledTopology",
    "BgpSessionError",
    "BgpSpeaker",
    "AttackCase",
    "AttackKind",
    "AttackOutcome",
    "AttackScenario",
    "PropagationWorkspace",
    "Relationship",
    "Rib",
    "Route",
    "RouteClass",
    "Seed",
    "SimulationError",
    "TopologyError",
    "ValidationState",
    "VrpIndex",
    "ENGINES",
    "coerce_engine",
    "evaluate_attack",
    "evaluate_attack_seeds",
    "evaluate_attack_seeds_array",
    "evaluate_attack_seeds_array_batch",
    "propagate_prefix",
    "propagate_prefix_array",
    "validate_announcement",
]
