"""repro — a reproduction of "MaxLength Considered Harmful to the RPKI".

Gilad, Sagga, Goldberg — CoNEXT 2017, DOI 10.1145/3143361.3143363.

The package layers, bottom to top:

* :mod:`repro.netbase` — IP prefixes, AS numbers, tries, radix trees.
* :mod:`repro.asn1` — minimal DER encoder/decoder.
* :mod:`repro.crypto` — pure-Python RSA signatures.
* :mod:`repro.rpki` — ROAs, certificates, repositories, validation.
* :mod:`repro.rtr` — RPKI-to-Router protocol (RFC 6810/8210).
* :mod:`repro.bgp` — announcements, RIBs, origin validation (RFC 6811),
  Gao–Rexford route propagation, hijack attacks.
* :mod:`repro.core` — the paper's contribution: minimal-ROA conversion,
  the ``compress_roas`` trie algorithm, vulnerability analysis, bounds,
  the local-cache pipeline.
* :mod:`repro.data` — synthetic Internet: AS graphs, address allocation,
  BGP tables, ROA issuance, weekly snapshots, archive formats.
* :mod:`repro.analysis` — the measurement suite behind every table and
  figure of the paper.
* :mod:`repro.exper` — the unified, parallel experiment engine: a
  declarative scenario grammar plus serial/multiprocessing runners and
  bootstrap-CI aggregation behind every statistical study.
* :mod:`repro.serve` — the serving tier: async high-fanout RTR
  distribution and the origin-validation query service.
"""

__version__ = "1.0.0"

from .netbase import Prefix, PrefixSet, PrefixTrie, RadixTree

__all__ = ["Prefix", "PrefixSet", "PrefixTrie", "RadixTree", "__version__"]
