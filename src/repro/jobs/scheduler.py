"""The scheduler: queued :class:`JobSpec`\\ s → durable experiment runs.

One job executes exactly like ``repro-roa experiment --sink <run>
--resume``: the scheduler builds the job's topology the way the CLI
would, opens the run's :class:`~repro.results.sinks.JsonlSink` in the
jobs' :class:`~repro.results.store.ResultsStore`, and hands *the same
sink object* to :class:`~repro.exper.runner.ExperimentRunner` as both
``sink`` and ``resume_from`` — so a fresh job records from scratch,
and a job a SIGKILL caught mid-flight resumes its own file to a
byte-identical result (architecture invariant 8; the runner's resume
contract does the heavy lifting).  Recovery is therefore *implicit*:
on restart the scheduler just re-scans the queue and executes every
job whose folded status is still ``queued`` or ``running``.

Live visibility rides along without touching the run's bytes: records
are mirrored into a :class:`~repro.results.live.RunRegistry` through
the runner's ``on_record`` hook (never a
:class:`~repro.results.sinks.TeeSink`, which would re-write replayed
records into the file), and sharded jobs publish per-shard progress
via ``shard_progress``.  ``jobs.*`` metrics and the
``jobs.enqueue`` / ``jobs.execute`` fault sites make the subsystem
observable and drillable like every other tier.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Optional

from ..exper.runner import ExperimentRunner
from ..faults import fire
from ..netbase.errors import ReproError
from ..obs.metrics import MetricsRegistry, get_registry
from ..results.live import RunRegistry
from ..results.sinks import RunHeader
from ..results.store import ResultsStore
from .model import JobSpec, JobState
from .store import JobStore

__all__ = ["JobScheduler"]


class _JobsMetrics:
    """The scheduler's ``jobs.*`` instruments, resolved once.

    Pure observation (the registry is never consulted on the record
    path beyond counter bumps), and free when the registry is
    disabled — the ``enabled`` flag short-circuits callers.
    """

    __slots__ = (
        "enabled", "enqueued", "started", "completed", "failed",
        "cancelled", "queue_depth", "job_seconds",
    )

    def __init__(self, registry: MetricsRegistry) -> None:
        view = registry.view("jobs")
        self.enabled = registry.enabled
        self.enqueued = view.counter("enqueued")
        self.started = view.counter("started")
        self.completed = view.counter("completed")
        self.failed = view.counter("failed")
        self.cancelled = view.counter("cancelled")
        self.queue_depth = view.gauge("queue_depth")
        self.job_seconds = view.histogram("job_seconds")


class _JobCancelled(ReproError):
    """Internal: a cancel request interrupted the job mid-run."""


def _trim_to_trial_boundary(path: Path, cell_count: int) -> None:
    """Truncate a crash-interrupted run file to its last complete trial.

    A trial records one line per grid cell, and every executor emits
    those lines as one contiguous block.  ``JsonlSink`` resume
    re-evaluates any trial whose block is only partially durable and
    appends the *whole* block again — readers deduplicate, but the
    file would carry the orphaned partial block and no longer be
    byte-identical to an uninterrupted run.  Dropping the incomplete
    trailing block first restores byte-identity (invariant 8): the
    re-evaluated trial lands exactly where the crash cut it off.
    """
    try:
        data = path.read_bytes()
    except (FileNotFoundError, OSError):
        return
    end = data.rfind(b"\n") + 1  # a partial tail line always goes
    lines = data[:end].split(b"\n")[:-1]
    tail_key = None
    keep = len(lines)
    for index in range(len(lines) - 1, 0, -1):  # line 0 is the header
        try:
            record = json.loads(lines[index])
            key = (record["fraction_index"], record["trial_index"])
        except (ValueError, KeyError, TypeError):
            break  # not a trial record; leave it to the sink's checks
        if tail_key is None:
            tail_key = key
        elif key != tail_key:
            break
        keep = index
    if tail_key is not None and len(lines) - keep < cell_count:
        end = sum(len(line) + 1 for line in lines[:keep])
    if end < len(data):
        with open(path, "r+b") as handle:
            handle.truncate(end)


class JobScheduler:
    """Executes a :class:`~repro.jobs.store.JobStore`'s queue.

    Two driving modes share one execution path:

    * :meth:`run_pending` — foreground: drain every pending job and
      return (``repro-roa jobs run``, tests, crash-recovery drills).
    * :meth:`start` / :meth:`stop` — a daemon thread that drains the
      queue whenever :meth:`submit` wakes it (``repro-roa serve
      --jobs``).

    Args:
        store: the durable queue.
        results: where job runs land (default: the store's
            ``runs/`` convention).
        runs: a :class:`~repro.results.live.RunRegistry` to mirror
            live per-cell stats and per-shard progress into (optional).
        registry: metrics destination (default: the process registry).
        poll_interval: background-thread fallback wake period, for
            queue appends that bypass :meth:`submit` (another process
            writing the same store).
    """

    def __init__(
        self,
        store: JobStore,
        results: Optional[ResultsStore] = None,
        *,
        runs: Optional[RunRegistry] = None,
        registry: Optional[MetricsRegistry] = None,
        poll_interval: float = 0.5,
    ) -> None:
        if poll_interval <= 0:
            raise ReproError("poll_interval must be positive")
        self.store = store
        self.results = (
            results if results is not None else store.results_store()
        )
        self.runs = runs
        self.registry = registry
        self.poll_interval = poll_interval
        self._cancel_requests: set = set()
        self._cancel_lock = threading.Lock()
        self._wake = threading.Event()
        self._stopping = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _metrics(self) -> _JobsMetrics:
        return _JobsMetrics(
            self.registry if self.registry is not None else get_registry()
        )

    # ------------------------------------------------------------------
    # Queue operations
    # ------------------------------------------------------------------

    def submit(self, spec: JobSpec) -> str:
        """Durably enqueue a job; returns its id (wakes the thread)."""
        fire("jobs.enqueue", run=spec.run or "")
        job_id = self.store.enqueue(spec)
        metrics = self._metrics()
        if metrics.enabled:
            metrics.enqueued.inc()
            self._refresh_depth(metrics)
        self._wake.set()
        return job_id

    def cancel(self, job_id: str) -> JobState:
        """Cancel a job; returns its pre-cancel state.

        A queued job never runs; a running job is interrupted at its
        next record (its partial run file stays, resumable if the job
        is ever re-submitted with the same run id).  Cancelling a job
        that already reached a terminal status raises — callers map
        that to 409.
        """
        state = self.store.job(job_id)
        if state is None:
            raise ReproError(f"no job named {job_id!r}")
        if not state.pending:
            raise ReproError(
                f"job {job_id} already {state.status}"
            )
        with self._cancel_lock:
            self._cancel_requests.add(job_id)
        self.store.mark(job_id, "cancelled")
        metrics = self._metrics()
        if metrics.enabled:
            metrics.cancelled.inc()
            self._refresh_depth(metrics)
        return state

    def _cancelled(self, job_id: str) -> bool:
        with self._cancel_lock:
            return job_id in self._cancel_requests

    def _refresh_depth(self, metrics: _JobsMetrics) -> None:
        metrics.queue_depth.set(len(self.store.pending()))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run_pending(self) -> int:
        """Execute every pending job in id order; returns how many.

        Jobs the last process left ``running`` (it was killed
        mid-job) execute again here — which, because sink and
        resume-source are one object, *continues* their run file
        rather than restarting it.
        """
        executed = 0
        while not self._stopping.is_set():
            pending = self.store.pending()
            if not pending:
                break
            self._execute(pending[0])
            executed += 1
        metrics = self._metrics()
        if metrics.enabled:
            self._refresh_depth(metrics)
        return executed

    def _execute(self, state: JobState) -> None:
        metrics = self._metrics()
        job_id = state.job
        if self._cancelled(job_id):
            return  # the cancelled event is already durable
        self.store.mark(job_id, "started")
        if metrics.enabled:
            metrics.started.inc()
            self._refresh_depth(metrics)
        begun = time.perf_counter()
        try:
            fire("jobs.execute", job=job_id, run=state.spec.run or "")
            self._run_job(state)
        except _JobCancelled:
            if metrics.enabled:
                metrics.cancelled.inc()
        except (ReproError, OSError) as exc:
            self.store.mark(job_id, "failed", detail=str(exc))
            if metrics.enabled:
                metrics.failed.inc()
        else:
            self.store.mark(job_id, "finished")
            if metrics.enabled:
                metrics.completed.inc()
                metrics.job_seconds.observe(
                    time.perf_counter() - begun
                )
        if metrics.enabled:
            self._refresh_depth(metrics)

    def _run_job(self, state: JobState) -> None:
        spec = state.spec
        run_id = spec.run
        if run_id is None:  # enqueue() pins it; belt and braces
            raise ReproError(f"job {state.job} has no run id")
        topology = spec.build_topology()
        publisher = None
        shard_progress = None
        if self.runs is not None:
            publisher = self.runs.publisher(run_id)
            publisher.begin(RunHeader.for_spec(spec.spec, topology))
            registry = self.runs

            def shard_progress(shards: dict) -> None:
                registry.update_shards(run_id, shards)

        job_id = state.job

        def on_record(record) -> None:
            if publisher is not None:
                publisher.write(record)
            if self._cancelled(job_id):
                raise _JobCancelled(f"job {job_id} cancelled")

        # THE invariant-8 recipe: trim a crash-cut file back to a
        # trial boundary, then one JsonlSink object as both sink and
        # resume source.  The runner re-emits replayed records
        # downstream (the registry sees the full stream) but never
        # re-writes them into the file — so fresh, resumed, and
        # direct-CLI runs of one spec are the same bytes.
        _trim_to_trial_boundary(
            self.results.path(run_id), len(spec.spec.cells)
        )
        sink = self.results.sink(run_id)
        runner = ExperimentRunner(
            topology,
            spec.spec,
            workers=spec.workers,
            shards=spec.shards,
            sink=sink,
            resume_from=sink,
            registry=self.registry,
            shard_progress=shard_progress,
        )
        try:
            result = runner.run(on_record=on_record)
        finally:
            sink.close()
        if publisher is not None:
            publisher.finish(result.trial_counts)

    # ------------------------------------------------------------------
    # Background mode
    # ------------------------------------------------------------------

    def start(self) -> "JobScheduler":
        """Drain the queue from a daemon thread until :meth:`stop`."""
        if self._thread is not None:
            raise ReproError("scheduler already started")
        self._stopping.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-jobs-scheduler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        """Stop the background thread (waits for the current job)."""
        self._stopping.set()
        self._wake.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
            self._thread = None

    def _loop(self) -> None:
        while not self._stopping.is_set():
            self._wake.clear()
            try:
                self.run_pending()
            except ReproError:
                # A corrupt queue file must not kill the serve tier;
                # the next scan reports it again and HTTP surfaces it.
                pass
            self._wake.wait(self.poll_interval)
