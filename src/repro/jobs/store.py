"""The durable job queue: one append-only, crash-safe JSONL file.

Layout convention (what ``repro-roa jobs --store DIR`` points at)::

    <root>/
        queue.jsonl       # header line, then one JobRecord per event
        runs/             # the jobs' ResultsStore (one run per job)

The queue file follows the run-file discipline of
:mod:`repro.results.sinks`: a versioned header line first, canonical
JSON (sorted keys, no whitespace) per line, every append flushed and
fsynced, and a reader that tolerates exactly one trailing partial
line — the most a crash mid-append can leave.  Interior corruption is
an error, never silently skipped.  State is *folded*, not stored: a
job's status is the last of its events, so recovery after SIGKILL is
a re-scan, and two processes never disagree about what the bytes say.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..netbase.errors import ReproError
from ..results.store import ResultsStore
from .model import (
    JOB_SCHEMA,
    JobRecord,
    JobSpec,
    JobState,
    QUEUE_KIND,
    STATUS_BY_EVENT,
)

__all__ = ["JobStore"]


def _encode_line(data: dict) -> bytes:
    # Canonical form, mirroring repro.results.sinks: the same record
    # is always the same bytes.
    return json.dumps(
        data, sort_keys=True, separators=(",", ":")
    ).encode("utf-8") + b"\n"


class JobStore:
    """Append-only queue of experiment jobs under one directory.

    Thread-safe: appends serialize under one lock, and every read is
    a fresh scan of the file — the bytes are the single source of
    truth, which is what makes SIGKILL-then-restart recovery a
    non-event (see :class:`~repro.jobs.scheduler.JobScheduler`).
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.path = self.root / "queue.jsonl"
        self._lock = threading.Lock()

    def results_store(self) -> ResultsStore:
        """The store convention: job runs live under ``<root>/runs``."""
        return ResultsStore(self.root / "runs")

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def records(self) -> List[JobRecord]:
        """Every complete event in file order (crash tail dropped)."""
        return self._scan()

    def _scan(self) -> List[JobRecord]:
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            return []
        lines = data.split(b"\n")
        # No trailing newline on the last piece → a partial append
        # from a crash; drop it (split leaves b"" when the file ends
        # cleanly, which the loop skips anyway).
        complete = lines[:-1]
        if not complete:
            return []
        header = self._decode(complete[0], 1)
        if (
            header.get("schema") != JOB_SCHEMA
            or header.get("kind") != QUEUE_KIND
        ):
            raise ReproError(
                f"{self.path}: not a schema-{JOB_SCHEMA} job queue "
                f"(header {header!r})"
            )
        records = []
        for number, raw in enumerate(complete[1:], start=2):
            if not raw:
                raise ReproError(
                    f"{self.path}:{number}: blank interior line"
                )
            records.append(
                JobRecord.from_json_dict(self._decode(raw, number))
            )
        return records

    def _decode(self, raw: bytes, number: int) -> dict:
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ReproError(
                f"{self.path}:{number}: corrupt line: {exc}"
            ) from None
        if not isinstance(data, dict):
            raise ReproError(
                f"{self.path}:{number}: expected an object"
            )
        return data

    def jobs(self) -> Dict[str, JobState]:
        """Every known job's folded state, keyed by job id."""
        states: Dict[str, JobState] = {}
        for record in self._scan():
            state = states.get(record.job)
            if state is None:
                if record.spec is None:
                    raise ReproError(
                        f"{self.path}: job {record.job!r} has a "
                        f"{record.event!r} event before 'enqueued'"
                    )
                state = JobState(job=record.job, spec=record.spec)
                states[record.job] = state
            state.status = STATUS_BY_EVENT[record.event]
            if record.detail:
                state.detail = record.detail
            state.history = state.history + (record.event,)
        return states

    def job(self, job_id: str) -> Optional[JobState]:
        """One job's folded state, or ``None`` if unknown."""
        return self.jobs().get(job_id)

    def pending(self) -> List[JobState]:
        """Jobs a scheduler owes work, in job-id (enqueue) order."""
        return [
            state
            for _, state in sorted(self.jobs().items())
            if state.pending
        ]

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def enqueue(self, spec: JobSpec) -> str:
        """Durably add a job; returns its id.

        Ids are sequential (``job-000001``, ...) over all *enqueued*
        events ever written — deterministic, so docs and tests can
        name them — and a spec without a pinned run id adopts the job
        id (a valid :class:`~repro.results.store.ResultsStore` run
        id by construction).
        """
        with self._lock:
            count = sum(
                1 for record in self._scan()
                if record.event == "enqueued"
            )
            job_id = f"job-{count + 1:06d}"
            if spec.run is None:
                spec = spec.with_run(job_id)
            else:
                # Fail loudly now, not when the scheduler first opens
                # the sink.
                self.results_store().path(spec.run)
            self._append(
                JobRecord(job=job_id, event="enqueued", spec=spec)
            )
            return job_id

    def mark(self, job_id: str, event: str, detail: str = "") -> None:
        """Append one lifecycle event for an existing job."""
        with self._lock:
            record = JobRecord(job=job_id, event=event, detail=detail)
            known = {r.job for r in self._scan() if r.event == "enqueued"}
            if job_id not in known:
                raise ReproError(
                    f"no job named {job_id!r} in {self.path}"
                )
            self._append(record)

    def _append(self, record: JobRecord) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        needs_header = True
        if self.path.exists():
            data = self.path.read_bytes()
            if data and not data.endswith(b"\n"):
                # Crash mid-append: keep the complete prefix only, so
                # the new line never fuses with a partial one.
                cut = data.rfind(b"\n") + 1
                with open(self.path, "r+b") as handle:
                    handle.truncate(cut)
                data = data[:cut]
            needs_header = not data
        with open(self.path, "ab") as handle:
            if needs_header:
                handle.write(_encode_line(
                    {"schema": JOB_SCHEMA, "kind": QUEUE_KIND}
                ))
            handle.write(_encode_line(record.to_json_dict()))
            handle.flush()
            os.fsync(handle.fileno())
