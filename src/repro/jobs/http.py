"""The experiment platform's HTTP control plane.

:class:`JobsHttpServer` extends the serve tier's
:class:`~repro.serve.http.QueryHttpServer` (it lives up here, not in
``repro.serve``, because jobs sit *above* serve in the import
layering) with the write side of the platform:

* ``POST /experiments`` — enqueue a job: ``{"spec": {...}, "run":
  ..., "ases": ..., "topology_seed": ..., "workers": ..., "shards":
  ...}`` (only ``spec`` required) → 201 with the job and run ids.
* ``GET /jobs`` — every job's folded state.
* ``GET /jobs/<id>`` — one job.
* ``DELETE /jobs/<id>`` — cancel (404 unknown, 409 already terminal).

Everything read-only — ``/experiments``, ``/experiments/<run>/ci``,
``/diff``, ``/validity``, ``/metrics`` — is inherited: the server is
constructed around the scheduler's results store and run registry, so
a submitted job shows up live on ``GET /experiments/<run>`` while it
runs and on ``/ci`` and ``/diff`` the moment its bytes are durable.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Tuple
from urllib.parse import unquote, urlsplit

from ..netbase.errors import ReproError
from ..serve.http import HttpRequestError, QueryHttpServer
from ..serve.metrics import ServeMetrics
from ..serve.query import QueryService
from .model import JobSpec
from .scheduler import JobScheduler

__all__ = ["JobsHttpServer"]


class JobsHttpServer(QueryHttpServer):
    """The always-on platform front end: query serving + job control.

    The attached :class:`~repro.jobs.scheduler.JobScheduler` supplies
    the results store (for ``/ci`` and ``/diff``) and, unless given
    explicitly, the run registry behind ``/experiments``.
    """

    def __init__(
        self,
        service: QueryService,
        scheduler: JobScheduler,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: Optional[ServeMetrics] = None,
        max_clients: Optional[int] = None,
        idle_timeout: Optional[float] = None,
        drain_timeout: Optional[float] = None,
    ) -> None:
        if scheduler.runs is None:
            # Jobs submitted here should be watchable live; give the
            # scheduler a registry if its creator did not.
            from ..results.live import RunRegistry

            scheduler.runs = RunRegistry()
        super().__init__(
            service,
            host=host,
            port=port,
            metrics=metrics,
            runs=scheduler.runs,
            store=scheduler.results,
            max_clients=max_clients,
            idle_timeout=idle_timeout,
            drain_timeout=drain_timeout,
        )
        self.scheduler = scheduler

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, object]:
        url = urlsplit(path)
        if url.path == "/experiments" and method == "POST":
            return self._submit(body)
        if url.path == "/jobs" or url.path.startswith("/jobs/"):
            return self._jobs(method, url.path)
        return await super()._route(method, path, body)

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------

    def _submit(self, body: bytes) -> Tuple[int, Dict[str, object]]:
        """``POST /experiments``: parse, enqueue, 201."""
        try:
            document = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            raise HttpRequestError(f"invalid JSON body: {exc}")
        if not isinstance(document, dict) or "spec" not in document:
            raise HttpRequestError(
                'body must be {"spec": {...}, ...} '
                "(an ExperimentSpec plus optional run/ases/"
                "topology_seed/workers/shards)"
            )
        unknown = set(document) - {
            "spec", "run", "ases", "topology_seed", "workers", "shards"
        }
        if unknown:
            raise HttpRequestError(
                f"unknown job fields {sorted(unknown)}"
            )
        try:
            spec = JobSpec.from_json_dict(document)
            job_id = self.scheduler.submit(spec)
        except (ReproError, ValueError, TypeError) as exc:
            raise HttpRequestError(f"bad job spec: {exc}")
        state = self.scheduler.store.job(job_id)
        return 201, {
            "job": job_id,
            "run": None if state is None else state.spec.run,
            "status": "queued",
        }

    def _jobs(
        self, method: str, path: str
    ) -> Tuple[int, Dict[str, object]]:
        """The ``/jobs`` family: list, show, cancel."""
        if path == "/jobs":
            if method != "GET":
                return 405, {"error": f"{method} not allowed on /jobs"}
            return 200, {
                "jobs": [
                    state.summary()
                    for _, state in sorted(
                        self.scheduler.store.jobs().items()
                    )
                ]
            }
        job_id = unquote(path[len("/jobs/"):])
        state = self.scheduler.store.job(job_id)
        if state is None:
            return 404, {"error": f"no job named {job_id!r}"}
        if method == "GET":
            return 200, state.summary()
        if method == "DELETE":
            if not state.pending:
                return 409, {
                    "error": f"job {job_id} already {state.status}"
                }
            self.scheduler.cancel(job_id)
            return 200, {"job": job_id, "status": "cancelled"}
        return 405, {"error": f"{method} not allowed on {path}"}
