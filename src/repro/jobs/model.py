"""The job queue's versioned wire schema: ``JobSpec`` and ``JobRecord``.

Same discipline as :class:`~repro.results.sinks.RunHeader` and
``TrialRecord``: every durable line carries ``schema`` and ``kind``
fields, readers refuse versions they do not understand, and the JSON
round trip is exact.  A :class:`JobSpec` is everything the scheduler
needs to reproduce a ``repro-roa experiment`` invocation byte for
byte — the :class:`~repro.exper.spec.ExperimentSpec` itself plus the
synthetic-topology parameters (``ases``, ``topology_seed``) that the
CLI would have used to build the graph.  A :class:`JobRecord` is one
append-only *event* in a job's life (``enqueued`` → ``started`` →
``finished`` / ``failed`` / ``cancelled``); folding a job's events in
file order yields its current :class:`JobState`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Optional

from ..exper.spec import ExperimentSpec
from ..netbase.errors import ReproError

__all__ = [
    "EVENT_KIND",
    "JOB_SCHEMA",
    "JobRecord",
    "JobSpec",
    "JobState",
    "QUEUE_KIND",
    "STATUS_BY_EVENT",
]

#: Wire schema version of every job-queue line.
JOB_SCHEMA = 1
#: ``kind`` of the queue file's header line.
QUEUE_KIND = "repro.jobs/queue"
#: ``kind`` of every event line after the header.
EVENT_KIND = "repro.jobs/event"

#: Job status implied by each event; the *last* event wins when
#: folding a job's history.
STATUS_BY_EVENT = {
    "enqueued": "queued",
    "started": "running",
    "finished": "done",
    "failed": "failed",
    "cancelled": "cancelled",
}

#: Statuses a scheduler restart picks back up: still-queued work and
#: jobs a crash caught mid-flight (their run files resume).
PENDING_STATUSES = frozenset({"queued", "running"})


@dataclass(frozen=True)
class JobSpec:
    """One queued experiment: the grid plus how to build its world.

    Attributes:
        spec: the :class:`~repro.exper.spec.ExperimentSpec` to run.
        run: results-store run id the job's records stream into;
            ``None`` adopts the job id at enqueue time.
        ases / topology_seed: synthetic-topology parameters, exactly
            the CLI's ``--ases`` / ``--topology-seed`` defaults — the
            scheduler builds ``generate_topology(TopologyProfile(
            ases), random.Random(topology_seed))`` so a job's run
            header (and bytes) match a direct CLI run of the spec.
        workers / shards: executor sizing knobs, as on the CLI.
    """

    spec: ExperimentSpec
    run: Optional[str] = None
    ases: int = 400
    topology_seed: int = 11
    workers: Optional[int] = None
    shards: Optional[int] = None

    def __post_init__(self) -> None:
        if self.ases < 2:
            raise ReproError("a job topology needs at least 2 ASes")
        if self.workers is not None and self.workers < 1:
            raise ReproError("workers must be positive")
        if self.shards is not None and self.shards < 1:
            raise ReproError("shards must be positive")

    @property
    def spec_hash(self) -> str:
        """The experiment's canonical identity (never recomputed
        differently from :meth:`ExperimentSpec.spec_hash`)."""
        return self.spec.spec_hash()

    def with_run(self, run: str) -> "JobSpec":
        """This spec with its run id pinned (enqueue-time default)."""
        return replace(self, run=run)

    def build_topology(self):
        """The job's AS graph, identical to the CLI's construction."""
        from ..data import TopologyProfile, generate_topology

        return generate_topology(
            TopologyProfile(ases=self.ases),
            random.Random(self.topology_seed),
        )

    def to_json_dict(self) -> dict:
        return {
            "spec": self.spec.to_json_dict(),
            "run": self.run,
            "ases": self.ases,
            "topology_seed": self.topology_seed,
            "workers": self.workers,
            "shards": self.shards,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "JobSpec":
        try:
            spec = ExperimentSpec.from_json_dict(data["spec"])
        except KeyError:
            raise ReproError("job spec JSON missing 'spec'") from None
        run = data.get("run")
        workers = data.get("workers")
        shards = data.get("shards")
        return cls(
            spec=spec,
            run=None if run is None else str(run),
            ases=int(data.get("ases", 400)),
            topology_seed=int(data.get("topology_seed", 11)),
            workers=None if workers is None else int(workers),
            shards=None if shards is None else int(shards),
        )


@dataclass(frozen=True)
class JobRecord:
    """One durable event in a job's life (one queue-file line)."""

    job: str
    event: str
    spec: Optional[JobSpec] = None
    detail: str = ""

    def __post_init__(self) -> None:
        if self.event not in STATUS_BY_EVENT:
            raise ReproError(
                f"unknown job event {self.event!r}; expected one of "
                f"{sorted(STATUS_BY_EVENT)}"
            )
        if self.event == "enqueued" and self.spec is None:
            raise ReproError("an 'enqueued' event must carry the spec")

    def to_json_dict(self) -> dict:
        data: dict = {
            "schema": JOB_SCHEMA,
            "kind": EVENT_KIND,
            "job": self.job,
            "event": self.event,
        }
        if self.spec is not None:
            data["spec"] = self.spec.to_json_dict()
        if self.detail:
            data["detail"] = self.detail
        return data

    @classmethod
    def from_json_dict(cls, data: dict) -> "JobRecord":
        schema = data.get("schema")
        if schema != JOB_SCHEMA:
            raise ReproError(
                f"unsupported job record schema {schema!r} "
                f"(this reader speaks {JOB_SCHEMA})"
            )
        kind = data.get("kind")
        if kind != EVENT_KIND:
            raise ReproError(
                f"not a job event line: kind {kind!r}"
            )
        try:
            job = str(data["job"])
            event = str(data["event"])
        except KeyError as exc:
            raise ReproError(
                f"job record missing key {exc}"
            ) from None
        raw_spec = data.get("spec")
        return cls(
            job=job,
            event=event,
            spec=(
                None if raw_spec is None
                else JobSpec.from_json_dict(raw_spec)
            ),
            detail=str(data.get("detail", "")),
        )


@dataclass
class JobState:
    """A job's folded view: its spec and where it is in its life."""

    job: str
    spec: JobSpec
    status: str = "queued"
    detail: str = ""
    history: tuple = field(default_factory=tuple)

    @property
    def pending(self) -> bool:
        """Does a scheduler still owe this job work?"""
        return self.status in PENDING_STATUSES

    def summary(self) -> dict:
        """JSON-ready view for ``GET /jobs`` and the CLI."""
        return {
            "job": self.job,
            "status": self.status,
            "run": self.spec.run,
            "spec_hash": self.spec.spec_hash,
            "detail": self.detail,
            "events": list(self.history),
        }
