"""``repro.jobs`` — the always-on experiment platform.

The CLI runs one grid and exits; this package makes experiments a
*service*: submit a spec, let a scheduler execute it durably, watch it
live, diff it against any other run — the control-plane loop the
ROADMAP names over :mod:`repro.exper` and :mod:`repro.results`.

Four pieces, each reusing an existing discipline rather than
inventing one:

* :class:`JobSpec` / :class:`JobRecord` (:mod:`repro.jobs.model`) —
  the versioned (``schema: 1``) wire forms: an experiment spec plus
  the topology parameters that pin its world, and the append-only
  lifecycle events (``enqueued``/``started``/``finished``/
  ``failed``/``cancelled``).
* :class:`JobStore` (:mod:`repro.jobs.store`) — those events in one
  crash-safe JSONL file (the run-file idioms of
  :mod:`repro.results.sinks`: canonical lines, fsync per append,
  partial-tail recovery).  A job's status is a *fold* of its events,
  so recovery is a re-scan.
* :class:`JobScheduler` (:mod:`repro.jobs.scheduler`) — executes the
  queue through :class:`~repro.exper.runner.ExperimentRunner`,
  streaming each job into its own results-store run with one
  ``JsonlSink`` as both sink and resume source.  **Architecture
  invariant 8** falls out: a scheduled job's run bytes equal a direct
  ``repro-roa experiment`` of the same spec, even across a scheduler
  SIGKILL and restart-resume.
* :class:`JobsHttpServer` (:mod:`repro.jobs.http`) — the HTTP
  control plane on the serve tier's hardened base: ``POST
  /experiments`` to enqueue, ``/jobs`` CRUD, and (inherited) live
  stats, per-cell bootstrap CIs, and run-to-run diffs.

``repro-roa jobs submit|list|show|cancel|diff|run`` and ``repro-roa
serve --jobs`` are the CLI faces; ``jobs.*`` metrics and the
``jobs.enqueue``/``jobs.execute`` fault sites plug the platform into
:mod:`repro.obs` and :mod:`repro.faults` like every other tier.  See
``docs/platform.md``.
"""

from .http import JobsHttpServer
from .model import JobRecord, JobSpec, JobState
from .scheduler import JobScheduler
from .store import JobStore

__all__ = [
    "JobRecord",
    "JobScheduler",
    "JobSpec",
    "JobState",
    "JobStore",
    "JobsHttpServer",
]
