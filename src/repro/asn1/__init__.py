"""Minimal DER (X.690) encoder/decoder for RPKI object profiles."""

from .der import (
    Asn1Error,
    Asn1Value,
    BitString,
    ContextTag,
    Integer,
    Null,
    ObjectIdentifier,
    OctetString,
    Sequence_,
    Set_,
    Utf8String,
    decode,
    decode_all,
    encode,
)

__all__ = [
    "Asn1Error",
    "Asn1Value",
    "BitString",
    "ContextTag",
    "Integer",
    "Null",
    "ObjectIdentifier",
    "OctetString",
    "Sequence_",
    "Set_",
    "Utf8String",
    "decode",
    "decode_all",
    "encode",
]
