"""A minimal DER (Distinguished Encoding Rules) codec.

The RPKI carries its objects (ROAs per RFC 6482, certificates, manifests)
as DER-encoded ASN.1.  This module implements just enough of X.690 to
round-trip the structures in :mod:`repro.rpki`: definite lengths and the
universal types INTEGER, BIT STRING, OCTET STRING, NULL, OBJECT
IDENTIFIER, UTF8String, SEQUENCE, SET, and context-specific tagging.

The API is value-based: :func:`encode` maps a tree of
:class:`Asn1Value` nodes to bytes; :func:`decode` maps bytes back to the
tree.  Higher layers (:mod:`repro.rpki.roa`) do the schema mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

from ..netbase.errors import ReproError

__all__ = [
    "Asn1Error",
    "Asn1Value",
    "Integer",
    "BitString",
    "OctetString",
    "Null",
    "ObjectIdentifier",
    "Utf8String",
    "Sequence_",
    "Set_",
    "ContextTag",
    "encode",
    "decode",
]


class Asn1Error(ReproError):
    """Malformed DER input or an unencodable value."""


# Universal tag numbers (X.690 §8).
TAG_INTEGER = 0x02
TAG_BIT_STRING = 0x03
TAG_OCTET_STRING = 0x04
TAG_NULL = 0x05
TAG_OID = 0x06
TAG_UTF8STRING = 0x0C
TAG_SEQUENCE = 0x30  # constructed
TAG_SET = 0x31  # constructed


@dataclass(frozen=True)
class Integer:
    """ASN.1 INTEGER (arbitrary precision, two's complement on the wire)."""

    value: int


@dataclass(frozen=True)
class BitString:
    """ASN.1 BIT STRING: ``bits`` is a string of '0'/'1' characters.

    RFC 3779 address encoding relies on bit strings whose length is not a
    multiple of 8, so we keep the exact bit count.
    """

    bits: str

    def __post_init__(self) -> None:
        if any(ch not in "01" for ch in self.bits):
            raise Asn1Error(f"bit string must contain only 0/1: {self.bits!r}")


@dataclass(frozen=True)
class OctetString:
    """ASN.1 OCTET STRING: an opaque byte payload."""

    value: bytes


@dataclass(frozen=True)
class Null:
    """ASN.1 NULL (always encodes as ``05 00``)."""


@dataclass(frozen=True)
class ObjectIdentifier:
    """ASN.1 OBJECT IDENTIFIER, e.g. ``"1.2.840.113549.1.1.11"``."""

    dotted: str

    def arcs(self) -> list[int]:
        try:
            arcs = [int(part) for part in self.dotted.split(".")]
        except ValueError:
            raise Asn1Error(f"bad OID {self.dotted!r}") from None
        if len(arcs) < 2:
            raise Asn1Error(f"OID needs at least two arcs: {self.dotted!r}")
        return arcs


@dataclass(frozen=True)
class Utf8String:
    """ASN.1 UTF8String: a Unicode text value."""

    value: str


@dataclass(frozen=True)
class Sequence_:
    """ASN.1 SEQUENCE of nested values."""

    elements: tuple["Asn1Value", ...]

    def __init__(self, elements: Iterable["Asn1Value"]) -> None:
        object.__setattr__(self, "elements", tuple(elements))


@dataclass(frozen=True)
class Set_:
    """ASN.1 SET (DER: elements sorted by encoding)."""

    elements: tuple["Asn1Value", ...]

    def __init__(self, elements: Iterable["Asn1Value"]) -> None:
        object.__setattr__(self, "elements", tuple(elements))


@dataclass(frozen=True)
class ContextTag:
    """A context-specific, constructed tag [n] wrapping one value."""

    number: int
    inner: "Asn1Value"


Asn1Value = Union[
    Integer,
    BitString,
    OctetString,
    Null,
    ObjectIdentifier,
    Utf8String,
    Sequence_,
    Set_,
    ContextTag,
]


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------


def _encode_length(length: int) -> bytes:
    if length < 0x80:
        return bytes([length])
    body = length.to_bytes((length.bit_length() + 7) // 8, "big")
    return bytes([0x80 | len(body)]) + body


def _encode_tlv(tag: int, body: bytes) -> bytes:
    return bytes([tag]) + _encode_length(len(body)) + body


def _encode_integer(value: int) -> bytes:
    if value == 0:
        return _encode_tlv(TAG_INTEGER, b"\x00")
    length = (value.bit_length() // 8) + 1  # always room for the sign bit
    body = value.to_bytes(length, "big", signed=True)
    # Strip redundant leading bytes while preserving the sign bit (DER
    # requires the minimal encoding).
    while len(body) > 1 and (
        (body[0] == 0x00 and not body[1] & 0x80)
        or (body[0] == 0xFF and body[1] & 0x80)
    ):
        body = body[1:]
    return _encode_tlv(TAG_INTEGER, body)


def _encode_bit_string(bits: str) -> bytes:
    unused = (8 - len(bits) % 8) % 8
    padded = bits + "0" * unused
    body = bytes([unused]) + bytes(
        int(padded[i:i + 8], 2) for i in range(0, len(padded), 8)
    )
    return _encode_tlv(TAG_BIT_STRING, body)


def _encode_oid(oid: ObjectIdentifier) -> bytes:
    arcs = oid.arcs()
    if arcs[0] > 2 or (arcs[0] < 2 and arcs[1] >= 40):
        raise Asn1Error(f"bad leading OID arcs in {oid.dotted!r}")
    body = bytearray([40 * arcs[0] + arcs[1]])
    for arc in arcs[2:]:
        chunk = bytearray([arc & 0x7F])
        arc >>= 7
        while arc:
            chunk.append(0x80 | (arc & 0x7F))
            arc >>= 7
        body.extend(reversed(chunk))
    return _encode_tlv(TAG_OID, bytes(body))


def encode(value: Asn1Value) -> bytes:
    """DER-encode an :class:`Asn1Value` tree."""
    if isinstance(value, Integer):
        return _encode_integer(value.value)
    if isinstance(value, BitString):
        return _encode_bit_string(value.bits)
    if isinstance(value, OctetString):
        return _encode_tlv(TAG_OCTET_STRING, value.value)
    if isinstance(value, Null):
        return _encode_tlv(TAG_NULL, b"")
    if isinstance(value, ObjectIdentifier):
        return _encode_oid(value)
    if isinstance(value, Utf8String):
        return _encode_tlv(TAG_UTF8STRING, value.value.encode("utf-8"))
    if isinstance(value, Sequence_):
        return _encode_tlv(TAG_SEQUENCE, b"".join(encode(e) for e in value.elements))
    if isinstance(value, Set_):
        encoded = sorted(encode(e) for e in value.elements)
        return _encode_tlv(TAG_SET, b"".join(encoded))
    if isinstance(value, ContextTag):
        if value.number > 30:
            raise Asn1Error(f"context tag {value.number} too large")
        return _encode_tlv(0xA0 | value.number, encode(value.inner))
    raise Asn1Error(f"cannot encode {type(value).__name__}")


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------


def _read_tlv(data: bytes, offset: int) -> tuple[int, bytes, int]:
    """Read one TLV; returns (tag, body, next_offset)."""
    if offset >= len(data):
        raise Asn1Error("truncated DER: no tag byte")
    tag = data[offset]
    offset += 1
    if offset >= len(data):
        raise Asn1Error("truncated DER: no length byte")
    first = data[offset]
    offset += 1
    if first < 0x80:
        length = first
    else:
        count = first & 0x7F
        if count == 0:
            raise Asn1Error("indefinite lengths are not DER")
        if offset + count > len(data):
            raise Asn1Error("truncated DER: bad long-form length")
        length = int.from_bytes(data[offset:offset + count], "big")
        if length < 0x80 and count == 1:
            raise Asn1Error("non-minimal length encoding")
        offset += count
    if offset + length > len(data):
        raise Asn1Error("truncated DER: body shorter than declared")
    return tag, data[offset:offset + length], offset + length


def _decode_sequence_body(body: bytes) -> tuple[Asn1Value, ...]:
    elements = []
    offset = 0
    while offset < len(body):
        element, offset = _decode_at(body, offset)
        elements.append(element)
    return tuple(elements)


def _decode_at(data: bytes, offset: int) -> tuple[Asn1Value, int]:
    tag, body, next_offset = _read_tlv(data, offset)
    if tag == TAG_INTEGER:
        if not body:
            raise Asn1Error("empty INTEGER body")
        return Integer(int.from_bytes(body, "big", signed=True)), next_offset
    if tag == TAG_BIT_STRING:
        if not body:
            raise Asn1Error("empty BIT STRING body")
        unused = body[0]
        if unused > 7:
            raise Asn1Error(f"bad unused-bit count {unused}")
        bit_text = "".join(format(byte, "08b") for byte in body[1:])
        if unused:
            if not bit_text or bit_text[-unused:] != "0" * unused:
                raise Asn1Error("unused bits must be zero in DER")
            bit_text = bit_text[:-unused]
        return BitString(bit_text), next_offset
    if tag == TAG_OCTET_STRING:
        return OctetString(body), next_offset
    if tag == TAG_NULL:
        if body:
            raise Asn1Error("NULL with non-empty body")
        return Null(), next_offset
    if tag == TAG_OID:
        if not body:
            raise Asn1Error("empty OID body")
        arcs = [body[0] // 40, body[0] % 40]
        arc = 0
        for byte in body[1:]:
            arc = (arc << 7) | (byte & 0x7F)
            if not byte & 0x80:
                arcs.append(arc)
                arc = 0
        if body[-1] & 0x80:
            raise Asn1Error("truncated OID arc")
        return ObjectIdentifier(".".join(str(a) for a in arcs)), next_offset
    if tag == TAG_UTF8STRING:
        try:
            return Utf8String(body.decode("utf-8")), next_offset
        except UnicodeDecodeError as exc:
            raise Asn1Error(f"bad UTF8String: {exc}") from None
    if tag == TAG_SEQUENCE:
        return Sequence_(_decode_sequence_body(body)), next_offset
    if tag == TAG_SET:
        return Set_(_decode_sequence_body(body)), next_offset
    if tag & 0xE0 == 0xA0:  # context-specific constructed
        inner, inner_end = _decode_at(body, 0)
        if inner_end != len(body):
            raise Asn1Error("context tag wraps more than one value")
        return ContextTag(tag & 0x1F, inner), next_offset
    raise Asn1Error(f"unsupported tag 0x{tag:02x}")


def decode(data: bytes) -> Asn1Value:
    """Decode exactly one DER value; trailing bytes are an error."""
    value, end = _decode_at(data, 0)
    if end != len(data):
        raise Asn1Error(f"{len(data) - end} trailing bytes after DER value")
    return value


def decode_all(data: bytes) -> list[Asn1Value]:
    """Decode a concatenation of DER values."""
    values: list[Asn1Value] = []
    offset = 0
    while offset < len(data):
        value, offset = _decode_at(data, offset)
        values.append(value)
    return values
