"""File discovery, module-name inference, and the lint driver.

The engine is deliberately small: discover ``.py`` files, parse each
one once into a :class:`~repro.lint.model.SourceModule` (AST +
suppression map + inferred dotted module name), hand the batch to
every selected rule, filter suppressed findings, and return a sorted
list.  Sources that fail to parse become a finding under the pseudo-
rule ``PARSE`` rather than aborting the run — a linter that dies on
the file it should be reporting is useless in CI.

Module names are inferred from the package layout (directories with
``__init__.py``), so ``src/repro/exper/runner.py`` lints as
``repro.exper.runner`` no matter where the repo is checked out, and a
stray file outside any package gets no repro rules applied.  Tests
lint virtual sources with an explicit module name via
:func:`lint_source` / :func:`lint_sources` to opt fixtures into a
rule's jurisdiction.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

import ast

from .model import Finding, LintUsageError, SourceModule, SuppressionSite
from .rules import make_rules
from .suppress import comment_sites, parse_suppressions

__all__ = [
    "PARSE_RULE",
    "discover_files",
    "iter_suppressions",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "module_name_for",
]

#: Pseudo-rule id used for files that fail to parse or read.
PARSE_RULE = "PARSE"


def module_name_for(path: Path) -> str:
    """The dotted module name implied by the package layout.

    Walks parent directories for as long as they contain an
    ``__init__.py``; a file outside any package is just its stem.
    """
    path = path.resolve()
    parts = [] if path.name == "__init__.py" else [path.stem]
    current = path.parent
    while (current / "__init__.py").is_file():
        parts.insert(0, current.name)
        parent = current.parent
        if parent == current:  # pragma: no cover — filesystem root
            break
        current = parent
    return ".".join(parts)


def discover_files(paths: Sequence) -> List[Path]:
    """Expand files and directories into a deduplicated ``.py`` list."""
    files: List[Path] = []
    seen = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            batch: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.is_file():
            batch = [path]
        else:
            raise LintUsageError(f"no such file or directory: {path}")
        for file in batch:
            resolved = file.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(file)
    return files


def _load_source(
    text: str, *, path: str, module: str, is_package: bool
) -> Tuple[Optional[SourceModule], Optional[Finding]]:
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as exc:
        return None, Finding(
            path, exc.lineno or 1, exc.offset or 1, PARSE_RULE,
            f"syntax error: {exc.msg}",
        )
    source = SourceModule(
        path=path,
        module=module,
        source=text,
        tree=tree,
        suppressions=parse_suppressions(text),
        is_package=is_package,
    )
    return source, None


def _load_file(
    path: Path,
) -> Tuple[Optional[SourceModule], Optional[Finding]]:
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return None, Finding(
            str(path), 1, 1, PARSE_RULE, f"unreadable source: {exc}",
        )
    return _load_source(
        text,
        path=str(path),
        module=module_name_for(path),
        is_package=path.name == "__init__.py",
    )


def _run_rules(
    sources: Sequence[SourceModule], rules: Optional[Sequence[str]]
) -> List[Finding]:
    findings: List[Finding] = []
    for rule in make_rules(rules):
        applicable = [
            source for source in sources if rule.applies_to(source.module)
        ]
        for source in applicable:
            findings.extend(rule.check_module(source))
        findings.extend(rule.check_project(applicable))
    by_path = {source.path: source.suppressions for source in sources}
    return [
        finding
        for finding in findings
        if finding.rule
        not in by_path.get(finding.path, {}).get(finding.line, frozenset())
    ]


def lint_paths(
    paths: Sequence, rules: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Lint files and directories; returns sorted findings.

    ``rules`` restricts the run to the given rule ids (default: every
    registered rule).  Unknown rules and missing paths raise
    :class:`~repro.lint.model.LintUsageError`.
    """
    sources: List[SourceModule] = []
    findings: List[Finding] = []
    for file in discover_files(paths):
        source, parse_finding = _load_file(file)
        if parse_finding is not None:
            findings.append(parse_finding)
        elif source is not None:
            sources.append(source)
    findings.extend(_run_rules(sources, rules))
    return sorted(findings)


def lint_sources(
    items: Sequence[Tuple[str, str]],
    rules: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint in-memory sources given as ``(module_name, text)`` pairs.

    The fixture entry point: tests hand the engine snippets under
    chosen module names (``repro.exper._fixture``) to exercise scoped
    rules without touching the filesystem.  Paths in the returned
    findings are ``<module_name>``.
    """
    sources: List[SourceModule] = []
    findings: List[Finding] = []
    for module, text in items:
        source, parse_finding = _load_source(
            text, path=f"<{module}>", module=module, is_package=False
        )
        if parse_finding is not None:
            findings.append(parse_finding)
        elif source is not None:
            sources.append(source)
    findings.extend(_run_rules(sources, rules))
    return sorted(findings)


def lint_source(
    text: str, *, module: str, rules: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Lint a single in-memory source under an explicit module name."""
    return lint_sources([(module, text)], rules)


def iter_suppressions(paths: Sequence) -> List[SuppressionSite]:
    """Every ``# repro-lint: disable=`` comment under ``paths``.

    One :class:`~repro.lint.model.SuppressionSite` per comment, in
    (path, line) order — the audit view tests use to pin the
    suppression inventory.
    """
    sites: List[SuppressionSite] = []
    for file in discover_files(paths):
        try:
            text = file.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            continue
        for line, rule_ids, _standalone in comment_sites(text):
            sites.append(SuppressionSite(str(file), line, rule_ids))
    return sites
