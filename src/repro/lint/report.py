"""Reporters and exit codes for :mod:`repro.lint`.

Two output shapes: a compiler-style text report (``path:line:col:
RULE message``, one finding per line) and a versioned JSON document
for tooling.  Exit codes follow the usual linter convention:
``EXIT_CLEAN`` (0) no findings, ``EXIT_FINDINGS`` (1) at least one
finding, ``EXIT_USAGE`` (2) bad invocation.
"""

from __future__ import annotations

from typing import Sequence

from .model import Finding

__all__ = [
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_USAGE",
    "render_text",
    "to_json",
]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def render_text(findings: Sequence[Finding]) -> str:
    """The human-readable report: one line per finding plus a tally."""
    if not findings:
        return "repro-lint: clean (0 findings)"
    lines = [finding.render() for finding in findings]
    lines.append(f"repro-lint: {len(findings)} finding(s)")
    return "\n".join(lines)


def to_json(findings: Sequence[Finding]) -> dict:
    """The machine-readable report (``schema: 1``)."""
    return {
        "schema": 1,
        "count": len(findings),
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "rule": finding.rule,
                "message": finding.message,
            }
            for finding in findings
        ],
    }
