"""Core data types shared by the :mod:`repro.lint` framework.

Kept free of engine and rule imports so that every other module in the
package (engine, reporters, rules) can depend on it without cycles —
the linter has to pass its own DEP002 rule.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Mapping

__all__ = [
    "Finding",
    "LintUsageError",
    "SourceModule",
    "SuppressionSite",
]


class LintUsageError(Exception):
    """The linter was invoked incorrectly (unknown rule, missing path).

    Maps to exit code 2 in the CLI, distinct from exit code 1 which
    means "the code has findings".
    """


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Orders by (path, line, col, rule) so reports are deterministic
    regardless of rule execution order.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """The text-reporter line: ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class SuppressionSite:
    """One ``# repro-lint: disable=RULE`` comment found in a file.

    Distinct from the per-line suppression *effect* (a standalone
    comment also covers the following line): tests that audit the
    suppression inventory — e.g. "RNG001 is disabled exactly once in
    the library" — count sites, not covered lines.
    """

    path: str
    line: int
    rules: frozenset[str]


@dataclass
class SourceModule:
    """A parsed source file plus the context rules need to judge it.

    ``module`` is the dotted module name inferred from the package
    layout (``repro.exper.runner``); rules use it for scoping, so
    fixture snippets in tests pass an explicit name to opt into a
    rule's jurisdiction.  ``suppressions`` maps a line number to the
    set of rule ids disabled on that line.
    """

    path: str
    module: str
    source: str
    tree: ast.Module
    suppressions: Mapping[int, frozenset] = field(default_factory=dict)
    is_package: bool = False
