"""``repro.lint`` — the repo's invariants as a static-analysis pass.

The reproduction's scientific claims rest on properties the test
suite can only check *dynamically* and expensively: byte-identical
results across executors and engines, stdlib-only portability, and
the determinism of seeded trials that makes resume and sharding
possible.  This package checks the classes of regression that break
those properties at **parse time**, before any golden test has to
fail:

* :mod:`rules <repro.lint.rules>` — the catalog: RNG discipline
  (RNG001/RNG002), the stdlib-only contract and import layering
  (DEP001/DEP002), async safety in the serve tier (ASY001), and the
  public-docstring policy (DOC001);
* :mod:`engine <repro.lint.engine>` — discovery, parsing, module-name
  inference, and the driver;
* :mod:`suppress <repro.lint.suppress>` — per-line
  ``# repro-lint: disable=RULE`` suppressions;
* :mod:`report <repro.lint.report>` — text/JSON reporters and exit
  codes.

CLI: ``repro-roa lint [--json] [--rule RULE] [paths]`` (defaults to
the installed ``repro`` package); the CI ``lint`` job gates every
push on a clean tree.  See ``docs/linting.md`` for the rule catalog
and suppression syntax.  The package is stdlib-only and imports
nothing else from ``repro`` — it has to pass its own layering rule.
"""

from __future__ import annotations

from .engine import (
    PARSE_RULE,
    discover_files,
    iter_suppressions,
    lint_paths,
    lint_source,
    lint_sources,
    module_name_for,
)
from .model import Finding, LintUsageError, SourceModule, SuppressionSite
from .report import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    render_text,
    to_json,
)
from .rules import Rule, make_rules, register, rule_catalog

__all__ = [
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_USAGE",
    "Finding",
    "LintUsageError",
    "PARSE_RULE",
    "Rule",
    "SourceModule",
    "SuppressionSite",
    "discover_files",
    "iter_suppressions",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "make_rules",
    "module_name_for",
    "register",
    "render_text",
    "rule_catalog",
    "to_json",
]
