"""RNG discipline rules.

The repro's statistical claims rest on seeded, injected randomness:
every random draw flows through a ``random.Random`` instance owned by
the experiment spec, so trials are reproducible, shardable, and
byte-identical across executors.  Two rules guard that contract:

* **RNG001** — no use of the process-global ``random`` module API
  anywhere in the library.  Only the ``Random`` class may be touched
  (to construct injectable instances); ``random.random()``,
  ``random.seed()``, ``random.shuffle()`` and friends all mutate one
  hidden global Mersenne Twister that any import can perturb.
  Function-local ``import random`` is also flagged: it hides RNG use
  from review.  The single sanctioned exception — the OS-entropy
  bootstrap in ``repro.crypto.rsa`` — carries an explicit
  ``# repro-lint: disable=RNG001`` suppression.

* **RNG002** — in result-affecting packages (``exper``, ``bgp``,
  ``results``) no iteration over a set-valued expression unless it is
  wrapped in ``sorted(...)``.  Set iteration order depends on
  PYTHONHASHSEED; feeding it into a result or an RNG-consuming loop
  silently breaks cross-run determinism.  (Dict iteration is exempt:
  dicts preserve insertion order, which is deterministic when the
  insertions are.)
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Set

from ..model import Finding, SourceModule
from .base import Rule, register

__all__ = ["GlobalRandomRule", "SetIterationRule"]

_ALLOWED_RANDOM_ATTRS = frozenset({"Random"})


def _function_local_imports(tree: ast.Module) -> Iterator[ast.Import]:
    """Yield ``import random`` statements nested inside function bodies."""

    def visit(node: ast.AST, in_function: bool) -> Iterator[ast.Import]:
        for child in ast.iter_child_nodes(node):
            if in_function and isinstance(child, ast.Import):
                if any(alias.name == "random" for alias in child.names):
                    yield child
            nested = in_function or isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            )
            yield from visit(child, nested)

    return visit(tree, False)


@register
class GlobalRandomRule(Rule):
    """RNG001: randomness must flow through injected ``random.Random``."""

    rule_id = "RNG001"
    summary = (
        "no process-global random module use: inject a seeded "
        "random.Random (the crypto entropy bootstrap is the one "
        "documented suppression)"
    )

    def check_module(self, src: SourceModule) -> Iterable[Finding]:
        findings: List[Finding] = []
        aliases: Set[str] = set()
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        aliases.add(alias.asname or "random")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    for alias in node.names:
                        if alias.name not in _ALLOWED_RANDOM_ATTRS:
                            findings.append(Finding(
                                src.path, node.lineno, node.col_offset + 1,
                                self.rule_id,
                                f"`from random import {alias.name}` binds "
                                f"the process-global RNG; import Random "
                                f"and inject a seeded instance",
                            ))
        for node in _function_local_imports(src.tree):
            findings.append(Finding(
                src.path, node.lineno, node.col_offset + 1, self.rule_id,
                "function-local `import random` hides global-RNG use "
                "from review; import at module scope and construct an "
                "injected random.Random",
            ))
        if aliases:
            for node in ast.walk(src.tree):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id in aliases
                    and node.attr not in _ALLOWED_RANDOM_ATTRS
                ):
                    findings.append(Finding(
                        src.path, node.lineno, node.col_offset + 1,
                        self.rule_id,
                        f"`random.{node.attr}` uses the process-global "
                        f"RNG; all randomness must flow through an "
                        f"injected random.Random",
                    ))
        return findings


_SET_FACTORIES = frozenset({"set", "frozenset"})
_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference", "copy",
})
_SET_ANNOTATIONS = (
    "set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet",
)
# Calls whose result depends on the iteration order of their first
# argument.  min/max/sum/len/any/all are order-independent, and
# sorted() is the sanctioned canonicalizer, so none of those appear.
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate", "iter"})


def _annotation_is_set(node: ast.AST) -> bool:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover — unparse of valid AST
        return False
    text = text.removeprefix("typing.").removeprefix("t.")
    return text in _SET_ANNOTATIONS or text.startswith(
        tuple(f"{name}[" for name in _SET_ANNOTATIONS)
    )


def _directly_set_valued(node: ast.AST, set_names: frozenset) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _SET_FACTORIES:
            return True
        if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
            return _directly_set_valued(func.value, set_names)
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _directly_set_valued(
            node.left, set_names
        ) or _directly_set_valued(node.right, set_names)
    return False


def _set_valued_names(tree: ast.Module) -> frozenset:
    """Names whose every assignment/annotation is set-valued.

    Flow-insensitive and deliberately conservative: one non-set
    assignment vetoes the name.
    """
    candidates: Set[str] = set()
    vetoed: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            if len(node.targets) == 1 and isinstance(
                node.targets[0], ast.Name
            ):
                name = node.targets[0].id
                if _directly_set_valued(node.value, frozenset()):
                    candidates.add(name)
                else:
                    vetoed.add(name)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                if _annotation_is_set(node.annotation):
                    candidates.add(node.target.id)
                else:
                    vetoed.add(node.target.id)
        elif isinstance(node, ast.arg):
            if node.annotation is not None and _annotation_is_set(
                node.annotation
            ):
                candidates.add(node.arg)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            # Loop variables shadow anything we inferred.
            for target in ast.walk(node.target):
                if isinstance(target, ast.Name):
                    vetoed.add(target.id)
    return frozenset(candidates - vetoed)


@register
class SetIterationRule(Rule):
    """RNG002: no unsorted set iteration in result-affecting paths."""

    rule_id = "RNG002"
    summary = (
        "result-affecting packages (exper, bgp, results) must not "
        "iterate set-valued expressions unsorted: set order is "
        "PYTHONHASHSEED-dependent; wrap in sorted(...)"
    )
    packages = ("exper", "bgp", "results")

    def check_module(self, src: SourceModule) -> Iterable[Finding]:
        findings: List[Finding] = []
        set_names = _set_valued_names(src.tree)

        def check(expr: ast.AST) -> None:
            if _directly_set_valued(expr, set_names):
                findings.append(Finding(
                    src.path, expr.lineno, expr.col_offset + 1,
                    self.rule_id,
                    "iteration order of a set is PYTHONHASHSEED-"
                    "dependent and this is a result-affecting path; "
                    "wrap the expression in sorted(...)",
                ))

        for node in ast.walk(src.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                check(node.iter)
            elif isinstance(
                node,
                (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
            ):
                for generator in node.generators:
                    check(generator.iter)
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in _ORDER_SENSITIVE_CALLS
                    and node.args
                ):
                    check(node.args[0])
        return findings
