"""Async safety: no blocking calls inside the serve tier's event loop.

**ASY001** — the serve tier is one asyncio loop fanning a table encode
out to every connected router; a single blocking call inside an
``async def`` stalls every session at once.  Flagged inside async
function bodies in ``repro.serve``:

* ``time.sleep(...)`` — use ``await asyncio.sleep(...)``;
* bare ``open(...)`` and ``Path.read_text/write_text/read_bytes/
  write_bytes`` — do file I/O before entering the loop or in a thread;
* any ``subprocess.*`` / ``os.system`` / ``os.popen`` call;
* synchronous socket module calls (``socket.create_connection``,
  ``socket.getaddrinfo``, ...) and socket-shaped methods
  (``.accept()``, ``.recv()``, ``.connect()``, ``.sendall()``, ...) —
  use asyncio streams or ``loop.sock_*``.

Synchronous helper functions *defined* inside an async body are not
walked: they run wherever they are called from, which the caller's
own context judges.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..model import Finding, SourceModule
from .base import Rule, register

__all__ = ["BlockingCallRule"]

# module.attr calls that block the loop outright.
_BLOCKING_MODULE_CALLS = {
    "time": frozenset({"sleep"}),
    "os": frozenset({"system", "popen", "waitpid", "wait"}),
    "socket": frozenset({
        "create_connection", "getaddrinfo", "gethostbyname",
        "gethostbyaddr", "getfqdn",
    }),
}
# Any call on the subprocess module blocks or forks; all flagged.
_BLOCKING_MODULES = frozenset({"subprocess"})
# Method names that are socket/file blocking operations on any receiver.
_BLOCKING_METHODS = frozenset({
    "accept", "recv", "recv_into", "recvfrom", "sendall", "connect",
    "read_text", "write_text", "read_bytes", "write_bytes",
})


def _blocking_reason(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "open":
            return ("bare open() blocks the event loop; read the file "
                    "before entering the loop or use a thread")
        return ""
    if isinstance(func, ast.Attribute):
        attr = func.attr
        if isinstance(func.value, ast.Name):
            module = func.value.id
            if module in _BLOCKING_MODULES:
                return (f"{module}.{attr}() blocks the event loop; "
                        f"use asyncio.create_subprocess_*")
            if attr in _BLOCKING_MODULE_CALLS.get(module, ()):
                hint = (
                    "use `await asyncio.sleep(...)`"
                    if (module, attr) == ("time", "sleep")
                    else "use the asyncio equivalent"
                )
                return f"{module}.{attr}() blocks the event loop; {hint}"
        if attr in _BLOCKING_METHODS:
            return (f".{attr}() looks like a blocking socket/file "
                    f"operation; use asyncio streams or loop.sock_*")
    return ""


@register
class BlockingCallRule(Rule):
    """ASY001: no blocking calls inside async def bodies in repro.serve."""

    rule_id = "ASY001"
    summary = (
        "no blocking calls (time.sleep, bare open(), subprocess, "
        "synchronous socket ops) inside async def bodies in the serve "
        "tier"
    )
    packages = ("serve",)

    def check_module(self, src: SourceModule) -> Iterable[Finding]:
        findings: List[Finding] = []

        def visit(node: ast.AST, in_async: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.AsyncFunctionDef):
                    visit(child, True)
                    continue
                if isinstance(child, (ast.FunctionDef, ast.Lambda)):
                    visit(child, False)
                    continue
                if in_async and isinstance(child, ast.Call):
                    reason = _blocking_reason(child)
                    if reason:
                        findings.append(Finding(
                            src.path, child.lineno, child.col_offset + 1,
                            self.rule_id, reason,
                        ))
                visit(child, in_async)

        visit(src.tree, False)
        return findings
