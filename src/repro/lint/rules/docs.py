"""Documentation policy as a static rule.

**DOC001** — generalizes the runtime docstring policy that used to
live only in ``tests/test_docs.py`` (and only for four packages) to
the whole library, at parse time:

* every module carries a module docstring;
* every top-level class or function *defined in a module and listed
  in that module's* ``__all__`` carries a docstring.

Constants in ``__all__`` are exempt (they document themselves in
context), as are re-exports — a name in a package ``__init__``'s
``__all__`` that is defined elsewhere is judged in its defining
module.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from ..model import Finding, SourceModule
from .base import Rule, register

__all__ = ["DocstringRule"]


def _declared_all(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                try:
                    value = ast.literal_eval(node.value)
                except ValueError:
                    continue
                names.update(
                    name for name in value if isinstance(name, str)
                )
    return names


@register
class DocstringRule(Rule):
    """DOC001: public surface must be documented."""

    rule_id = "DOC001"
    summary = (
        "every module needs a docstring, and so does every top-level "
        "class/function listed in its module's __all__"
    )

    def check_module(self, src: SourceModule) -> Iterable[Finding]:
        findings: List[Finding] = []
        if not (ast.get_docstring(src.tree) or "").strip():
            findings.append(Finding(
                src.path, 1, 1, self.rule_id,
                f"module `{src.module}` has no docstring",
            ))
        exported = _declared_all(src.tree)
        if not exported:
            return findings
        for node in src.tree.body:
            if not isinstance(
                node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if node.name not in exported:
                continue
            if not (ast.get_docstring(node) or "").strip():
                kind = (
                    "class" if isinstance(node, ast.ClassDef) else "function"
                )
                findings.append(Finding(
                    src.path, node.lineno, node.col_offset + 1,
                    self.rule_id,
                    f"public {kind} `{node.name}` (exported via "
                    f"__all__) has no docstring",
                ))
        return findings
