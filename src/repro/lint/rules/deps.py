"""Dependency rules: the stdlib-only contract and the layering DAG.

* **DEP001** — every absolute import in the library must resolve to
  the standard library or to ``repro`` itself.  The reproduction's
  portability claim is "stdlib-only"; optional accelerators must be
  gated or stubbed, never imported unconditionally.

* **DEP002** — cross-package imports must respect the layer order
  (low to high)::

      obs                                   (leaf: imports no repro)
      netbase / asn1 / crypto / faults
      rpki / bgp / data / rtr
      exper / results
      serve
      jobs
      core / analysis / lint
      cli  (and the repro package root)

  A module may import its own layer or any lower one; ``repro.obs``
  is importable from everywhere but must itself import nothing from
  ``repro``.  On top of the layer check, DEP002 detects import cycles
  at module granularity over *runtime module-level* imports — edges
  inside ``if TYPE_CHECKING:`` blocks or function bodies are lazy by
  construction and excluded from the cycle graph (they still count
  for layering).
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

from ..model import Finding, SourceModule
from .base import Rule, register

__all__ = ["ImportEdge", "LayeringRule", "StdlibOnlyRule", "module_edges"]

_LAYERS: Tuple[Tuple[str, ...], ...] = (
    ("obs",),
    ("netbase", "asn1", "crypto", "faults"),
    ("rpki", "bgp", "data", "rtr"),
    ("exper", "results"),
    ("serve",),
    ("jobs",),
    ("core", "analysis", "lint"),
    ("cli", ""),  # "" is the repro package root (repro/__init__.py)
)
_RANK: Dict[str, int] = {
    package: rank
    for rank, layer in enumerate(_LAYERS)
    for package in layer
}


@dataclass(frozen=True)
class ImportEdge:
    """One import statement, resolved to a dotted target module name.

    ``runtime_toplevel`` is False for imports inside function bodies
    or ``if TYPE_CHECKING:`` blocks — those are lazy and do not
    participate in cycle detection.
    """

    target: str
    line: int
    col: int
    runtime_toplevel: bool


def _is_type_checking(test: ast.AST) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _relative_anchor(src: SourceModule, level: int) -> List[str]:
    parts = src.module.split(".")
    if not src.is_package:
        parts = parts[:-1]
    if level > 1:
        parts = parts[: len(parts) - (level - 1)]
    return parts


def module_edges(src: SourceModule) -> List[ImportEdge]:
    """Every import in ``src`` as a resolved :class:`ImportEdge`.

    ``from P import name`` yields an edge to ``P.name`` — the engine
    later snaps it back to ``P`` when no module ``P.name`` exists, so
    symbol imports land on the defining package and submodule imports
    land on the submodule.
    """
    edges: List[ImportEdge] = []

    def visit(node: ast.AST, runtime: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.If) and _is_type_checking(child.test):
                for stmt in child.body:
                    visit_stmt(stmt, False)
                for stmt in child.orelse:
                    visit_stmt(stmt, runtime)
                continue
            visit_stmt(child, runtime)

    def visit_stmt(child: ast.AST, runtime: bool) -> None:
        nested_runtime = runtime and not isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        )
        if isinstance(child, ast.Import):
            for alias in child.names:
                edges.append(ImportEdge(
                    alias.name, child.lineno, child.col_offset + 1, runtime,
                ))
        elif isinstance(child, ast.ImportFrom):
            if child.level == 0:
                base = (child.module or "").split(".")
            else:
                anchor = _relative_anchor(src, child.level)
                base = anchor + (
                    child.module.split(".") if child.module else []
                )
            for alias in child.names:
                edges.append(ImportEdge(
                    ".".join(base + [alias.name]),
                    child.lineno, child.col_offset + 1, runtime,
                ))
        visit(child, nested_runtime)

    visit(src.tree, True)
    return edges


def _package_of(module: str) -> str:
    parts = module.split(".")
    return parts[1] if len(parts) > 1 else ""


@register
class StdlibOnlyRule(Rule):
    """DEP001: the library imports only the stdlib and itself."""

    rule_id = "DEP001"
    summary = (
        "stdlib-only: every absolute import must resolve to the "
        "standard library or to repro itself (gate or stub optional "
        "dependencies)"
    )

    def check_module(self, src: SourceModule) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(src.tree):
            names: List[Tuple[str, int, int]] = []
            if isinstance(node, ast.Import):
                names = [
                    (alias.name, node.lineno, node.col_offset + 1)
                    for alias in node.names
                ]
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                names = [(node.module or "", node.lineno,
                          node.col_offset + 1)]
            for name, line, col in names:
                top = name.split(".")[0]
                if top == "repro" or top in sys.stdlib_module_names:
                    continue
                findings.append(Finding(
                    src.path, line, col, self.rule_id,
                    f"non-stdlib import `{name}`: the library is "
                    f"stdlib-only; gate or stub optional dependencies",
                ))
        return findings


@register
class LayeringRule(Rule):
    """DEP002: cross-package imports follow the layer DAG, no cycles."""

    rule_id = "DEP002"
    summary = (
        "import layering: netbase/asn1/crypto/faults -> "
        "rpki/bgp/data/rtr -> "
        "exper/results -> serve -> jobs -> core/analysis/lint -> "
        "cli, with "
        "repro.obs a leaf importable by all; no module-level import "
        "cycles"
    )

    def check_module(self, src: SourceModule) -> Iterable[Finding]:
        findings: List[Finding] = []
        source_package = _package_of(src.module)
        for edge in module_edges(src):
            if edge.target != "repro" and not edge.target.startswith(
                "repro."
            ):
                continue
            target_package = _package_of(edge.target)
            if target_package == source_package:
                continue
            if source_package == "obs":
                findings.append(Finding(
                    src.path, edge.line, edge.col, self.rule_id,
                    f"repro.obs is a leaf: it is importable from every "
                    f"layer and must import nothing from repro, but "
                    f"imports `{edge.target}`",
                ))
                continue
            for package in (source_package, target_package):
                if package not in _RANK:
                    findings.append(Finding(
                        src.path, edge.line, edge.col, self.rule_id,
                        f"package `repro.{package}` is not in the "
                        f"layering map; add it to a layer in "
                        f"repro.lint.rules.deps._LAYERS (see "
                        f"docs/linting.md)",
                    ))
                    break
            else:
                if _RANK[target_package] > _RANK[source_package]:
                    source_name = (
                        f"repro.{source_package}"
                        if source_package else "repro"
                    )
                    findings.append(Finding(
                        src.path, edge.line, edge.col, self.rule_id,
                        f"layering violation: {source_name} (layer "
                        f"{_RANK[source_package]}) may not import "
                        f"`repro.{target_package}` (layer "
                        f"{_RANK[target_package]})",
                    ))
        return findings

    def check_project(
        self, sources: Sequence[SourceModule]
    ) -> Iterable[Finding]:
        known = {src.module: src for src in sources if src.module}
        graph: Dict[str, List[Tuple[str, int]]] = {}
        for src in sources:
            targets: List[Tuple[str, int]] = []
            for edge in module_edges(src):
                if not edge.runtime_toplevel:
                    continue
                target = edge.target
                if target not in known:
                    # `from P import symbol`: snap to the package P.
                    target = target.rpartition(".")[0]
                if target in known and target != src.module:
                    targets.append((target, edge.line))
            graph[src.module] = targets
        findings: List[Finding] = []
        for cycle in _import_cycles(graph):
            anchor = min(cycle)
            start = cycle.index(anchor)
            ordered = cycle[start:] + cycle[:start]
            line = next(
                (
                    line
                    for target, line in graph[anchor]
                    if target == ordered[1 % len(ordered)]
                ),
                1,
            )
            findings.append(Finding(
                known[anchor].path, line, 1, self.rule_id,
                "module-level import cycle: "
                + " -> ".join(ordered + [anchor])
                + " (break it with a function-local or TYPE_CHECKING "
                "import)",
            ))
        return findings


def _import_cycles(
    graph: Dict[str, List[Tuple[str, int]]]
) -> Iterator[List[str]]:
    """Strongly connected components with more than one member.

    Iterative Tarjan; yields each cycle as a list of module names in
    discovery order (deterministic for a given graph).
    """
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]

    def strongconnect(root: str) -> Iterator[List[str]]:
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            children = [target for target, _ in graph.get(node, ())]
            for position in range(child_index, len(children)):
                child = children[position]
                if child not in index:
                    work.append((node, position + 1))
                    work.append((child, 0))
                    recurse = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if recurse:
                continue
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    yield list(reversed(component))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])

    for node in sorted(graph):
        if node not in index:
            yield from strongconnect(node)
