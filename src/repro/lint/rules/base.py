"""The rule protocol and the rule registry.

A rule is a class with a ``rule_id``, a one-line ``summary``, and two
hooks: :meth:`Rule.check_module` runs once per applicable source file,
:meth:`Rule.check_project` runs once over all applicable files (for
cross-file analyses like import-cycle detection).  Registration is a
decorator; the registry is the single source of truth the CLI's
``--rule`` / ``--list-rules`` flags and the reporters consult.

Scoping: rules only ever judge modules inside the ``repro`` package —
the invariants they encode are library contracts, not universal style.
A rule may narrow further to specific sub-packages via ``packages``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from ..model import Finding, LintUsageError, SourceModule

__all__ = ["Rule", "make_rules", "register", "rule_catalog"]


class Rule:
    """Base class for lint rules; subclass and decorate with @register."""

    rule_id: str = ""
    summary: str = ""
    #: Top-level ``repro`` sub-packages this rule judges; None = all.
    packages: Optional[Tuple[str, ...]] = None

    def applies_to(self, module: str) -> bool:
        """True when this rule has jurisdiction over ``module``."""
        if not module:
            return False
        if module != "repro" and not module.startswith("repro."):
            return False
        if self.packages is None:
            return True
        parts = module.split(".")
        return len(parts) > 1 and parts[1] in self.packages

    def check_module(self, src: SourceModule) -> Iterable[Finding]:
        """Per-file findings; default none."""
        return ()

    def check_project(
        self, sources: Sequence[SourceModule]
    ) -> Iterable[Finding]:
        """Cross-file findings over every applicable module; default none."""
        return ()


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (ids are unique)."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def rule_catalog() -> Dict[str, str]:
    """``{rule_id: summary}`` for every registered rule, sorted by id."""
    return {
        rule_id: _REGISTRY[rule_id].summary for rule_id in sorted(_REGISTRY)
    }


def make_rules(selected: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instantiate the selected rules (default: all), sorted by id.

    Unknown ids raise :class:`~repro.lint.model.LintUsageError` — the
    CLI turns that into exit code 2.
    """
    if selected is None:
        chosen = sorted(_REGISTRY)
    else:
        chosen = sorted({rule_id.upper() for rule_id in selected})
        unknown = [rule_id for rule_id in chosen if rule_id not in _REGISTRY]
        if unknown:
            raise LintUsageError(
                f"unknown rule(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(_REGISTRY))}"
            )
    return [_REGISTRY[rule_id]() for rule_id in chosen]
