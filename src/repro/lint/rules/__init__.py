"""The rule catalog for :mod:`repro.lint`.

Importing this package populates the registry: each rule module
registers its rules at import time via the ``@register`` decorator in
:mod:`repro.lint.rules.base`.  The shipped catalog:

==========  ==========================================================
RNG001      no process-global ``random`` use (inject ``random.Random``)
RNG002      no unsorted set iteration in result-affecting paths
DEP001      stdlib-only imports
DEP002      import-layering DAG + module-level cycle detection
ASY001      no blocking calls inside async bodies in the serve tier
DOC001      public docstring policy
==========  ==========================================================
"""

from __future__ import annotations

from .base import Rule, make_rules, register, rule_catalog
from . import asyncsafe, deps, docs, rng

#: Importing a rule module registers its rules; this tuple both keeps
#: the imports visibly load-bearing and documents the shipped set.
RULE_MODULES = (asyncsafe, deps, docs, rng)

__all__ = ["Rule", "RULE_MODULES", "make_rules", "register", "rule_catalog"]
