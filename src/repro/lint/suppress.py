"""Parsing of ``# repro-lint: disable=RULE[,RULE...]`` comments.

Semantics, kept deliberately small:

* a trailing comment suppresses the listed rules on its own line::

      value = random.SystemRandom()  # repro-lint: disable=RNG001

* a comment that stands alone on its line also covers the line
  directly below it — the form long lines need::

      # repro-lint: disable=RNG001
      value = random.Random(random.SystemRandom().getrandbits(64))

There is no file- or block-scoped disable: every suppression is a
visible, greppable, per-line decision, which is what lets the test
suite assert e.g. that RNG001 is suppressed exactly once in the tree.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, List, Tuple

__all__ = ["comment_sites", "parse_suppressions"]

_DISABLE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")


def comment_sites(source: str) -> List[Tuple[int, frozenset, bool]]:
    """All suppression comments in ``source``.

    Returns ``(line, rule_ids, standalone)`` triples, one per comment
    — the inventory view used by :func:`repro.lint.iter_suppressions`.
    """
    sites: List[Tuple[int, frozenset, bool]] = []
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type != tokenize.COMMENT:
                continue
            match = _DISABLE.search(token.string)
            if match is None:
                continue
            rules = frozenset(
                part.strip().upper()
                for part in match.group(1).split(",")
                if part.strip()
            )
            if not rules:
                continue
            standalone = token.line[: token.start[1]].strip() == ""
            sites.append((token.start[0], rules, standalone))
    except (tokenize.TokenError, IndentationError):
        # The engine only tokenizes sources that already parsed as
        # AST, so this is unreachable in practice; return what we saw.
        pass
    return sites


def parse_suppressions(source: str) -> Dict[int, frozenset]:
    """Map each line number to the rule ids suppressed on it."""
    effective: Dict[int, set] = {}
    for line, rules, standalone in comment_sites(source):
        effective.setdefault(line, set()).update(rules)
        if standalone:
            effective.setdefault(line + 1, set()).update(rules)
    return {line: frozenset(rules) for line, rules in effective.items()}
