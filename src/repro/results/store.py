"""A directory of durable runs, and operations across them.

The layout is deliberately boring — one JSONL run file per run id
under one root::

    results/
        baseline.jsonl
        shard-0.jsonl
        shard-1.jsonl
        merged.jsonl

which is exactly what a sharded executor needs: every shard appends
its own run file (same spec, disjoint trials), and
:func:`merge_runs` unions them into one run that aggregates as if a
single machine had produced it.  :func:`run_result` turns any run
file — complete, early-stopped, or interrupted mid-flight — into the
:class:`~repro.exper.aggregate.ExperimentResult` over its completed
trial prefix.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..netbase.errors import ReproError
from .sinks import (
    RunHeader,
    _dedupe,
    _encode_line,
    check_header_compatible,
    read_run,
)

if TYPE_CHECKING:  # pragma: no cover — typing only (import-cycle care)
    from ..exper.aggregate import ExperimentResult
    from ..exper.evaluate import TrialRecord

__all__ = [
    "ResultsStore",
    "merge_runs",
    "result_to_json",
    "run_ci_document",
    "run_diff_document",
    "run_result",
    "shard_run_id",
]

_RUN_ID = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def shard_run_id(base: str, shard_index: int, shard_count: int) -> str:
    """The canonical run id of one shard of a sharded run.

    ``base`` names the whole run; the suffix pins both the shard's
    position and the plan width, so partials from differently-sharded
    runs of the same grid can never be confused for one another.  The
    result is always a valid :class:`ResultsStore` run id.
    """
    if shard_count < 1:
        raise ReproError("shard_count must be positive")
    if not 0 <= shard_index < shard_count:
        raise ReproError(
            f"shard index {shard_index} outside plan of {shard_count}"
        )
    width = len(str(shard_count - 1))
    run_id = f"{base}.shard{shard_index:0{width}d}of{shard_count}"
    if not _RUN_ID.match(run_id):
        raise ReproError(
            f"bad shard run id {run_id!r}: base {base!r} must use "
            f"letters, digits, '.', '_', '-'"
        )
    return run_id


class ResultsStore:
    """Runs as files: ``<root>/<run_id>.jsonl``."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def path(self, run_id: str) -> Path:
        """The run's file path; the id must be filesystem-plain."""
        if not _RUN_ID.match(run_id):
            raise ReproError(
                f"bad run id {run_id!r}: use letters, digits, '.', "
                f"'_', '-'"
            )
        return self.root / f"{run_id}.jsonl"

    def sink(self, run_id: str, *, fsync: bool = False):
        """A :class:`~repro.results.sinks.JsonlSink` for this run."""
        from .sinks import JsonlSink

        self.root.mkdir(parents=True, exist_ok=True)
        return JsonlSink(self.path(run_id), fsync=fsync)

    def run_ids(self) -> List[str]:
        """Every run in the store, sorted by id."""
        if not self.root.is_dir():
            return []
        return sorted(
            path.stem for path in self.root.glob("*.jsonl")
        )

    def read(self, run_id: str) -> Tuple[RunHeader, List["TrialRecord"]]:
        return read_run(self.path(run_id))

    def merge(
        self, out_id: str, run_ids: Sequence[str]
    ) -> Tuple[RunHeader, int]:
        """Union several of this store's runs into a new run."""
        self.root.mkdir(parents=True, exist_ok=True)
        return merge_runs(
            self.path(out_id), [self.path(run_id) for run_id in run_ids]
        )

    def shard_ids(self, base: str, shard_count: int) -> List[str]:
        """Every shard run id of a ``shard_count``-wide plan, in order."""
        return [
            shard_run_id(base, shard_index, shard_count)
            for shard_index in range(shard_count)
        ]


def merge_runs(
    out_path: Union[str, Path],
    in_paths: Iterable[Union[str, Path]],
) -> Tuple[RunHeader, int]:
    """Union shard-partial runs of one spec into a single run file.

    Every input must carry the same spec hash (and, when recorded, the
    same topology digest); records present in several inputs must be
    identical (they are re-evaluations of the same deterministic
    trial) and are written once.  The output is deterministic: header,
    then records sorted by grid coordinate — merging the same shards
    always produces the same bytes.
    """
    paths = [Path(p) for p in in_paths]
    if not paths:
        raise ReproError("merge needs at least one input run")
    header: Optional[RunHeader] = None
    pooled: List["TrialRecord"] = []
    for path in paths:
        run_header, records = read_run(path)
        if header is None:
            header = run_header
        else:
            check_header_compatible(run_header, header, str(path))
        pooled.extend(records)
    merged = _dedupe(pooled, "merge input")
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    with open(out_path, "wb") as fh:
        fh.write(_encode_line(header.to_json_dict()))
        for record in merged:
            fh.write(_encode_line(record.to_json_dict()))
    return header, len(merged)


def run_result(
    header: RunHeader,
    records: Sequence["TrialRecord"],
    *,
    bootstrap_resamples: int = 1000,
    confidence: float = 0.95,
) -> Tuple["ExperimentResult", int]:
    """Aggregate a run's records over their completed trial prefix.

    For a finished run this is exactly the runner's result.  For an
    interrupted or shard-partial run, each fraction aggregates the
    trials that are *consecutively complete from zero* (every cell
    present); records past that prefix — partial trials, or shard
    gaps — are dropped and counted in the returned ``dropped``.
    Fractions execute in order, so a run killed mid-grid leaves later
    fractions without any complete trial: those trailing fractions are
    omitted from the result (their stray records count as dropped),
    and only a run with *no* complete trial at all is an error.  The
    per-cell statistics of the fractions that are reported — bootstrap
    CIs included — are identical to a full run's, because fraction
    indices (which seed the bootstrap) are preserved by truncation.
    """
    # Imported here: repro.exper.aggregate itself streams through
    # repro.results.accumulate, so a module-level import would cycle.
    import dataclasses

    from ..exper.aggregate import aggregate_records

    spec = header.experiment_spec()
    cells = len(spec.cells)
    present = [
        [set() for _ in range(cells)] for _ in spec.fractions
    ]
    for record in records:
        if not (
            0 <= record.fraction_index < len(spec.fractions)
            and 0 <= record.cell_index < cells
        ):
            raise ReproError(
                f"record for cell {record.cell!r} addresses grid "
                f"coordinate ({record.fraction_index}, "
                f"{record.cell_index}) outside the spec"
            )
        present[record.fraction_index][record.cell_index].add(
            record.trial_index
        )
    counts = []
    for fraction_index in range(len(spec.fractions)):
        count = 0
        while count < spec.trials and all(
            count in cell for cell in present[fraction_index]
        ):
            count += 1
        counts.append(count)
    # Keep the leading fractions that completed at least one trial;
    # a complete trial *after* an empty fraction would mean the run
    # did not execute fractions in order — refuse to guess.
    live = len(counts)
    while live and counts[live - 1] == 0:
        live -= 1
    if live == 0:
        raise ReproError("no complete trials for fraction index 0")
    for fraction_index in range(live):
        if counts[fraction_index] == 0:
            raise ReproError(
                f"no complete trials for fraction index {fraction_index}"
            )
    view = spec
    if live < len(spec.fractions):
        view = dataclasses.replace(
            spec, fractions=spec.fractions[:live]
        )
    kept = [
        record
        for record in records
        if record.fraction_index < live
        and record.trial_index < counts[record.fraction_index]
    ]
    result = aggregate_records(
        view,
        kept,
        bootstrap_resamples=bootstrap_resamples,
        confidence=confidence,
        expected_trials=counts[:live],
    )
    return result, len(records) - len(kept)


def result_to_json(result: "ExperimentResult") -> dict:
    """JSON-ready view of an aggregated grid.

    The one canonical shape: ``repro-roa experiment --json``,
    ``repro-roa results show --json``, and the serve tier's
    ``/experiments/<run>/ci`` all emit exactly this, so a CI payload
    can be compared against the CLI's output field for field.
    """
    return {
        "fractions": list(result.fractions),
        "trials_per_cell": result.trials_per_cell,
        "trial_counts": list(result.trial_counts),
        "cells": [
            {
                "cell": stats.cell,
                "fraction": stats.fraction,
                "trials": stats.trials,
                "mean": stats.mean,
                "stdev": stats.stdev,
                "ci_low": stats.ci_low,
                "ci_high": stats.ci_high,
                "victim_mean": stats.victim_mean,
                "disconnected_mean": stats.disconnected_mean,
                "filtered_fraction": stats.filtered_fraction,
            }
            for row in result.stats
            for stats in row
        ],
    }


def _run_summary(
    run_id: str, header: RunHeader, records: int, dropped: int
) -> dict:
    return {
        "run": run_id,
        "spec_hash": header.spec_hash,
        "seed": header.seed,
        "engine": header.engine,
        "records": records,
        "dropped": dropped,
    }


def run_ci_document(
    run_id: str,
    header: RunHeader,
    records: Sequence["TrialRecord"],
    *,
    bootstrap_resamples: int = 1000,
    confidence: float = 0.95,
) -> dict:
    """The ``/experiments/<run>/ci`` payload for one recorded run.

    A pure function of the run's bytes: :func:`run_result` aggregates
    the completed trial prefix (bootstrap CIs seeded by grid
    coordinate, so they are deterministic), and the statistics land in
    the :func:`result_to_json` shape under ``"result"``.  Serialized
    with sorted keys and no whitespace, the same run file yields the
    same payload bytes in any process.
    """
    result, dropped = run_result(
        header,
        records,
        bootstrap_resamples=bootstrap_resamples,
        confidence=confidence,
    )
    document = _run_summary(run_id, header, len(records), dropped)
    document["bootstrap_resamples"] = bootstrap_resamples
    document["confidence"] = confidence
    document["result"] = result_to_json(result)
    return document


def _fraction_sort_key(fraction) -> tuple:
    # None (universal deployment) sorts below every numeric fraction.
    return (0, 0.0) if fraction is None else (1, fraction)


def run_diff_document(
    a_id: str,
    a_header: RunHeader,
    a_records: Sequence["TrialRecord"],
    b_id: str,
    b_header: RunHeader,
    b_records: Sequence["TrialRecord"],
    *,
    bootstrap_resamples: int = 1000,
    confidence: float = 0.95,
) -> dict:
    """The ``GET /diff?a=&b=`` payload: run-to-run comparison.

    Both runs aggregate through :func:`run_result`; grid coordinates
    are matched by (cell name, fraction) so one spec run under
    different engines, policies, or seeds lines up cell for cell.
    Coordinates present on only one side carry ``null`` for the other.
    Where both sides report, ``delta_mean`` is ``b - a`` and
    ``ci_overlap`` says whether the bootstrap intervals intersect —
    the paper's loose-MaxLength vs minimal-ROA comparisons read
    straight off it.  Cells are emitted in sorted (cell, fraction)
    order, so the document is deterministic for given run bytes.
    """
    a_result, a_dropped = run_result(
        a_header,
        a_records,
        bootstrap_resamples=bootstrap_resamples,
        confidence=confidence,
    )
    b_result, b_dropped = run_result(
        b_header,
        b_records,
        bootstrap_resamples=bootstrap_resamples,
        confidence=confidence,
    )

    def side_cells(result: "ExperimentResult") -> dict:
        return {
            (stats.cell, stats.fraction): stats
            for row in result.stats
            for stats in row
        }

    def side_entry(stats) -> dict:
        return {
            "trials": stats.trials,
            "mean": stats.mean,
            "stdev": stats.stdev,
            "ci_low": stats.ci_low,
            "ci_high": stats.ci_high,
            "victim_mean": stats.victim_mean,
            "disconnected_mean": stats.disconnected_mean,
            "filtered_fraction": stats.filtered_fraction,
        }

    a_cells = side_cells(a_result)
    b_cells = side_cells(b_result)
    cells = []
    for key in sorted(
        set(a_cells) | set(b_cells),
        key=lambda k: (k[0], _fraction_sort_key(k[1])),
    ):
        cell, fraction = key
        a_stats = a_cells.get(key)
        b_stats = b_cells.get(key)
        entry = {
            "cell": cell,
            "fraction": fraction,
            "a": None if a_stats is None else side_entry(a_stats),
            "b": None if b_stats is None else side_entry(b_stats),
        }
        if a_stats is not None and b_stats is not None:
            entry["delta_mean"] = b_stats.mean - a_stats.mean
            entry["ci_overlap"] = not (
                a_stats.ci_high < b_stats.ci_low
                or b_stats.ci_high < a_stats.ci_low
            )
        cells.append(entry)
    return {
        "a": _run_summary(a_id, a_header, len(a_records), a_dropped),
        "b": _run_summary(b_id, b_header, len(b_records), b_dropped),
        "spec_match": a_header.spec_hash == b_header.spec_hash,
        "bootstrap_resamples": bootstrap_resamples,
        "confidence": confidence,
        "cells": cells,
    }
