"""Live run state: what the serve tier answers ``/experiments`` with.

A :class:`RunRegistry` is a thread-safe map of run id → streaming
per-cell statistics.  An experiment publishes into it through a
:class:`ServePublisher` — an ordinary
:class:`~repro.results.sinks.ResultSink`, so the same record stream
that lands in a durable :class:`~repro.results.sinks.JsonlSink` can be
teed into the registry and show up, incrementally, on the query
service's HTTP endpoints while the run is still going.  Finished runs
sitting in a :class:`~repro.results.store.ResultsStore` can be loaded
in too, so one server answers for live and archived runs alike.

The registry is intentionally cheap to update: one lock, one Welford
update per record (see
:class:`~repro.results.accumulate.CellAccumulator`), JSON-ready
snapshots built only when asked.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..netbase.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover — typing only (import-cycle care)
    from ..exper.evaluate import TrialRecord
from .accumulate import GridAccumulator
from .sinks import ResultSink, RunHeader

__all__ = ["RunRegistry", "ServePublisher"]


class _LiveRun:
    """One run's registry entry (mutated only under the registry lock)."""

    def __init__(self, run_id: str, header: RunHeader) -> None:
        self.run_id = run_id
        self.header = header
        self.spec = header.experiment_spec()
        self.grid = GridAccumulator(self.spec)
        self.status = "running"
        self.trial_counts: Optional[tuple] = None
        self.shards: Optional[dict] = None

    @property
    def expected_records(self) -> int:
        return self.spec.total_trials * len(self.spec.cells)

    def summary(self) -> dict:
        return {
            "run": self.run_id,
            "status": self.status,
            "spec_hash": self.header.spec_hash,
            "seed": self.header.seed,
            "engine": self.header.engine,
            "records": self.grid.records,
            "expected_records": self.expected_records,
        }

    def snapshot(self) -> dict:
        snapshot = self.summary()
        snapshot["trials_per_cell"] = self.spec.trials
        snapshot["fractions"] = list(self.spec.fractions)
        snapshot["trial_counts"] = (
            None if self.trial_counts is None
            else list(self.trial_counts)
        )
        snapshot["cells"] = self.grid.live_snapshot()
        if self.shards is not None:
            snapshot["shards"] = {
                str(index): dict(state)
                for index, state in sorted(self.shards.items())
            }
        return snapshot


class RunRegistry:
    """Thread-safe live view of experiment runs, for the serve tier."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._runs: Dict[str, _LiveRun] = {}

    # -- publishing ----------------------------------------------------

    def publisher(self, run_id: str, *, metrics=None) -> "ServePublisher":
        """A sink that streams one run's records into this registry.

        Registering an id that already exists restarts that entry
        (the sink's ``begin`` resets it) — re-runs replace their
        earlier live state.  ``metrics`` may be a
        :class:`~repro.serve.metrics.ServeMetrics`; each published
        record then bumps its ``records_published`` counter.
        """
        return ServePublisher(self, run_id, metrics=metrics)

    def _begin(self, run_id: str, header: RunHeader) -> None:
        with self._lock:
            self._runs[run_id] = _LiveRun(run_id, header)

    def _observe(self, run_id: str, record: "TrialRecord") -> None:
        with self._lock:
            run = self._runs.get(run_id)
            if run is None:
                raise ReproError(
                    f"no live run named {run_id!r} to publish into"
                )
            run.grid.add(record)

    def _finish(self, run_id: str, trial_counts: Sequence[int]) -> None:
        with self._lock:
            run = self._runs.get(run_id)
            if run is not None:
                run.status = "finished"
                run.trial_counts = tuple(trial_counts)

    def update_shards(self, run_id: str, shards: dict) -> None:
        """Record a sharded run's per-shard progress snapshot.

        ``shards`` maps shard index to a JSON-ready dict (state,
        attempt, record count) as published by
        :class:`~repro.exper.sharded.ShardCoordinator`'s ``progress``
        hook.  Lenient on unknown run ids: the coordinator may publish
        before the run's header reaches the registry (or for runs the
        serve tier never registered), and progress reporting must
        never fail an experiment.
        """
        with self._lock:
            run = self._runs.get(run_id)
            if run is not None:
                run.shards = {
                    int(index): dict(state)
                    for index, state in shards.items()
                }

    # -- loading archived runs -----------------------------------------

    def ingest_run(
        self,
        run_id: str,
        header: RunHeader,
        records: Sequence["TrialRecord"],
        *,
        status: str = "finished",
    ) -> None:
        """Register an already-recorded run (e.g. from a store)."""
        run = _LiveRun(run_id, header)
        for record in records:
            run.grid.add(record)
        run.status = status
        with self._lock:
            self._runs[run_id] = run

    def load_store(self, store, *, strict: bool = False) -> int:
        """Ingest every readable run of a
        :class:`~repro.results.store.ResultsStore`; returns how many.

        A run file that cannot be read — headerless (killed before its
        first flush), interior corruption, conflicting duplicates, or
        plain filesystem trouble (permissions, a directory posing as a
        run) — is skipped by default, so one bad stray never takes the
        whole results directory off the air; pass ``strict=True`` to
        raise instead.
        """
        loaded = 0
        for run_id in store.run_ids():
            try:
                header, records = store.read(run_id)
                self.ingest_run(run_id, header, records)
            except (ReproError, OSError):
                if strict:
                    raise
                continue
            loaded += 1
        return loaded

    # -- serving -------------------------------------------------------

    def run_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._runs)

    def list_runs(self) -> List[dict]:
        """JSON-ready one-line summaries, sorted by run id."""
        with self._lock:
            return [
                self._runs[run_id].summary()
                for run_id in sorted(self._runs)
            ]

    def snapshot(self, run_id: str) -> Optional[dict]:
        """One run's JSON-ready live stats, or None if unknown."""
        with self._lock:
            run = self._runs.get(run_id)
            return None if run is None else run.snapshot()


class ServePublisher(ResultSink):
    """The sink face of a :class:`RunRegistry` entry.

    Tee it next to a durable sink and the serve tier's
    ``/experiments/<run>`` answers update with every released record::

        registry = RunRegistry()
        sink = TeeSink(JsonlSink(path), registry.publisher("run-1"))
        ExperimentRunner(topology, spec, sink=sink).run()
    """

    def __init__(
        self, registry: RunRegistry, run_id: str, *, metrics=None
    ) -> None:
        self.registry = registry
        self.run_id = run_id
        self.metrics = metrics

    def begin(self, header: RunHeader) -> None:
        self.registry._begin(self.run_id, header)

    def write(self, record: "TrialRecord") -> None:
        self.registry._observe(self.run_id, record)
        if self.metrics is not None:
            self.metrics.increment("records_published")

    def finish(self, trial_counts: Sequence[int]) -> None:
        self.registry._finish(self.run_id, trial_counts)
