"""Streaming per-cell accumulators for experiment records.

One :class:`CellAccumulator` per (fraction, cell) grid coordinate
absorbs :class:`~repro.exper.evaluate.TrialRecord`\\ s as they arrive —
in any order — and keeps exactly two things:

* the per-trial outcome rows (four numbers per trial, keyed by trial
  index) that the deterministic bootstrap needs to reproduce the final
  :class:`~repro.exper.aggregate.ExperimentResult` byte for byte, and
* online running statistics (Welford mean/variance over arrival
  order) cheap enough to publish live, mid-run, through the serve
  tier's ``/experiments`` endpoints.

Accumulators are mergeable: two accumulators fed disjoint trial sets
of the same run merge into the accumulator that saw both — the
property shard-partial runs (:func:`repro.results.store.merge_runs`)
are built on.  The driver holds one small row tuple per trial instead
of a whole :class:`TrialRecord` (cast tuples, names, indices), which
is what keeps streaming aggregation memory flat on huge grids.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from ..netbase.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover — typing only, avoids an import
    # cycle: repro.exper.aggregate streams through this module.
    from ..exper.evaluate import TrialRecord
    from ..exper.spec import ExperimentSpec

__all__ = ["CellAccumulator", "GridAccumulator"]

#: One trial's outcome in a cell: (attacker, victim, disconnected,
#: filtered) — everything CellStats needs, nothing it does not.
Row = Tuple[float, float, float, bool]


class CellAccumulator:
    """Streaming statistics for one (fraction, cell) grid coordinate.

    ``add`` absorbs records in any order; ``ordered_rows`` returns the
    trial-ordered outcome rows final aggregation feeds the bootstrap;
    ``live_snapshot`` is the cheap mid-run view (count, online mean,
    sample stdev) the serve tier publishes.
    """

    __slots__ = (
        "fraction_index",
        "cell_index",
        "cell_name",
        "fraction",
        "_rows",
        "_count",
        "_mean",
        "_m2",
    )

    def __init__(
        self,
        fraction_index: int,
        cell_index: int,
        cell_name: str,
        fraction: Optional[float],
    ) -> None:
        self.fraction_index = fraction_index
        self.cell_index = cell_index
        self.cell_name = cell_name
        self.fraction = fraction
        self._rows: Dict[int, Row] = {}
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def __len__(self) -> int:
        return len(self._rows)

    def add(self, record: "TrialRecord") -> None:
        """Absorb one record; duplicate trial indices are an error."""
        if record.trial_index in self._rows:
            raise ReproError(
                f"duplicate record for trial {record.trial_index} of "
                f"cell {record.cell!r}"
            )
        self._rows[record.trial_index] = (
            record.attacker_fraction,
            record.victim_fraction,
            record.disconnected_fraction,
            record.attack_route_filtered,
        )
        self._observe(record.attacker_fraction)

    def _observe(self, value: float) -> None:
        # Welford's online update: numerically stable running
        # mean/variance, independent of the exact final statistics
        # (which are recomputed from the ordered rows).
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)

    def merge(self, other: "CellAccumulator") -> None:
        """Union another accumulator's trials into this one.

        Trials present in both must carry identical rows (re-evaluated
        shards of a deterministic run); a conflicting duplicate means
        the shards did not come from the same run and is an error.
        """
        for trial_index, row in sorted(other._rows.items()):
            mine = self._rows.get(trial_index)
            if mine is None:
                self._rows[trial_index] = row
                self._observe(row[0])
            elif mine != row:
                raise ReproError(
                    f"conflicting records for trial {trial_index} of "
                    f"cell {self.cell_name!r}"
                )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def has_trial(self, trial_index: int) -> bool:
        return trial_index in self._rows

    def trial_indices(self) -> Iterator[int]:
        return iter(self._rows)

    def ordered_rows(self, expected: int) -> List[Row]:
        """The first ``expected`` trials' rows, in trial order.

        Raises when the accumulator does not hold exactly those trials
        — a missing or surplus trial means the record stream was
        incomplete or leaked past a stop decision.
        """
        if len(self._rows) != expected:
            raise ReproError(
                f"cell {self.cell_name!r} at fraction index "
                f"{self.fraction_index} has {len(self._rows)} of "
                f"{expected} trials"
            )
        try:
            return [self._rows[t] for t in range(expected)]
        except KeyError as exc:
            raise ReproError(
                f"cell {self.cell_name!r} at fraction index "
                f"{self.fraction_index} is missing trial {exc}"
            ) from None

    def live_snapshot(self) -> dict:
        """JSON-ready running statistics over the records seen so far."""
        stdev = (
            math.sqrt(self._m2 / (self._count - 1))
            if self._count > 1 else 0.0
        )
        return {
            "cell": self.cell_name,
            "fraction": self.fraction,
            "trials": self._count,
            "mean": self._mean,
            "stdev": stdev,
        }


class GridAccumulator:
    """The whole grid: one :class:`CellAccumulator` per coordinate."""

    def __init__(self, spec: "ExperimentSpec") -> None:
        self.spec = spec
        self._cells: List[List[CellAccumulator]] = [
            [
                CellAccumulator(
                    fraction_index, cell_index, cell.name, fraction
                )
                for cell_index, cell in enumerate(spec.cells)
            ]
            for fraction_index, fraction in enumerate(spec.fractions)
        ]
        self.records = 0

    def cell(
        self, fraction_index: int, cell_index: int
    ) -> CellAccumulator:
        return self._cells[fraction_index][cell_index]

    def add(self, record: "TrialRecord") -> None:
        if not (
            0 <= record.fraction_index < len(self._cells)
            and 0 <= record.cell_index < len(self.spec.cells)
        ):
            raise ReproError(
                f"record for cell {record.cell!r} addresses grid "
                f"coordinate ({record.fraction_index}, "
                f"{record.cell_index}) outside the spec"
            )
        self.cell(record.fraction_index, record.cell_index).add(record)
        self.records += 1

    def merge(self, other: "GridAccumulator") -> None:
        """Union another grid's trials (see CellAccumulator.merge)."""
        for fraction_index, row in enumerate(other._cells):
            for cell_index, accumulator in enumerate(row):
                self.cell(fraction_index, cell_index).merge(accumulator)
        self.records = sum(
            len(accumulator)
            for row in self._cells
            for accumulator in row
        )

    def live_snapshot(self) -> List[dict]:
        """Per-cell running statistics, fractions-outer, JSON-ready."""
        return [
            accumulator.live_snapshot()
            for row in self._cells
            for accumulator in row
        ]
