"""``repro.results`` — durable, streaming, resumable run records.

The paper's headline numbers are products of trial records, and until
this package existed those records were transient: the runner piped
them straight into aggregation and threw them away.  Now they are a
first-class surface with three faces:

* **Durability** (:mod:`repro.results.sinks`).  A
  :class:`ResultSink` receives the run header and every released
  record; :class:`JsonlSink` appends them, crash-safe, as versioned
  JSON lines — a killed run loses at most one partial line, which the
  reader recovers from.  :class:`TeeSink` fans one stream into many
  sinks, :class:`MemorySink` keeps it in process.
* **Streaming statistics** (:mod:`repro.results.accumulate`).
  Per-cell :class:`CellAccumulator`\\ s absorb records in any order,
  keep online mean/variance for live reporting, and reconstruct the
  exact trial-ordered values final aggregation needs — so
  :func:`repro.exper.aggregate.aggregate_records` streams instead of
  materializing record grids, with byte-identical results.
* **Queryability** (:mod:`repro.results.store`,
  :mod:`repro.results.live`).  A :class:`ResultsStore` is a directory
  of runs; :func:`merge_runs` unions shard-partial runs of one spec;
  a :class:`RunRegistry` plus :class:`ServePublisher` put per-cell
  stats on the serve tier's ``/experiments`` endpoints while the run
  is still going.

Resumption ties them together: ``ExperimentRunner(...,
resume_from=sink)`` verifies the sink's header against the spec,
replays its completed trials, evaluates only the rest, and produces a
result byte-identical to an uninterrupted run (see
:mod:`repro.exper.runner`).

Quick start::

    from repro.exper import ExperimentRunner
    from repro.results import JsonlSink

    sink = JsonlSink("runs/pilot.jsonl")
    result = ExperimentRunner(
        topology, spec, sink=sink, resume_from=sink
    ).run()          # re-running after a crash continues, not restarts
"""

from .accumulate import CellAccumulator, GridAccumulator
from .live import RunRegistry, ServePublisher
from .sinks import (
    HEADER_SCHEMA,
    JsonlSink,
    MemorySink,
    ResultSink,
    RunHeader,
    SinkWriteError,
    TeeSink,
    check_header_compatible,
    read_run,
    topology_digest,
)
from .store import (
    ResultsStore,
    merge_runs,
    result_to_json,
    run_ci_document,
    run_diff_document,
    run_result,
    shard_run_id,
)

__all__ = [
    "CellAccumulator",
    "GridAccumulator",
    "HEADER_SCHEMA",
    "JsonlSink",
    "MemorySink",
    "ResultSink",
    "ResultsStore",
    "RunHeader",
    "RunRegistry",
    "ServePublisher",
    "SinkWriteError",
    "TeeSink",
    "check_header_compatible",
    "merge_runs",
    "read_run",
    "result_to_json",
    "run_ci_document",
    "run_diff_document",
    "run_result",
    "shard_run_id",
    "topology_digest",
]
