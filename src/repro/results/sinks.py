"""Result sinks: where a run's trial records go as they happen.

A :class:`ResultSink` receives the run header, then every released
:class:`~repro.exper.evaluate.TrialRecord`, then the final per-fraction
trial counts.  Implementations here:

* :class:`MemorySink` — records in a list (tests, small runs).
* :class:`JsonlSink` — the durable form: an append-only file of JSON
  lines, one versioned record per line, with a header line carrying
  the spec hash, seed, and engine.  Every write is flushed, so a
  killed run loses at most the line being written — and the scanner
  recovers from exactly that, dropping a truncated or corrupt *tail*
  line while refusing silently-corrupt interiors.
* :class:`TeeSink` — fan out one record stream to several sinks
  (e.g. a durable file *and* a live serve-tier publisher).

The JSONL file format, line by line::

    {"kind": "repro.results/run", "schema": 1, "spec_hash": …,
     "seed": …, "engine": …, "spec": {…full ExperimentSpec…}}
    {"schema": 1, "fraction_index": 0, "trial_index": 0, …}
    {"schema": 1, "fraction_index": 0, "trial_index": 0, …}
    …

Record lines may legitimately repeat a (fraction, trial, cell)
coordinate with identical content — a resumed run re-evaluates trials
whose records were only partially written — so readers deduplicate
identical duplicates and reject conflicting ones.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..faults import fire
from ..netbase.errors import ReproError
from ..obs.metrics import MetricsRegistry, get_registry

if TYPE_CHECKING:  # pragma: no cover — typing only; runtime imports
    # are deferred because repro.exper.aggregate imports this package.
    from ..exper.evaluate import TrialRecord
    from ..exper.spec import ExperimentSpec

__all__ = [
    "HEADER_SCHEMA",
    "JsonlSink",
    "MemorySink",
    "ResultSink",
    "RunHeader",
    "SinkWriteError",
    "TeeSink",
    "check_header_compatible",
    "read_run",
    "topology_digest",
]

#: Version of the run-header line.  Distinct from the per-record
#: schema so the two can evolve independently.
HEADER_SCHEMA = 1

_HEADER_KIND = "repro.results/run"


class SinkWriteError(ReproError):
    """A durable sink write failed and the sink degraded fail-safe.

    Raised by :meth:`JsonlSink.write` when the underlying IO fails —
    a real ``OSError`` (disk full, pulled mount) or an injected fault
    at the ``results.sink.write`` injection point.  By the time it
    propagates the sink is marked ``dirty`` and its file handle is
    released: what is on disk is the previously flushed prefix (at
    worst plus one partial tail line, exactly what resume truncates),
    so the run stays resumable.  ``path`` and ``errno`` identify the
    failure for callers that triage by cause.
    """

    def __init__(self, path: Union[str, Path], cause: OSError) -> None:
        self.path = Path(path)
        self.errno = getattr(cause, "errno", None)
        super().__init__(f"sink write to {self.path} failed: {cause}")


def topology_digest(topology) -> str:
    """A stable digest of an AS topology, via its compiled flat blob.

    The spec deliberately does not name a topology (the same grid runs
    on many graphs), so run records carry this digest instead: trial
    outcomes are functions of (topology, spec, trial), and resuming or
    merging records across *different* topologies would silently mix
    incomparable worlds.
    """
    import hashlib

    compiled = (
        topology.compiled() if hasattr(topology, "compiled") else topology
    )
    return hashlib.blake2b(
        bytes(compiled.to_blob()), digest_size=16
    ).hexdigest()


@dataclass(frozen=True)
class RunHeader:
    """The first line of a durable run: what these records belong to.

    ``spec_hash`` and ``topology_hash`` are the identity checks
    (resume and merge refuse a mismatch on either); ``seed`` and
    ``engine`` ride along for observability; ``spec`` is the full JSON
    spec, so a run file alone suffices to re-aggregate — or resume —
    the experiment.
    """

    spec_hash: str
    seed: int
    engine: str
    spec: dict
    topology_hash: Optional[str] = None

    @classmethod
    def for_spec(
        cls, spec: "ExperimentSpec", topology=None
    ) -> "RunHeader":
        # The executor is *how* the run executed, not *what* it
        # computed: spec_hash already excludes it, and dropping it
        # here keeps run files byte-identical across executors.
        spec_dict = spec.to_json_dict()
        spec_dict.pop("executor", None)
        return cls(
            spec_hash=spec.spec_hash(),
            seed=spec.seed,
            engine=spec.engine,
            spec=spec_dict,
            topology_hash=(
                None if topology is None else topology_digest(topology)
            ),
        )

    def experiment_spec(self) -> "ExperimentSpec":
        """Reconstruct the spec this run executed."""
        from ..exper.spec import ExperimentSpec

        return ExperimentSpec.from_json_dict(self.spec)

    def to_json_dict(self) -> dict:
        return {
            "kind": _HEADER_KIND,
            "schema": HEADER_SCHEMA,
            "spec_hash": self.spec_hash,
            "seed": self.seed,
            "engine": self.engine,
            "spec": self.spec,
            "topology_hash": self.topology_hash,
        }

    @classmethod
    def from_json_dict(cls, data: object) -> "RunHeader":
        if not isinstance(data, dict) or data.get("kind") != _HEADER_KIND:
            raise ReproError(
                f"not a {_HEADER_KIND} header: {str(data)[:80]!r}"
            )
        schema = data.get("schema")
        if schema != HEADER_SCHEMA:
            raise ReproError(
                f"run header schema {schema!r} is not the supported "
                f"schema {HEADER_SCHEMA}"
            )
        try:
            topology_hash = data.get("topology_hash")
            return cls(
                spec_hash=str(data["spec_hash"]),
                seed=int(data["seed"]),
                engine=str(data["engine"]),
                spec=dict(data["spec"]),
                topology_hash=(
                    None if topology_hash is None else str(topology_hash)
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"bad run header: {exc}") from None


class ResultSink:
    """The sink protocol: ``begin``, then ``write`` per record, then
    ``finish`` — and ``close`` when the caller is done with it.

    The base class is a usable null sink (every method a no-op except
    resume, which only durable sinks support), so subclasses override
    just what they need.
    """

    def begin(self, header: RunHeader) -> None:
        """Start (or re-open) a run described by ``header``."""

    def write(self, record: "TrialRecord") -> None:
        """Persist one released record."""

    def finish(self, trial_counts: Sequence[int]) -> None:
        """The run completed with these per-fraction trial counts."""

    def close(self) -> None:
        """Release any resources; the sink is not used afterwards."""

    def resume_scan(
        self, spec: "ExperimentSpec"
    ) -> Tuple[Optional[RunHeader], List["TrialRecord"]]:
        """The sink's existing header and records, for resumption.

        Returns ``(None, [])`` when the sink holds nothing yet; raises
        when it holds records of a *different* spec, or when the sink
        kind cannot resume at all (the base behaviour).
        """
        raise ReproError(
            f"{type(self).__name__} does not support resuming a run"
        )

    def __enter__(self) -> "ResultSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _check_spec(
    header: Optional[RunHeader], spec: "ExperimentSpec", where: str
) -> None:
    if header is not None and header.spec_hash != spec.spec_hash():
        raise ReproError(
            f"{where} holds records for spec hash {header.spec_hash}, "
            f"not this spec's {spec.spec_hash()}"
        )


def check_header_compatible(
    existing: RunHeader, header: RunHeader, where: str
) -> None:
    """Refuse to mix records of different specs — or topologies.

    A missing topology hash on either side (a header built without a
    topology in hand) is not a mismatch; two *different* digests are.
    """
    if existing.spec_hash != header.spec_hash:
        raise ReproError(
            f"{where} holds records for spec hash "
            f"{existing.spec_hash}, not {header.spec_hash}"
        )
    if (
        existing.topology_hash is not None
        and header.topology_hash is not None
        and existing.topology_hash != header.topology_hash
    ):
        raise ReproError(
            f"{where} holds records for topology "
            f"{existing.topology_hash}, not {header.topology_hash}"
        )


class MemorySink(ResultSink):
    """Records in a list; supports resume (tests, in-process restarts)."""

    def __init__(self) -> None:
        self.header: Optional[RunHeader] = None
        self.records: List["TrialRecord"] = []
        self.trial_counts: Optional[Tuple[int, ...]] = None

    def begin(self, header: RunHeader) -> None:
        if self.header is not None:
            check_header_compatible(self.header, header, "sink")
        self.header = header

    def write(self, record: "TrialRecord") -> None:
        self.records.append(record)

    def finish(self, trial_counts: Sequence[int]) -> None:
        self.trial_counts = tuple(trial_counts)

    def resume_scan(
        self, spec: "ExperimentSpec"
    ) -> Tuple[Optional[RunHeader], List["TrialRecord"]]:
        _check_spec(self.header, spec, "sink")
        return self.header, _dedupe(self.records, "sink")


class TeeSink(ResultSink):
    """Forward every call to each of several sinks, in order."""

    def __init__(self, *sinks: ResultSink) -> None:
        if not sinks:
            raise ReproError("a TeeSink needs at least one sink")
        self.sinks = tuple(sinks)

    def begin(self, header: RunHeader) -> None:
        for sink in self.sinks:
            sink.begin(header)

    def write(self, record: "TrialRecord") -> None:
        for sink in self.sinks:
            sink.write(record)

    def finish(self, trial_counts: Sequence[int]) -> None:
        for sink in self.sinks:
            sink.finish(trial_counts)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


class JsonlSink(ResultSink):
    """Append-only, crash-safe JSONL persistence for one run.

    ``begin`` on a fresh path writes the header line; on an existing
    file it verifies the header's spec hash, truncates a partial tail
    line left by a crash, and positions for append — so
    ``JsonlSink(path)`` is both "start a run" and "continue one".
    Every ``write`` is flushed to the OS; pass ``fsync=True`` to also
    force each line to stable storage (slower, stronger).

    IO failures degrade fail-safe: a write that raises ``OSError``
    (or an injected ``results.sink.write`` fault) marks the sink
    ``dirty``, releases the file handle, and raises a typed
    :class:`SinkWriteError` — never corrupting the flushed prefix, so
    a fresh sink on the same path resumes the run.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        fsync: bool = False,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.path = Path(path)
        self.fsync = fsync
        #: True once a write has failed; the sink refuses further use
        #: and the run must be resumed through a fresh sink.
        self.dirty = False
        self._fh = None
        self._header: Optional[RunHeader] = None
        self._scanned: Optional[
            Tuple[Optional[RunHeader], List["TrialRecord"], int]
        ] = None
        # Sink telemetry under the ``results.`` namespace: how many
        # records and bytes went to disk, and what each flushed write
        # cost (fsync shows up here immediately).
        view = (
            registry if registry is not None else get_registry()
        ).view("results")
        self._metrics_enabled = view.enabled
        self._records_written = view.counter("records_written")
        self._bytes_written = view.counter("bytes_written")
        self._flush_latency = view.histogram("flush_latency")

    # -- scanning ------------------------------------------------------

    def _scan(self) -> Tuple[Optional[RunHeader], List["TrialRecord"], int]:
        if self._scanned is None:
            self._scanned = _scan_file(self.path)
        return self._scanned

    def resume_scan(
        self, spec: "ExperimentSpec"
    ) -> Tuple[Optional[RunHeader], List["TrialRecord"]]:
        if self._fh is not None:
            raise ReproError(
                f"cannot resume-scan {self.path}: sink already writing"
            )
        header, records, _ = self._scan()
        _check_spec(header, spec, f"sink {self.path}")
        return header, records

    # -- the sink protocol ---------------------------------------------

    def begin(self, header: RunHeader) -> None:
        if self.dirty:
            raise ReproError(
                f"sink {self.path} is dirty after a failed write; "
                f"resume the run through a fresh sink"
            )
        if self._fh is not None:
            if self._header is not None:
                check_header_compatible(
                    self._header, header, f"sink {self.path}"
                )
            return
        existing, _, data_end = self._scan()
        if existing is not None:
            check_header_compatible(
                existing, header, f"sink {self.path}"
            )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if existing is None:
            self._fh = open(self.path, "wb")
            self._fh.write(_encode_line(header.to_json_dict()))
        else:
            # Continue the existing file: drop the recovered-past tail
            # (a partial final line) so the file stays clean JSONL.
            self._fh = open(self.path, "r+b")
            self._fh.seek(data_end)
            self._fh.truncate()
        self._header = header
        self._flush()
        self._scanned = None  # the file is live now; scans would lie

    def write(self, record: "TrialRecord") -> None:
        if self.dirty:
            raise ReproError(
                f"sink {self.path} is dirty after a failed write; "
                f"resume the run through a fresh sink"
            )
        if self._fh is None:
            raise ReproError(
                f"sink {self.path} received a record before begin()"
            )
        line = _encode_line(record.to_json_dict())
        if not self._metrics_enabled:
            self._write_line(line)
            return
        start = time.perf_counter()
        self._write_line(line)
        self._flush_latency.observe(time.perf_counter() - start)
        self._records_written.inc()
        self._bytes_written.inc(len(line))

    def _write_line(self, line: bytes) -> None:
        try:
            fire("results.sink.write", path=str(self.path))
            self._fh.write(line)
            self._flush()
        except OSError as exc:
            self._degrade()
            raise SinkWriteError(self.path, exc) from exc

    def _degrade(self) -> None:
        """Fail-safe after an IO error: mark dirty, release the handle.

        Closing is best-effort — the close itself may fail on a sick
        filesystem.  The flushed prefix on disk stays valid JSONL (at
        worst one partial tail line, which resume truncates), so the
        run remains resumable through a fresh sink.
        """
        self.dirty = True
        fh, self._fh = self._fh, None
        self._scanned = None
        if fh is not None:
            try:
                fh.close()
            except OSError:
                pass

    def finish(self, trial_counts: Sequence[int]) -> None:
        if self._fh is not None:
            self._flush(force=True)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        self._scanned = None

    def _flush(self, force: bool = False) -> None:
        self._fh.flush()
        if self.fsync or force:
            os.fsync(self._fh.fileno())


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------


def read_run(path: Union[str, Path]) -> Tuple[RunHeader, List["TrialRecord"]]:
    """Load a durable run: its header and deduplicated records.

    Tolerates (drops) a truncated or corrupt final line — the signature
    a killed writer leaves — and raises :class:`ReproError` on a
    missing/invalid header, corruption anywhere else, or conflicting
    duplicate records.
    """
    path = Path(path)
    header, records, _ = _scan_file(path)
    if header is None:
        raise ReproError(f"{path} is not a results run file (no header)")
    return header, records


def _encode_line(data: dict) -> bytes:
    return json.dumps(
        data, sort_keys=True, separators=(",", ":")
    ).encode("utf-8") + b"\n"


def _dedupe(
    records: Iterable["TrialRecord"], where: str
) -> List["TrialRecord"]:
    """Drop identical duplicates, reject conflicting ones, sort."""
    seen: Dict[Tuple[int, int, int], "TrialRecord"] = {}
    for record in records:
        key = record.sort_key
        known = seen.get(key)
        if known is None:
            seen[key] = record
        elif known != record:
            raise ReproError(
                f"{where} has conflicting records for fraction index "
                f"{key[0]}, trial {key[1]}, cell {record.cell!r}"
            )
    return [seen[key] for key in sorted(seen)]


def _scan_file(
    path: Path,
) -> Tuple[Optional[RunHeader], List["TrialRecord"], int]:
    """Parse a run file with tail recovery.

    Returns ``(header, records, data_end)`` where ``data_end`` is the
    byte offset just past the last intact line — the truncation point
    a resuming writer appends from.  A missing or empty file (or one
    holding only a partial header line) is ``(None, [], 0)``.
    """
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return None, [], 0
    if not data:
        return None, [], 0

    lines: List[Tuple[int, bytes, bool]] = []  # (start, line, terminated)
    start = 0
    while start < len(data):
        end = data.find(b"\n", start)
        if end < 0:
            lines.append((start, data[start:], False))
            break
        lines.append((start, data[start:end], True))
        start = end + 1

    from ..exper.evaluate import TrialRecord

    def parse(index: int, line: bytes, what: str) -> object:
        try:
            return json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ReproError(
                f"{path}: corrupt {what} at line {index + 1}: {exc}"
            ) from None

    first_start, first_line, first_done = lines[0]
    if not first_done:
        return None, [], 0  # crash mid-header: nothing durable yet
    header = RunHeader.from_json_dict(parse(0, first_line, "run header"))
    data_end = first_start + len(first_line) + 1

    records: List["TrialRecord"] = []
    for index, (line_start, line, terminated) in enumerate(
        lines[1:], start=1
    ):
        is_tail = index == len(lines) - 1
        if not terminated:
            break  # partial tail: recovered by truncation
        try:
            records.append(
                TrialRecord.from_json_dict(
                    parse(index, line, "trial record")
                )
            )
        except ReproError:
            if is_tail:
                break  # corrupt tail line: recovered by truncation
            raise
        data_end = line_start + len(line) + 1
    return header, _dedupe(records, str(path)), data_end
