"""Partial-deployment sweeps: how much validation is enough?

§2 of the paper notes that "very few ASes make routing decisions based
on the validation state of a route" [9, 22].  This extension
quantifies what that costs: it sweeps the fraction of validating ASes
and measures the attacker's capture for the attacks the RPKI *can*
stop (plain subprefix hijacks, and forged-origin subprefix hijacks
against minimal ROAs).  Against a non-minimal ROA, validation never
helps — the attack is valid — which is the paper's point rendered as a
flat line at 100%.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass
from typing import Sequence

from ..bgp.attacks import AttackKind, AttackScenario, evaluate_attack
from ..bgp.origin_validation import VrpIndex
from ..bgp.topology import AsTopology
from ..netbase import Prefix
from ..rpki.vrp import Vrp

__all__ = ["DeploymentPoint", "DeploymentSweep", "run_deployment_sweep"]


@dataclass(frozen=True)
class DeploymentPoint:
    """Average capture fractions at one validation level."""

    validating_fraction: float
    subprefix_hijack: float
    forged_subprefix_vs_minimal: float
    forged_subprefix_vs_nonminimal: float


@dataclass(frozen=True)
class DeploymentSweep:
    """The full sweep, one point per validation level."""

    points: tuple[DeploymentPoint, ...]
    samples_per_point: int

    def render(self) -> str:
        lines = [
            f"{'validating':>11} {'subprefix':>10} {'fo-sub/min':>11} "
            f"{'fo-sub/loose':>13}",
        ]
        for point in self.points:
            lines.append(
                f"{100 * point.validating_fraction:>10.0f}% "
                f"{100 * point.subprefix_hijack:>9.1f}% "
                f"{100 * point.forged_subprefix_vs_minimal:>10.1f}% "
                f"{100 * point.forged_subprefix_vs_nonminimal:>12.1f}%"
            )
        return "\n".join(lines)


def run_deployment_sweep(
    topology: AsTopology,
    *,
    fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    samples: int = 20,
    seed: int = 0,
    victim_prefix: Prefix = Prefix.parse("168.122.0.0/16"),
) -> DeploymentSweep:
    """Sweep validation deployment against the three attack variants.

    Validating ASes are sampled uniformly per trial; each (victim,
    attacker) pair is a stub pair, as in the hijack study.
    """
    rng = random.Random(seed)
    stubs = sorted(topology.stub_ases())
    all_ases = sorted(topology.ases)
    attack_prefix = Prefix(
        victim_prefix.family, victim_prefix.value, victim_prefix.length + 8
    )

    points = []
    for fraction in fractions:
        plain: list[float] = []
        versus_minimal: list[float] = []
        versus_loose: list[float] = []
        for _ in range(samples):
            victim, attacker = rng.sample(stubs, 2)
            validator_count = round(fraction * len(all_ases))
            validators = frozenset(rng.sample(all_ases, validator_count))
            minimal = VrpIndex([Vrp(victim_prefix, victim_prefix.length, victim)])
            loose = VrpIndex([Vrp(victim_prefix, attack_prefix.length, victim)])
            tie_rng = random.Random(rng.getrandbits(32))

            subprefix = AttackScenario(
                AttackKind.SUBPREFIX_HIJACK, victim, attacker,
                victim_prefix, attack_prefix,
            )
            forged = AttackScenario(
                AttackKind.FORGED_ORIGIN_SUBPREFIX, victim, attacker,
                victim_prefix, attack_prefix,
            )
            plain.append(
                evaluate_attack(
                    topology, subprefix, vrp_index=minimal,
                    validating_ases=validators, rng=tie_rng,
                ).attacker_fraction
            )
            versus_minimal.append(
                evaluate_attack(
                    topology, forged, vrp_index=minimal,
                    validating_ases=validators, rng=tie_rng,
                ).attacker_fraction
            )
            versus_loose.append(
                evaluate_attack(
                    topology, forged, vrp_index=loose,
                    validating_ases=validators, rng=tie_rng,
                ).attacker_fraction
            )
        points.append(
            DeploymentPoint(
                validating_fraction=fraction,
                subprefix_hijack=statistics.mean(plain),
                forged_subprefix_vs_minimal=statistics.mean(versus_minimal),
                forged_subprefix_vs_nonminimal=statistics.mean(versus_loose),
            )
        )
    return DeploymentSweep(points=tuple(points), samples_per_point=samples)
