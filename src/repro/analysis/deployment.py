"""Partial-deployment sweeps: how much validation is enough?

§2 of the paper notes that "very few ASes make routing decisions based
on the validation state of a route" [9, 22].  This extension
quantifies what that costs: it sweeps the fraction of validating ASes
and measures the attacker's capture for the attacks the RPKI *can*
stop (plain subprefix hijacks, and forged-origin subprefix hijacks
against minimal ROAs).  Against a non-minimal ROA, validation never
helps — the attack is valid — which is the paper's point rendered as a
flat line at 100%.

:func:`run_deployment_sweep` is a thin adapter over the
:mod:`repro.exper` engine: the sweep is one
:class:`~repro.exper.ExperimentSpec` whose ``fractions`` axis is the
deployment level (stream seeding keeps the numbers bit-identical to
the nested loop this replaced).  Pass ``executor="process"`` to
spread the trials over cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..bgp.topology import AsTopology
from ..exper import (
    ExperimentRunner,
    ExperimentSpec,
    MaxLengthLooseRoa,
    MinimalRoa,
    ScenarioCell,
)
from ..netbase import Prefix

__all__ = ["DeploymentPoint", "DeploymentSweep", "run_deployment_sweep"]


@dataclass(frozen=True)
class DeploymentPoint:
    """Average capture fractions at one validation level."""

    validating_fraction: float
    subprefix_hijack: float
    forged_subprefix_vs_minimal: float
    forged_subprefix_vs_nonminimal: float


@dataclass(frozen=True)
class DeploymentSweep:
    """The full sweep, one point per validation level."""

    points: tuple[DeploymentPoint, ...]
    samples_per_point: int

    def render(self) -> str:
        lines = [
            f"{'validating':>11} {'subprefix':>10} {'fo-sub/min':>11} "
            f"{'fo-sub/loose':>13}",
        ]
        for point in self.points:
            lines.append(
                f"{100 * point.validating_fraction:>10.0f}% "
                f"{100 * point.subprefix_hijack:>9.1f}% "
                f"{100 * point.forged_subprefix_vs_minimal:>10.1f}% "
                f"{100 * point.forged_subprefix_vs_nonminimal:>12.1f}%"
            )
        return "\n".join(lines)


def deployment_sweep_spec(
    *,
    fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    samples: int = 20,
    seed: int = 0,
    victim_prefix: Prefix = Prefix.parse("168.122.0.0/16"),
    engine: str = "object",
) -> ExperimentSpec:
    """The sweep as a declarative spec: three cells × the fraction axis."""
    return ExperimentSpec(
        cells=(
            ScenarioCell("subprefix-hijack", MinimalRoa()),
            ScenarioCell("forged-origin-subprefix", MinimalRoa()),
            ScenarioCell("forged-origin-subprefix", MaxLengthLooseRoa()),
        ),
        trials=samples,
        seed=seed,
        fractions=tuple(fractions),
        victim_prefix=victim_prefix,
        seeding="stream",
        engine=engine,
    )


def run_deployment_sweep(
    topology: AsTopology,
    *,
    fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    samples: int = 20,
    seed: int = 0,
    victim_prefix: Prefix = Prefix.parse("168.122.0.0/16"),
    executor: str = "serial",
    workers: Optional[int] = None,
    engine: str = "object",
) -> DeploymentSweep:
    """Sweep validation deployment against the three attack variants.

    Validating ASes are sampled uniformly per trial; each (victim,
    attacker) pair is a stub pair, as in the hijack study.  ``engine``
    selects the propagation backend (``"array"`` for large graphs).
    """
    spec = deployment_sweep_spec(
        fractions=fractions, samples=samples, seed=seed,
        victim_prefix=victim_prefix, engine=engine,
    )
    result = ExperimentRunner(
        topology, spec, executor=executor, workers=workers
    ).run()
    points = tuple(
        DeploymentPoint(
            validating_fraction=fraction,
            subprefix_hijack=result.cell(
                "subprefix-hijack/minimal", fraction
            ).mean,
            forged_subprefix_vs_minimal=result.cell(
                "forged-origin-subprefix/minimal", fraction
            ).mean,
            forged_subprefix_vs_nonminimal=result.cell(
                "forged-origin-subprefix/maxlength-loose", fraction
            ).mean,
        )
        for fraction in spec.fractions
    )
    return DeploymentSweep(points=points, samples_per_point=samples)
