"""Measurement suite: every table, figure, and in-text number."""

from .deployment import DeploymentPoint, DeploymentSweep, run_deployment_sweep
from .figure3 import (
    Figure3Panel,
    Figure3Series,
    compute_figure3a,
    compute_figure3b,
    render_panel,
)
from .hijack_eval import HijackStudyResult, run_hijack_study
from .measurements import Section6Measurements, measure_section6
from .overhead import OverheadMeasurement, measure_compression_overhead
from .table1 import PAPER_TABLE1, Table1, Table1Row, compute_table1
from .timeline import TimelinePoint, VulnerabilityTimeline, compute_timeline

__all__ = [
    "DeploymentPoint",
    "DeploymentSweep",
    "Figure3Panel",
    "Figure3Series",
    "HijackStudyResult",
    "OverheadMeasurement",
    "PAPER_TABLE1",
    "Section6Measurements",
    "Table1",
    "Table1Row",
    "TimelinePoint",
    "VulnerabilityTimeline",
    "compute_figure3a",
    "compute_figure3b",
    "compute_table1",
    "compute_timeline",
    "measure_compression_overhead",
    "measure_section6",
    "render_panel",
    "run_deployment_sweep",
    "run_hijack_study",
]
