"""Figure 3: PDU counts along the weekly timeline.

Two panels, each a set of series over the eight weekly snapshots:

* **(a) today's RPKI deployment** — status quo, status quo compressed,
  minimal-no-maxLength, minimal-with-maxLength (compressed);
* **(b) full deployment** — minimal-no-maxLength, minimal-with-
  maxLength (compressed), and the maximally-permissive lower bound.

Solid vs dashed in the paper encodes secure vs vulnerable; here each
series carries a ``secure`` flag and the renderer draws vulnerable
series with dashes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.bounds import lower_bound_pdu_count
from ..core.compress import compress_vrps
from ..core.minimal import to_minimal_vrps
from ..data.internet import InternetSnapshot
from ..rpki.vrp import Vrp

__all__ = [
    "Figure3Series",
    "Figure3Panel",
    "compute_figure3a",
    "compute_figure3b",
    "render_panel",
]


@dataclass(frozen=True)
class Figure3Series:
    """One line of the figure."""

    name: str
    secure: bool
    values: tuple[int, ...]


@dataclass(frozen=True)
class Figure3Panel:
    """One panel: labels (x axis) plus its series."""

    title: str
    labels: tuple[str, ...]
    series: tuple[Figure3Series, ...]


def compute_figure3a(snapshots: Sequence[InternetSnapshot]) -> Figure3Panel:
    """Panel (a): today's RPKI deployment, four series."""
    status_quo: list[int] = []
    status_quo_compressed: list[int] = []
    minimal_plain: list[int] = []
    minimal_compressed: list[int] = []
    for snapshot in snapshots:
        vrps = snapshot.vrps
        status_quo.append(len(vrps))
        status_quo_compressed.append(len(compress_vrps(vrps)))
        minimal = to_minimal_vrps(vrps, snapshot.announced)
        minimal_plain.append(len(minimal))
        minimal_compressed.append(len(compress_vrps(minimal)))
    labels = tuple(s.label for s in snapshots)
    return Figure3Panel(
        title="Today's RPKI deployment",
        labels=labels,
        series=(
            Figure3Series("Status quo", False, tuple(status_quo)),
            Figure3Series(
                "Status quo (compressed)", False, tuple(status_quo_compressed)
            ),
            Figure3Series("Minimal ROAs, no maxLength", True, tuple(minimal_plain)),
            Figure3Series(
                "Minimal ROAs, with maxLength", True, tuple(minimal_compressed)
            ),
        ),
    )


def compute_figure3b(snapshots: Sequence[InternetSnapshot]) -> Figure3Panel:
    """Panel (b): RPKI in full deployment, three series."""
    minimal_plain: list[int] = []
    minimal_compressed: list[int] = []
    bound: list[int] = []
    for snapshot in snapshots:
        pairs = snapshot.announced_set
        full = [Vrp(p, p.length, asn) for p, asn in pairs]
        minimal_plain.append(len(full))
        minimal_compressed.append(len(compress_vrps(full)))
        bound.append(lower_bound_pdu_count(pairs))
    labels = tuple(s.label for s in snapshots)
    return Figure3Panel(
        title="RPKI in full deployment",
        labels=labels,
        series=(
            Figure3Series("Minimal ROAs, no maxLength", True, tuple(minimal_plain)),
            Figure3Series(
                "Minimal ROAs, with maxLength", True, tuple(minimal_compressed)
            ),
            Figure3Series("Lower bound on # PDUs", False, tuple(bound)),
        ),
    )


def render_panel(panel: Figure3Panel, *, width: int = 64, height: int = 16) -> str:
    """Render a panel as an ASCII chart (one glyph per series).

    Vulnerable (non-secure) series plot with lowercase glyphs — the
    textual stand-in for the paper's dashed lines.
    """
    all_values = [v for series in panel.series for v in series.values]
    low, high = min(all_values), max(all_values)
    span = max(high - low, 1)
    rows = [[" "] * width for _ in range(height)]
    glyphs = "ABCDEFG"

    columns = len(panel.labels)
    for series_index, series in enumerate(panel.series):
        glyph = glyphs[series_index]
        if not series.secure:
            glyph = glyph.lower()
        for point_index, value in enumerate(series.values):
            x = (
                point_index * (width - 1) // max(columns - 1, 1)
                if columns > 1
                else 0
            )
            y = height - 1 - round((value - low) / span * (height - 1))
            rows[y][x] = glyph

    lines = [f"{panel.title}  (y: {low:,} .. {high:,} PDUs)"]
    lines += ["".join(row) for row in rows]
    lines.append(f"{panel.labels[0]}  ...  {panel.labels[-1]}")
    for series_index, series in enumerate(panel.series):
        glyph = glyphs[series_index]
        if not series.secure:
            glyph = glyph.lower()
        safety = "secure" if series.secure else "vulnerable"
        values = ", ".join(f"{v:,}" for v in series.values)
        lines.append(f"  {glyph} = {series.name} [{safety}]: {values}")
    return "\n".join(lines)
