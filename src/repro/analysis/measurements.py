"""The §6 measurement suite: every in-text number of the paper.

Given one snapshot (VRPs + BGP table), computes:

* the maxLength-usage fraction (paper: ~12% of ROA prefixes);
* the vulnerable fraction among maxLength users (paper: 84%);
* the "additional prefixes" a minimal conversion needs (paper: 13K,
  a 33% PDU increase);
* the maximally-permissive full-deployment bound (paper: 729,371 of
  776,945 — 6.2% maximum compression);
* what ``compress_roas`` actually achieves against that bound (6.1%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..core.bounds import lower_bound_pdu_count
from ..core.compress import compress_vrps
from ..core.minimal import OriginPair, to_minimal_vrps
from ..core.vulnerability import VulnerabilityReport, analyze_vrps
from ..rpki.vrp import Vrp

__all__ = ["Section6Measurements", "measure_section6"]


@dataclass(frozen=True)
class Section6Measurements:
    """All §6 statistics for one dataset.

    Attribute names follow the narrative order of the section.
    """

    vulnerability: VulnerabilityReport
    status_quo_pdus: int
    minimal_pdus: int
    additional_prefixes: int
    announced_pairs: int
    full_deployment_pdus: int
    full_deployment_bound: int
    full_deployment_compressed: int

    @property
    def pdu_increase_fraction(self) -> float:
        """PDU growth if today's RPKI went minimal (paper: ~33%)."""
        if not self.status_quo_pdus:
            return 0.0
        return (self.minimal_pdus - self.status_quo_pdus) / self.status_quo_pdus

    @property
    def max_compression_fraction(self) -> float:
        """The bound's compression of the full table (paper: 6.2%)."""
        if not self.full_deployment_pdus:
            return 0.0
        return (
            self.full_deployment_pdus - self.full_deployment_bound
        ) / self.full_deployment_pdus

    @property
    def achieved_compression_fraction(self) -> float:
        """What compress_roas achieves in full deployment (paper: 6.1%)."""
        if not self.full_deployment_pdus:
            return 0.0
        return (
            self.full_deployment_pdus - self.full_deployment_compressed
        ) / self.full_deployment_pdus

    def summary_lines(self) -> list[str]:
        """The section's findings, one measurement per line."""
        v = self.vulnerability
        return [
            f"prefixes in ROAs: {v.total_vrps}",
            (
                f"with maxLength > prefix length: {v.maxlength_vrps} "
                f"({100 * v.maxlength_fraction:.1f}%)"
            ),
            (
                f"of those, vulnerable to forged-origin subprefix hijacks: "
                f"{v.vulnerable_vrps} "
                f"({100 * v.vulnerable_fraction_of_maxlength:.1f}%)"
            ),
            (
                f"additional prefixes for minimal ROAs: "
                f"{self.additional_prefixes} "
                f"(PDU increase {100 * self.pdu_increase_fraction:.0f}%)"
            ),
            f"announced (prefix, AS) pairs: {self.announced_pairs}",
            (
                f"full-deployment PDUs {self.full_deployment_pdus}, "
                f"max-permissive bound {self.full_deployment_bound} "
                f"(max compression {100 * self.max_compression_fraction:.1f}%)"
            ),
            (
                f"compress_roas achieves {self.full_deployment_compressed} "
                f"({100 * self.achieved_compression_fraction:.1f}%)"
            ),
        ]


def measure_section6(
    vrps: Iterable[Vrp], announced: Iterable[OriginPair]
) -> Section6Measurements:
    """Compute every §6 measurement for one dataset."""
    vrp_list = list(vrps)
    announced_list = list(announced)
    unique_pairs = set(announced_list)

    vulnerability = analyze_vrps(vrp_list, announced_list)
    minimal = to_minimal_vrps(vrp_list, announced_list)
    existing = {(vrp.prefix, vrp.asn) for vrp in vrp_list}
    additional = sum(
        1 for vrp in minimal if (vrp.prefix, vrp.asn) not in existing
    )

    full_vrps = [Vrp(p, p.length, asn) for p, asn in unique_pairs]
    return Section6Measurements(
        vulnerability=vulnerability,
        status_quo_pdus=len(vrp_list),
        minimal_pdus=len(minimal),
        additional_prefixes=additional,
        announced_pairs=len(unique_pairs),
        full_deployment_pdus=len(full_vrps),
        full_deployment_bound=lower_bound_pdu_count(unique_pairs),
        full_deployment_compressed=len(compress_vrps(full_vrps)),
    )
