"""Vulnerability timeline: how the §6 findings evolve week to week.

The paper reports the maxLength/vulnerability statistics for a single
date (6/1/2017) and the PDU counts along the weekly series (Figure 3).
This extension completes the matrix: it runs the §6 vulnerability
classification on *every* weekly snapshot, giving the trend an operator
or registry would monitor — is the vulnerable population growing with
RPKI adoption?  (In the 2017 data, and in our calibrated generator, it
does: maxLength misuse grows proportionally with deployment.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.vulnerability import analyze_vrps
from ..data.internet import InternetSnapshot

__all__ = ["TimelinePoint", "VulnerabilityTimeline", "compute_timeline"]


@dataclass(frozen=True)
class TimelinePoint:
    """One week's §6 classification."""

    label: str
    total_vrps: int
    maxlength_vrps: int
    vulnerable_vrps: int

    @property
    def maxlength_fraction(self) -> float:
        return self.maxlength_vrps / self.total_vrps if self.total_vrps else 0.0

    @property
    def vulnerable_fraction(self) -> float:
        if not self.maxlength_vrps:
            return 0.0
        return self.vulnerable_vrps / self.maxlength_vrps


@dataclass(frozen=True)
class VulnerabilityTimeline:
    """The classification across the whole series."""

    points: tuple[TimelinePoint, ...]

    def render(self) -> str:
        lines = [
            f"{'week':>12} {'VRPs':>8} {'w/ maxLen':>10} {'% of VRPs':>10} "
            f"{'vulnerable':>11} {'% of maxLen':>12}",
        ]
        for point in self.points:
            lines.append(
                f"{point.label:>12} {point.total_vrps:>8,} "
                f"{point.maxlength_vrps:>10,} "
                f"{100 * point.maxlength_fraction:>9.1f}% "
                f"{point.vulnerable_vrps:>11,} "
                f"{100 * point.vulnerable_fraction:>11.1f}%"
            )
        return "\n".join(lines)


def compute_timeline(
    snapshots: Sequence[InternetSnapshot],
) -> VulnerabilityTimeline:
    """Classify every snapshot; returns the weekly trend."""
    points = []
    for snapshot in snapshots:
        report = analyze_vrps(snapshot.vrps, snapshot.announced)
        points.append(
            TimelinePoint(
                label=snapshot.label,
                total_vrps=report.total_vrps,
                maxlength_vrps=report.maxlength_vrps,
                vulnerable_vrps=report.vulnerable_vrps,
            )
        )
    return VulnerabilityTimeline(points=tuple(points))
