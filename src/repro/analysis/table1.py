"""Table 1: PDU counts routers process under seven scenarios.

The paper's central table (reproduced here with its 2017-06-01 values):

    scenario                                              # PDUs   secure?
    -----------------------------------------------------------------------
    Today                                                 39,949   no
    Today (compressed)                                    33,615   no
    Today, minimal ROAs, no maxLength                     52,745   yes
    Today, minimal ROAs, with maxLength (compressed)      49,308   yes
    Full deployment, minimal ROAs, no maxLength          776,945   yes
    Full deployment, minimal ROAs, with maxLength        730,008   yes
    Full deployment, lower bound (max permissive ROAs)   729,371   no

"Secure" means immune to forged-origin subprefix hijacks: the status
quo is vulnerable (its maxLength use is almost all non-minimal), and
the maximally-permissive bound is maximally vulnerable; every minimal
scenario is safe — including the compressed ones, because Algorithm 1
preserves minimality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..core.bounds import lower_bound_pdu_count
from ..core.compress import compress_vrps
from ..core.minimal import OriginPair, to_minimal_vrps
from ..rpki.vrp import Vrp

__all__ = ["Table1Row", "Table1", "compute_table1", "PAPER_TABLE1"]


@dataclass(frozen=True)
class Table1Row:
    """One scenario row."""

    scenario: str
    pdus: int
    secure: bool

    def __str__(self) -> str:
        marker = "yes" if self.secure else "NO"
        return f"{self.scenario:<55} {self.pdus:>9,}   {marker}"


@dataclass(frozen=True)
class Table1:
    """All seven rows, in the paper's order."""

    rows: tuple[Table1Row, ...]

    def by_scenario(self, scenario: str) -> Table1Row:
        for row in self.rows:
            if row.scenario == scenario:
                return row
        raise KeyError(scenario)

    def render(self) -> str:
        header = f"{'scenario':<55} {'# PDUs':>9}   secure?"
        rule = "-" * len(header)
        lines = [header, rule] + [str(row) for row in self.rows]
        return "\n".join(lines)


#: Scenario names, used as stable keys by benchmarks and tests.
TODAY = "Today"
TODAY_COMPRESSED = "Today (compressed)"
TODAY_MINIMAL = "Today, minimal ROAs, no maxLength"
TODAY_MINIMAL_COMPRESSED = "Today, minimal ROAs, with maxLength (compressed)"
FULL_MINIMAL = "Full deployment, minimal ROAs, no maxLength"
FULL_MINIMAL_COMPRESSED = "Full deployment, minimal ROAs, with maxLength"
FULL_LOWER_BOUND = "Full deployment, lower bound (max permissive ROAs)"

#: The paper's measured values (2017-06-01 dataset), for comparison.
PAPER_TABLE1 = {
    TODAY: 39_949,
    TODAY_COMPRESSED: 33_615,
    TODAY_MINIMAL: 52_745,
    TODAY_MINIMAL_COMPRESSED: 49_308,
    FULL_MINIMAL: 776_945,
    FULL_MINIMAL_COMPRESSED: 730_008,
    FULL_LOWER_BOUND: 729_371,
}


def compute_table1(
    vrps: Iterable[Vrp], announced: Iterable[OriginPair]
) -> Table1:
    """Compute all seven scenarios from one snapshot."""
    status_quo = list(vrps)
    announced_list = list(announced)
    unique_pairs = set(announced_list)

    today_compressed = compress_vrps(status_quo)
    today_minimal = to_minimal_vrps(status_quo, announced_list)
    today_minimal_compressed = compress_vrps(today_minimal)

    full_minimal = [Vrp(p, p.length, asn) for p, asn in unique_pairs]
    full_minimal_compressed = compress_vrps(full_minimal)
    bound = lower_bound_pdu_count(unique_pairs)

    return Table1(
        rows=(
            Table1Row(TODAY, len(status_quo), secure=False),
            Table1Row(TODAY_COMPRESSED, len(today_compressed), secure=False),
            Table1Row(TODAY_MINIMAL, len(today_minimal), secure=True),
            Table1Row(
                TODAY_MINIMAL_COMPRESSED,
                len(today_minimal_compressed),
                secure=True,
            ),
            Table1Row(FULL_MINIMAL, len(full_minimal), secure=True),
            Table1Row(
                FULL_MINIMAL_COMPRESSED,
                len(full_minimal_compressed),
                secure=True,
            ),
            Table1Row(FULL_LOWER_BOUND, bound, secure=False),
        )
    )
