"""Computational overhead of ``compress_roas`` (paper §7.2).

The paper reports, on an Intel i7-6700: 2.4 s / 19 MB for today's
(partially deployed) RPKI and 36 s / 290 MB for the full-deployment
scenario.  We measure wall time with :func:`time.perf_counter` and
allocation peaks with :mod:`tracemalloc`, so the same harness runs
anywhere without perf counters or root.

Absolute numbers differ (pure Python vs the authors' tooling); what
reproduces is the *feasibility* claim — compression is a seconds-scale
batch job with modest memory, cheap enough to run on every cache
refresh — and the roughly linear scaling between the two dataset sizes.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from typing import Iterable

from ..core.compress import compress_vrps
from ..rpki.vrp import Vrp

__all__ = ["OverheadMeasurement", "measure_compression_overhead"]


@dataclass(frozen=True)
class OverheadMeasurement:
    """One timed compression run."""

    label: str
    input_tuples: int
    output_tuples: int
    wall_seconds: float
    peak_memory_bytes: int

    @property
    def peak_memory_mb(self) -> float:
        return self.peak_memory_bytes / (1024 * 1024)

    def __str__(self) -> str:
        return (
            f"{self.label}: {self.input_tuples:,} -> {self.output_tuples:,} "
            f"tuples in {self.wall_seconds:.2f}s, "
            f"peak {self.peak_memory_mb:.0f} MB"
        )


def measure_compression_overhead(
    label: str, vrps: Iterable[Vrp], *, trace_memory: bool = True
) -> OverheadMeasurement:
    """Time one ``compress_roas`` run, optionally tracing allocations.

    ``tracemalloc`` roughly doubles the wall time; pass
    ``trace_memory=False`` when only timing matters (the benchmark
    harness does both, separately).
    """
    vrp_list = list(vrps)
    if trace_memory:
        tracemalloc.start()
    started = time.perf_counter()
    output = compress_vrps(vrp_list)
    elapsed = time.perf_counter() - started
    peak = 0
    if trace_memory:
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    return OverheadMeasurement(
        label=label,
        input_tuples=len(vrp_list),
        output_tuples=len(output),
        wall_seconds=elapsed,
        peak_memory_bytes=peak,
    )
