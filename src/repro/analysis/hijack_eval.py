"""Attack-effectiveness evaluation: quantifying §4 and §5.

The paper's argument rests on three comparative claims:

1. a forged-origin *subprefix* hijack against a non-minimal ROA
   captures (essentially) all traffic for the hijacked subprefix;
2. with a minimal ROA the same attacker is forced into a same-prefix
   forged-origin hijack, where traffic splits and "the majority of
   traffic (on average) is still forwarded on the legitimate route"
   ([16]);
3. plain (sub)prefix hijacks are RPKI-invalid and fully filtered.

:func:`run_hijack_study` is a thin adapter over the
:mod:`repro.exper` engine: it declares the four historical grid cells
as an :class:`~repro.exper.ExperimentSpec` (stream seeding, so the
numbers are bit-identical to the hand-rolled loop this replaced) and
averages each cell's capture.  Pass ``executor="process"`` to spread
the trials over cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..bgp.topology import AsTopology
from ..exper import (
    ExperimentRunner,
    ExperimentSpec,
    MaxLengthLooseRoa,
    MinimalRoa,
    NoRoa,
    ScenarioCell,
)
from ..netbase import Prefix

__all__ = ["HijackStudyResult", "run_hijack_study"]


@dataclass(frozen=True)
class HijackStudyResult:
    """Average attacker capture per configuration.

    Attributes:
        samples: number of (victim, attacker) pairs evaluated.
        subprefix_no_rpki: plain subprefix hijack, no RPKI at all.
        forged_subprefix_nonminimal: forged-origin subprefix hijack
            against a maxLength-using (non-minimal) ROA.
        forged_subprefix_minimal: the same attack against a minimal
            ROA (should be ~0: the announcement is invalid).
        forged_origin_minimal: the fallback same-prefix forged-origin
            hijack against a minimal ROA (should be well under 50%).
    """

    samples: int
    subprefix_no_rpki: float
    forged_subprefix_nonminimal: float
    forged_subprefix_minimal: float
    forged_origin_minimal: float

    def summary_lines(self) -> list[str]:
        return [
            f"samples: {self.samples} (victim, attacker) pairs",
            (
                "subprefix hijack, no RPKI:                 "
                f"{100 * self.subprefix_no_rpki:6.1f}% captured"
            ),
            (
                "forged-origin subprefix, non-minimal ROA:  "
                f"{100 * self.forged_subprefix_nonminimal:6.1f}% captured"
            ),
            (
                "forged-origin subprefix, minimal ROA:      "
                f"{100 * self.forged_subprefix_minimal:6.1f}% captured"
            ),
            (
                "forged-origin same-prefix, minimal ROA:    "
                f"{100 * self.forged_origin_minimal:6.1f}% captured"
            ),
        ]


def hijack_study_spec(
    *,
    samples: int = 50,
    seed: int = 0,
    victim_prefix: Prefix = Prefix.parse("168.122.0.0/16"),
    engine: str = "object",
) -> ExperimentSpec:
    """The study as a declarative spec: the four historical cells.

    Stream seeding replays the exact RNG consumption of the original
    sequential loop — same pairs, same tie-breaks, same numbers (the
    ``"array"`` engine included, since the backends are bit-identical).
    """
    return ExperimentSpec(
        cells=(
            ScenarioCell("subprefix-hijack", NoRoa()),
            ScenarioCell("forged-origin-subprefix", MaxLengthLooseRoa()),
            ScenarioCell("forged-origin-subprefix", MinimalRoa()),
            ScenarioCell("forged-origin", MinimalRoa()),
        ),
        trials=samples,
        seed=seed,
        victim_prefix=victim_prefix,
        seeding="stream",
        engine=engine,
    )


def run_hijack_study(
    topology: AsTopology,
    *,
    samples: int = 50,
    seed: int = 0,
    victim_prefix: Prefix = Prefix.parse("168.122.0.0/16"),
    executor: str = "serial",
    workers: Optional[int] = None,
    engine: str = "object",
) -> HijackStudyResult:
    """Sample attacks between random stub pairs and average capture.

    Each sample picks a distinct victim and attacker among the
    topology's stub ASes (hijacks are typically launched from and
    against the edge), gives the victim a /16 with either a minimal
    ROA ``(p, len(p))`` or a non-minimal ``(p, maxLength 24)``, and
    measures each attack variant's capture fraction.  ``engine``
    selects the propagation backend (``"array"`` for large graphs).
    """
    if len(topology.stub_ases()) < 2:
        raise ValueError("topology has too few stub ASes for a study")

    spec = hijack_study_spec(
        samples=samples, seed=seed, victim_prefix=victim_prefix,
        engine=engine,
    )
    result = ExperimentRunner(
        topology, spec, executor=executor, workers=workers
    ).run()
    return HijackStudyResult(
        samples=samples,
        subprefix_no_rpki=result.cell("subprefix-hijack/none").mean,
        forged_subprefix_nonminimal=result.cell(
            "forged-origin-subprefix/maxlength-loose"
        ).mean,
        forged_subprefix_minimal=result.cell(
            "forged-origin-subprefix/minimal"
        ).mean,
        forged_origin_minimal=result.cell("forged-origin/minimal").mean,
    )
