"""Attack-effectiveness evaluation: quantifying §4 and §5.

The paper's argument rests on three comparative claims:

1. a forged-origin *subprefix* hijack against a non-minimal ROA
   captures (essentially) all traffic for the hijacked subprefix;
2. with a minimal ROA the same attacker is forced into a same-prefix
   forged-origin hijack, where traffic splits and "the majority of
   traffic (on average) is still forwarded on the legitimate route"
   ([16]);
3. plain (sub)prefix hijacks are RPKI-invalid and fully filtered.

:func:`run_hijack_study` samples (victim, attacker) pairs on a
synthetic topology and measures the attacker's average capture for
each attack kind under each ROA configuration, reproducing the
comparison from first principles.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass

from ..bgp.attacks import AttackKind, AttackScenario, evaluate_attack
from ..bgp.origin_validation import VrpIndex
from ..bgp.topology import AsTopology
from ..netbase import Prefix
from ..rpki.vrp import Vrp

__all__ = ["HijackStudyResult", "run_hijack_study"]


@dataclass(frozen=True)
class HijackStudyResult:
    """Average attacker capture per configuration.

    Attributes:
        samples: number of (victim, attacker) pairs evaluated.
        subprefix_no_rpki: plain subprefix hijack, no RPKI at all.
        forged_subprefix_nonminimal: forged-origin subprefix hijack
            against a maxLength-using (non-minimal) ROA.
        forged_subprefix_minimal: the same attack against a minimal
            ROA (should be ~0: the announcement is invalid).
        forged_origin_minimal: the fallback same-prefix forged-origin
            hijack against a minimal ROA (should be well under 50%).
    """

    samples: int
    subprefix_no_rpki: float
    forged_subprefix_nonminimal: float
    forged_subprefix_minimal: float
    forged_origin_minimal: float

    def summary_lines(self) -> list[str]:
        return [
            f"samples: {self.samples} (victim, attacker) pairs",
            (
                "subprefix hijack, no RPKI:                 "
                f"{100 * self.subprefix_no_rpki:6.1f}% captured"
            ),
            (
                "forged-origin subprefix, non-minimal ROA:  "
                f"{100 * self.forged_subprefix_nonminimal:6.1f}% captured"
            ),
            (
                "forged-origin subprefix, minimal ROA:      "
                f"{100 * self.forged_subprefix_minimal:6.1f}% captured"
            ),
            (
                "forged-origin same-prefix, minimal ROA:    "
                f"{100 * self.forged_origin_minimal:6.1f}% captured"
            ),
        ]


def run_hijack_study(
    topology: AsTopology,
    *,
    samples: int = 50,
    seed: int = 0,
    victim_prefix: Prefix = Prefix.parse("168.122.0.0/16"),
) -> HijackStudyResult:
    """Sample attacks between random stub pairs and average capture.

    Each sample picks a distinct victim and attacker among the
    topology's stub ASes (hijacks are typically launched from and
    against the edge), gives the victim a /16 with either a minimal
    ROA ``(p, len(p))`` or a non-minimal ``(p, maxLength 24)``, and
    measures each attack variant's capture fraction.
    """
    rng = random.Random(seed)
    stubs = sorted(topology.stub_ases())
    if len(stubs) < 2:
        raise ValueError("topology has too few stub ASes for a study")

    attack_prefix = Prefix(
        victim_prefix.family, victim_prefix.value, victim_prefix.length + 8
    )

    plain: list[float] = []
    nonminimal: list[float] = []
    minimal_sub: list[float] = []
    minimal_same: list[float] = []
    for _ in range(samples):
        victim, attacker = rng.sample(stubs, 2)
        nonminimal_index = VrpIndex(
            [Vrp(victim_prefix, attack_prefix.length, victim)]
        )
        minimal_index = VrpIndex(
            [Vrp(victim_prefix, victim_prefix.length, victim)]
        )
        tie_rng = random.Random(rng.getrandbits(32))

        subprefix = AttackScenario(
            AttackKind.SUBPREFIX_HIJACK, victim, attacker,
            victim_prefix, attack_prefix,
        )
        forged_sub = AttackScenario(
            AttackKind.FORGED_ORIGIN_SUBPREFIX, victim, attacker,
            victim_prefix, attack_prefix,
        )
        forged_same = AttackScenario(
            AttackKind.FORGED_ORIGIN, victim, attacker,
            victim_prefix, victim_prefix,
        )

        plain.append(
            evaluate_attack(topology, subprefix,
                            rng=tie_rng).attacker_fraction
        )
        nonminimal.append(
            evaluate_attack(topology, forged_sub, vrp_index=nonminimal_index,
                            rng=tie_rng).attacker_fraction
        )
        minimal_sub.append(
            evaluate_attack(topology, forged_sub, vrp_index=minimal_index,
                            rng=tie_rng).attacker_fraction
        )
        minimal_same.append(
            evaluate_attack(topology, forged_same, vrp_index=minimal_index,
                            rng=tie_rng).attacker_fraction
        )

    return HijackStudyResult(
        samples=samples,
        subprefix_no_rpki=statistics.mean(plain),
        forged_subprefix_nonminimal=statistics.mean(nonminimal),
        forged_subprefix_minimal=statistics.mean(minimal_sub),
        forged_origin_minimal=statistics.mean(minimal_same),
    )
