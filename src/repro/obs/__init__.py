"""``repro.obs`` — unified telemetry for the whole stack.

The paper's deployment argument (§6) is that operators adopt RPKI
filtering only when its costs are visible and small; this package
makes the reproduction's *own* costs visible the same way.  Three
pieces, stdlib-only, shared by every subsystem:

* **Metrics** (:mod:`repro.obs.metrics`) — a process-wide registry of
  counters, gauges, and power-of-two latency histograms, namespaced
  per subsystem (``serve.*``, ``exper.*``, ``fastprop.*``,
  ``results.*``).  The serve tier's :class:`~repro.serve.metrics.
  ServeMetrics` is a view onto it; ``GET /metrics`` serves a JSON
  snapshot and (``?format=prometheus``) the Prometheus text
  exposition format.
* **Tracing** (:mod:`repro.obs.trace`) — ``with span("propagate",
  cell=...):`` regions exported as Chrome-trace-format JSON,
  loadable in Perfetto.  Off by default with a no-op fast path.
* **Progress** (:mod:`repro.obs.progress`) — record-stream heartbeat
  lines (trials/sec, ETA, per-cell completion) behind
  ``repro-roa experiment --progress``.

Two invariants every instrument keeps, pinned by the test suite and
gated in ``bench_trial_throughput``:

1. telemetry never touches a trial RNG — aggregated experiment
   results are byte-identical with instrumentation on or off, under
   every executor;
2. with tracing off, total telemetry overhead stays ≤2% of trials/sec.
"""

from .metrics import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    MetricsView,
    NullRegistry,
    NULL_REGISTRY,
    get_registry,
    set_registry,
    use_registry,
)
from .progress import ProgressReporter
from .trace import (
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "MetricsView",
    "NullRegistry",
    "NULL_REGISTRY",
    "ProgressReporter",
    "Tracer",
    "disable_tracing",
    "enable_tracing",
    "get_registry",
    "get_tracer",
    "set_registry",
    "span",
    "use_registry",
    "write_chrome_trace",
]
