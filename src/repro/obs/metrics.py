"""The process-wide metrics registry: counters, gauges, histograms.

Every subsystem that measures itself — the serve tier, the experiment
runner, the propagation kernels, the result sinks — registers its
instruments here under a dotted namespace (``serve.queries``,
``exper.trial_latency``, ``fastprop.sweeps``) and increments them on
the hot path.  Design constraints, in order:

1. **Cheap.**  An increment is one lock acquire and one integer add;
   a latency observation is the power-of-two bucket arithmetic of
   :class:`LatencyHistogram`.  Nothing allocates on the hot path.
2. **Thread-safe.**  Instruments are shared between asyncio loops,
   pool-callback threads, and synchronous callers; each instrument
   carries its own lock.
3. **Switchable.**  :data:`NULL_REGISTRY` is a drop-in registry whose
   instruments do nothing; :func:`use_registry` swaps the process
   default, so benchmarks can measure telemetry's own overhead and
   tests can pin that results are byte-identical either way.

Two read-side views exist: :meth:`MetricsRegistry.snapshot` (a
JSON-ready dict, the shape ``GET /metrics`` has always served) and
:meth:`MetricsRegistry.render_prometheus` (the Prometheus text
exposition format, for scraping).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, Optional, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "MetricsView",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "use_registry",
]


class Counter:
    """A monotonically increasing integer instrument."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """An instrument that can go up and down (occupancy, queue depth)."""

    __slots__ = ("name", "_lock", "_value", "_max")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0
        self._max = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value
            if value > self._max:
                self._max = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount
            if self._value > self._max:
                self._max = self._value

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    @property
    def max_value(self) -> float:
        """The high-water mark since creation (window occupancy peaks)."""
        with self._lock:
            return self._max


class LatencyHistogram:
    """Power-of-two latency buckets (microseconds), with quantiles.

    Buckets cover <1us up to >=2^(buckets-2) ms-scale outliers; each
    observation lands in ``floor(log2(us)) + 1`` (0 for sub-us).  Fixed
    buckets keep ``observe`` allocation-free on the query hot path.
    """

    BUCKETS = 24  # up to ~8.4 s

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._counts = [0] * self.BUCKETS
        self.count = 0
        self.total_seconds = 0.0

    def observe(self, seconds: float) -> None:
        self.observe_many(seconds, 1)

    def observe_many(self, seconds: float, n: int) -> None:
        """Record ``n`` observations of the same per-item latency
        (amortized batch timing) in O(1)."""
        us = int(seconds * 1e6)
        index = us.bit_length()  # 0 -> bucket 0, 1us -> 1, 2-3us -> 2, ...
        if index >= self.BUCKETS:
            index = self.BUCKETS - 1
        with self._lock:
            self._counts[index] += n
            self.count += n
            self.total_seconds += seconds * n

    def quantile(self, q: float) -> float:
        """Upper bound (seconds) of the bucket holding quantile ``q``."""
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for index, bucket in enumerate(self._counts):
            seen += bucket
            if seen >= target:
                return (1 << index) / 1e6
        return (1 << (self.BUCKETS - 1)) / 1e6

    def bucket_counts(self) -> Tuple[int, ...]:
        """The per-bucket observation counts (not cumulative)."""
        with self._lock:
            return tuple(self._counts)

    @staticmethod
    def bucket_upper_seconds(index: int) -> float:
        """The inclusive upper bound of bucket ``index``, in seconds."""
        return (1 << index) / 1e6

    def snapshot(self) -> Dict[str, float]:
        mean = self.total_seconds / self.count if self.count else 0.0
        return {
            "count": self.count,
            "mean_us": mean * 1e6,
            "p50_us": self.quantile(0.50) * 1e6,
            "p90_us": self.quantile(0.90) * 1e6,
            "p99_us": self.quantile(0.99) * 1e6,
        }


#: The instrument kinds a registry can hold.
Instrument = Union[Counter, Gauge, LatencyHistogram]


class MetricsRegistry:
    """One process's named instruments, created on demand.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking for
    the same name twice returns the same instrument, and asking for an
    existing name as a different kind raises — a name means one thing.
    :meth:`view` scopes a subsystem under a dotted prefix so components
    never hard-code their namespace twice.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, Instrument] = {}

    #: Real registries record; the null registry overrides this.
    enabled = True

    def _get_or_create(self, name: str, kind: type) -> Instrument:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = kind(name)
            elif type(instrument) is not kind:
                raise ValueError(
                    f"metric {name!r} is a "
                    f"{type(instrument).__name__}, not a {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> LatencyHistogram:
        return self._get_or_create(name, LatencyHistogram)

    def view(self, prefix: str) -> "MetricsView":
        """A scoped handle creating instruments under ``prefix.``."""
        return MetricsView(self, prefix)

    def instruments(self) -> Iterator[Instrument]:
        """Every registered instrument, in name order."""
        with self._lock:
            items = sorted(self._instruments.items())
        for _, instrument in items:
            yield instrument

    def snapshot(self) -> Dict[str, object]:
        """A JSON-ready view: counters/gauges as numbers, histograms
        as their quantile dicts."""
        view: Dict[str, object] = {}
        for instrument in self.instruments():
            if isinstance(instrument, LatencyHistogram):
                view[instrument.name] = instrument.snapshot()
            else:
                view[instrument.name] = instrument.value
        return view

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format.

        Dotted names become underscore names (``exper.trial_latency``
        → ``exper_trial_latency``); histograms expose cumulative
        ``_bucket{le="…"}`` series plus ``_sum`` and ``_count``, with
        ``le`` bounds in seconds per Prometheus convention.
        """
        lines: list[str] = []
        for instrument in self.instruments():
            name = _prom_name(instrument.name)
            if isinstance(instrument, Counter):
                lines.append(f"# TYPE {name} counter")
                lines.append(f"{name} {instrument.value}")
            elif isinstance(instrument, Gauge):
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {_prom_value(instrument.value)}")
            else:
                lines.append(f"# TYPE {name} histogram")
                cumulative = 0
                counts = instrument.bucket_counts()
                for index, bucket in enumerate(counts):
                    cumulative += bucket
                    if index == len(counts) - 1:
                        bound = "+Inf"
                    else:
                        bound = _prom_value(
                            instrument.bucket_upper_seconds(index)
                        )
                    lines.append(
                        f'{name}_bucket{{le="{bound}"}} {cumulative}'
                    )
                lines.append(
                    f"{name}_sum {_prom_value(instrument.total_seconds)}"
                )
                lines.append(f"{name}_count {instrument.count}")
        return "\n".join(lines) + ("\n" if lines else "")


class MetricsView:
    """A registry handle that prefixes every instrument name."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix

    @property
    def enabled(self) -> bool:
        """Whether the underlying registry actually records."""
        return self._registry.enabled

    def _name(self, name: str) -> str:
        return f"{self._prefix}.{name}" if self._prefix else name

    def counter(self, name: str) -> Counter:
        return self._registry.counter(self._name(name))

    def gauge(self, name: str) -> Gauge:
        return self._registry.gauge(self._name(name))

    def histogram(self, name: str) -> LatencyHistogram:
        return self._registry.histogram(self._name(name))

    def view(self, prefix: str) -> "MetricsView":
        return MetricsView(self._registry, self._name(prefix))


class _NullInstrument:
    """One object that answers every instrument method with nothing."""

    __slots__ = ()
    name = ""
    count = 0
    total_seconds = 0.0
    value = 0
    max_value = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, seconds: float) -> None:
        pass

    def observe_many(self, seconds: float, n: int) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def bucket_counts(self) -> Tuple[int, ...]:
        return ()

    def snapshot(self) -> Dict[str, float]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """A registry whose instruments record nothing.

    Install it with :func:`use_registry` to switch telemetry off; the
    instrumented code paths run unchanged (same calls, same RNG — none)
    but every increment is a no-op.  ``enabled`` is False so hot paths
    may skip ``perf_counter`` reads entirely.
    """

    enabled = False

    def _get_or_create(self, name: str, kind: type):
        return _NULL_INSTRUMENT

    def instruments(self) -> Iterator[Instrument]:
        return iter(())


#: The process's shared off-switch registry.
NULL_REGISTRY = NullRegistry()

_default_registry: MetricsRegistry = MetricsRegistry()
_default_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-default registry instrumented code records into."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process default; returns the old one."""
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
        return previous


class use_registry:
    """Context manager: temporarily install a process-default registry.

    ``with use_registry(NULL_REGISTRY): …`` turns telemetry off for the
    block; ``with use_registry(MetricsRegistry()) as registry: …``
    collects a block's metrics in isolation.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry
        self._previous: Optional[MetricsRegistry] = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = set_registry(self._registry)
        return self._registry

    def __exit__(self, *exc_info: object) -> None:
        if self._previous is not None:
            set_registry(self._previous)


def _prom_name(name: str) -> str:
    """A Prometheus-legal metric name: dots and dashes to underscores."""
    return "".join(
        ch if ch.isalnum() or ch in "_:" else "_" for ch in name
    )


def _prom_value(value: float) -> str:
    """Render a float the way Prometheus likes: integral values bare."""
    if isinstance(value, int) or value == int(value):
        return str(int(value))
    return repr(value)
