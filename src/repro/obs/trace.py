"""Lightweight span tracing with a Chrome-trace-format exporter.

``with span("propagate", cell=name): …`` marks a timed region; when
tracing is off (the default) :func:`span` returns a shared no-op
context manager after one attribute check, so instrumented hot paths
cost nothing measurable.  When tracing is on, each completed span is
recorded as one complete ("ph": "X") event in the Chrome trace event
format — load the exported JSON in Perfetto (https://ui.perfetto.dev)
or ``chrome://tracing`` to see the experiment's time structure.

Tracing never touches any RNG and never changes control flow, so
results are byte-identical with tracing on or off — an invariant the
test suite pins.

The recorder is process-local: under the process executor, worker
propagations do not appear in the driver's trace (their batches do,
as ``exper.batch`` spans measured from dispatch to retirement).
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, List, Union

__all__ = [
    "Tracer",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "span",
    "write_chrome_trace",
]

#: Default cap on recorded events, so an unexpectedly long traced run
#: degrades (drops events, counts the drops) instead of eating memory.
_MAX_EVENTS = 1_000_000


class _NoopSpan:
    """The shared do-nothing span handed out while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class _Span:
    """One live span: records a complete event when it exits."""

    __slots__ = ("_tracer", "_name", "_args", "_start")

    def __init__(self, tracer: "Tracer", name: str, args: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._args = args

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        end = time.perf_counter()
        self._tracer.complete(
            self._name, self._start, end - self._start, **self._args
        )


class Tracer:
    """A thread-safe recorder of trace events.

    All timestamps are :func:`time.perf_counter` values, rebased to the
    tracer's creation so exported traces start near zero.
    """

    def __init__(self, *, max_events: int = _MAX_EVENTS) -> None:
        self.enabled = False
        self.max_events = max_events
        self._lock = threading.Lock()
        self._events: List[Dict[str, object]] = []
        self._dropped = 0
        self._epoch = time.perf_counter()

    # -- recording -----------------------------------------------------

    def span(self, name: str, **args: object) -> Union[_Span, _NoopSpan]:
        """A context manager timing one region (no-op when disabled)."""
        if not self.enabled:
            return _NOOP_SPAN
        return _Span(self, name, args)

    def complete(
        self, name: str, start: float, duration: float, **args: object
    ) -> None:
        """Record a region timed externally (``start`` from
        :func:`time.perf_counter`, ``duration`` in seconds)."""
        if not self.enabled:
            return
        self._record({
            "name": name,
            "ph": "X",
            "ts": (start - self._epoch) * 1e6,
            "dur": duration * 1e6,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "args": args,
        })

    def instant(self, name: str, **args: object) -> None:
        """Record a point-in-time event (an early-stop decision, say)."""
        if not self.enabled:
            return
        self._record({
            "name": name,
            "ph": "i",
            "s": "p",  # process-scoped instant
            "ts": (time.perf_counter() - self._epoch) * 1e6,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "args": args,
        })

    def _record(self, event: Dict[str, object]) -> None:
        with self._lock:
            if len(self._events) >= self.max_events:
                self._dropped += 1
                return
            self._events.append(event)

    # -- reading / exporting -------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def dropped(self) -> int:
        """Events discarded after the cap was hit."""
        with self._lock:
            return self._dropped

    def events(self) -> List[Dict[str, object]]:
        """A copy of the recorded events, in recording order."""
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._dropped = 0

    def chrome_trace(self) -> Dict[str, object]:
        """The recorded events as a Chrome trace document."""
        document: Dict[str, object] = {
            "traceEvents": self.events(),
            "displayTimeUnit": "ms",
        }
        dropped = self.dropped
        if dropped:
            document["metadata"] = {"dropped_events": dropped}
        return document

    def export(self, path: Union[str, Path]) -> int:
        """Write the Chrome trace JSON to ``path``; returns the event
        count written."""
        document = self.chrome_trace()
        Path(path).write_text(
            json.dumps(document), encoding="utf-8"
        )
        return len(document["traceEvents"])  # type: ignore[arg-type]


_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer :func:`span` records into."""
    return _tracer


def span(name: str, **args: object) -> Union[_Span, _NoopSpan]:
    """Time one region on the process tracer.

    The off path — one attribute check, one shared no-op object — is
    cheap enough to leave in experiment hot loops permanently.
    """
    tracer = _tracer
    if not tracer.enabled:
        return _NOOP_SPAN
    return tracer.span(name, **args)


def enable_tracing() -> Tracer:
    """Switch the process tracer on (idempotent); returns it."""
    _tracer.enabled = True
    return _tracer


def disable_tracing() -> Tracer:
    """Switch the process tracer off; recorded events are kept."""
    _tracer.enabled = False
    return _tracer


def write_chrome_trace(path: Union[str, Path]) -> int:
    """Export the process tracer's events to ``path`` (Chrome trace
    JSON, Perfetto-loadable); returns the event count."""
    return _tracer.export(path)
