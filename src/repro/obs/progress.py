"""Heartbeat progress for streaming experiment runs.

``repro-roa experiment --progress`` attaches a
:class:`ProgressReporter` to the runner's ``on_record`` hook; it
prints one line to stderr every ``interval`` seconds::

    progress: 120/480 trials (25.0%) | 53.1 trials/s | ETA 6.8s | cells 2/10 done

Counting is record-driven (the reporter only *reads* the stream), so
attaching it cannot perturb results — the same invariant every other
instrument in :mod:`repro.obs` keeps.  Under CI-width early stopping
the grid shrinks as fractions stop, so the totals are the spec's
upper bound and the ETA is an estimate.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Optional, TextIO

__all__ = ["ProgressReporter"]


class ProgressReporter:
    """Turns a run's record stream into periodic heartbeat lines.

    Args:
        spec: the :class:`~repro.exper.spec.ExperimentSpec` being run
            (sizes the grid: cells, fractions, trials).
        stream: where heartbeat lines go (default stderr).
        interval: minimum seconds between lines (0 = every record).
        clock: injectable time source, for tests.
    """

    def __init__(
        self,
        spec,
        *,
        stream: Optional[TextIO] = None,
        interval: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.spec = spec
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self._clock = clock
        self._cells = len(spec.cells)
        self._total_trials = spec.total_trials
        self._total_records = self._total_trials * self._cells
        self._per_cell_expected = self._total_trials
        self._cell_counts = [0] * self._cells
        self._records = 0
        self._start = clock()
        self._last_emit = self._start
        self.lines_emitted = 0

    # -- the on_record hook --------------------------------------------

    def record(self, record) -> None:
        """Absorb one streamed :class:`TrialRecord`; maybe heartbeat."""
        self._records += 1
        self._cell_counts[record.cell_index] += 1
        now = self._clock()
        if now - self._last_emit >= self.interval:
            self._emit(now, final=False)

    def finish(self) -> None:
        """Emit the final line (always, regardless of the interval)."""
        self._emit(self._clock(), final=True)

    # -- rendering ------------------------------------------------------

    def _emit(self, now: float, *, final: bool) -> None:
        self.stream.write(self.render(now, final=final) + "\n")
        self.stream.flush()
        self._last_emit = now
        self.lines_emitted += 1

    def render(self, now: Optional[float] = None, *,
               final: bool = False) -> str:
        """The current heartbeat line (exposed for tests)."""
        if now is None:
            now = self._clock()
        elapsed = max(now - self._start, 1e-9)
        trials_done = self._records // self._cells if self._cells else 0
        trials_per_second = (
            self._records / self._cells / elapsed if self._cells else 0.0
        )
        done_cells = sum(
            1 for count in self._cell_counts
            if count >= self._per_cell_expected
        )
        percent = (
            100.0 * self._records / self._total_records
            if self._total_records else 100.0
        )
        if final:
            eta = "done"
        elif trials_per_second > 0:
            remaining = max(
                self._total_records - self._records, 0
            ) / self._cells
            eta = f"ETA {remaining / trials_per_second:.1f}s"
        else:
            eta = "ETA ?"
        return (
            f"progress: {trials_done}/{self._total_trials} trials "
            f"({percent:.1f}%) | {trials_per_second:.1f} trials/s | "
            f"{eta} | cells {done_cells}/{self._cells} done"
        )
