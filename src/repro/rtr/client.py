"""The router side of RPKI-to-Router: a synchronous RTR client.

Routers use this to populate their validated-prefix table (the input to
RFC 6811 origin validation).  The client performs Reset/Serial queries,
applies announce/withdraw prefix PDUs, and tracks the cache's serial so
subsequent syncs are incremental.
"""

from __future__ import annotations

import socket
from typing import Optional

from ..faults import fire
from ..netbase.errors import ReproError
from ..rpki.vrp import Vrp
from .pdu import (
    CacheResetPdu,
    CacheResponsePdu,
    EndOfDataPdu,
    ErrorReportPdu,
    FLAG_ANNOUNCE,
    Ipv4PrefixPdu,
    Ipv6PrefixPdu,
    Pdu,
    PduBuffer,
    ResetQueryPdu,
    SerialNotifyPdu,
    SerialQueryPdu,
    encode_pdu,
    pdu_to_vrp,
)

__all__ = ["RtrClient", "RtrClientError"]


class RtrClientError(ReproError):
    """Protocol violation or cache-reported error."""


class RtrClient:
    """A synchronous RTR router client.

    Typical use::

        client = RtrClient(host, port)
        client.sync()                 # full Reset Query the first time
        ...
        client.sync()                 # incremental afterwards
        vrps = client.vrps            # feed to origin validation
        client.close()
    """

    def __init__(self, host: str, port: int, *, timeout: float = 5.0) -> None:
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._buffer = PduBuffer()
        self._vrps: set[Vrp] = set()
        self.session_id: Optional[int] = None
        self.serial: Optional[int] = None

    @property
    def vrps(self) -> frozenset[Vrp]:
        """The router's current validated prefix table."""
        return frozenset(self._vrps)

    def close(self) -> None:
        try:
            self._socket.close()
        except OSError:
            pass

    def __enter__(self) -> "RtrClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Synchronization
    # ------------------------------------------------------------------

    def sync(self) -> int:
        """Bring the local table up to date; returns PDUs processed.

        Sends a Serial Query when a serial is known, falling back to a
        full Reset Query on Cache Reset (or on first sync).
        """
        if self.serial is None or self.session_id is None:
            return self._reset_sync()
        self._send(SerialQueryPdu(self.session_id, self.serial))
        first = self._recv_response_header()
        if isinstance(first, CacheResetPdu):
            return self._reset_sync()
        if not isinstance(first, CacheResponsePdu):
            raise RtrClientError(f"expected Cache Response, got {first}")
        return 1 + self._consume_data(first.session_id)

    def _reset_sync(self) -> int:
        self._send(ResetQueryPdu())
        first = self._recv_response_header()
        if not isinstance(first, CacheResponsePdu):
            raise RtrClientError(f"expected Cache Response, got {first}")
        self._vrps.clear()
        return 1 + self._consume_data(first.session_id)

    def _recv_response_header(self) -> Pdu:
        """The next PDU that answers a query.

        Serial Notifies may already sit in the receive buffer (the
        cache pushes one per update); they are advisory and skipped.
        """
        while True:
            pdu = self._recv_pdu()
            if not isinstance(pdu, SerialNotifyPdu):
                return pdu

    def _consume_data(self, session_id: int) -> int:
        processed = 0
        while True:
            pdu = self._recv_pdu()
            processed += 1
            if isinstance(pdu, (Ipv4PrefixPdu, Ipv6PrefixPdu)):
                vrp = pdu_to_vrp(pdu)
                if pdu.flags & FLAG_ANNOUNCE:
                    self._vrps.add(vrp)
                else:
                    self._vrps.discard(vrp)
            elif isinstance(pdu, EndOfDataPdu):
                self.session_id = session_id
                self.serial = pdu.serial
                return processed
            elif isinstance(pdu, ErrorReportPdu):
                raise RtrClientError(
                    f"cache reported error {pdu.error_code}: {pdu.text}"
                )
            elif isinstance(pdu, SerialNotifyPdu):
                continue  # a notify racing the data stream is harmless
            else:
                raise RtrClientError(f"unexpected PDU {pdu}")

    def wait_for_notify(self, timeout: float = 5.0) -> SerialNotifyPdu:
        """Block until the cache sends Serial Notify (new data signal)."""
        previous = self._socket.gettimeout()
        self._socket.settimeout(timeout)
        try:
            while True:
                pdu = self._recv_pdu()
                if isinstance(pdu, SerialNotifyPdu):
                    return pdu
        finally:
            self._socket.settimeout(previous)

    # ------------------------------------------------------------------
    # Wire helpers
    # ------------------------------------------------------------------

    def _send(self, pdu: Pdu) -> None:
        fire("rtr.client.send", pdu=type(pdu).__name__)
        self._socket.sendall(encode_pdu(pdu))

    def _recv_pdu(self) -> Pdu:
        while True:
            pdu = self._buffer.next()
            if pdu is not None:
                return pdu
            fire("rtr.client.recv")
            chunk = self._socket.recv(65536)
            if not chunk:
                raise RtrClientError("cache closed the connection")
            self._buffer.feed(chunk)
