"""Cache-side RTR session state: serials and incremental diffs.

The cache keeps a monotonically increasing serial number; each
:meth:`CacheState.update` installs a new VRP set and records the diff so
routers holding a recent serial can catch up incrementally (Serial
Query) instead of re-downloading everything (Reset Query).  History is
bounded; a router too far behind receives Cache Reset, exactly as
RFC 6810 §6 prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..rpki.vrp import Vrp

__all__ = ["VrpDiff", "CacheState"]


@dataclass(frozen=True)
class VrpDiff:
    """Announcements and withdrawals between two consecutive serials."""

    announced: tuple[Vrp, ...]
    withdrawn: tuple[Vrp, ...]

    @property
    def empty(self) -> bool:
        return not self.announced and not self.withdrawn


class CacheState:
    """The VRP database a cache serves, with bounded diff history."""

    def __init__(
        self,
        session_id: int = 1,
        *,
        initial: Iterable[Vrp] = (),
        history_limit: int = 16,
    ) -> None:
        self.session_id = session_id
        self.serial = 0
        self._vrps: set[Vrp] = set(initial)
        self._history: dict[int, VrpDiff] = {}
        self._history_limit = history_limit

    @property
    def vrps(self) -> frozenset[Vrp]:
        return frozenset(self._vrps)

    @property
    def history_limit(self) -> int:
        """How many diffs are retained before routers must reset."""
        return self._history_limit

    def __len__(self) -> int:
        return len(self._vrps)

    def update(self, new_vrps: Iterable[Vrp]) -> VrpDiff:
        """Install a new VRP set; returns the diff and bumps the serial.

        A no-op update (identical VRP set) is coalesced: the serial
        does not move and no empty diff enters the history, so routers
        are neither notified nor forced through a pointless exchange,
        and the bounded history is not flushed by idle refreshes.
        """
        new_set = set(new_vrps)
        if new_set == self._vrps:
            return VrpDiff(announced=(), withdrawn=())
        diff = VrpDiff(
            announced=tuple(sorted(new_set - self._vrps)),
            withdrawn=tuple(sorted(self._vrps - new_set)),
        )
        self.serial += 1
        self._vrps = new_set
        self._history[self.serial] = diff
        while len(self._history) > self._history_limit:
            del self._history[min(self._history)]
        return diff

    def diff_since(self, serial: int) -> Optional[list[VrpDiff]]:
        """Diffs needed to go from ``serial`` to the current state.

        Returns None when the history no longer reaches back that far
        (the router must reset).  ``serial == self.serial`` yields [].
        """
        if serial == self.serial:
            return []
        if serial > self.serial:
            return None
        needed = range(serial + 1, self.serial + 1)
        if any(step not in self._history for step in needed):
            return None
        return [self._history[step] for step in needed]

    def flatten_diffs(self, diffs: list[VrpDiff]) -> VrpDiff:
        """Collapse consecutive diffs into one net announce/withdraw set.

        An entry announced then withdrawn (or vice versa) across the
        span cancels out, so routers apply the minimum change.
        """
        announced: set[Vrp] = set()
        withdrawn: set[Vrp] = set()
        for diff in diffs:
            for vrp in diff.announced:
                if vrp in withdrawn:
                    withdrawn.discard(vrp)
                else:
                    announced.add(vrp)
            for vrp in diff.withdrawn:
                if vrp in announced:
                    announced.discard(vrp)
                else:
                    withdrawn.add(vrp)
        return VrpDiff(tuple(sorted(announced)), tuple(sorted(withdrawn)))
