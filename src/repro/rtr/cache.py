"""The RTR cache server — the "local cache" half of Figure 1.

A small threaded TCP server: each router connection gets a reader
thread; Reset Query streams the full VRP set, Serial Query streams an
incremental diff when history allows (Cache Reset otherwise), and
:meth:`RtrCacheServer.update` pushes a new VRP set and wakes every
connected router with Serial Notify.

Threads (rather than asyncio) keep the server usable from synchronous
test and benchmark code; the protocol work per connection is trivial.

This is the reference implementation, kept for its simplicity.  The
production serving tier — asyncio sessions, per-serial pre-encoded
frame fan-out, metrics — lives in :mod:`repro.serve.rtr_async`;
:meth:`repro.core.pipeline.LocalCache.serve` defaults to it.
"""

from __future__ import annotations

import socket
import threading
from typing import Iterable, Optional

from ..rpki.vrp import Vrp
from .pdu import (
    CacheResetPdu,
    CacheResponsePdu,
    EndOfDataPdu,
    ErrorReportPdu,
    Pdu,
    PduError,
    ResetQueryPdu,
    SerialNotifyPdu,
    SerialQueryPdu,
    decode_stream,
    encode_pdu,
    vrp_to_pdu,
)
from .session import CacheState

__all__ = ["RtrCacheServer"]


class RtrCacheServer:
    """Serves a :class:`CacheState` over RPKI-to-Router.

    Use as a context manager::

        with RtrCacheServer(initial_vrps) as server:
            client = RtrClient("127.0.0.1", server.port)
            ...

    Attributes:
        port: the bound TCP port (an ephemeral port by default).
        state: the underlying serial/VRP database.
    """

    def __init__(
        self,
        initial: Iterable[Vrp] = (),
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        session_id: int = 1,
    ) -> None:
        self.state = CacheState(session_id)
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()[:2]
        self._connections: list[socket.socket] = []
        self._lock = threading.RLock()
        self._closed = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        if initial:
            self.state.update(initial)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "RtrCacheServer":
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="rtr-cache-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def close(self) -> None:
        self._closed.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            for connection in self._connections:
                try:
                    connection.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                connection.close()
            self._connections.clear()

    def __enter__(self) -> "RtrCacheServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Data updates
    # ------------------------------------------------------------------

    def update(self, vrps: Iterable[Vrp]) -> None:
        """Install a new VRP set and notify every connected router."""
        with self._lock:
            diff = self.state.update(vrps)
            if diff.empty:
                return
            notify = encode_pdu(
                SerialNotifyPdu(self.state.session_id, self.state.serial)
            )
            for connection in list(self._connections):
                try:
                    connection.sendall(notify)
                except OSError:
                    self._drop(connection)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                connection, _address = self._listener.accept()
            except OSError:
                return
            with self._lock:
                self._connections.append(connection)
            worker = threading.Thread(
                target=self._serve_connection,
                args=(connection,),
                name="rtr-cache-conn",
                daemon=True,
            )
            worker.start()

    def _drop(self, connection: socket.socket) -> None:
        with self._lock:
            if connection in self._connections:
                self._connections.remove(connection)
        connection.close()

    def _serve_connection(self, connection: socket.socket) -> None:
        buffer = b""
        try:
            while not self._closed.is_set():
                try:
                    chunk = connection.recv(65536)
                except OSError:
                    break
                if not chunk:
                    break
                buffer += chunk
                try:
                    pdus, buffer = decode_stream(buffer)
                except PduError as exc:
                    connection.sendall(encode_pdu(ErrorReportPdu(
                        ErrorReportPdu.CORRUPT_DATA, text=str(exc))))
                    break
                for pdu in pdus:
                    self._handle(connection, pdu)
        finally:
            self._drop(connection)

    def _handle(self, connection: socket.socket, pdu: Pdu) -> None:
        with self._lock:
            if isinstance(pdu, ResetQueryPdu):
                self._send_full(connection)
            elif isinstance(pdu, SerialQueryPdu):
                self._send_incremental(connection, pdu)
            else:
                connection.sendall(encode_pdu(ErrorReportPdu(
                    ErrorReportPdu.UNSUPPORTED_PDU,
                    text=f"cache cannot handle {type(pdu).__name__}")))

    def _send_full(self, connection: socket.socket) -> None:
        parts = [encode_pdu(CacheResponsePdu(self.state.session_id))]
        for vrp in sorted(self.state.vrps):
            parts.append(encode_pdu(vrp_to_pdu(vrp, announce=True)))
        parts.append(encode_pdu(
            EndOfDataPdu(self.state.session_id, self.state.serial)))
        connection.sendall(b"".join(parts))

    def _send_incremental(
        self, connection: socket.socket, query: SerialQueryPdu
    ) -> None:
        if query.session_id != self.state.session_id:
            connection.sendall(encode_pdu(CacheResetPdu()))
            return
        diffs = self.state.diff_since(query.serial)
        if diffs is None:
            connection.sendall(encode_pdu(CacheResetPdu()))
            return
        net = self.state.flatten_diffs(diffs)
        parts = [encode_pdu(CacheResponsePdu(self.state.session_id))]
        for vrp in net.announced:
            parts.append(encode_pdu(vrp_to_pdu(vrp, announce=True)))
        for vrp in net.withdrawn:
            parts.append(encode_pdu(vrp_to_pdu(vrp, announce=False)))
        parts.append(encode_pdu(
            EndOfDataPdu(self.state.session_id, self.state.serial)))
        connection.sendall(b"".join(parts))
