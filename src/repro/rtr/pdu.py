"""RPKI-to-Router protocol data units (RFC 6810 / RFC 8210).

The local cache speaks this binary protocol to routers (Figure 1 of the
paper).  Each VRP travels as one IPv4 or IPv6 Prefix PDU — which is why
the paper measures RPKI overhead in "number of PDUs processed by
routers" and why ``compress_roas`` targets exactly this count.

Wire formats follow RFC 6810 §5 byte-for-byte (version 0); the v1
(RFC 8210) differences are limited to fields we do not exercise.  All
integers are network byte order.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import ClassVar, Optional, Union

from ..netbase import AF_INET, AF_INET6, Prefix
from ..netbase.errors import ReproError
from ..rpki.vrp import Vrp

__all__ = [
    "PduError",
    "PROTOCOL_VERSION",
    "PROTOCOL_VERSION_1",
    "RouterKeyPdu",
    "SerialNotifyPdu",
    "SerialQueryPdu",
    "ResetQueryPdu",
    "CacheResponsePdu",
    "Ipv4PrefixPdu",
    "Ipv6PrefixPdu",
    "EndOfDataPdu",
    "CacheResetPdu",
    "ErrorReportPdu",
    "Pdu",
    "PduBuffer",
    "FLAG_ANNOUNCE",
    "FLAG_WITHDRAW",
    "encode_pdu",
    "decode_pdu",
    "decode_stream",
    "vrp_to_pdu",
    "pdu_to_vrp",
]

PROTOCOL_VERSION = 0

#: RFC 8210 revision: adds Router Key PDUs and End-of-Data timing
#: parameters.  Both versions share the framing.
PROTOCOL_VERSION_1 = 1

FLAG_ANNOUNCE = 1
FLAG_WITHDRAW = 0

_HEADER = struct.Struct("!BBHI")  # version, type, session/flags, length


class PduError(ReproError):
    """Malformed or unsupported PDU bytes."""


@dataclass(frozen=True)
class SerialNotifyPdu:
    """Cache → router: new data is available (type 0)."""

    session_id: int
    serial: int
    pdu_type: ClassVar[int] = 0


@dataclass(frozen=True)
class SerialQueryPdu:
    """Router → cache: send changes since ``serial`` (type 1)."""

    session_id: int
    serial: int
    pdu_type: ClassVar[int] = 1


@dataclass(frozen=True)
class ResetQueryPdu:
    """Router → cache: send everything (type 2)."""

    pdu_type: ClassVar[int] = 2


@dataclass(frozen=True)
class CacheResponsePdu:
    """Cache → router: data follows (type 3)."""

    session_id: int
    pdu_type: ClassVar[int] = 3


@dataclass(frozen=True)
class Ipv4PrefixPdu:
    """One IPv4 VRP announce/withdraw (type 4)."""

    flags: int
    prefix_length: int
    max_length: int
    prefix_value: int  # 32-bit network address
    asn: int
    pdu_type: ClassVar[int] = 4


@dataclass(frozen=True)
class Ipv6PrefixPdu:
    """One IPv6 VRP announce/withdraw (type 6)."""

    flags: int
    prefix_length: int
    max_length: int
    prefix_value: int  # 128-bit network address
    asn: int
    pdu_type: ClassVar[int] = 6


@dataclass(frozen=True)
class EndOfDataPdu:
    """Cache → router: data complete, current serial (type 7).

    Version 1 (RFC 8210 §5.8) appends three timing parameters telling
    the router how often to poll (refresh), how fast to retry after a
    failure (retry), and when to discard stale data (expire); they are
    None on version-0 sessions.
    """

    session_id: int
    serial: int
    refresh_interval: Optional[int] = None
    retry_interval: Optional[int] = None
    expire_interval: Optional[int] = None
    pdu_type: ClassVar[int] = 7

    @property
    def has_intervals(self) -> bool:
        return self.refresh_interval is not None


@dataclass(frozen=True)
class RouterKeyPdu:
    """One BGPsec router key (type 3 in RFC 8210 numbering is Cache
    Response; Router Key is type 9, version 1 only)."""

    flags: int
    subject_key_identifier: bytes  # 20 bytes (SHA-1 of the SPKI)
    asn: int
    spki: bytes
    pdu_type: ClassVar[int] = 9

    def __post_init__(self) -> None:
        if len(self.subject_key_identifier) != 20:
            raise PduError("subject key identifier must be 20 bytes")


@dataclass(frozen=True)
class CacheResetPdu:
    """Cache → router: cannot do incremental, reset (type 8)."""

    pdu_type: ClassVar[int] = 8


@dataclass(frozen=True)
class ErrorReportPdu:
    """Either direction: protocol error (type 10)."""

    error_code: int
    encapsulated: bytes = b""
    text: str = ""
    pdu_type: ClassVar[int] = 10

    # RFC 6810 §10 error codes used here.
    CORRUPT_DATA: ClassVar[int] = 0
    NO_DATA_AVAILABLE: ClassVar[int] = 2
    INVALID_REQUEST: ClassVar[int] = 3
    UNSUPPORTED_VERSION: ClassVar[int] = 4
    UNSUPPORTED_PDU: ClassVar[int] = 5


Pdu = Union[
    SerialNotifyPdu,
    SerialQueryPdu,
    ResetQueryPdu,
    CacheResponsePdu,
    Ipv4PrefixPdu,
    Ipv6PrefixPdu,
    EndOfDataPdu,
    CacheResetPdu,
    RouterKeyPdu,
    ErrorReportPdu,
]


# ----------------------------------------------------------------------
# VRP conversion
# ----------------------------------------------------------------------


def vrp_to_pdu(vrp: Vrp, announce: bool = True) -> Pdu:
    """The prefix PDU announcing (or withdrawing) one VRP."""
    flags = FLAG_ANNOUNCE if announce else FLAG_WITHDRAW
    if vrp.prefix.family == AF_INET:
        return Ipv4PrefixPdu(
            flags=flags,
            prefix_length=vrp.prefix.length,
            max_length=vrp.max_length,
            prefix_value=vrp.prefix.value,
            asn=vrp.asn,
        )
    return Ipv6PrefixPdu(
        flags=flags,
        prefix_length=vrp.prefix.length,
        max_length=vrp.max_length,
        prefix_value=vrp.prefix.value,
        asn=vrp.asn,
    )


def pdu_to_vrp(pdu: Pdu) -> Vrp:
    """Recover the VRP from a prefix PDU."""
    if isinstance(pdu, Ipv4PrefixPdu):
        return Vrp(Prefix(AF_INET, pdu.prefix_value, pdu.prefix_length),
                   pdu.max_length, pdu.asn)
    if isinstance(pdu, Ipv6PrefixPdu):
        return Vrp(Prefix(AF_INET6, pdu.prefix_value, pdu.prefix_length),
                   pdu.max_length, pdu.asn)
    raise PduError(f"{type(pdu).__name__} carries no VRP")


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------


def encode_pdu(pdu: Pdu, version: int = PROTOCOL_VERSION) -> bytes:
    """Serialize one PDU to its RFC 6810/8210 wire form.

    ``version`` selects the protocol revision stamped in the header;
    End-of-Data interval fields and Router Key PDUs require version 1.
    """
    if version not in (PROTOCOL_VERSION, PROTOCOL_VERSION_1):
        raise PduError(f"unsupported protocol version {version}")
    if isinstance(pdu, (SerialNotifyPdu, SerialQueryPdu)):
        return _HEADER.pack(version, pdu.pdu_type, pdu.session_id, 12) \
            + struct.pack("!I", pdu.serial)
    if isinstance(pdu, (ResetQueryPdu, CacheResetPdu)):
        return _HEADER.pack(version, pdu.pdu_type, 0, 8)
    if isinstance(pdu, CacheResponsePdu):
        return _HEADER.pack(version, pdu.pdu_type, pdu.session_id, 8)
    if isinstance(pdu, RouterKeyPdu):
        if version != PROTOCOL_VERSION_1:
            raise PduError("Router Key PDUs require protocol version 1")
        body = (
            pdu.subject_key_identifier
            + struct.pack("!I", pdu.asn)
            + pdu.spki
        )
        return _HEADER.pack(
            version, pdu.pdu_type, pdu.flags << 8, 8 + len(body)
        ) + body
    if isinstance(pdu, Ipv4PrefixPdu):
        return _HEADER.pack(version, pdu.pdu_type, 0, 20) + struct.pack(
            "!BBBB4sI",
            pdu.flags,
            pdu.prefix_length,
            pdu.max_length,
            0,
            pdu.prefix_value.to_bytes(4, "big"),
            pdu.asn,
        )
    if isinstance(pdu, Ipv6PrefixPdu):
        return _HEADER.pack(version, pdu.pdu_type, 0, 32) + struct.pack(
            "!BBBB16sI",
            pdu.flags,
            pdu.prefix_length,
            pdu.max_length,
            0,
            pdu.prefix_value.to_bytes(16, "big"),
            pdu.asn,
        )
    if isinstance(pdu, EndOfDataPdu):
        if version == PROTOCOL_VERSION_1 and pdu.has_intervals:
            return _HEADER.pack(version, pdu.pdu_type, pdu.session_id, 24) \
                + struct.pack(
                    "!IIII", pdu.serial, pdu.refresh_interval,
                    pdu.retry_interval, pdu.expire_interval,
                )
        return _HEADER.pack(version, pdu.pdu_type, pdu.session_id, 12) \
            + struct.pack("!I", pdu.serial)
    if isinstance(pdu, ErrorReportPdu):
        text_bytes = pdu.text.encode("utf-8")
        body = (
            struct.pack("!I", len(pdu.encapsulated))
            + pdu.encapsulated
            + struct.pack("!I", len(text_bytes))
            + text_bytes
        )
        return _HEADER.pack(
            version, pdu.pdu_type, pdu.error_code, 8 + len(body)
        ) + body
    raise PduError(f"cannot encode {type(pdu).__name__}")


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------


def decode_pdu(data: bytes, offset: int = 0) -> tuple[Pdu, int]:
    """Decode one PDU starting at ``offset`` into ``data``.

    Returns (pdu, bytes_consumed).  Taking an offset (instead of
    requiring callers to slice) lets :func:`decode_stream` walk a large
    receive buffer without copying the remainder once per PDU.

    Raises:
        PduError: on malformed bytes or an unsupported type/version.
        IncompletePdu: when more bytes are needed.
    """
    available = len(data) - offset
    if available < 8:
        raise IncompletePdu(8 - available)
    version, pdu_type, session_field, length = _HEADER.unpack_from(data, offset)
    if version not in (PROTOCOL_VERSION, PROTOCOL_VERSION_1):
        raise PduError(f"unsupported protocol version {version}")
    if length < 8 or length > 1 << 20:
        raise PduError(f"implausible PDU length {length}")
    if available < length:
        raise IncompletePdu(length - available)
    body = data[offset + 8:offset + length]

    if pdu_type == SerialNotifyPdu.pdu_type:
        _expect(body, 4, "Serial Notify")
        return SerialNotifyPdu(session_field, _u32(body)), length
    if pdu_type == SerialQueryPdu.pdu_type:
        _expect(body, 4, "Serial Query")
        return SerialQueryPdu(session_field, _u32(body)), length
    if pdu_type == ResetQueryPdu.pdu_type:
        _expect(body, 0, "Reset Query")
        return ResetQueryPdu(), length
    if pdu_type == CacheResponsePdu.pdu_type:
        _expect(body, 0, "Cache Response")
        return CacheResponsePdu(session_field), length
    if pdu_type == Ipv4PrefixPdu.pdu_type:
        _expect(body, 12, "IPv4 Prefix")
        flags, plen, mlen, _zero = body[0], body[1], body[2], body[3]
        value = int.from_bytes(body[4:8], "big")
        asn = _u32(body[8:12])
        return Ipv4PrefixPdu(flags, plen, mlen, value, asn), length
    if pdu_type == Ipv6PrefixPdu.pdu_type:
        _expect(body, 24, "IPv6 Prefix")
        flags, plen, mlen = body[0], body[1], body[2]
        value = int.from_bytes(body[4:20], "big")
        asn = _u32(body[20:24])
        return Ipv6PrefixPdu(flags, plen, mlen, value, asn), length
    if pdu_type == EndOfDataPdu.pdu_type:
        if len(body) == 16:
            serial, refresh, retry, expire = struct.unpack("!IIII", body)
            return EndOfDataPdu(session_field, serial, refresh, retry,
                                expire), length
        _expect(body, 4, "End of Data")
        return EndOfDataPdu(session_field, _u32(body)), length
    if pdu_type == RouterKeyPdu.pdu_type:
        if version != PROTOCOL_VERSION_1:
            raise PduError("Router Key PDU on a version-0 session")
        if len(body) < 24:
            raise PduError("truncated Router Key PDU")
        ski = body[:20]
        asn = _u32(body[20:24])
        spki = body[24:]
        return RouterKeyPdu(session_field >> 8, ski, asn, spki), length
    if pdu_type == CacheResetPdu.pdu_type:
        _expect(body, 0, "Cache Reset")
        return CacheResetPdu(), length
    if pdu_type == ErrorReportPdu.pdu_type:
        if len(body) < 8:
            raise PduError("truncated Error Report")
        encapsulated_length = _u32(body[0:4])
        offset = 4 + encapsulated_length
        if len(body) < offset + 4:
            raise PduError("truncated Error Report payload")
        encapsulated = body[4:offset]
        text_length = _u32(body[offset:offset + 4])
        text_bytes = body[offset + 4:offset + 4 + text_length]
        if len(text_bytes) != text_length:
            raise PduError("truncated Error Report text")
        return (
            ErrorReportPdu(session_field, encapsulated,
                           text_bytes.decode("utf-8", "replace")),
            length,
        )
    raise PduError(f"unsupported PDU type {pdu_type}")


class IncompletePdu(PduError):
    """More bytes are required to decode the pending PDU."""

    def __init__(self, missing: int) -> None:
        self.missing = missing
        super().__init__(f"need {missing} more bytes")


def decode_stream(data: bytes) -> tuple[list[Pdu], bytes]:
    """Decode as many PDUs as ``data`` holds; returns (pdus, remainder).

    The remainder is whatever trails the last complete PDU — typically
    a frame split mid-header (or mid-body) by the transport; prepend
    the next read to it and call again.  Decoding walks the buffer by
    offset, so a full-table blob decodes in linear time rather than
    re-copying the tail once per PDU.
    """
    pdus: list[Pdu] = []
    offset = 0
    while offset < len(data):
        try:
            pdu, consumed = decode_pdu(data, offset)
        except IncompletePdu:
            break
        pdus.append(pdu)
        offset += consumed
    return pdus, data[offset:]


class PduBuffer:
    """Incremental decode state for one PDU byte stream.

    ``feed()`` the bytes as they arrive; ``next()`` yields complete
    PDUs (or None when more bytes are needed).  Consumption advances
    an offset and the spent prefix is trimmed only on the next feed,
    so decoding a full-table stream stays linear instead of re-copying
    the tail once per PDU.  Shared by the synchronous and asyncio RTR
    clients so the buffer-management subtleties live in one place.
    """

    __slots__ = ("_data", "_pos")

    def __init__(self) -> None:
        self._data = b""
        self._pos = 0

    def feed(self, chunk: bytes) -> None:
        if self._pos:
            self._data = self._data[self._pos:]
            self._pos = 0
        self._data += chunk

    def next(self) -> Optional[Pdu]:
        """The next complete PDU, or None when more bytes are needed.

        Raises PduError on malformed bytes, like :func:`decode_pdu`.
        """
        try:
            pdu, consumed = decode_pdu(self._data, self._pos)
        except IncompletePdu:
            return None
        self._pos += consumed
        return pdu


def _u32(body: bytes) -> int:
    return struct.unpack("!I", body[:4])[0]


def _expect(body: bytes, size: int, name: str) -> None:
    if len(body) != size:
        raise PduError(f"{name} body must be {size} bytes, got {len(body)}")
