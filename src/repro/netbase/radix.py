"""A path-compressed (Patricia) radix tree over IP prefixes.

:class:`RadixTree` is the lookup structure used by the BGP substrate: the
RIB (longest-prefix-match forwarding), and RFC 6811 origin validation
(find all covering VRPs of an announcement).  Unlike
:class:`repro.netbase.trie.PrefixTrie`, which materializes one node per
bit (ideal for the compression algorithm's sibling arithmetic), the radix
tree compresses single-child chains, so depth is bounded by the number of
*stored* prefixes along a path rather than by 32/128.

Values are arbitrary; one key maps to one value (use a list value for
multimaps, as the origin-validation table does).
"""

from __future__ import annotations

from typing import Generic, Iterator, Optional, TypeVar

from .errors import TrieError
from .prefix import Prefix

__all__ = ["RadixTree"]

V = TypeVar("V")


class _RadixNode(Generic[V]):
    __slots__ = ("prefix", "value", "has_value", "left", "right")

    def __init__(self, prefix: Prefix) -> None:
        self.prefix = prefix
        self.value: Optional[V] = None
        self.has_value = False
        self.left: Optional[_RadixNode[V]] = None
        self.right: Optional[_RadixNode[V]] = None

    def branch_bit(self, key: Prefix) -> int:
        """The first bit of ``key`` after this node's length (0 or 1)."""
        shift = key.max_family_length - self.prefix.length - 1
        return (key.value >> shift) & 1

    def child(self, bit: int) -> Optional["_RadixNode[V]"]:
        return self.right if bit else self.left

    def set_child(self, bit: int, node: Optional["_RadixNode[V]"]) -> None:
        if bit:
            self.right = node
        else:
            self.left = node


def _common_prefix(a: Prefix, b: Prefix) -> Prefix:
    """The longest prefix covering both ``a`` and ``b`` (same family)."""
    width = a.max_family_length
    max_len = min(a.length, b.length)
    diff = (a.value ^ b.value) >> (width - max_len) if max_len else 0
    common = max_len - diff.bit_length()
    return Prefix(a.family, a.value, common)


class RadixTree(Generic[V]):
    """Patricia tree mapping :class:`Prefix` keys to values.

    Supports exact lookup, longest-prefix match, covering and covered
    enumeration, insertion, and deletion.  All keys must share the
    address family given at construction.
    """

    def __init__(self, family: int) -> None:
        self._family = family
        self._root: Optional[_RadixNode[V]] = None
        self._size = 0

    @property
    def family(self) -> int:
        return self._family

    def __len__(self) -> int:
        return self._size

    def __contains__(self, prefix: Prefix) -> bool:
        node = self._lookup_exact(prefix)
        return node is not None and node.has_value

    def _check(self, prefix: Prefix) -> None:
        if prefix.family != self._family:
            raise TrieError(
                f"IPv{prefix.family} key {prefix} used with IPv{self._family} tree"
            )

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(self, prefix: Prefix, value: V) -> None:
        """Map ``prefix`` to ``value`` (overwrites an existing mapping)."""
        self._check(prefix)
        new_node = _RadixNode[V](prefix)
        new_node.value = value
        new_node.has_value = True

        if self._root is None:
            self._root = new_node
            self._size += 1
            return

        parent: Optional[_RadixNode[V]] = None
        parent_bit = 0
        node = self._root
        while True:
            if node.prefix == prefix:
                if not node.has_value:
                    self._size += 1
                node.value = value
                node.has_value = True
                return
            if node.prefix.covers(prefix):
                bit = node.branch_bit(prefix)
                child = node.child(bit)
                if child is None:
                    node.set_child(bit, new_node)
                    self._size += 1
                    return
                parent, parent_bit, node = node, bit, child
                continue
            # Diverged: split with a glue node at the common prefix.
            glue_prefix = _common_prefix(node.prefix, prefix)
            if glue_prefix == prefix:
                # New key is an ancestor of the existing node.
                new_node.set_child(new_node.branch_bit(node.prefix), node)
                self._replace(parent, parent_bit, new_node)
                self._size += 1
                return
            glue = _RadixNode[V](glue_prefix)
            glue.set_child(glue.branch_bit(node.prefix), node)
            glue.set_child(glue.branch_bit(prefix), new_node)
            self._replace(parent, parent_bit, glue)
            self._size += 1
            return

    def _replace(
        self,
        parent: Optional[_RadixNode[V]],
        bit: int,
        node: Optional[_RadixNode[V]],
    ) -> None:
        if parent is None:
            self._root = node
        else:
            parent.set_child(bit, node)

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------

    def remove(self, prefix: Prefix) -> bool:
        """Delete the mapping for ``prefix``; returns True if present."""
        self._check(prefix)
        parent: Optional[_RadixNode[V]] = None
        parent_bit = 0
        node = self._root
        while node is not None and node.prefix != prefix:
            if not node.prefix.covers(prefix):
                return False
            bit = node.branch_bit(prefix)
            parent, parent_bit, node = node, bit, node.child(bit)
        if node is None or not node.has_value:
            return False
        node.has_value = False
        node.value = None
        self._size -= 1
        # Collapse: a valueless node with < 2 children is structural noise.
        if node.left is None or node.right is None:
            survivor = node.left if node.left is not None else node.right
            self._replace(parent, parent_bit, survivor)
        return True

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def _lookup_exact(self, prefix: Prefix) -> Optional[_RadixNode[V]]:
        self._check(prefix)
        node = self._root
        while node is not None:
            if node.prefix == prefix:
                return node
            if not node.prefix.covers(prefix) or node.prefix.length >= prefix.length:
                return None
            node = node.child(node.branch_bit(prefix))
        return None

    def get(self, prefix: Prefix, default: Optional[V] = None) -> Optional[V]:
        """The value stored exactly at ``prefix``, or ``default``."""
        node = self._lookup_exact(prefix)
        if node is None or not node.has_value:
            return default
        return node.value

    def setdefault(self, prefix: Prefix, default: V) -> V:
        """The value at ``prefix``, inserting ``default`` when absent.

        Bulk index builds (one bucket per prefix, many entries per
        bucket) hit the existing-key case constantly; answering it from
        a single exact-match walk instead of a get-then-insert pair
        roughly halves the tree traffic.
        """
        node = self._lookup_exact(prefix)
        if node is not None and node.has_value:
            return node.value  # type: ignore[return-value]
        self.insert(prefix, default)
        return default

    def longest_match(self, prefix: Prefix) -> Optional[tuple[Prefix, V]]:
        """The most-specific stored entry covering ``prefix``."""
        self._check(prefix)
        best: Optional[_RadixNode[V]] = None
        node = self._root
        while node is not None and node.prefix.covers(prefix):
            if node.has_value:
                best = node
            if node.prefix.length >= prefix.length:
                break
            node = node.child(node.branch_bit(prefix))
        if best is None:
            return None
        return best.prefix, best.value  # type: ignore[return-value]

    def covering(self, prefix: Prefix) -> Iterator[tuple[Prefix, V]]:
        """All stored entries whose prefix covers ``prefix``, shortest first."""
        self._check(prefix)
        node = self._root
        while node is not None and node.prefix.covers(prefix):
            if node.has_value:
                yield node.prefix, node.value  # type: ignore[misc]
            if node.prefix.length >= prefix.length:
                return
            node = node.child(node.branch_bit(prefix))

    def covered(self, prefix: Prefix) -> Iterator[tuple[Prefix, V]]:
        """All stored entries covered by ``prefix`` (inclusive), sorted."""
        self._check(prefix)
        # Descend past strict ancestors of `prefix`, then DFS the subtree.
        node = self._root
        while node is not None and node.prefix.covers_properly(prefix):
            node = node.child(node.branch_bit(prefix))
        stack = [node] if node is not None else []
        while stack:
            current = stack.pop()
            if prefix.covers(current.prefix) and current.has_value:
                yield current.prefix, current.value  # type: ignore[misc]
            if current.right is not None and prefix.overlaps(current.right.prefix):
                stack.append(current.right)
            if current.left is not None and prefix.overlaps(current.left.prefix):
                stack.append(current.left)

    def items(self) -> Iterator[tuple[Prefix, V]]:
        """All (prefix, value) pairs in sorted (DFS preorder) order."""
        stack = [self._root] if self._root is not None else []
        while stack:
            node = stack.pop()
            if node.has_value:
                yield node.prefix, node.value  # type: ignore[misc]
            if node.right is not None:
                stack.append(node.right)
            if node.left is not None:
                stack.append(node.left)

    def keys(self) -> Iterator[Prefix]:
        for prefix, _ in self.items():
            yield prefix
